//! Ordinary least squares regression.
//!
//! The interaction ranker (Section III-D) fits a linear model per pair of
//! important events and uses the residual variance as the interaction
//! intensity. [`MultipleLinear`] solves the general `y ~ X` problem via
//! normal equations with partial-pivot Gaussian elimination;
//! [`SimpleLinear`] is the one-regressor fast path.

use crate::StatsError;

/// Simple linear regression `y = intercept + slope·x`.
///
/// # Examples
///
/// ```
/// use cm_stats::regression::SimpleLinear;
///
/// let xs = [1.0, 2.0, 3.0, 4.0];
/// let ys = [3.0, 5.0, 7.0, 9.0];
/// let fit = SimpleLinear::fit(&xs, &ys)?;
/// assert!((fit.slope() - 2.0).abs() < 1e-12);
/// assert!((fit.intercept() - 1.0).abs() < 1e-12);
/// assert!((fit.predict(5.0) - 11.0).abs() < 1e-12);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimpleLinear {
    intercept: f64,
    slope: f64,
}

impl SimpleLinear {
    /// Fits by least squares.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched lengths, fewer than two points,
    /// or constant `x`.
    pub fn fit(xs: &[f64], ys: &[f64]) -> Result<Self, StatsError> {
        if xs.len() != ys.len() {
            return Err(StatsError::MismatchedLengths {
                left: xs.len(),
                right: ys.len(),
            });
        }
        if xs.len() < 2 {
            return Err(StatsError::NotEnoughData {
                required: 2,
                available: xs.len(),
            });
        }
        let n = xs.len() as f64;
        let mx = xs.iter().sum::<f64>() / n;
        let my = ys.iter().sum::<f64>() / n;
        let sxx: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
        if sxx == 0.0 {
            return Err(StatsError::SingularSystem);
        }
        let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
        let slope = sxy / sxx;
        Ok(SimpleLinear {
            intercept: my - slope * mx,
            slope,
        })
    }

    /// Fitted slope.
    pub fn slope(&self) -> f64 {
        self.slope
    }

    /// Fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// Predicts `y` at `x`.
    pub fn predict(&self, x: f64) -> f64 {
        self.intercept + self.slope * x
    }
}

/// Multiple linear regression `y = b0 + b1·x1 + … + bp·xp`.
#[derive(Debug, Clone, PartialEq)]
pub struct MultipleLinear {
    /// `coefficients[0]` is the intercept; `coefficients[1..]` pair with
    /// the feature columns.
    coefficients: Vec<f64>,
}

impl MultipleLinear {
    /// Fits by least squares over rows `x[i]` (each of equal length) and
    /// targets `y[i]`, solving the normal equations.
    ///
    /// # Errors
    ///
    /// Returns an error for inconsistent shapes, fewer rows than
    /// `p + 1`, or a singular design (e.g. perfectly collinear columns).
    pub fn fit(x: &[Vec<f64>], y: &[f64]) -> Result<Self, StatsError> {
        if x.len() != y.len() {
            return Err(StatsError::MismatchedLengths {
                left: x.len(),
                right: y.len(),
            });
        }
        if x.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let p = x[0].len();
        if x.iter().any(|row| row.len() != p) {
            return Err(StatsError::InvalidParameter(
                "feature rows have inconsistent lengths",
            ));
        }
        let dims = p + 1; // + intercept
        if x.len() < dims {
            return Err(StatsError::NotEnoughData {
                required: dims,
                available: x.len(),
            });
        }

        // Build X'X (dims x dims) and X'y with an implicit leading 1s
        // column for the intercept.
        let mut xtx = vec![vec![0.0; dims]; dims];
        let mut xty = vec![0.0; dims];
        for (row, &target) in x.iter().zip(y) {
            let aug = |j: usize| if j == 0 { 1.0 } else { row[j - 1] };
            for (i, (xty_i, xtx_i)) in xty.iter_mut().zip(xtx.iter_mut()).enumerate() {
                *xty_i += aug(i) * target;
                for (j, xtx_ij) in xtx_i.iter_mut().enumerate().skip(i) {
                    *xtx_ij += aug(i) * aug(j);
                }
            }
        }
        // Mirror the upper triangle. Indexed loops are the clear way to
        // address (i, j) and (j, i) across two rows at once.
        #[allow(clippy::needless_range_loop)]
        for i in 0..dims {
            for j in 0..i {
                xtx[i][j] = xtx[j][i];
            }
        }

        let coefficients = solve(xtx, xty)?;
        Ok(MultipleLinear { coefficients })
    }

    /// Fitted coefficients: intercept first, then one per feature.
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }

    /// Predicts `y` for a feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len() + 1 != coefficients().len()`.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(
            row.len() + 1,
            self.coefficients.len(),
            "feature row length does not match the fitted model"
        );
        self.coefficients[0]
            + row
                .iter()
                .zip(&self.coefficients[1..])
                .map(|(&x, &b)| x * b)
                .sum::<f64>()
    }

    /// Sum of squared residuals over a dataset.
    ///
    /// This is the paper's interaction intensity `v` (Eq. 12): the
    /// residual variance of the pairwise linear model.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::MismatchedLengths`] when `x` and `y`
    /// lengths differ.
    pub fn residual_sum_of_squares(&self, x: &[Vec<f64>], y: &[f64]) -> Result<f64, StatsError> {
        if x.len() != y.len() {
            return Err(StatsError::MismatchedLengths {
                left: x.len(),
                right: y.len(),
            });
        }
        Ok(x.iter()
            .zip(y)
            .map(|(row, &target)| {
                let r = self.predict(row) - target;
                r * r
            })
            .sum())
    }

    /// Coefficient of determination R² over a dataset.
    ///
    /// # Errors
    ///
    /// Returns an error for mismatched lengths or empty/constant `y`.
    pub fn r_squared(&self, x: &[Vec<f64>], y: &[f64]) -> Result<f64, StatsError> {
        let rss = self.residual_sum_of_squares(x, y)?;
        let my = crate::descriptive::mean(y)?;
        let tss: f64 = y.iter().map(|&v| (v - my) * (v - my)).sum();
        if tss == 0.0 {
            return Err(StatsError::InvalidParameter(
                "r-squared undefined for constant targets",
            ));
        }
        Ok(1.0 - rss / tss)
    }
}

/// Solves `A·x = b` by Gaussian elimination with partial pivoting.
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Result<Vec<f64>, StatsError> {
    let n = b.len();
    for col in 0..n {
        let pivot = (col..n)
            .max_by(|&i, &j| a[i][col].abs().total_cmp(&a[j][col].abs()))
            .expect("non-empty pivot range");
        if a[pivot][col].abs() < 1e-10 {
            return Err(StatsError::SingularSystem);
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            // Row operation reads a[col] while writing a[row]; indexed
            // access keeps the two-row borrow simple.
            #[allow(clippy::needless_range_loop)]
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for col in row + 1..n {
            acc -= a[row][col] * x[col];
        }
        x[row] = acc / a[row][row];
    }
    Ok(x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simple_exact_line() {
        let fit = SimpleLinear::fit(&[0.0, 1.0, 2.0], &[1.0, 3.0, 5.0]).unwrap();
        assert!((fit.slope() - 2.0).abs() < 1e-12);
        assert!((fit.intercept() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn simple_rejects_degenerate() {
        assert!(SimpleLinear::fit(&[1.0], &[1.0]).is_err());
        assert!(SimpleLinear::fit(&[1.0, 1.0], &[1.0, 2.0]).is_err());
        assert!(SimpleLinear::fit(&[1.0, 2.0], &[1.0]).is_err());
    }

    #[test]
    fn simple_minimizes_squared_error() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.1, 3.9, 6.2, 7.8, 10.1];
        let fit = SimpleLinear::fit(&xs, &ys).unwrap();
        let rss: f64 = xs
            .iter()
            .zip(&ys)
            .map(|(&x, &y)| (fit.predict(x) - y).powi(2))
            .sum();
        // Perturbing the slope must not reduce RSS.
        for eps in [-0.01, 0.01] {
            let perturbed: f64 = xs
                .iter()
                .zip(&ys)
                .map(|(&x, &y)| (fit.intercept() + (fit.slope() + eps) * x - y).powi(2))
                .sum();
            assert!(perturbed >= rss);
        }
    }

    #[test]
    fn multiple_exact_plane() {
        // y = 1 + 2a - 3b
        let x: Vec<Vec<f64>> = vec![
            vec![0.0, 0.0],
            vec![1.0, 0.0],
            vec![0.0, 1.0],
            vec![2.0, 1.0],
            vec![1.0, 2.0],
        ];
        let y: Vec<f64> = x.iter().map(|r| 1.0 + 2.0 * r[0] - 3.0 * r[1]).collect();
        let fit = MultipleLinear::fit(&x, &y).unwrap();
        let c = fit.coefficients();
        assert!((c[0] - 1.0).abs() < 1e-9);
        assert!((c[1] - 2.0).abs() < 1e-9);
        assert!((c[2] + 3.0).abs() < 1e-9);
        assert!(fit.residual_sum_of_squares(&x, &y).unwrap() < 1e-12);
        assert!((fit.r_squared(&x, &y).unwrap() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn multiple_detects_collinearity() {
        let x: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64, 2.0 * i as f64]).collect();
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        assert_eq!(MultipleLinear::fit(&x, &y), Err(StatsError::SingularSystem));
    }

    #[test]
    fn multiple_validates_shapes() {
        assert!(MultipleLinear::fit(&[], &[]).is_err());
        let ragged = vec![vec![1.0], vec![1.0, 2.0]];
        assert!(MultipleLinear::fit(&ragged, &[1.0, 2.0]).is_err());
        let x = vec![vec![1.0, 2.0]];
        assert!(MultipleLinear::fit(&x, &[1.0]).is_err()); // too few rows
    }

    #[test]
    fn residuals_capture_nonlinearity() {
        // y = x^2 cannot be captured linearly: RSS must be clearly
        // positive — this is exactly how the interaction ranker detects
        // interacting event pairs.
        let x: Vec<Vec<f64>> = (-5..=5).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x.iter().map(|r| r[0] * r[0]).collect();
        let fit = MultipleLinear::fit(&x, &y).unwrap();
        assert!(fit.residual_sum_of_squares(&x, &y).unwrap() > 10.0);
    }

    #[test]
    #[should_panic(expected = "feature row length")]
    fn predict_with_wrong_arity_panics() {
        let x = vec![vec![0.0], vec![1.0], vec![2.0]];
        let y = vec![0.0, 1.0, 2.0];
        let fit = MultipleLinear::fit(&x, &y).unwrap();
        fit.predict(&[1.0, 2.0]);
    }
}
