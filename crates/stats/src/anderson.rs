//! Anderson–Darling goodness-of-fit testing.
//!
//! The paper uses `scipy.stats.anderson` to decide which events have
//! Gaussian-distributed values (100 of 229) and which follow long-tail
//! distributions best fit by GEV (Section III-B). This module provides
//! the same normality test (with the Stephens small-sample correction
//! and critical values) plus a generic A² statistic against any fitted
//! [`Distribution`], which is how we compare candidate long-tail families.

use crate::distribution::Distribution;
use crate::{Gev, Gumbel, Logistic, Normal, StatsError};

/// Significance levels (percent) for the normality critical values,
/// matching `scipy.stats.anderson`.
pub const SIGNIFICANCE_LEVELS: [f64; 5] = [15.0, 10.0, 5.0, 2.5, 1.0];

/// Result of an Anderson–Darling normality test.
#[derive(Debug, Clone, PartialEq)]
pub struct AndersonDarling {
    /// The corrected A*² statistic.
    pub statistic: f64,
    /// Critical values paired with [`SIGNIFICANCE_LEVELS`].
    pub critical_values: [f64; 5],
}

impl AndersonDarling {
    /// Returns `true` when normality is *not* rejected at the given
    /// significance level (percent; must be one of
    /// [`SIGNIFICANCE_LEVELS`]).
    ///
    /// # Panics
    ///
    /// Panics if `level` is not one of the tabulated levels.
    pub fn accepts_at(&self, level: f64) -> bool {
        let idx = SIGNIFICANCE_LEVELS
            .iter()
            .position(|&l| l == level)
            .expect("level must be one of SIGNIFICANCE_LEVELS");
        self.statistic < self.critical_values[idx]
    }

    /// Convenience for the 5 % level the paper uses.
    pub fn is_normal(&self) -> bool {
        self.accepts_at(5.0)
    }
}

/// Raw A² statistic of `data` against a fully specified distribution.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for fewer than eight values
/// (the statistic is meaningless below that).
pub fn a_squared<D: Distribution>(data: &[f64], dist: &D) -> Result<f64, StatsError> {
    if data.len() < 8 {
        return Err(StatsError::NotEnoughData {
            required: 8,
            available: data.len(),
        });
    }
    let mut x = data.to_vec();
    x.sort_by(f64::total_cmp);
    let n = x.len();
    let nf = n as f64;
    // Clamp CDF values away from {0, 1} so the logs stay finite when a
    // sample falls outside a fitted distribution's support.
    let eps = 1e-12;
    let mut sum = 0.0;
    for i in 0..n {
        let fi = dist.cdf(x[i]).clamp(eps, 1.0 - eps);
        let fni = dist.cdf(x[n - 1 - i]).clamp(eps, 1.0 - eps);
        // (-fni).ln_1p() = ln(1 - fni), stable for fni near 1.
        sum += (2.0 * i as f64 + 1.0) * (fi.ln() + (-fni).ln_1p());
    }
    Ok(-nf - sum / nf)
}

/// Anderson–Darling normality test with parameters estimated from the
/// sample (case 3 of Stephens 1974), applying the small-sample
/// correction `A*² = A²·(1 + 0.75/n + 2.25/n²)`.
///
/// # Errors
///
/// Returns an error for fewer than eight values or zero-variance data.
///
/// # Examples
///
/// ```
/// use cm_stats::anderson;
/// use cm_stats::{Distribution, Normal};
/// use rand::{rngs::StdRng, SeedableRng};
///
/// let n = Normal::new(0.0, 1.0)?;
/// let mut rng = StdRng::seed_from_u64(1);
/// let data: Vec<f64> = (0..500).map(|_| n.sample(&mut rng)).collect();
/// assert!(anderson::normality_test(&data)?.is_normal());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn normality_test(data: &[f64]) -> Result<AndersonDarling, StatsError> {
    let fitted = Normal::fit(data)?;
    let a2 = a_squared(data, &fitted)?;
    let n = data.len() as f64;
    let corrected = a2 * (1.0 + 0.75 / n + 2.25 / (n * n));
    Ok(AndersonDarling {
        statistic: corrected,
        critical_values: [0.576, 0.656, 0.787, 0.918, 1.092],
    })
}

/// Kolmogorov–Smirnov statistic of `data` against a fully specified
/// distribution: the maximum absolute difference between the empirical
/// CDF and the theoretical CDF.
///
/// A second goodness-of-fit lens next to [`a_squared`]: KS weights the
/// distribution body, Anderson–Darling emphasizes the tails (which is
/// why the paper uses the latter for long-tail classification).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
///
/// # Examples
///
/// ```
/// use cm_stats::{anderson::ks_statistic, Normal};
///
/// let data: Vec<f64> = (1..=99).map(|i| i as f64 / 10.0).collect();
/// let good = Normal::new(5.0, 2.9)?;
/// let bad = Normal::new(20.0, 1.0)?;
/// assert!(ks_statistic(&data, &good)? < ks_statistic(&data, &bad)?);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
pub fn ks_statistic<D: Distribution>(data: &[f64], dist: &D) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let mut x = data.to_vec();
    x.sort_by(f64::total_cmp);
    let n = x.len() as f64;
    let mut d = 0.0f64;
    for (i, &xi) in x.iter().enumerate() {
        let f = dist.cdf(xi);
        let ecdf_hi = (i + 1) as f64 / n;
        let ecdf_lo = i as f64 / n;
        d = d.max((f - ecdf_lo).abs()).max((ecdf_hi - f).abs());
    }
    Ok(d)
}

/// Long-tail candidate families compared when a sample fails the
/// normality test.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TailCandidate {
    /// Generalized extreme value.
    Gev,
    /// Gumbel (type-I extreme value).
    Gumbel,
    /// Logistic.
    Logistic,
}

/// Fits each long-tail candidate to `data` and returns them ordered by
/// ascending A² (best fit first). Candidates whose fit fails are skipped.
///
/// The paper reports GEV winning this comparison on its event data.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] when no candidate could be fit.
pub fn best_tail_fit(data: &[f64]) -> Result<Vec<(TailCandidate, f64)>, StatsError> {
    let mut scored = Vec::new();
    if let Ok(g) = Gev::fit(data) {
        if let Ok(a2) = a_squared(data, &g) {
            scored.push((TailCandidate::Gev, a2));
        }
    }
    if let Ok(g) = Gumbel::fit(data) {
        if let Ok(a2) = a_squared(data, &g) {
            scored.push((TailCandidate::Gumbel, a2));
        }
    }
    if let Ok(l) = Logistic::fit(data) {
        if let Ok(a2) = a_squared(data, &l) {
            scored.push((TailCandidate::Logistic, a2));
        }
    }
    if scored.is_empty() {
        return Err(StatsError::NotEnoughData {
            required: 8,
            available: data.len(),
        });
    }
    scored.sort_by(|a, b| a.1.total_cmp(&b.1));
    Ok(scored)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Distribution;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample<D: Distribution>(d: &D, n: usize, seed: u64) -> Vec<f64> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| d.sample(&mut rng)).collect()
    }

    #[test]
    fn accepts_gaussian_data() {
        let data = sample(&Normal::new(50.0, 4.0).unwrap(), 800, 2);
        let result = normality_test(&data).unwrap();
        assert!(result.is_normal(), "A*2 = {}", result.statistic);
        assert!(result.accepts_at(1.0));
    }

    #[test]
    fn rejects_heavy_tailed_data() {
        let data = sample(&Gev::new(0.0, 1.0, 0.3).unwrap(), 800, 3);
        let result = normality_test(&data).unwrap();
        assert!(!result.is_normal(), "A*2 = {}", result.statistic);
    }

    #[test]
    fn rejects_gumbel_data() {
        let data = sample(&Gumbel::new(10.0, 2.0).unwrap(), 1000, 4);
        assert!(!normality_test(&data).unwrap().is_normal());
    }

    #[test]
    fn gev_wins_on_gev_data() {
        let data = sample(&Gev::new(5.0, 2.0, 0.25).unwrap(), 2000, 5);
        let ranking = best_tail_fit(&data).unwrap();
        assert_eq!(ranking[0].0, TailCandidate::Gev, "ranking: {ranking:?}");
    }

    #[test]
    fn a_squared_smaller_for_true_distribution() {
        let truth = Normal::new(0.0, 1.0).unwrap();
        let wrong = Normal::new(2.0, 1.0).unwrap();
        let data = sample(&truth, 300, 6);
        let good = a_squared(&data, &truth).unwrap();
        let bad = a_squared(&data, &wrong).unwrap();
        assert!(good < bad);
    }

    #[test]
    fn ks_statistic_prefers_the_true_distribution() {
        let truth = Normal::new(10.0, 2.0).unwrap();
        let data = sample(&truth, 500, 7);
        let wrong = Normal::new(14.0, 2.0).unwrap();
        let d_true = ks_statistic(&data, &truth).unwrap();
        let d_wrong = ks_statistic(&data, &wrong).unwrap();
        assert!(d_true < 0.08, "KS of true dist {d_true}");
        assert!(d_wrong > 3.0 * d_true);
        assert!(ks_statistic(&[], &truth).is_err());
    }

    #[test]
    fn too_few_points_errors() {
        assert!(normality_test(&[1.0, 2.0, 3.0]).is_err());
        assert!(a_squared(&[1.0; 5], &Normal::standard()).is_err());
    }

    #[test]
    #[should_panic(expected = "SIGNIFICANCE_LEVELS")]
    fn accepts_at_unknown_level_panics() {
        let r = AndersonDarling {
            statistic: 0.5,
            critical_values: [0.576, 0.656, 0.787, 0.918, 1.092],
        };
        r.accepts_at(7.5);
    }
}
