use crate::distribution::Distribution;
use crate::gumbel::{Gumbel, EULER_GAMMA};
use crate::special::gamma;
use crate::StatsError;

/// Generalized extreme value (GEV) distribution.
///
/// Parameterized by location `mu`, scale `sigma > 0`, and shape `xi`
/// (`xi > 0` gives a heavy right tail — the Fréchet domain the paper
/// found to best fit 129 of the 229 events; `xi = 0` is Gumbel;
/// `xi < 0` is reversed Weibull with a bounded upper tail).
///
/// Fitting uses L-moments (Hosking's estimator), which is robust on the
/// small, dirty samples the cleaner deals with.
///
/// # Examples
///
/// ```
/// use cm_stats::{Distribution, Gev};
///
/// let g = Gev::new(0.0, 1.0, 0.2)?;
/// for p in [0.1, 0.5, 0.9] {
///     assert!((g.cdf(g.quantile(p)) - p).abs() < 1e-10);
/// }
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gev {
    mu: f64,
    sigma: f64,
    xi: f64,
}

/// Shapes with `|xi|` below this are treated as the Gumbel limit.
const XI_EPS: f64 = 1e-6;

impl Gev {
    /// Creates a GEV distribution.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `sigma > 0` and
    /// all parameters are finite.
    pub fn new(mu: f64, sigma: f64, xi: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() || !sigma.is_finite() || !xi.is_finite() || sigma <= 0.0 {
            return Err(StatsError::InvalidParameter(
                "gev requires finite parameters and sigma > 0",
            ));
        }
        Ok(Gev { mu, sigma, xi })
    }

    /// Fits a GEV by the method of L-moments (Hosking 1990).
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::NotEnoughData`] for fewer than four values
    /// and [`StatsError::InvalidParameter`] for constant data.
    pub fn fit(data: &[f64]) -> Result<Self, StatsError> {
        if data.len() < 4 {
            return Err(StatsError::NotEnoughData {
                required: 4,
                available: data.len(),
            });
        }
        let mut x = data.to_vec();
        x.sort_by(f64::total_cmp);
        let n = x.len() as f64;

        // Probability-weighted moments b0, b1, b2.
        let b0: f64 = x.iter().sum::<f64>() / n;
        let mut b1 = 0.0;
        let mut b2 = 0.0;
        for (i, &xi_val) in x.iter().enumerate() {
            let i = i as f64;
            b1 += i / (n - 1.0) * xi_val;
            if n > 2.0 {
                b2 += i * (i - 1.0) / ((n - 1.0) * (n - 2.0)) * xi_val;
            }
        }
        b1 /= n;
        b2 /= n;

        let l1 = b0;
        let l2 = 2.0 * b1 - b0;
        let l3 = 6.0 * b2 - 6.0 * b1 + b0;
        if l2 <= 0.0 {
            return Err(StatsError::InvalidParameter(
                "gev fit requires non-constant data",
            ));
        }
        let t3 = l3 / l2;

        // Hosking's approximation; k is the GEV shape in the k = -xi
        // convention.
        let c = 2.0 / (3.0 + t3) - std::f64::consts::LN_2 / 3f64.ln();
        let k = 7.8590 * c + 2.9554 * c * c;

        if k.abs() < XI_EPS {
            let g = Gumbel::fit(data)?;
            return Gev::new(g.mu(), g.beta(), 0.0);
        }
        let gk = gamma(1.0 + k);
        let sigma = l2 * k / ((1.0 - 2f64.powf(-k)) * gk);
        let mu = l1 - sigma * (1.0 - gk) / k;
        if !sigma.is_finite() || sigma <= 0.0 {
            return Err(StatsError::InvalidParameter(
                "gev fit produced a non-positive scale",
            ));
        }
        Gev::new(mu, sigma, -k)
    }

    /// Location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Shape parameter (`xi > 0` means heavy right tail).
    pub fn xi(&self) -> f64 {
        self.xi
    }

    fn z(&self, x: f64) -> f64 {
        (x - self.mu) / self.sigma
    }
}

impl Distribution for Gev {
    fn pdf(&self, x: f64) -> f64 {
        let z = self.z(x);
        if self.xi.abs() < XI_EPS {
            return ((-z - (-z).exp()).exp()) / self.sigma;
        }
        let s = 1.0 + self.xi * z;
        if s <= 0.0 {
            return 0.0;
        }
        let t = s.powf(-1.0 / self.xi);
        t.powf(self.xi + 1.0) * (-t).exp() / self.sigma
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = self.z(x);
        if self.xi.abs() < XI_EPS {
            return (-(-z).exp()).exp();
        }
        let s = 1.0 + self.xi * z;
        if s <= 0.0 {
            // Outside the support: below the lower bound for xi > 0,
            // above the upper bound for xi < 0.
            return if self.xi > 0.0 { 0.0 } else { 1.0 };
        }
        (-s.powf(-1.0 / self.xi)).exp()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
        if self.xi.abs() < XI_EPS {
            self.mu - self.sigma * (-p.ln()).ln()
        } else {
            self.mu + self.sigma * ((-p.ln()).powf(-self.xi) - 1.0) / self.xi
        }
    }

    fn mean(&self) -> f64 {
        if self.xi.abs() < XI_EPS {
            self.mu + self.sigma * EULER_GAMMA
        } else if self.xi < 1.0 {
            self.mu + self.sigma * (gamma(1.0 - self.xi) - 1.0) / self.xi
        } else {
            f64::INFINITY
        }
    }

    fn variance(&self) -> f64 {
        if self.xi.abs() < XI_EPS {
            let pi = std::f64::consts::PI;
            pi * pi * self.sigma * self.sigma / 6.0
        } else if self.xi < 0.5 {
            let g1 = gamma(1.0 - self.xi);
            let g2 = gamma(1.0 - 2.0 * self.xi);
            self.sigma * self.sigma * (g2 - g1 * g1) / (self.xi * self.xi)
        } else {
            f64::INFINITY
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gev::new(0.0, 0.0, 0.1).is_err());
        assert!(Gev::new(0.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn zero_shape_matches_gumbel() {
        let gev = Gev::new(1.0, 2.0, 0.0).unwrap();
        let gum = Gumbel::new(1.0, 2.0).unwrap();
        for x in [-3.0, 0.0, 1.0, 4.0, 10.0] {
            assert!((gev.cdf(x) - gum.cdf(x)).abs() < 1e-12);
            assert!((gev.pdf(x) - gum.pdf(x)).abs() < 1e-12);
        }
    }

    #[test]
    fn quantile_inverts_cdf_for_all_shapes() {
        for xi in [-0.3, 0.0, 0.2, 0.5] {
            let g = Gev::new(3.0, 1.5, xi).unwrap();
            for p in [0.01, 0.25, 0.5, 0.75, 0.99] {
                let x = g.quantile(p);
                assert!((g.cdf(x) - p).abs() < 1e-9, "xi = {xi}, p = {p}");
            }
        }
    }

    #[test]
    fn support_bounds_respected() {
        // xi > 0: lower bound at mu - sigma/xi.
        let g = Gev::new(0.0, 1.0, 0.5).unwrap();
        assert_eq!(g.cdf(-2.5), 0.0);
        assert_eq!(g.pdf(-2.5), 0.0);
        // xi < 0: upper bound at mu - sigma/xi.
        let g = Gev::new(0.0, 1.0, -0.5).unwrap();
        assert_eq!(g.cdf(2.5), 1.0);
        assert_eq!(g.pdf(2.5), 0.0);
    }

    #[test]
    fn pdf_integrates_to_one_heavy_tail() {
        let g = Gev::new(0.0, 1.0, 0.2).unwrap();
        let (lo, hi, steps) = (-4.9, 400.0, 400_000);
        let h = (hi - lo) / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| g.pdf(lo + (i as f64 + 0.5) * h) * h)
            .sum();
        assert!((integral - 1.0).abs() < 1e-3, "integral = {integral}");
    }

    #[test]
    fn fit_recovers_parameters() {
        let truth = Gev::new(5.0, 2.0, 0.15).unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let data: Vec<f64> = (0..40_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = Gev::fit(&data).unwrap();
        assert!((fitted.mu() - 5.0).abs() < 0.15, "mu = {}", fitted.mu());
        assert!(
            (fitted.sigma() - 2.0).abs() < 0.15,
            "sigma = {}",
            fitted.sigma()
        );
        assert!((fitted.xi() - 0.15).abs() < 0.05, "xi = {}", fitted.xi());
    }

    #[test]
    fn fit_rejects_tiny_or_constant_data() {
        assert!(Gev::fit(&[1.0, 2.0, 3.0]).is_err());
        assert!(Gev::fit(&[2.0, 2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn mean_matches_sample_mean() {
        let g = Gev::new(1.0, 1.0, 0.1).unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let data: Vec<f64> = (0..60_000).map(|_| g.sample(&mut rng)).collect();
        let sample_mean = data.iter().sum::<f64>() / data.len() as f64;
        assert!(
            (Distribution::mean(&g) - sample_mean).abs() < 0.05,
            "analytic = {}, sample = {sample_mean}",
            Distribution::mean(&g)
        );
    }

    #[test]
    fn heavy_shape_has_infinite_moments() {
        let g = Gev::new(0.0, 1.0, 1.2).unwrap();
        assert!(Distribution::mean(&g).is_infinite());
        let g = Gev::new(0.0, 1.0, 0.7).unwrap();
        assert!(g.variance().is_infinite());
    }
}
