//! Statistical substrate for CounterMiner.
//!
//! CounterMiner's pipeline leans on a handful of classical statistics
//! tools the paper takes from SciPy and scikit-learn; this crate
//! implements them from scratch:
//!
//! * descriptive statistics and the histogram-interval rule of Eq. 7,
//! * continuous distributions — [`Normal`], [`Gev`], [`Gumbel`],
//!   [`Logistic`] — with density, CDF, quantile, sampling, and fitting,
//! * the [Anderson–Darling test](anderson) used to classify event value
//!   distributions (Section III-B),
//! * [ordinary least squares regression](regression) for the interaction
//!   ranker,
//! * [KNN regression](knn) for missing-value filling (k = 5 in the paper),
//! * [uncertainty-aware estimation](estimator) — Gaussian posteriors,
//!   deterministic resampling streams, and the ranking-stability score
//!   behind the `bayes` cleaning mode,
//! * [PCA](pca) as the related-work feature-extraction baseline
//!   (Section VI-A),
//! * [dynamic time warping](dtw) for comparing variable-length event
//!   series (Eqs. 1–3),
//! * [seeded k-medoids clustering](cluster) over counter signatures —
//!   pluggable distances, silhouette scores, and the adjusted Rand
//!   index — behind the cross-benchmark `cluster` analysis mode.
//!
//! # Examples
//!
//! ```
//! use cm_stats::{dtw, Normal, Distribution};
//!
//! let a = [0.0, 1.0, 2.0, 3.0];
//! let b = [0.0, 0.0, 1.0, 2.0, 3.0]; // same shape, different length
//! assert!(dtw::distance(&a, &b) < 1e-12);
//!
//! let n = Normal::new(0.0, 1.0)?;
//! assert!((n.cdf(0.0) - 0.5).abs() < 1e-6);
//! # Ok::<(), cm_stats::StatsError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod anderson;
pub mod cluster;
pub mod descriptive;
mod distribution;
pub mod dtw;
mod error;
pub mod estimator;
mod gev;
mod gumbel;
pub mod knn;
mod logistic;
mod normal;
pub mod pca;
pub mod regression;
pub mod special;

pub use distribution::Distribution;
pub use error::StatsError;
pub use gev::Gev;
pub use gumbel::Gumbel;
pub use logistic::Logistic;
pub use normal::Normal;
