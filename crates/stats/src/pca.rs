//! Principal component analysis, power-iteration flavour.
//!
//! The paper's related work (Section VI-A; Ahn & Vetter's "scalable
//! analysis techniques") extracts important features from counter data
//! with PCA. CounterMiner argues PCA tells you *which* events matter
//! only implicitly — a principal component is a mixture — and cannot
//! quantify per-event importance with respect to performance. This
//! module implements that baseline so the claim can be measured (see
//! the `baseline_pca` experiment).
//!
//! Deterministic power iteration with deflation; adequate for the
//! leading handful of components of standardized counter matrices.

use crate::StatsError;

/// Result of a PCA decomposition.
#[derive(Debug, Clone)]
pub struct Pca {
    components: Vec<Vec<f64>>,
    explained_variance: Vec<f64>,
    total_variance: f64,
}

impl Pca {
    /// Fits exactly `k` principal components of `rows` (observations ×
    /// features). Columns are centred internally (not rescaled — pass
    /// standardized data for correlation-matrix PCA).
    ///
    /// A successful fit always carries `k` components, so callers may
    /// index `components()[k - 1]` without checking. When the matrix's
    /// numerical rank is below `k` — the deflated variance is exhausted
    /// before `k` components are extracted — the fit fails with
    /// [`StatsError::RankDeficient`] naming how many components the data
    /// supports; use [`Pca::fit_up_to`] to accept fewer instead.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty matrix, ragged rows, `k` of zero,
    /// `k` exceeding the feature count, or rank-deficient data
    /// ([`StatsError::RankDeficient`]).
    pub fn fit(rows: &[Vec<f64>], k: usize) -> Result<Self, StatsError> {
        let pca = Self::fit_up_to(rows, k)?;
        if pca.components.len() < k {
            return Err(StatsError::RankDeficient {
                requested: k,
                found: pca.components.len(),
            });
        }
        Ok(pca)
    }

    /// Fits *up to* `k` principal components, stopping early when the
    /// deflated variance is exhausted: rank-deficient data yields
    /// however many components it supports (at least one). This is the
    /// historical behaviour of [`Pca::fit`], now opt-in — check
    /// `components().len()` before indexing.
    ///
    /// # Errors
    ///
    /// Returns an error for an empty matrix, ragged rows, `k` of zero,
    /// `k` exceeding the feature count, or constant (zero-variance)
    /// data.
    pub fn fit_up_to(rows: &[Vec<f64>], k: usize) -> Result<Self, StatsError> {
        if rows.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        let width = rows[0].len();
        if rows.iter().any(|r| r.len() != width) {
            return Err(StatsError::InvalidParameter(
                "feature rows have inconsistent lengths",
            ));
        }
        if k == 0 || k > width {
            return Err(StatsError::InvalidParameter(
                "component count must be in 1..=n_features",
            ));
        }
        let n = rows.len() as f64;

        // Centre.
        let mut mean = vec![0.0; width];
        for row in rows {
            for (m, &v) in mean.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut mean {
            *m /= n;
        }
        let mut centred: Vec<Vec<f64>> = rows
            .iter()
            .map(|row| row.iter().zip(&mean).map(|(&v, &m)| v - m).collect())
            .collect();

        let total_variance = centred
            .iter()
            .flat_map(|r| r.iter().map(|&v| v * v))
            .sum::<f64>()
            / n;

        let mut components = Vec::with_capacity(k);
        let mut explained_variance = Vec::with_capacity(k);
        for comp_idx in 0..k {
            let (component, variance) = power_iteration(&centred, width, comp_idx);
            if variance <= 1e-12 {
                break; // remaining variance exhausted
            }
            // Deflate: remove the component's projection from the data.
            for row in &mut centred {
                let score: f64 = row.iter().zip(&component).map(|(&v, &c)| v * c).sum();
                for (v, &c) in row.iter_mut().zip(&component) {
                    *v -= score * c;
                }
            }
            components.push(component);
            explained_variance.push(variance / n);
        }
        if components.is_empty() {
            return Err(StatsError::InvalidParameter(
                "matrix has no variance to decompose",
            ));
        }
        Ok(Pca {
            components,
            explained_variance,
            total_variance,
        })
    }

    /// The principal components (unit-norm loading vectors), strongest
    /// first.
    pub fn components(&self) -> &[Vec<f64>] {
        &self.components
    }

    /// Variance explained by each component.
    pub fn explained_variance(&self) -> &[f64] {
        &self.explained_variance
    }

    /// Fraction of total variance explained by each component.
    pub fn explained_variance_ratio(&self) -> Vec<f64> {
        self.explained_variance
            .iter()
            .map(|&v| v / self.total_variance.max(1e-300))
            .collect()
    }

    /// A per-feature importance proxy: the sum over components of
    /// `|loading| · explained-variance-ratio`. This is the natural way
    /// to turn PCA output into an event ranking — and the baseline the
    /// paper argues is weaker than model-based importance, because it
    /// ranks events by *data variance*, not by *relevance to
    /// performance*.
    pub fn loading_importance(&self) -> Vec<f64> {
        let ratios = self.explained_variance_ratio();
        let width = self.components[0].len();
        let mut scores = vec![0.0; width];
        for (component, &ratio) in self.components.iter().zip(&ratios) {
            for (s, &l) in scores.iter_mut().zip(component) {
                *s += l.abs() * ratio;
            }
        }
        let total: f64 = scores.iter().sum();
        if total > 0.0 {
            for s in &mut scores {
                *s *= 100.0 / total;
            }
        }
        scores
    }
}

/// Leading eigenvector of the (implicit) covariance matrix via power
/// iteration. Returns `(unit vector, eigenvalue·n)`.
fn power_iteration(centred: &[Vec<f64>], width: usize, salt: usize) -> (Vec<f64>, f64) {
    // Deterministic, non-degenerate start vector.
    let mut v: Vec<f64> = (0..width)
        .map(|i| 1.0 + ((i * 31 + salt * 17) % 97) as f64 / 97.0)
        .collect();
    normalize(&mut v);
    let mut eigenvalue = 0.0;
    for _ in 0..300 {
        // w = Cov · v  computed as  Xᵀ(X v).
        let scores: Vec<f64> = centred
            .iter()
            .map(|row| row.iter().zip(&v).map(|(&x, &c)| x * c).sum())
            .collect();
        let mut w = vec![0.0; width];
        for (row, &s) in centred.iter().zip(&scores) {
            for (acc, &x) in w.iter_mut().zip(row) {
                *acc += x * s;
            }
        }
        let norm = normalize(&mut w);
        let delta: f64 = w.iter().zip(&v).map(|(&a, &b)| (a - b).abs()).sum();
        v = w;
        eigenvalue = norm;
        if delta < 1e-12 {
            break;
        }
    }
    (v, eigenvalue)
}

fn normalize(v: &mut [f64]) -> f64 {
    let norm = v.iter().map(|&x| x * x).sum::<f64>().sqrt();
    if norm > 0.0 {
        for x in v.iter_mut() {
            *x /= norm;
        }
    }
    norm
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// Data stretched along a known direction in 3-D.
    fn anisotropic(n: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let main: f64 = rng.gen_range(-10.0..10.0);
                let minor: f64 = rng.gen_range(-1.0..1.0);
                // Dominant direction (1, 1, 0)/sqrt(2).
                vec![main + minor, main - minor, rng.gen_range(-0.5..0.5)]
            })
            .collect()
    }

    #[test]
    fn recovers_dominant_direction() {
        let data = anisotropic(500, 1);
        let pca = Pca::fit(&data, 2).unwrap();
        let c0 = &pca.components()[0];
        let expected = 1.0 / 2f64.sqrt();
        assert!((c0[0].abs() - expected).abs() < 0.05, "c0 = {c0:?}");
        assert!((c0[1].abs() - expected).abs() < 0.05);
        assert!(c0[2].abs() < 0.1);
        // Leading component dominates the variance.
        let ratios = pca.explained_variance_ratio();
        assert!(ratios[0] > 0.9, "ratios {ratios:?}");
    }

    #[test]
    fn components_are_orthonormal() {
        let data = anisotropic(300, 2);
        let pca = Pca::fit(&data, 3).unwrap();
        for (i, a) in pca.components().iter().enumerate() {
            let norm: f64 = a.iter().map(|&x| x * x).sum();
            assert!((norm - 1.0).abs() < 1e-6, "component {i} not unit");
            for b in &pca.components()[i + 1..] {
                let dot: f64 = a.iter().zip(b).map(|(&x, &y)| x * y).sum();
                assert!(dot.abs() < 1e-3, "components not orthogonal: {dot}");
            }
        }
    }

    #[test]
    fn explained_variance_descends_and_sums_below_total() {
        let data = anisotropic(300, 3);
        let pca = Pca::fit(&data, 3).unwrap();
        let ev = pca.explained_variance();
        for pair in ev.windows(2) {
            assert!(pair[0] >= pair[1] - 1e-9);
        }
        let ratios = pca.explained_variance_ratio();
        let sum: f64 = ratios.iter().sum();
        assert!(sum <= 1.0 + 1e-6);
        assert!(sum > 0.95); // 3 of 3 components = all variance
    }

    #[test]
    fn loading_importance_tracks_variance_not_relevance() {
        // The high-variance feature wins regardless of any target —
        // exactly the weakness the paper points out.
        let mut rng = StdRng::seed_from_u64(4);
        let data: Vec<Vec<f64>> = (0..400)
            .map(|_| vec![rng.gen_range(-100.0..100.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let pca = Pca::fit(&data, 2).unwrap();
        let imp = pca.loading_importance();
        assert!(imp[0] > imp[1]);
        assert!((imp.iter().sum::<f64>() - 100.0).abs() < 1e-6);
    }

    #[test]
    fn validates_inputs() {
        assert!(Pca::fit(&[], 1).is_err());
        assert!(Pca::fit(&[vec![1.0], vec![1.0, 2.0]], 1).is_err());
        assert!(Pca::fit(&[vec![1.0, 2.0]], 0).is_err());
        assert!(Pca::fit(&[vec![1.0, 2.0]], 3).is_err());
        // Constant data has no variance.
        let constant = vec![vec![5.0, 5.0]; 10];
        assert!(Pca::fit(&constant, 1).is_err());
    }

    /// Regression: `fit` used to silently return fewer than `k`
    /// components on rank-deficient data (it `break`s at the `1e-12`
    /// deflated-variance guard), so callers indexing
    /// `components()[k - 1]` panicked. It must now report the actual
    /// rank in a typed error.
    #[test]
    fn rank_deficient_fit_is_a_typed_error() {
        // Rank-1 data: only one direction of variance exists.
        let data: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, 2.0 * i as f64, -i as f64])
            .collect();
        assert_eq!(
            Pca::fit(&data, 3).unwrap_err(),
            StatsError::RankDeficient {
                requested: 3,
                found: 1,
            }
        );
        // Asking for what the rank supports still succeeds.
        assert_eq!(Pca::fit(&data, 1).unwrap().components().len(), 1);
    }

    #[test]
    fn fit_up_to_truncates_at_the_rank() {
        let data: Vec<Vec<f64>> = (0..50)
            .map(|i| vec![i as f64, 2.0 * i as f64, -i as f64])
            .collect();
        let pca = Pca::fit_up_to(&data, 3).unwrap();
        assert_eq!(pca.components().len(), 1);
        // Full-rank data still yields all k under both entry points.
        let full = anisotropic(300, 9);
        assert_eq!(Pca::fit_up_to(&full, 3).unwrap().components().len(), 3);
        assert_eq!(Pca::fit(&full, 3).unwrap().components().len(), 3);
    }
}
