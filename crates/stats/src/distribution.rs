use rand::Rng;

/// A continuous univariate probability distribution.
///
/// All four distributions in this crate ([`Normal`], [`Gev`], [`Gumbel`],
/// [`Logistic`]) implement this trait; the Anderson–Darling test and the
/// workload simulator are generic over it.
///
/// Sampling uses inverse-transform via [`Distribution::quantile`], so
/// implementors only need an accurate quantile function.
///
/// [`Normal`]: crate::Normal
/// [`Gev`]: crate::Gev
/// [`Gumbel`]: crate::Gumbel
/// [`Logistic`]: crate::Logistic
pub trait Distribution {
    /// Probability density at `x`.
    fn pdf(&self, x: f64) -> f64;

    /// Cumulative distribution function `P(X <= x)`.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile (inverse CDF) at probability `p` in `(0, 1)`.
    ///
    /// # Panics
    ///
    /// Implementations may panic when `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Distribution mean.
    fn mean(&self) -> f64;

    /// Distribution variance.
    fn variance(&self) -> f64;

    /// Draws one sample using inverse-transform sampling.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64
    where
        Self: Sized,
    {
        // gen() yields [0, 1); nudge away from 0 where quantiles diverge.
        let u: f64 = rng.gen::<f64>().max(1e-16);
        self.quantile(u.min(1.0 - 1e-16))
    }
}
