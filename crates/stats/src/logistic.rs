use crate::descriptive;
use crate::distribution::Distribution;
use crate::StatsError;

/// Logistic distribution — one of the long-tail candidates the paper
/// tested (and rejected in favour of GEV) when classifying event value
/// distributions.
///
/// # Examples
///
/// ```
/// use cm_stats::{Distribution, Logistic};
///
/// let l = Logistic::new(0.0, 1.0)?;
/// assert!((l.cdf(0.0) - 0.5).abs() < 1e-12);
/// assert!((l.quantile(0.75) - 3f64.ln()).abs() < 1e-12);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Logistic {
    mu: f64,
    s: f64,
}

impl Logistic {
    /// Creates a logistic distribution with location `mu` and scale `s`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `s > 0` and both
    /// parameters are finite.
    pub fn new(mu: f64, s: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() || !s.is_finite() || s <= 0.0 {
            return Err(StatsError::InvalidParameter(
                "logistic requires finite mu and s > 0",
            ));
        }
        Ok(Logistic { mu, s })
    }

    /// Fits by the method of moments: `s = std·sqrt(3)/pi`.
    ///
    /// # Errors
    ///
    /// Returns an error for fewer than two values or zero-variance data.
    pub fn fit(data: &[f64]) -> Result<Self, StatsError> {
        if data.len() < 2 {
            return Err(StatsError::NotEnoughData {
                required: 2,
                available: data.len(),
            });
        }
        let m = descriptive::mean(data)?;
        let sd = descriptive::std_dev(data)?;
        Logistic::new(m, sd * 3f64.sqrt() / std::f64::consts::PI)
    }

    /// Location parameter (mean and median).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter.
    pub fn s(&self) -> f64 {
        self.s
    }
}

impl Distribution for Logistic {
    fn pdf(&self, x: f64) -> f64 {
        let z = ((x - self.mu) / self.s).exp();
        z / (self.s * (1.0 + z) * (1.0 + z))
    }

    fn cdf(&self, x: f64) -> f64 {
        1.0 / (1.0 + (-(x - self.mu) / self.s).exp())
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
        self.mu + self.s * (p / (1.0 - p)).ln()
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        let pi = std::f64::consts::PI;
        self.s * self.s * pi * pi / 3.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Logistic::new(0.0, 0.0).is_err());
        assert!(Logistic::new(f64::NAN, 1.0).is_err());
    }

    #[test]
    fn quantile_inverts_cdf() {
        let l = Logistic::new(-1.0, 0.4).unwrap();
        for p in [0.05, 0.3, 0.5, 0.9, 0.999] {
            assert!((l.cdf(l.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn pdf_is_symmetric_around_mu() {
        let l = Logistic::new(2.0, 1.3).unwrap();
        for d in [0.1, 1.0, 3.0] {
            assert!((l.pdf(2.0 + d) - l.pdf(2.0 - d)).abs() < 1e-12);
        }
    }

    #[test]
    fn fit_recovers_parameters() {
        let truth = Logistic::new(7.0, 1.5).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let data: Vec<f64> = (0..30_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = Logistic::fit(&data).unwrap();
        assert!((fitted.mu() - 7.0).abs() < 0.1);
        assert!((fitted.s() - 1.5).abs() < 0.1);
    }

    #[test]
    fn variance_formula() {
        let l = Logistic::new(0.0, 2.0).unwrap();
        let pi = std::f64::consts::PI;
        assert!((l.variance() - 4.0 * pi * pi / 3.0).abs() < 1e-12);
    }
}
