//! Descriptive statistics and the paper's histogram-interval rule (Eq. 7).

use crate::StatsError;

/// Order statistics are meaningless over NaN: `total_cmp` sorts NaN
/// after every number (silently shifting the median or a quantile) and
/// `f64::min`/`f64::max` silently skip it. All four order-statistic
/// entry points reject NaN with a typed error instead.
fn reject_nan(data: &[f64]) -> Result<(), StatsError> {
    if data.iter().any(|v| v.is_nan()) {
        return Err(StatsError::InvalidParameter(
            "order statistics are undefined over NaN input",
        ));
    }
    Ok(())
}

/// Arithmetic mean.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(cm_stats::descriptive::mean(&[1.0, 2.0, 3.0])?, 2.0);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
pub fn mean(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    Ok(data.iter().sum::<f64>() / data.len() as f64)
}

/// Population variance (divides by `n`).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
pub fn population_variance(data: &[f64]) -> Result<f64, StatsError> {
    let m = mean(data)?;
    Ok(data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / data.len() as f64)
}

/// Sample variance (divides by `n - 1`).
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for fewer than two values.
pub fn sample_variance(data: &[f64]) -> Result<f64, StatsError> {
    if data.len() < 2 {
        return Err(StatsError::NotEnoughData {
            required: 2,
            available: data.len(),
        });
    }
    let m = mean(data)?;
    Ok(data.iter().map(|&x| (x - m) * (x - m)).sum::<f64>() / (data.len() - 1) as f64)
}

/// Population standard deviation.
///
/// This is the `std` used in the paper's outlier threshold
/// `threshold = mean + n · std` (Eq. 6).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
pub fn std_dev(data: &[f64]) -> Result<f64, StatsError> {
    Ok(population_variance(data)?.sqrt())
}

/// Median of the data (average of the middle pair for even lengths).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice, or
/// [`StatsError::InvalidParameter`] when the data contains NaN.
///
/// # Examples
///
/// ```
/// assert_eq!(cm_stats::descriptive::median(&[3.0, 1.0, 2.0])?, 2.0);
/// assert_eq!(cm_stats::descriptive::median(&[4.0, 1.0, 2.0, 3.0])?, 2.5);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
pub fn median(data: &[f64]) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    reject_nan(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let n = sorted.len();
    if n % 2 == 1 {
        Ok(sorted[n / 2])
    } else {
        Ok((sorted[n / 2 - 1] + sorted[n / 2]) / 2.0)
    }
}

/// Empirical quantile with linear interpolation (type-7, the NumPy
/// default), `q` in `[0, 1]`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice, or
/// [`StatsError::InvalidParameter`] when `q` is outside `[0, 1]` or the
/// data contains NaN.
pub fn quantile(data: &[f64], q: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if !(0.0..=1.0).contains(&q) {
        return Err(StatsError::InvalidParameter("quantile must be in [0, 1]"));
    }
    reject_nan(data)?;
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Ok(sorted[lo] + frac * (sorted[hi] - sorted[lo]))
}

/// Minimum value.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice, or
/// [`StatsError::InvalidParameter`] when the data contains NaN.
pub fn min(data: &[f64]) -> Result<f64, StatsError> {
    reject_nan(data)?;
    data.iter()
        .copied()
        .reduce(f64::min)
        .ok_or(StatsError::EmptyInput)
}

/// Maximum value.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice, or
/// [`StatsError::InvalidParameter`] when the data contains NaN.
pub fn max(data: &[f64]) -> Result<f64, StatsError> {
    reject_nan(data)?;
    data.iter()
        .copied()
        .reduce(f64::max)
        .ok_or(StatsError::EmptyInput)
}

/// Histogram interval length of Eq. 7:
///
/// ```text
/// L = (max - min) / roundup(sqrt(count))
/// ```
///
/// The paper replaces an outlier with the median of the histogram
/// interval the outlier falls into; this is the interval width.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
///
/// # Examples
///
/// ```
/// // 16 values spanning [0, 8] -> sqrt(16) = 4 intervals of width 2.
/// let data: Vec<f64> = (0..16).map(|i| i as f64 * 8.0 / 15.0).collect();
/// let len = cm_stats::descriptive::interval_length(&data)?;
/// assert!((len - 2.0).abs() < 1e-12);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
pub fn interval_length(data: &[f64]) -> Result<f64, StatsError> {
    let lo = min(data)?;
    let hi = max(data)?;
    let bins = (data.len() as f64).sqrt().ceil();
    Ok((hi - lo) / bins)
}

/// Equal-width histogram: returns `(bin_edges, counts)` with
/// `bins + 1` edges and `bins` counts. Values on an interior edge fall
/// into the right bin; the maximum falls into the last bin.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice or
/// [`StatsError::InvalidParameter`] for zero bins.
///
/// # Examples
///
/// ```
/// let (edges, counts) = cm_stats::descriptive::histogram(&[0.0, 1.0, 2.0, 3.0], 2)?;
/// assert_eq!(edges, vec![0.0, 1.5, 3.0]);
/// assert_eq!(counts, vec![2, 2]);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
pub fn histogram(data: &[f64], bins: usize) -> Result<(Vec<f64>, Vec<usize>), StatsError> {
    if bins == 0 {
        return Err(StatsError::InvalidParameter("need at least one bin"));
    }
    let lo = min(data)?;
    let hi = max(data)?;
    let width = ((hi - lo) / bins as f64).max(f64::MIN_POSITIVE);
    let edges: Vec<f64> = (0..=bins).map(|i| lo + width * i as f64).collect();
    let mut counts = vec![0usize; bins];
    for &v in data {
        let mut bin = ((v - lo) / width) as usize;
        if bin >= bins {
            bin = bins - 1;
        }
        counts[bin] += 1;
    }
    Ok((edges, counts))
}

/// Fraction of `data` that is `<= threshold`, in `[0, 1]`.
///
/// Used to pick the outlier-control variable `n` in Eq. 6 (Table I of the
/// paper reports these fractions for n = 3..7).
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] for an empty slice.
pub fn fraction_within(data: &[f64], threshold: f64) -> Result<f64, StatsError> {
    if data.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let within = data.iter().filter(|&&x| x <= threshold).count();
    Ok(within as f64 / data.len() as f64)
}

/// Sample autocorrelation function up to `max_lag`: `acf[k]` is the
/// lag-`k` autocorrelation (so `acf[0] == 1`). Used to diagnose the
/// workload simulator's AR and phase structure.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] unless the series is longer
/// than `max_lag + 1`, and [`StatsError::InvalidParameter`] for
/// zero-variance data.
///
/// # Examples
///
/// ```
/// // An alternating series has acf[1] = -1.
/// let data: Vec<f64> = (0..64).map(|i| if i % 2 == 0 { 1.0 } else { -1.0 }).collect();
/// let acf = cm_stats::descriptive::autocorrelation(&data, 2)?;
/// assert!((acf[0] - 1.0).abs() < 1e-12);
/// assert!(acf[1] < -0.9);
/// assert!(acf[2] > 0.9);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
pub fn autocorrelation(data: &[f64], max_lag: usize) -> Result<Vec<f64>, StatsError> {
    if data.len() <= max_lag + 1 {
        return Err(StatsError::NotEnoughData {
            required: max_lag + 2,
            available: data.len(),
        });
    }
    let m = mean(data)?;
    let var: f64 = data.iter().map(|&x| (x - m) * (x - m)).sum();
    if var == 0.0 {
        return Err(StatsError::InvalidParameter(
            "autocorrelation undefined for constant data",
        ));
    }
    let mut acf = Vec::with_capacity(max_lag + 1);
    for lag in 0..=max_lag {
        let cov: f64 = data
            .windows(lag + 1)
            .map(|w| (w[0] - m) * (w[lag] - m))
            .sum();
        acf.push(cov / var);
    }
    Ok(acf)
}

/// Skewness (Fisher, population form). Zero for symmetric data.
///
/// # Errors
///
/// Returns [`StatsError::NotEnoughData`] for fewer than three values or
/// [`StatsError::InvalidParameter`] when the data has zero variance.
pub fn skewness(data: &[f64]) -> Result<f64, StatsError> {
    if data.len() < 3 {
        return Err(StatsError::NotEnoughData {
            required: 3,
            available: data.len(),
        });
    }
    let m = mean(data)?;
    let sd = std_dev(data)?;
    if sd == 0.0 {
        return Err(StatsError::InvalidParameter(
            "skewness undefined for constant data",
        ));
    }
    let n = data.len() as f64;
    Ok(data.iter().map(|&x| ((x - m) / sd).powi(3)).sum::<f64>() / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let data = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&data).unwrap(), 5.0);
        assert_eq!(population_variance(&data).unwrap(), 4.0);
        assert_eq!(std_dev(&data).unwrap(), 2.0);
        assert!((sample_variance(&data).unwrap() - 32.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn empty_inputs_error() {
        assert_eq!(mean(&[]), Err(StatsError::EmptyInput));
        assert_eq!(median(&[]), Err(StatsError::EmptyInput));
        assert_eq!(min(&[]), Err(StatsError::EmptyInput));
        assert_eq!(max(&[]), Err(StatsError::EmptyInput));
        assert_eq!(interval_length(&[]), Err(StatsError::EmptyInput));
        assert_eq!(fraction_within(&[], 1.0), Err(StatsError::EmptyInput));
    }

    #[test]
    fn quantile_interpolates() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 4.0);
        assert_eq!(quantile(&data, 0.5).unwrap(), 2.5);
        assert!(quantile(&data, 1.5).is_err());
    }

    #[test]
    fn median_single_value() {
        assert_eq!(median(&[42.0]).unwrap(), 42.0);
    }

    /// Regression: the order statistics used to *misplace* NaN instead
    /// of rejecting it — `total_cmp` sorts NaN last, so
    /// `median(&[1, NaN, 2])` returned `2.0`, and `min`/`max` silently
    /// skipped NaN via the `f64::min`/`f64::max` reduction. Garbage
    /// order statistics poison every downstream distance; NaN must be a
    /// typed error.
    #[test]
    fn order_statistics_reject_nan() {
        let poisoned = [1.0, f64::NAN, 2.0];
        for result in [
            median(&poisoned),
            quantile(&poisoned, 0.5),
            min(&poisoned),
            max(&poisoned),
        ] {
            assert_eq!(
                result,
                Err(StatsError::InvalidParameter(
                    "order statistics are undefined over NaN input"
                ))
            );
        }
        // Infinities are ordered fine and stay accepted.
        let inf = [f64::NEG_INFINITY, 0.0, f64::INFINITY];
        assert_eq!(min(&inf).unwrap(), f64::NEG_INFINITY);
        assert_eq!(max(&inf).unwrap(), f64::INFINITY);
        assert_eq!(median(&inf).unwrap(), 0.0);
    }

    #[test]
    fn fraction_within_counts_inclusive() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(fraction_within(&data, 2.0).unwrap(), 0.5);
        assert_eq!(fraction_within(&data, 0.0).unwrap(), 0.0);
        assert_eq!(fraction_within(&data, 10.0).unwrap(), 1.0);
    }

    #[test]
    fn interval_length_rounds_bins_up() {
        // 5 values -> sqrt(5) = 2.23 -> 3 bins.
        let data = [0.0, 1.0, 2.0, 3.0, 6.0];
        assert!((interval_length(&data).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn autocorrelation_of_ar1_decays_geometrically() {
        // x[t] = 0.8 x[t-1] + e[t] has acf[k] ~ 0.8^k.
        let mut x = 0.0;
        let mut data = Vec::with_capacity(4000);
        let mut state = 12345u64;
        for _ in 0..4000 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let e = ((state >> 33) as f64 / (1u64 << 31) as f64) - 1.0;
            x = 0.8 * x + e;
            data.push(x);
        }
        let acf = autocorrelation(&data, 3).unwrap();
        assert!((acf[1] - 0.8).abs() < 0.05, "acf[1] = {}", acf[1]);
        assert!((acf[2] - 0.64).abs() < 0.08, "acf[2] = {}", acf[2]);
    }

    #[test]
    fn autocorrelation_validates() {
        assert!(autocorrelation(&[1.0, 2.0], 3).is_err());
        assert!(autocorrelation(&[5.0; 32], 2).is_err());
    }

    #[test]
    fn histogram_counts_everything_once() {
        let data: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let (edges, counts) = histogram(&data, 10).unwrap();
        assert_eq!(edges.len(), 11);
        assert_eq!(counts.iter().sum::<usize>(), 100);
        assert!(counts.iter().all(|&c| c == 10));
        // Degenerate constant data lands in one bin.
        let (_, counts) = histogram(&[5.0; 7], 3).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 7);
        assert!(histogram(&[], 3).is_err());
        assert!(histogram(&[1.0], 0).is_err());
    }

    #[test]
    fn skewness_sign() {
        let right_tail = [1.0, 1.0, 1.0, 2.0, 10.0];
        assert!(skewness(&right_tail).unwrap() > 0.5);
        let symmetric = [-2.0, -1.0, 0.0, 1.0, 2.0];
        assert!(skewness(&symmetric).unwrap().abs() < 1e-12);
        assert!(skewness(&[1.0, 1.0, 1.0]).is_err());
    }
}
