//! Dynamic time warping (DTW) distance between numeric series.
//!
//! The paper measures the error of multiplexed counter series with DTW
//! (Eqs. 1–4) because different runs of the same program produce series
//! of *different lengths* — pointwise distances (Euclidean, Manhattan)
//! do not apply. DTW warps the time axes of both series to find the
//! alignment minimizing accumulated pointwise cost.
//!
//! Two variants are provided: [`distance`] (exact, `O(n·m)` time with
//! `O(min(n,m))` memory) and [`distance_banded`] (Sakoe–Chiba band,
//! faster for long, roughly aligned series).

/// Exact DTW distance with absolute-difference local cost.
///
/// Returns `f64::INFINITY` if exactly one input is empty, and `0.0` when
/// both are empty.
///
/// # Examples
///
/// ```
/// use cm_stats::dtw::distance;
///
/// // A time-shifted copy aligns perfectly.
/// let a = [0.0, 1.0, 2.0, 1.0, 0.0];
/// let b = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0];
/// assert_eq!(distance(&a, &b), 0.0);
/// ```
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    // Keep the shorter series in the inner dimension to minimize memory.
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let m = inner.len();
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for &x in outer {
        curr[0] = f64::INFINITY;
        for j in 1..=m {
            let cost = (x - inner[j - 1]).abs();
            curr[j] = cost + prev[j].min(curr[j - 1]).min(prev[j - 1]);
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// DTW distance constrained to a Sakoe–Chiba band of half-width `radius`
/// around the (length-normalized) diagonal.
///
/// With a radius of at least `|a.len() - b.len()|` plus the true
/// alignment spread, this equals [`distance`]; smaller radii trade
/// accuracy for speed. The band is automatically widened to at least the
/// length difference so a path always exists.
///
/// Returns `f64::INFINITY` if exactly one input is empty.
pub fn distance_banded(a: &[f64], b: &[f64], radius: usize) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    let n = a.len();
    let m = b.len();
    let radius = radius.max(n.abs_diff(m));
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    prev[0] = 0.0;
    for i in 1..=n {
        // Project row i onto the diagonal of the (possibly rectangular)
        // grid and take the band around it.
        let center = i * m / n;
        let lo = center.saturating_sub(radius).max(1);
        let hi = (center + radius).min(m);
        curr.fill(f64::INFINITY);
        // The DP origin prev[0] = 0 is only reachable diagonally from
        // (1, 1); curr[0] stays infinite so later rows cannot skip
        // matching earlier samples.
        for j in lo..=hi {
            let cost = (a[i - 1] - b[j - 1]).abs();
            let best = prev[j].min(curr[j - 1]).min(prev[j - 1]);
            curr[j] = cost + best;
        }
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Normalized DTW distance: [`distance`] divided by the warping-path
/// upper-bound length `a.len() + b.len()`, giving a per-step cost that is
/// comparable across series lengths.
pub fn normalized_distance(a: &[f64], b: &[f64]) -> f64 {
    let d = distance(a, b);
    if a.is_empty() && b.is_empty() {
        0.0
    } else {
        d / (a.len() + b.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_have_zero_distance() {
        let a = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn empty_handling() {
        assert_eq!(distance(&[], &[]), 0.0);
        assert_eq!(distance(&[1.0], &[]), f64::INFINITY);
        assert_eq!(distance_banded(&[], &[1.0], 3), f64::INFINITY);
        assert_eq!(normalized_distance(&[], &[]), 0.0);
    }

    #[test]
    fn warping_absorbs_time_stretch() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let stretched = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert_eq!(distance(&a, &stretched), 0.0);
    }

    #[test]
    fn known_small_case() {
        // Classic hand-computable case.
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 2.0, 2.0, 3.0, 4.0];
        // Alignment: 1-2 (1), 2-2 (0), 2-2 (0), 3-3 (0), 3-4 (1) = 2.
        assert_eq!(distance(&a, &b), 2.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.0, 5.0, 2.0, 8.0, 3.0];
        let b = [2.0, 4.0, 4.0, 7.0];
        assert_eq!(distance(&a, &b), distance(&b, &a));
    }

    #[test]
    fn banded_with_large_radius_equals_exact() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.25).sin() + 0.1).collect();
        let exact = distance(&a, &b);
        let banded = distance_banded(&a, &b, 60);
        assert!((exact - banded).abs() < 1e-12);
    }

    #[test]
    fn banded_is_upper_bound_of_exact() {
        let a: Vec<f64> = (0..80).map(|i| ((i * 7919) % 13) as f64).collect();
        let b: Vec<f64> = (0..70).map(|i| ((i * 104729) % 17) as f64).collect();
        let exact = distance(&a, &b);
        for radius in [5, 10, 20, 40] {
            let banded = distance_banded(&a, &b, radius);
            assert!(
                banded >= exact - 1e-9,
                "radius {radius}: banded {banded} < exact {exact}"
            );
        }
    }

    #[test]
    fn normalized_distance_scales_down() {
        let a = [0.0; 10];
        let b = [1.0; 10];
        assert!((distance(&a, &b) - 10.0).abs() < 1e-12);
        assert!((normalized_distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_element_series() {
        assert_eq!(distance(&[3.0], &[5.0]), 2.0);
        assert_eq!(distance(&[3.0], &[5.0, 4.0]), 3.0);
    }
}
