//! Dynamic time warping (DTW) distance between numeric series.
//!
//! The paper measures the error of multiplexed counter series with DTW
//! (Eqs. 1–4) because different runs of the same program produce series
//! of *different lengths* — pointwise distances (Euclidean, Manhattan)
//! do not apply. DTW warps the time axes of both series to find the
//! alignment minimizing accumulated pointwise cost.
//!
//! Two variants are provided: [`distance`] (exact, `O(n·m)` time with
//! `O(min(n,m))` memory) and [`distance_banded`] (Sakoe–Chiba band,
//! faster for long, roughly aligned series).
//!
//! The plain functions keep the classical convention of returning
//! `f64::INFINITY` for a half-empty pair (and propagate NaN from NaN
//! inputs); [`try_distance`] and [`try_distance_banded`] instead reject
//! degenerate inputs with a typed [`StatsError`], which is what the
//! pipeline uses so garbage series can never masquerade as "infinitely
//! far" measurements.

use crate::StatsError;

/// One DP row update over the band `[lo, hi]` (1-based columns), split
/// into two passes so the hot part autovectorizes.
///
/// Pass 1 has no loop-carried dependency: it computes the local cost
/// `|aᵢ − bⱼ|` and the best *vertical/diagonal* predecessor
/// `min(prev[j], prev[j-1]) + cost` for the whole band — four equal
/// length flat slices, branch-free `f64::min`, so LLVM turns it into
/// SIMD lanes. Pass 2 resolves the *horizontal* recurrence
/// `curr[j] = min(diag[j], cost[j] + curr[j-1])`, a short scalar chain
/// with one min and one add per cell.
///
/// This is bit-identical to the classical single-pass update
/// `cost + min(prev[j], curr[j-1], prev[j-1])`: `f64::min` here is
/// associative/commutative (DP values are never `-0.0` — costs are
/// `abs()` results and sums of non-negative values — and NaN is ignored
/// symmetrically), and `min(x, y) + c == min(x + c, y + c)` exactly
/// (IEEE addition is monotone and cannot map distinct finite operands
/// to differently-rounded sums when the same `c` is added).
///
/// The caller must have `curr[lo - 1]` and `prev[lo - 1..=hi]` hold the
/// correct DP values (∞ outside the reachable region).
#[inline]
#[allow(clippy::too_many_arguments)] // hot kernel: scratch rows passed flat, no struct indirection
fn dtw_row(
    ai: f64,
    b: &[f64],
    prev: &[f64],
    curr: &mut [f64],
    cost: &mut [f64],
    diag: &mut [f64],
    lo: usize,
    hi: usize,
) {
    let w = hi - lo + 1;
    let bs = &b[lo - 1..hi];
    let pj = &prev[lo..hi + 1];
    let pj1 = &prev[lo - 1..hi];
    let cost = &mut cost[..w];
    let diag = &mut diag[..w];
    for k in 0..w {
        let c = (ai - bs[k]).abs();
        cost[k] = c;
        diag[k] = pj[k].min(pj1[k]) + c;
    }
    let mut wave = curr[lo - 1];
    let cu = &mut curr[lo..hi + 1];
    for k in 0..w {
        wave = diag[k].min(cost[k] + wave);
        cu[k] = wave;
    }
}

/// Exact DTW distance with absolute-difference local cost.
///
/// Returns `f64::INFINITY` if exactly one input is empty, and `0.0` when
/// both are empty.
///
/// # Examples
///
/// ```
/// use cm_stats::dtw::distance;
///
/// // A time-shifted copy aligns perfectly.
/// let a = [0.0, 1.0, 2.0, 1.0, 0.0];
/// let b = [0.0, 0.0, 1.0, 2.0, 1.0, 0.0];
/// assert_eq!(distance(&a, &b), 0.0);
/// ```
pub fn distance(a: &[f64], b: &[f64]) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    // Keep the shorter series in the inner dimension to minimize memory.
    let (outer, inner) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let m = inner.len();
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    let mut cost = vec![0.0; m];
    let mut diag = vec![0.0; m];
    prev[0] = 0.0;
    for &x in outer {
        curr[0] = f64::INFINITY;
        dtw_row(x, inner, &prev, &mut curr, &mut cost, &mut diag, 1, m);
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// DTW distance constrained to a Sakoe–Chiba band of half-width `radius`
/// around the (length-normalized) diagonal.
///
/// With a radius of at least `|a.len() - b.len()|` plus the true
/// alignment spread, this equals [`distance`]; smaller radii trade
/// accuracy for speed. The band is automatically widened to at least the
/// length difference so a path always exists.
///
/// Returns `f64::INFINITY` if exactly one input is empty.
pub fn distance_banded(a: &[f64], b: &[f64], radius: usize) -> f64 {
    distance_banded_bounded(a, b, radius, f64::INFINITY)
}

/// [`distance_banded`] with *early abandon*: returns `f64::INFINITY` as
/// soon as the distance provably exceeds `bound`.
///
/// Local costs are non-negative and every warping path visits at least
/// one cell of every row, so the minimum accumulated cost within a row's
/// band is a lower bound on the final distance — once it exceeds
/// `bound`, no path can come in under it. Nearest-neighbor search (and
/// any best-of-many scan) uses the running best as the bound to skip
/// most of the DP grid.
pub fn distance_banded_bounded(a: &[f64], b: &[f64], radius: usize, bound: f64) -> f64 {
    match (a.is_empty(), b.is_empty()) {
        (true, true) => return 0.0,
        (true, false) | (false, true) => return f64::INFINITY,
        _ => {}
    }
    let n = a.len();
    let m = b.len();
    // Widen the band to at least the length difference so a warping path
    // always exists, however narrow the caller's radius.
    let radius = radius.max(n.abs_diff(m));
    let mut prev = vec![f64::INFINITY; m + 1];
    let mut curr = vec![f64::INFINITY; m + 1];
    let mut cost = vec![0.0; m];
    let mut diag = vec![0.0; m];
    prev[0] = 0.0;
    // Cells outside the band are ∞, but refilling the whole row every
    // iteration costs O(m) per row — more than the band update itself
    // for narrow bands. The band edges are monotone in `i` (`center` is
    // nondecreasing, `radius` fixed), so stale cells left of `lo` are
    // never read again and only the strip the band newly *grew into* on
    // the right needs re-infinitizing. `prev_hi` tracks how far the
    // previous row is valid (the initial row is fully initialized).
    let mut prev_hi = m;
    for i in 1..=n {
        // Project row i onto the diagonal of the (possibly rectangular)
        // grid and take the band around it.
        let center = i * m / n;
        let lo = center.saturating_sub(radius).max(1);
        let hi = center.saturating_add(radius).min(m);
        if prev_hi < hi {
            for p in &mut prev[prev_hi + 1..=hi] {
                *p = f64::INFINITY;
            }
        }
        // The DP origin prev[0] = 0 is only reachable diagonally from
        // (1, 1); curr[lo - 1] stays infinite so later rows cannot skip
        // matching earlier samples.
        curr[lo - 1] = f64::INFINITY;
        dtw_row(a[i - 1], b, &prev, &mut curr, &mut cost, &mut diag, lo, hi);
        let row_min = curr[lo..=hi].iter().copied().fold(f64::INFINITY, f64::min);
        if row_min > bound {
            return f64::INFINITY;
        }
        prev_hi = hi;
        std::mem::swap(&mut prev, &mut curr);
    }
    prev[m]
}

/// Validates a DTW input pair for the `try_` entry points.
fn validate_pair(a: &[f64], b: &[f64]) -> Result<(), StatsError> {
    if a.is_empty() || b.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    if a.iter().chain(b.iter()).any(|v| !v.is_finite()) {
        return Err(StatsError::InvalidParameter(
            "DTW input contains a non-finite sample",
        ));
    }
    Ok(())
}

/// [`distance`] with typed input validation: empty series and series
/// containing NaN or infinities are rejected instead of surfacing as an
/// infinite (or NaN) "distance" that silently poisons downstream
/// aggregates.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when either series is empty and
/// [`StatsError::InvalidParameter`] when either contains a non-finite
/// sample.
///
/// # Examples
///
/// ```
/// use cm_stats::dtw::try_distance;
///
/// assert_eq!(try_distance(&[1.0, 2.0], &[1.0, 2.0])?, 0.0);
/// assert!(try_distance(&[], &[1.0]).is_err());
/// assert!(try_distance(&[f64::NAN], &[1.0]).is_err());
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
pub fn try_distance(a: &[f64], b: &[f64]) -> Result<f64, StatsError> {
    validate_pair(a, b)?;
    Ok(distance(a, b))
}

/// [`distance_banded`] with typed input validation (see
/// [`try_distance`]). The band is widened to at least
/// `|a.len() - b.len()|` exactly as in [`distance_banded`], so a
/// too-narrow radius is never an error — only degenerate *data* is.
///
/// # Errors
///
/// As for [`try_distance`].
pub fn try_distance_banded(a: &[f64], b: &[f64], radius: usize) -> Result<f64, StatsError> {
    validate_pair(a, b)?;
    Ok(distance_banded(a, b, radius))
}

/// Exact DTW distances for a batch of series pairs, fanned out across
/// the [`cm_par`] thread pool. Element `i` of the result is
/// `distance(pairs[i].0, pairs[i].1)` — identical to the sequential
/// loop at any thread count.
pub fn distance_batch(pairs: &[(&[f64], &[f64])]) -> Vec<f64> {
    cm_par::map(pairs, |&(a, b)| distance(a, b))
}

/// Banded DTW distances for a batch of series pairs (see
/// [`distance_banded`]), fanned out across the [`cm_par`] thread pool
/// with order-preserving results.
pub fn distance_batch_banded(pairs: &[(&[f64], &[f64])], radius: usize) -> Vec<f64> {
    cm_par::map(pairs, |&(a, b)| distance_banded(a, b, radius))
}

/// Index and banded DTW distance of the candidate closest to `query`,
/// or `None` for an empty candidate set. Ties pick the lowest index.
///
/// Candidates are scanned in parallel sharing a running best distance
/// (an atomic CAS-min over the f64 bit pattern, valid because DTW
/// distances are non-negative) that feeds
/// [`distance_banded_bounded`]'s early abandon. The true nearest
/// candidate's per-row lower bounds never exceed the shared bound, so it
/// is always computed exactly — the winner is schedule-independent.
pub fn nearest_neighbor(
    query: &[f64],
    candidates: &[Vec<f64>],
    radius: usize,
) -> Option<(usize, f64)> {
    use std::sync::atomic::{AtomicU64, Ordering};
    if candidates.is_empty() {
        return None;
    }
    let best = AtomicU64::new(f64::INFINITY.to_bits());
    let distances = cm_par::map(candidates, |c| {
        let bound = f64::from_bits(best.load(Ordering::Relaxed));
        let d = distance_banded_bounded(query, c, radius, bound);
        let mut seen = best.load(Ordering::Relaxed);
        while d.to_bits() < seen {
            match best.compare_exchange_weak(
                seen,
                d.to_bits(),
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(now) => seen = now,
            }
        }
        d
    });
    let mut winner = 0usize;
    for (i, &d) in distances.iter().enumerate() {
        if d < distances[winner] {
            winner = i;
        }
    }
    Some((winner, distances[winner]))
}

/// Normalized DTW distance: [`distance`] divided by the warping-path
/// upper-bound length `a.len() + b.len()`, giving a per-step cost that is
/// comparable across series lengths.
pub fn normalized_distance(a: &[f64], b: &[f64]) -> f64 {
    let d = distance(a, b);
    if a.is_empty() && b.is_empty() {
        0.0
    } else {
        d / (a.len() + b.len()) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_series_have_zero_distance() {
        let a = [1.0, 3.0, 2.0, 5.0];
        assert_eq!(distance(&a, &a), 0.0);
    }

    #[test]
    fn empty_handling() {
        assert_eq!(distance(&[], &[]), 0.0);
        assert_eq!(distance(&[1.0], &[]), f64::INFINITY);
        assert_eq!(distance_banded(&[], &[1.0], 3), f64::INFINITY);
        assert_eq!(normalized_distance(&[], &[]), 0.0);
    }

    #[test]
    fn warping_absorbs_time_stretch() {
        let a = [0.0, 1.0, 2.0, 3.0];
        let stretched = [0.0, 0.0, 1.0, 1.0, 2.0, 2.0, 3.0, 3.0];
        assert_eq!(distance(&a, &stretched), 0.0);
    }

    #[test]
    fn known_small_case() {
        // Classic hand-computable case.
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 2.0, 2.0, 3.0, 4.0];
        // Alignment: 1-2 (1), 2-2 (0), 2-2 (0), 3-3 (0), 3-4 (1) = 2.
        assert_eq!(distance(&a, &b), 2.0);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = [1.0, 5.0, 2.0, 8.0, 3.0];
        let b = [2.0, 4.0, 4.0, 7.0];
        assert_eq!(distance(&a, &b), distance(&b, &a));
    }

    #[test]
    fn banded_with_large_radius_equals_exact() {
        let a: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let b: Vec<f64> = (0..60).map(|i| (i as f64 * 0.25).sin() + 0.1).collect();
        let exact = distance(&a, &b);
        let banded = distance_banded(&a, &b, 60);
        assert!((exact - banded).abs() < 1e-12);
    }

    #[test]
    fn banded_is_upper_bound_of_exact() {
        let a: Vec<f64> = (0..80).map(|i| ((i * 7919) % 13) as f64).collect();
        let b: Vec<f64> = (0..70).map(|i| ((i * 104729) % 17) as f64).collect();
        let exact = distance(&a, &b);
        for radius in [5, 10, 20, 40] {
            let banded = distance_banded(&a, &b, radius);
            assert!(
                banded >= exact - 1e-9,
                "radius {radius}: banded {banded} < exact {exact}"
            );
        }
    }

    #[test]
    fn normalized_distance_scales_down() {
        let a = [0.0; 10];
        let b = [1.0; 10];
        assert!((distance(&a, &b) - 10.0).abs() < 1e-12);
        assert!((normalized_distance(&a, &b) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn single_element_series() {
        assert_eq!(distance(&[3.0], &[5.0]), 2.0);
        assert_eq!(distance(&[3.0], &[5.0, 4.0]), 3.0);
    }

    #[test]
    fn bounded_returns_exact_under_loose_bound() {
        let a: Vec<f64> = (0..40).map(|i| (i as f64 * 0.2).cos()).collect();
        let b: Vec<f64> = (0..45).map(|i| (i as f64 * 0.21).cos() + 0.2).collect();
        let exact = distance_banded(&a, &b, 50);
        assert_eq!(distance_banded_bounded(&a, &b, 50, f64::INFINITY), exact);
        assert_eq!(distance_banded_bounded(&a, &b, 50, exact), exact);
    }

    #[test]
    fn bounded_abandons_when_bound_unreachable() {
        let a = vec![0.0; 30];
        let b = vec![10.0; 30];
        // True distance is 300; a tiny bound must be abandoned early.
        assert_eq!(distance_banded_bounded(&a, &b, 30, 1.0), f64::INFINITY);
    }

    /// Regression: a pathologically large radius used to overflow
    /// `center + radius` and panic in debug builds. The band arithmetic
    /// must saturate instead.
    #[test]
    fn huge_radius_does_not_overflow() {
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0];
        assert_eq!(distance_banded(&a, &b, usize::MAX), distance(&a, &b));
    }

    /// A band narrower than the length difference must be widened, never
    /// produce an unreachable (infinite) path.
    #[test]
    fn band_narrower_than_length_gap_is_widened() {
        for (la, lb) in [(2usize, 40usize), (40, 2), (1, 64), (64, 1)] {
            let a: Vec<f64> = (0..la).map(|i| i as f64).collect();
            let b: Vec<f64> = (0..lb).map(|i| (i % 5) as f64).collect();
            let exact = distance(&a, &b);
            for radius in [0usize, 1, 2] {
                let banded = distance_banded(&a, &b, radius);
                assert!(
                    banded.is_finite() && banded >= exact - 1e-9,
                    "{la}x{lb} r={radius}: banded={banded} exact={exact}"
                );
            }
        }
    }

    /// Regression: degenerate inputs (empty or non-finite series) used to
    /// surface only as an infinite/NaN "distance". The `try_` entry
    /// points reject them with a typed error.
    #[test]
    fn try_variants_reject_degenerate_inputs() {
        assert!(matches!(
            try_distance(&[], &[1.0]),
            Err(StatsError::EmptyInput)
        ));
        assert!(matches!(
            try_distance_banded(&[1.0], &[], 3),
            Err(StatsError::EmptyInput)
        ));
        assert!(try_distance(&[f64::NAN, 1.0], &[1.0]).is_err());
        assert!(try_distance_banded(&[1.0], &[f64::INFINITY], 2).is_err());
        // Valid input passes through to the classical result.
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 2.0, 2.0, 3.0, 4.0];
        assert_eq!(try_distance(&a, &b).unwrap(), distance(&a, &b));
        assert_eq!(
            try_distance_banded(&a, &b, 1).unwrap(),
            distance_banded(&a, &b, 1)
        );
    }

    #[test]
    fn batch_matches_sequential() {
        let series: Vec<Vec<f64>> = (0..12)
            .map(|k| (0..30 + k).map(|i| ((i * (k + 3)) % 11) as f64).collect())
            .collect();
        let pairs: Vec<(&[f64], &[f64])> = (0..series.len() - 1)
            .map(|k| (series[k].as_slice(), series[k + 1].as_slice()))
            .collect();
        let batch = distance_batch(&pairs);
        let banded = distance_batch_banded(&pairs, 8);
        for (k, &(a, b)) in pairs.iter().enumerate() {
            assert_eq!(batch[k], distance(a, b));
            assert_eq!(banded[k], distance_banded(a, b, 8));
        }
    }

    #[test]
    fn nearest_neighbor_finds_true_argmin() {
        let query: Vec<f64> = (0..50).map(|i| (i as f64 * 0.3).sin()).collect();
        let candidates: Vec<Vec<f64>> = (0..20)
            .map(|k| {
                (0..48)
                    .map(|i| (i as f64 * 0.3).sin() + 0.1 * (k as f64 - 7.5).abs())
                    .collect()
            })
            .collect();
        let (idx, d) = nearest_neighbor(&query, &candidates, 16).unwrap();
        // Exhaustive serial reference.
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, c) in candidates.iter().enumerate() {
            let di = distance_banded(&query, c, 16);
            if di < best_d {
                best = i;
                best_d = di;
            }
        }
        assert_eq!(idx, best);
        assert_eq!(d, best_d);
        assert_eq!(nearest_neighbor(&query, &[], 16), None);
    }

    /// Reference implementation: full `(n+1)×(m+1)` matrix, classical
    /// single-pass update, no row recycling or band-edge tricks. The
    /// restructured two-pass kernel must reproduce it *bit for bit*.
    fn naive_banded(a: &[f64], b: &[f64], radius: Option<usize>) -> f64 {
        let n = a.len();
        let m = b.len();
        let radius = radius.map_or(usize::MAX, |r| r.max(n.abs_diff(m)));
        let mut dp = vec![vec![f64::INFINITY; m + 1]; n + 1];
        dp[0][0] = 0.0;
        for i in 1..=n {
            let center = i * m / n;
            let lo = center.saturating_sub(radius).max(1);
            let hi = center.saturating_add(radius).min(m);
            for j in lo..=hi {
                let cost = (a[i - 1] - b[j - 1]).abs();
                let best = dp[i - 1][j].min(dp[i][j - 1]).min(dp[i - 1][j - 1]);
                dp[i][j] = cost + best;
            }
        }
        dp[n][m]
    }

    #[test]
    fn restructured_kernel_matches_naive_dp_bit_exactly() {
        for (la, lb) in [
            (1usize, 1usize),
            (1, 7),
            (7, 1),
            (13, 17),
            (33, 32),
            (40, 25),
            (25, 40),
            (64, 64),
        ] {
            let a: Vec<f64> = (0..la)
                .map(|i| ((i * 37) % 19) as f64 * 0.5 - 3.25)
                .collect();
            let b: Vec<f64> = (0..lb)
                .map(|i| ((i * 53) % 23) as f64 * 0.25 - 1.5)
                .collect();
            assert_eq!(
                distance(&a, &b).to_bits(),
                naive_banded(&a, &b, None).to_bits(),
                "exact {la}x{lb}"
            );
            for radius in [0usize, 1, 3, 8, 100] {
                assert_eq!(
                    distance_banded(&a, &b, radius).to_bits(),
                    naive_banded(&a, &b, Some(radius)).to_bits(),
                    "banded {la}x{lb} r={radius}"
                );
            }
        }
    }

    #[test]
    fn nearest_neighbor_is_thread_count_invariant() {
        let query: Vec<f64> = (0..64).map(|i| ((i * 31) % 17) as f64).collect();
        let candidates: Vec<Vec<f64>> = (0..24)
            .map(|k| (0..60).map(|i| ((i * (k + 2) * 13) % 19) as f64).collect())
            .collect();
        cm_par::set_max_threads(1);
        let serial = nearest_neighbor(&query, &candidates, 12);
        cm_par::set_max_threads(0);
        let parallel = nearest_neighbor(&query, &candidates, 12);
        assert_eq!(serial, parallel);
    }
}
