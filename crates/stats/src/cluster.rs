//! Seeded k-medoids clustering over counter signatures.
//!
//! Kadiyala et al. (see PAPERS.md) show that cleaned hardware-counter
//! signatures cluster program behaviour effectively; this module is the
//! statistical kernel behind CounterMiner's cross-benchmark `cluster`
//! analysis mode. It deliberately clusters around **medoids** — real
//! runs, not synthetic centroids — because a medoid is something an
//! engineer can open and inspect, and because medoids only need
//! pairwise distances, which keeps the signature distance pluggable
//! ([`SignatureDistance`]: plain Euclidean over per-event summary
//! vectors, or banded DTW over whole series via the [`dtw`] kernels).
//!
//! # Determinism
//!
//! Everything here is bit-identical at any thread count. The distance
//! matrix is computed by [`cm_par::map`] over a fixed pair order (pure
//! per-entry work, order-preserving collection); the seeded
//! initialization draws only the first medoid from a
//! [`ResampleStream`](crate::estimator::ResampleStream) counter stream
//! and picks the rest by farthest-point refinement with
//! lowest-index tie-breaking; the assignment/update sweeps are plain
//! serial loops over the (deterministic) matrix.
//!
//! # Examples
//!
//! ```
//! use cm_stats::cluster::{k_medoids, pairwise_distances, SignatureDistance};
//!
//! // Two tight groups in 2-D.
//! let signatures = vec![
//!     vec![0.0, 0.0],
//!     vec![0.1, 0.0],
//!     vec![0.0, 0.1],
//!     vec![5.0, 5.0],
//!     vec![5.1, 5.0],
//! ];
//! let d = pairwise_distances(&signatures, SignatureDistance::Euclidean)?;
//! let clustering = k_medoids(&d, 2, 7)?;
//! assert_eq!(clustering.assignments[0], clustering.assignments[1]);
//! assert_eq!(clustering.assignments[3], clustering.assignments[4]);
//! assert_ne!(clustering.assignments[0], clustering.assignments[3]);
//! assert!(clustering.mean_silhouette > 0.8);
//! # Ok::<(), cm_stats::StatsError>(())
//! ```

use crate::estimator::ResampleStream;
use crate::{dtw, StatsError};

/// How two counter signatures are compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignatureDistance {
    /// Euclidean distance between equal-length summary vectors (the
    /// default: one normalized summary statistic block per event).
    Euclidean,
    /// Banded dynamic time warping between whole series (lengths may
    /// differ), normalized by the warping-path length so short and long
    /// runs are comparable. `radius` is the Sakoe–Chiba band of
    /// [`dtw::distance_banded`] (widened automatically when the length
    /// gap exceeds it).
    Dtw {
        /// Sakoe–Chiba band radius, in samples.
        radius: usize,
    },
}

/// A symmetric pairwise distance matrix over `n` items.
#[derive(Debug, Clone, PartialEq)]
pub struct DistanceMatrix {
    n: usize,
    /// Row-major full matrix; the diagonal is zero.
    values: Vec<f64>,
}

impl DistanceMatrix {
    /// Builds a matrix from the upper triangle in `(0,1), (0,2), …,
    /// (0,n-1), (1,2), …` order.
    fn from_upper(n: usize, upper: &[f64]) -> Self {
        debug_assert_eq!(upper.len(), n * (n - 1) / 2);
        let mut values = vec![0.0; n * n];
        let mut idx = 0;
        for i in 0..n {
            for j in i + 1..n {
                values[i * n + j] = upper[idx];
                values[j * n + i] = upper[idx];
                idx += 1;
            }
        }
        DistanceMatrix { n, values }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.n
    }

    /// Whether the matrix is over zero items.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// The distance between items `i` and `j`.
    ///
    /// # Panics
    ///
    /// Panics when an index is out of range.
    pub fn get(&self, i: usize, j: usize) -> f64 {
        assert!(i < self.n && j < self.n, "index out of range");
        self.values[i * self.n + j]
    }
}

/// The list of `(i, j)` index pairs with `i < j`, in matrix order.
fn upper_pairs(n: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(n * (n - 1) / 2);
    for i in 0..n {
        for j in i + 1..n {
            pairs.push((i, j));
        }
    }
    pairs
}

/// Computes the pairwise [`DistanceMatrix`] of `signatures` under
/// `metric`, parallelized over pairs via [`cm_par::map`] (pure
/// per-entry work, so the matrix is bit-identical at any thread count).
///
/// Under [`SignatureDistance::Euclidean`] all signatures must share one
/// length; under [`SignatureDistance::Dtw`] lengths may differ (each
/// signature is a whole series) and each pair's distance is the banded
/// DTW distance divided by the aligned length `max(|a|, |b|)`.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when `signatures` is empty or any
/// signature is, [`StatsError::MismatchedLengths`] for ragged Euclidean
/// signatures, and [`StatsError::InvalidParameter`] for non-finite
/// values (NaN poisoning must surface, not propagate — see the
/// NaN-rejecting order statistics in [`descriptive`](crate::descriptive)).
pub fn pairwise_distances(
    signatures: &[Vec<f64>],
    metric: SignatureDistance,
) -> Result<DistanceMatrix, StatsError> {
    if signatures.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    for s in signatures {
        if s.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if s.iter().any(|v| !v.is_finite()) {
            return Err(StatsError::InvalidParameter("signatures must be finite"));
        }
        if metric == SignatureDistance::Euclidean && s.len() != signatures[0].len() {
            return Err(StatsError::MismatchedLengths {
                left: signatures[0].len(),
                right: s.len(),
            });
        }
    }
    let n = signatures.len();
    if n == 1 {
        return Ok(DistanceMatrix {
            n: 1,
            values: vec![0.0],
        });
    }
    let pairs = upper_pairs(n);
    let upper: Vec<f64> = match metric {
        SignatureDistance::Euclidean => cm_par::map(&pairs, |&(i, j)| {
            signatures[i]
                .iter()
                .zip(&signatures[j])
                .map(|(&a, &b)| (a - b) * (a - b))
                .sum::<f64>()
                .sqrt()
        }),
        SignatureDistance::Dtw { radius } => cm_par::map(&pairs, |&(i, j)| {
            let (a, b) = (&signatures[i], &signatures[j]);
            dtw::distance_banded(a, b, radius) / a.len().max(b.len()) as f64
        }),
    };
    Ok(DistanceMatrix::from_upper(n, &upper))
}

/// One k-medoids clustering result.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Item index of each cluster's medoid, in cluster order.
    pub medoids: Vec<usize>,
    /// Cluster id (index into `medoids`) of every item.
    pub assignments: Vec<usize>,
    /// Per-item silhouette score in `[-1, 1]` (0 for items in singleton
    /// clusters).
    pub silhouettes: Vec<f64>,
    /// Mean silhouette over all items — the clustering quality summary.
    pub mean_silhouette: f64,
    /// Voronoi iterations until the assignment fixed point.
    pub iterations: usize,
}

impl Clustering {
    /// Each item's distance to its own medoid.
    pub fn medoid_distances(&self, distances: &DistanceMatrix) -> Vec<f64> {
        self.assignments
            .iter()
            .enumerate()
            .map(|(i, &c)| distances.get(i, self.medoids[c]))
            .collect()
    }
}

/// Clusters the items of `distances` into `k` groups around medoids.
///
/// Initialization is seeded farthest-point: the first medoid is drawn
/// from stream 0 of `seed`, each further medoid is the item maximizing
/// the distance to its nearest chosen medoid (ties to the lowest
/// index). Voronoi iterations then alternate assignment (nearest
/// medoid, ties to the lowest cluster id) and medoid update (the
/// member minimizing the within-cluster distance sum, ties to the
/// lowest index) until the assignments stop changing. Every step is a
/// deterministic function of `(distances, k, seed)`.
///
/// # Errors
///
/// Returns [`StatsError::InvalidParameter`] for `k` of zero and
/// [`StatsError::NotEnoughData`] when `k` exceeds the item count.
pub fn k_medoids(
    distances: &DistanceMatrix,
    k: usize,
    seed: u64,
) -> Result<Clustering, StatsError> {
    let n = distances.len();
    if k == 0 {
        return Err(StatsError::InvalidParameter(
            "cluster count must be at least 1",
        ));
    }
    if k > n {
        return Err(StatsError::NotEnoughData {
            required: k,
            available: n,
        });
    }

    // Seeded farthest-point init.
    let mut medoids = Vec::with_capacity(k);
    let first = (ResampleStream::new(seed, 0).next_u64() % n as u64) as usize;
    medoids.push(first);
    while medoids.len() < k {
        let mut best = usize::MAX;
        let mut best_dist = f64::NEG_INFINITY;
        for i in 0..n {
            if medoids.contains(&i) {
                continue;
            }
            let nearest = medoids
                .iter()
                .map(|&m| distances.get(i, m))
                .fold(f64::INFINITY, f64::min);
            if nearest > best_dist {
                best_dist = nearest;
                best = i;
            }
        }
        medoids.push(best);
    }

    // Voronoi iterations to the assignment fixed point. Convergence is
    // guaranteed: each sweep weakly decreases the total within-cluster
    // distance and there are finitely many medoid sets; the cap is a
    // backstop for distance ties cycling.
    let assign = |medoids: &[usize]| -> Vec<usize> {
        (0..n)
            .map(|i| {
                let mut best = 0;
                let mut best_dist = f64::INFINITY;
                for (c, &m) in medoids.iter().enumerate() {
                    let d = distances.get(i, m);
                    if d < best_dist {
                        best_dist = d;
                        best = c;
                    }
                }
                best
            })
            .collect()
    };
    let mut assignments = assign(&medoids);
    let mut iterations = 0;
    const MAX_ITER: usize = 64;
    while iterations < MAX_ITER {
        iterations += 1;
        for c in 0..k {
            let members: Vec<usize> = (0..n).filter(|&i| assignments[i] == c).collect();
            let mut best = medoids[c];
            let mut best_cost = f64::INFINITY;
            for &candidate in &members {
                let cost: f64 = members.iter().map(|&i| distances.get(i, candidate)).sum();
                if cost < best_cost {
                    best_cost = cost;
                    best = candidate;
                }
            }
            medoids[c] = best;
        }
        let next = assign(&medoids);
        if next == assignments {
            break;
        }
        assignments = next;
    }

    let silhouettes = silhouette_scores(distances, &assignments, k);
    let mean_silhouette = if n == 0 {
        0.0
    } else {
        silhouettes.iter().sum::<f64>() / n as f64
    };
    Ok(Clustering {
        medoids,
        assignments,
        silhouettes,
        mean_silhouette,
        iterations,
    })
}

/// Per-item silhouette scores for a given assignment: `s(i) = (b − a) /
/// max(a, b)` with `a` the mean distance to the item's own cluster and
/// `b` the smallest mean distance to another cluster. Items in
/// singleton clusters score 0 by convention; with one cluster total,
/// every item scores 0.
fn silhouette_scores(distances: &DistanceMatrix, assignments: &[usize], k: usize) -> Vec<f64> {
    let n = distances.len();
    let sizes: Vec<usize> = (0..k)
        .map(|c| assignments.iter().filter(|&&a| a == c).count())
        .collect();
    (0..n)
        .map(|i| {
            let own = assignments[i];
            if sizes[own] <= 1 || k < 2 {
                return 0.0;
            }
            let mut sums = vec![0.0; k];
            for j in 0..n {
                if j != i {
                    sums[assignments[j]] += distances.get(i, j);
                }
            }
            let a = sums[own] / (sizes[own] - 1) as f64;
            let b = (0..k)
                .filter(|&c| c != own && sizes[c] > 0)
                .map(|c| sums[c] / sizes[c] as f64)
                .fold(f64::INFINITY, f64::min);
            if !b.is_finite() {
                return 0.0;
            }
            let denom = a.max(b);
            if denom == 0.0 {
                0.0
            } else {
                (b - a) / denom
            }
        })
        .collect()
}

/// The adjusted Rand index between two labelings of the same items:
/// 1.0 for identical partitions (up to label permutation), ~0.0 for
/// independent ones, negative for worse-than-chance agreement.
///
/// # Errors
///
/// Returns [`StatsError::MismatchedLengths`] when the labelings differ
/// in length and [`StatsError::EmptyInput`] when both are empty.
///
/// # Examples
///
/// ```
/// use cm_stats::cluster::adjusted_rand_index;
///
/// // Identical up to label names.
/// let ari = adjusted_rand_index(&[0, 0, 1, 1], &[5, 5, 2, 2])?;
/// assert!((ari - 1.0).abs() < 1e-12);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
pub fn adjusted_rand_index(a: &[usize], b: &[usize]) -> Result<f64, StatsError> {
    if a.len() != b.len() {
        return Err(StatsError::MismatchedLengths {
            left: a.len(),
            right: b.len(),
        });
    }
    if a.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let n = a.len();
    let ka = a.iter().max().unwrap() + 1;
    let kb = b.iter().max().unwrap() + 1;
    let mut table = vec![0u64; ka * kb];
    let mut rows = vec![0u64; ka];
    let mut cols = vec![0u64; kb];
    for (&x, &y) in a.iter().zip(b) {
        table[x * kb + y] += 1;
        rows[x] += 1;
        cols[y] += 1;
    }
    let choose2 = |c: u64| (c * c.saturating_sub(1) / 2) as f64;
    let index: f64 = table.iter().map(|&c| choose2(c)).sum();
    let row_sum: f64 = rows.iter().map(|&c| choose2(c)).sum();
    let col_sum: f64 = cols.iter().map(|&c| choose2(c)).sum();
    let total = choose2(n as u64);
    let expected = row_sum * col_sum / total;
    let max_index = (row_sum + col_sum) / 2.0;
    if (max_index - expected).abs() < 1e-12 {
        // Degenerate: both partitions are trivial (all-one-cluster or
        // all-singletons). They agree exactly iff they are equal-shaped.
        return Ok(1.0);
    }
    Ok((index - expected) / (max_index - expected))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three planted groups in 3-D with a seeded layout.
    fn planted(per_group: usize) -> (Vec<Vec<f64>>, Vec<usize>) {
        let centers = [[0.0, 0.0, 0.0], [10.0, 0.0, 5.0], [0.0, 12.0, -4.0]];
        let mut sigs = Vec::new();
        let mut labels = Vec::new();
        let mut stream = ResampleStream::new(99, 0);
        for (g, c) in centers.iter().enumerate() {
            for _ in 0..per_group {
                sigs.push(c.iter().map(|&x| x + stream.next_f64() - 0.5).collect());
                labels.push(g);
            }
        }
        (sigs, labels)
    }

    #[test]
    fn recovers_planted_groups() {
        let (sigs, truth) = planted(8);
        let d = pairwise_distances(&sigs, SignatureDistance::Euclidean).unwrap();
        let clustering = k_medoids(&d, 3, 1).unwrap();
        let ari = adjusted_rand_index(&clustering.assignments, &truth).unwrap();
        assert!((ari - 1.0).abs() < 1e-12, "ari {ari}");
        assert!(clustering.mean_silhouette > 0.9);
    }

    #[test]
    fn clustering_is_deterministic_per_seed_and_thread_count() {
        let (sigs, _) = planted(6);
        let run = |threads: usize, seed: u64| {
            cm_par::set_max_threads(threads);
            let d = pairwise_distances(&sigs, SignatureDistance::Euclidean).unwrap();
            let c = k_medoids(&d, 3, seed).unwrap();
            cm_par::set_max_threads(0);
            (c, d)
        };
        let (c1, d1) = run(1, 7);
        let (c4, d4) = run(4, 7);
        assert_eq!(c1, c4);
        assert_eq!(d1.values, d4.values);
        // Bit-exact silhouettes, not just equal assignments.
        for (a, b) in c1.silhouettes.iter().zip(&c4.silhouettes) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn different_seeds_still_find_the_planted_optimum() {
        let (sigs, truth) = planted(5);
        let d = pairwise_distances(&sigs, SignatureDistance::Euclidean).unwrap();
        for seed in 0..8 {
            let c = k_medoids(&d, 3, seed).unwrap();
            let ari = adjusted_rand_index(&c.assignments, &truth).unwrap();
            assert!((ari - 1.0).abs() < 1e-12, "seed {seed}: ari {ari}");
        }
    }

    #[test]
    fn dtw_metric_handles_ragged_series() {
        // Same waveform at different lengths vs a different waveform.
        let wave =
            |n: usize, f: f64| -> Vec<f64> { (0..n).map(|t| (t as f64 * f).sin()).collect() };
        let sigs = vec![
            wave(100, 0.3),
            wave(110, 0.3),
            wave(104, 1.7),
            wave(96, 1.7),
        ];
        let d = pairwise_distances(&sigs, SignatureDistance::Dtw { radius: 16 }).unwrap();
        let c = k_medoids(&d, 2, 3).unwrap();
        assert_eq!(c.assignments[0], c.assignments[1]);
        assert_eq!(c.assignments[2], c.assignments[3]);
        assert_ne!(c.assignments[0], c.assignments[2]);
    }

    #[test]
    fn validates_inputs() {
        assert_eq!(
            pairwise_distances(&[], SignatureDistance::Euclidean),
            Err(StatsError::EmptyInput)
        );
        assert_eq!(
            pairwise_distances(&[vec![]], SignatureDistance::Euclidean),
            Err(StatsError::EmptyInput)
        );
        assert!(matches!(
            pairwise_distances(&[vec![1.0], vec![1.0, 2.0]], SignatureDistance::Euclidean),
            Err(StatsError::MismatchedLengths { .. })
        ));
        assert_eq!(
            pairwise_distances(&[vec![1.0], vec![f64::NAN]], SignatureDistance::Euclidean),
            Err(StatsError::InvalidParameter("signatures must be finite"))
        );
        let d = pairwise_distances(&[vec![0.0], vec![1.0]], SignatureDistance::Euclidean).unwrap();
        assert!(k_medoids(&d, 0, 0).is_err());
        assert!(matches!(
            k_medoids(&d, 3, 0),
            Err(StatsError::NotEnoughData {
                required: 3,
                available: 2,
            })
        ));
    }

    #[test]
    fn k_equals_n_is_all_singletons() {
        let (sigs, _) = planted(2);
        let d = pairwise_distances(&sigs, SignatureDistance::Euclidean).unwrap();
        let c = k_medoids(&d, sigs.len(), 5).unwrap();
        let mut seen: Vec<usize> = c.assignments.clone();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), sigs.len());
        // Singleton silhouettes are 0 by convention.
        assert!(c.silhouettes.iter().all(|&s| s == 0.0));
    }

    #[test]
    fn single_item_matrix_works() {
        let d = pairwise_distances(&[vec![1.0, 2.0]], SignatureDistance::Euclidean).unwrap();
        assert_eq!(d.len(), 1);
        let c = k_medoids(&d, 1, 0).unwrap();
        assert_eq!(c.assignments, vec![0]);
        assert_eq!(c.medoids, vec![0]);
    }

    #[test]
    fn ari_of_independent_labelings_is_near_zero() {
        // Alternating vs block labels over 40 items: ARI ~ 0.
        let a: Vec<usize> = (0..40).map(|i| i % 2).collect();
        let b: Vec<usize> = (0..40).map(|i| usize::from(i >= 20)).collect();
        let ari = adjusted_rand_index(&a, &b).unwrap();
        assert!(ari.abs() < 0.1, "ari {ari}");
        assert!(adjusted_rand_index(&[0, 1], &[0]).is_err());
        assert!(adjusted_rand_index(&[], &[]).is_err());
    }

    #[test]
    fn medoid_distances_are_zero_at_medoids() {
        let (sigs, _) = planted(4);
        let d = pairwise_distances(&sigs, SignatureDistance::Euclidean).unwrap();
        let c = k_medoids(&d, 3, 2).unwrap();
        let md = c.medoid_distances(&d);
        for &m in &c.medoids {
            assert_eq!(md[m], 0.0);
        }
        assert!(md.iter().all(|&x| x >= 0.0));
    }
}
