use crate::descriptive;
use crate::distribution::Distribution;
use crate::special::erf;
use crate::StatsError;

/// Normal (Gaussian) distribution.
///
/// # Examples
///
/// ```
/// use cm_stats::{Distribution, Normal};
///
/// let n = Normal::new(10.0, 2.0)?;
/// assert!((n.cdf(10.0) - 0.5).abs() < 1e-6);
/// assert!((n.quantile(0.975) - 13.92).abs() < 0.01);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates a normal distribution with mean `mu` and standard
    /// deviation `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `sigma > 0` and
    /// both parameters are finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() || !sigma.is_finite() || sigma <= 0.0 {
            return Err(StatsError::InvalidParameter(
                "normal requires finite mu and sigma > 0",
            ));
        }
        Ok(Normal { mu, sigma })
    }

    /// The standard normal, `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Fits a normal distribution to data by maximum likelihood
    /// (sample mean and population standard deviation).
    ///
    /// # Errors
    ///
    /// Returns an error for fewer than two values or zero-variance data.
    pub fn fit(data: &[f64]) -> Result<Self, StatsError> {
        if data.len() < 2 {
            return Err(StatsError::NotEnoughData {
                required: 2,
                available: data.len(),
            });
        }
        let mu = descriptive::mean(data)?;
        let sigma = descriptive::std_dev(data)?;
        Normal::new(mu, sigma)
    }

    /// Location parameter (mean).
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter (standard deviation).
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl Distribution for Normal {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.sigma;
        (-0.5 * z * z).exp() / (self.sigma * (2.0 * std::f64::consts::PI).sqrt())
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / (self.sigma * std::f64::consts::SQRT_2);
        0.5 * (1.0 + erf(z))
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
        self.mu + self.sigma * standard_normal_quantile(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn variance(&self) -> f64 {
        self.sigma * self.sigma
    }
}

/// Acklam's rational approximation to the standard normal quantile
/// (relative error below 1.15e-9 over the full range).
fn standard_normal_quantile(p: f64) -> f64 {
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn standard_cdf_values() {
        let n = Normal::standard();
        assert!((n.cdf(0.0) - 0.5).abs() < 2e-7);
        assert!((n.cdf(1.959964) - 0.975).abs() < 1e-5);
        assert!((n.cdf(-1.959964) - 0.025).abs() < 1e-5);
    }

    #[test]
    fn quantile_inverts_cdf() {
        let n = Normal::new(5.0, 3.0).unwrap();
        for p in [0.001, 0.05, 0.3, 0.5, 0.7, 0.95, 0.999] {
            let x = n.quantile(p);
            assert!((n.cdf(x) - p).abs() < 1e-6, "p = {p}");
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let n = Normal::new(-2.0, 0.7).unwrap();
        let (lo, hi, steps) = (-9.0, 5.0, 20_000);
        let h = (hi - lo) / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| n.pdf(lo + (i as f64 + 0.5) * h) * h)
            .sum();
        assert!((integral - 1.0).abs() < 1e-6);
    }

    #[test]
    fn fit_recovers_parameters() {
        let truth = Normal::new(100.0, 15.0).unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let data: Vec<f64> = (0..20_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = Normal::fit(&data).unwrap();
        assert!((fitted.mu() - 100.0).abs() < 0.5);
        assert!((fitted.sigma() - 15.0).abs() < 0.5);
    }

    #[test]
    fn fit_rejects_degenerate_data() {
        assert!(Normal::fit(&[1.0]).is_err());
        assert!(Normal::fit(&[2.0, 2.0, 2.0]).is_err());
    }

    #[test]
    fn moments() {
        let n = Normal::new(3.0, 2.0).unwrap();
        assert_eq!(Distribution::mean(&n), 3.0);
        assert_eq!(n.variance(), 4.0);
    }

    #[test]
    #[should_panic(expected = "quantile requires")]
    fn quantile_out_of_range_panics() {
        Normal::standard().quantile(1.0);
    }
}
