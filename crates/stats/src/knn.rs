//! K-nearest-neighbor regression.
//!
//! The paper fills missing (non-zero-category) counter values with KNN
//! regression: a missing sample is replaced by the average of its `k`
//! nearest neighbors along the time axis (k = 5 after trying 3..8,
//! Section III-B.2). [`KnnRegressor`] is the general 1-D regressor;
//! [`impute_series`] is the convenience entry point the data cleaner uses.

use crate::StatsError;

/// 1-D K-nearest-neighbor regressor.
///
/// # Examples
///
/// ```
/// use cm_stats::knn::KnnRegressor;
///
/// let xs = [0.0, 1.0, 2.0, 3.0, 4.0];
/// let ys = [0.0, 2.0, 4.0, 6.0, 8.0];
/// let knn = KnnRegressor::fit(&xs, &ys, 2)?;
/// // Nearest two neighbors of x = 2.2 are x = 2 and x = 3.
/// assert_eq!(knn.predict(2.2), 5.0);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
#[derive(Debug, Clone)]
pub struct KnnRegressor {
    points: Vec<(f64, f64)>,
    k: usize,
}

impl KnnRegressor {
    /// Builds a regressor over training points `(xs[i], ys[i])`.
    ///
    /// # Errors
    ///
    /// Returns an error when `k == 0`, when the inputs are empty or of
    /// different lengths, or when there are fewer than `k` points.
    pub fn fit(xs: &[f64], ys: &[f64], k: usize) -> Result<Self, StatsError> {
        if k == 0 {
            return Err(StatsError::InvalidParameter("k must be at least 1"));
        }
        if xs.len() != ys.len() {
            return Err(StatsError::MismatchedLengths {
                left: xs.len(),
                right: ys.len(),
            });
        }
        if xs.is_empty() {
            return Err(StatsError::EmptyInput);
        }
        if xs.len() < k {
            return Err(StatsError::NotEnoughData {
                required: k,
                available: xs.len(),
            });
        }
        let mut points: Vec<(f64, f64)> = xs.iter().copied().zip(ys.iter().copied()).collect();
        points.sort_by(|a, b| a.0.total_cmp(&b.0));
        Ok(KnnRegressor { points, k })
    }

    /// Number of neighbors used per prediction.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Predicts the value at `x` as the mean of the `k` nearest training
    /// points (by absolute distance along x).
    pub fn predict(&self, x: f64) -> f64 {
        self.fold_neighbors(x, |_| {}) / self.k as f64
    }

    /// Predicts the value at `x` together with a predictive variance.
    ///
    /// The mean is computed exactly as [`Self::predict`] does — same
    /// neighbors, same summation order, bit-identical result. The
    /// variance is the sample variance of the `k` neighbor values
    /// inflated by `1 + 1/k` (the predictive variance of a new draw from
    /// the neighborhood when the mean itself is estimated from `k`
    /// samples); with `k == 1` the neighborhood carries no dispersion
    /// information and the variance is reported as `0`.
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_stats::knn::KnnRegressor;
    ///
    /// let xs = [0.0, 1.0, 2.0, 3.0];
    /// let ys = [10.0, 12.0, 10.0, 12.0];
    /// let knn = KnnRegressor::fit(&xs, &ys, 2)?;
    /// let (mean, variance) = knn.predict_with_variance(0.4);
    /// assert_eq!(mean, knn.predict(0.4));
    /// assert!(variance > 0.0);
    /// # Ok::<(), cm_stats::StatsError>(())
    /// ```
    pub fn predict_with_variance(&self, x: f64) -> (f64, f64) {
        let mut neighbors = Vec::with_capacity(self.k);
        let sum = self.fold_neighbors(x, |y| neighbors.push(y));
        let mean = sum / self.k as f64;
        if self.k < 2 {
            return (mean, 0.0);
        }
        let ss: f64 = neighbors.iter().map(|&y| (y - mean) * (y - mean)).sum();
        let sample_var = ss / (self.k - 1) as f64;
        (mean, sample_var * (1.0 + 1.0 / self.k as f64))
    }

    /// The shared neighbor walk: visits the `k` nearest training values
    /// in selection order and returns their sum. Both prediction entry
    /// points accumulate through this one loop, so they cannot drift
    /// apart.
    fn fold_neighbors(&self, x: f64, mut visit: impl FnMut(f64)) -> f64 {
        // Points are sorted by x: locate the insertion point and expand
        // outward, which is O(log n + k).
        let n = self.points.len();
        let start = self.points.partition_point(|&(px, _)| px < x);
        let mut left = start;
        let mut right = start; // right is exclusive of chosen region start
        let mut sum = 0.0;
        for _ in 0..self.k {
            let take_left = match (left > 0, right < n) {
                (true, true) => {
                    (x - self.points[left - 1].0).abs() <= (self.points[right].0 - x).abs()
                }
                (true, false) => true,
                (false, true) => false,
                (false, false) => unreachable!("k <= n is enforced at fit time"),
            };
            let y = if take_left {
                left -= 1;
                self.points[left].1
            } else {
                let y = self.points[right].1;
                right += 1;
                y
            };
            sum += y;
            visit(y);
        }
        sum
    }
}

/// Fills the `missing` positions of `values` by KNN over the non-missing
/// positions, using sample index as the x coordinate (the cleaner's
/// configuration; the paper's Eq. 8 example).
///
/// Positions listed in `missing` take no part in neighbor search, so a
/// run of consecutive missing values is filled from the valid samples
/// around the run.
///
/// When fewer than `k` valid samples exist the neighborhood degrades
/// gracefully: `k` is clamped to the number of valid samples, so with
/// exactly one valid sample every missing position takes its value and
/// with a handful the fill is their (distance-ordered) mean. A typed
/// error is returned only when there is *nothing* to interpolate from.
///
/// # Errors
///
/// Returns [`StatsError::EmptyInput`] when no valid samples exist, and
/// [`StatsError::InvalidParameter`] for `k == 0` or an out-of-range
/// missing index.
pub fn impute_series(values: &mut [f64], missing: &[usize], k: usize) -> Result<(), StatsError> {
    if missing.is_empty() {
        return Ok(());
    }
    if k == 0 {
        return Err(StatsError::InvalidParameter("k must be at least 1"));
    }
    if missing.iter().any(|&i| i >= values.len()) {
        return Err(StatsError::InvalidParameter("missing index out of range"));
    }
    let missing_set: std::collections::HashSet<usize> = missing.iter().copied().collect();
    let mut xs = Vec::with_capacity(values.len() - missing_set.len());
    let mut ys = Vec::with_capacity(xs.capacity());
    for (i, &v) in values.iter().enumerate() {
        if !missing_set.contains(&i) {
            xs.push(i as f64);
            ys.push(v);
        }
    }
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let knn = KnnRegressor::fit(&xs, &ys, k.min(xs.len()))?;
    for &i in missing {
        values[i] = knn.predict(i as f64);
    }
    Ok(())
}

/// [`impute_series`] plus a predictive variance per fill: fills exactly
/// the same values (same regressor, same neighbor walk, bit-identical)
/// and returns one variance per entry of `missing`, in order, from
/// [`KnnRegressor::predict_with_variance`].
///
/// # Errors
///
/// Exactly the errors of [`impute_series`].
pub fn impute_series_with_variance(
    values: &mut [f64],
    missing: &[usize],
    k: usize,
) -> Result<Vec<f64>, StatsError> {
    if missing.is_empty() {
        return Ok(Vec::new());
    }
    if k == 0 {
        return Err(StatsError::InvalidParameter("k must be at least 1"));
    }
    if missing.iter().any(|&i| i >= values.len()) {
        return Err(StatsError::InvalidParameter("missing index out of range"));
    }
    let missing_set: std::collections::HashSet<usize> = missing.iter().copied().collect();
    let mut xs = Vec::with_capacity(values.len() - missing_set.len());
    let mut ys = Vec::with_capacity(xs.capacity());
    for (i, &v) in values.iter().enumerate() {
        if !missing_set.contains(&i) {
            xs.push(i as f64);
            ys.push(v);
        }
    }
    if xs.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let knn = KnnRegressor::fit(&xs, &ys, k.min(xs.len()))?;
    let mut variances = Vec::with_capacity(missing.len());
    for &i in missing {
        let (mean, variance) = knn.predict_with_variance(i as f64);
        values[i] = mean;
        variances.push(variance);
    }
    Ok(variances)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_validates_inputs() {
        assert!(KnnRegressor::fit(&[], &[], 1).is_err());
        assert!(KnnRegressor::fit(&[1.0], &[1.0, 2.0], 1).is_err());
        assert!(KnnRegressor::fit(&[1.0, 2.0], &[1.0, 2.0], 0).is_err());
        assert!(KnnRegressor::fit(&[1.0, 2.0], &[1.0, 2.0], 3).is_err());
    }

    #[test]
    fn k_equals_one_returns_nearest() {
        let knn = KnnRegressor::fit(&[0.0, 10.0], &[5.0, 50.0], 1).unwrap();
        assert_eq!(knn.predict(1.0), 5.0);
        assert_eq!(knn.predict(9.0), 50.0);
    }

    #[test]
    fn k_equals_n_returns_global_mean() {
        let knn = KnnRegressor::fit(&[0.0, 1.0, 2.0], &[3.0, 6.0, 9.0], 3).unwrap();
        assert_eq!(knn.predict(-100.0), 6.0);
        assert_eq!(knn.predict(100.0), 6.0);
    }

    #[test]
    fn prediction_at_edges_uses_available_side() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [0.0, 1.0, 2.0, 3.0];
        let knn = KnnRegressor::fit(&xs, &ys, 2).unwrap();
        assert_eq!(knn.predict(-5.0), 0.5); // two leftmost
        assert_eq!(knn.predict(9.0), 2.5); // two rightmost
    }

    #[test]
    fn impute_fills_interior_gap() {
        let mut v = vec![1.0, 2.0, 0.0, 4.0, 5.0, 6.0];
        impute_series(&mut v, &[2], 2).unwrap();
        // Neighbors of index 2 among valid xs {0,1,3,4,5}: 1 and 3.
        assert_eq!(v[2], 3.0);
    }

    #[test]
    fn impute_fills_leading_run() {
        // Cold-start shape from Fig. 2(b): leading missing values.
        let mut v = vec![0.0, 0.0, 0.0, 10.0, 12.0, 11.0, 13.0, 12.0];
        impute_series(&mut v, &[0, 1, 2], 5).unwrap();
        for (i, &val) in v.iter().take(3).enumerate() {
            assert!(val > 9.0, "position {i} still near zero: {val}");
        }
    }

    #[test]
    fn impute_validates() {
        let mut v = vec![1.0, 2.0];
        assert!(impute_series(&mut v, &[5], 1).is_err());
        let mut v = vec![1.0, 2.0];
        assert!(impute_series(&mut v, &[0], 0).is_err()); // k == 0
        let mut v = vec![1.0, 2.0, 3.0];
        assert!(impute_series(&mut v, &[], 0).is_ok()); // nothing to do
    }

    /// Regression: with fewer valid samples than `k`, `impute_series`
    /// used to refuse outright (`NotEnoughData`). It must instead clamp
    /// the neighborhood to what exists — here one valid sample, so every
    /// gap takes its value — and only error when nothing is observed.
    #[test]
    fn impute_falls_back_when_fewer_than_k_valid() {
        let mut v = vec![7.0, 0.0, 0.0, 0.0, 0.0, 0.0];
        impute_series(&mut v, &[1, 2, 3, 4, 5], 5).unwrap();
        assert_eq!(v, vec![7.0; 6]);

        // Two valid samples with k = 5: the fill is their mean and must
        // be finite everywhere.
        let mut v = vec![4.0, 0.0, 8.0, 0.0];
        impute_series(&mut v, &[1, 3], 5).unwrap();
        assert!(v.iter().all(|x| x.is_finite()));
        assert_eq!(v[1], 6.0);
        assert_eq!(v[3], 6.0);

        // Nothing observed at all: a typed error, never a panic.
        let mut v = vec![0.0, 0.0];
        assert!(matches!(
            impute_series(&mut v, &[0, 1], 5),
            Err(StatsError::EmptyInput)
        ));
    }

    #[test]
    fn predict_with_variance_mean_matches_predict_exactly() {
        let xs: Vec<f64> = (0..40).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..40)
            .map(|i| 10.0 + ((i * 13) % 7) as f64 * 0.3)
            .collect();
        let knn = KnnRegressor::fit(&xs, &ys, 5).unwrap();
        for probe in [-3.0, 0.0, 7.4, 19.5, 44.0] {
            let (mean, variance) = knn.predict_with_variance(probe);
            assert_eq!(mean.to_bits(), knn.predict(probe).to_bits(), "x={probe}");
            assert!(variance >= 0.0);
        }
    }

    #[test]
    fn variance_reflects_neighborhood_dispersion() {
        // A flat neighborhood is certain; a noisy one is not.
        let flat = KnnRegressor::fit(&[0.0, 1.0, 2.0], &[5.0, 5.0, 5.0], 3).unwrap();
        assert_eq!(flat.predict_with_variance(1.0).1, 0.0);
        let noisy = KnnRegressor::fit(&[0.0, 1.0, 2.0], &[1.0, 9.0, 2.0], 3).unwrap();
        assert!(noisy.predict_with_variance(1.0).1 > 1.0);
        // k = 1 carries no dispersion information.
        let single = KnnRegressor::fit(&[0.0, 9.0], &[1.0, 100.0], 1).unwrap();
        assert_eq!(single.predict_with_variance(0.1).1, 0.0);
    }

    #[test]
    fn impute_with_variance_fills_identically() {
        let base = vec![10.0, 0.0, 12.0, 0.0, 11.0, 14.0, 0.0, 13.0];
        let missing = [1usize, 3, 6];
        let mut point = base.clone();
        impute_series(&mut point, &missing, 3).unwrap();
        let mut bayes = base.clone();
        let variances = impute_series_with_variance(&mut bayes, &missing, 3).unwrap();
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&point), bits(&bayes));
        assert_eq!(variances.len(), missing.len());
        assert!(variances.iter().all(|&v| v >= 0.0 && v.is_finite()));
    }

    #[test]
    fn impute_with_variance_validates_like_impute() {
        let mut v = vec![1.0, 2.0];
        assert!(impute_series_with_variance(&mut v, &[5], 1).is_err());
        let mut v = vec![1.0, 2.0];
        assert!(impute_series_with_variance(&mut v, &[0], 0).is_err());
        let mut v = vec![0.0, 0.0];
        assert!(impute_series_with_variance(&mut v, &[0, 1], 5).is_err());
        let mut v = vec![1.0, 2.0, 3.0];
        assert!(impute_series_with_variance(&mut v, &[], 0)
            .unwrap()
            .is_empty());
    }

    #[test]
    fn impute_ignores_missing_neighbors() {
        // The two zeros are adjacent; each must be filled from valid
        // samples only, never from the other zero.
        let mut v = vec![8.0, 8.0, 0.0, 0.0, 8.0, 8.0];
        impute_series(&mut v, &[2, 3], 4).unwrap();
        assert_eq!(v[2], 8.0);
        assert_eq!(v[3], 8.0);
    }
}
