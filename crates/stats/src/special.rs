//! Special mathematical functions used by the distribution implementations.
//!
//! Accuracy targets are modest (the pipeline's decisions are threshold
//! comparisons, not high-precision integrals): `erf` is accurate to about
//! `1.2e-7`, `ln_gamma` to about `2e-10` — both ample for Anderson–Darling
//! statistics and GEV moment fitting.

/// Error function, via the Numerical Recipes rational Chebyshev
/// approximation to `erfc` (absolute error < 1.2e-7).
///
/// # Examples
///
/// ```
/// use cm_stats::special::erf;
/// assert!((erf(0.0)).abs() < 2e-7);
/// assert!((erf(1.0) - 0.8427007929).abs() < 1e-6);
/// ```
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// Complementary error function `1 - erf(x)`.
pub fn erfc(x: f64) -> f64 {
    let z = x.abs();
    let t = 1.0 / (1.0 + 0.5 * z);
    let ans = t
        * (-z * z - 1.26551223
            + t * (1.00002368
                + t * (0.37409196
                    + t * (0.09678418
                        + t * (-0.18628806
                            + t * (0.27886807
                                + t * (-1.13520398
                                    + t * (1.48851587 + t * (-0.82215223 + t * 0.17087277)))))))))
            .exp();
    if x >= 0.0 {
        ans
    } else {
        2.0 - ans
    }
}

/// Natural log of the gamma function, Lanczos approximation (g = 7).
///
/// # Panics
///
/// Panics if `x <= 0` (the reflection formula is not needed by this
/// crate and is deliberately unimplemented).
///
/// # Examples
///
/// ```
/// use cm_stats::special::ln_gamma;
/// assert!((ln_gamma(1.0)).abs() < 1e-10);       // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-9); // Γ(5) = 24
/// ```
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma requires a positive argument");
    const G: f64 = 7.0;
    const COEF: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection for 0 < x < 0.5: Γ(x)Γ(1-x) = π / sin(πx).
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEF[0];
    let t = x + G + 0.5;
    for (i, &c) in COEF.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Gamma function `Γ(x)` for positive `x`.
///
/// # Examples
///
/// ```
/// use cm_stats::special::gamma;
/// assert!((gamma(4.0) - 6.0).abs() < 1e-8);
/// ```
pub fn gamma(x: f64) -> f64 {
    ln_gamma(x).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_known_values() {
        // Reference values from standard tables.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778),
            (1.0, 0.8427007929),
            (2.0, 0.9953222650),
            (-1.0, -0.8427007929),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 2e-7, "erf({x})");
        }
    }

    #[test]
    fn erfc_complements_erf() {
        for x in [-2.0, -0.3, 0.0, 0.7, 3.1] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn gamma_factorials() {
        for n in 1..10u32 {
            let fact: f64 = (1..n).map(f64::from).product();
            assert!(
                (gamma(f64::from(n)) - fact).abs() / fact < 1e-9,
                "gamma({n})"
            );
        }
    }

    #[test]
    fn gamma_half() {
        let want = std::f64::consts::PI.sqrt();
        assert!((gamma(0.5) - want).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn ln_gamma_rejects_non_positive() {
        ln_gamma(0.0);
    }
}
