//! Uncertainty-aware estimation for reconstructed counter values (the
//! BayesPerf direction): Gaussian posteriors, deterministic resampling
//! streams, and the top-K ranking-stability score.
//!
//! The point cleaner replaces an outlier or a missing sample with a
//! single number and forgets how confident that reconstruction was. The
//! `bayes` cleaning mode instead treats every reconstructed value as a
//! Gaussian [`Posterior`]: the mean is the point estimate (bit-identical
//! to the point cleaner's output) and the variance measures the
//! dispersion of the evidence the estimate was built from — the KNN
//! neighborhood for a missing-value fill, the surrounding segment for an
//! outlier replacement. This module holds the posterior type and the two
//! kernels that turn those variances into statements about a ranking:
//!
//! * [`rank_stability`] — the probability that a top-K importance order
//!   survives resampling every importance from its posterior, and
//! * [`empirical_coverage`] — the calibration check: how often nominal
//!   X % intervals actually cover the ground truth.
//!
//! All resampling is driven by [`ResampleStream`], a SplitMix64-style
//! counter stream: draw `d` is a pure function of `(seed, d)`, never of
//! execution order, so every score computed here is bit-identical at any
//! thread count.

use crate::{Distribution, Normal, StatsError};

/// A Gaussian posterior over one reconstructed value.
///
/// # Examples
///
/// ```
/// use cm_stats::estimator::Posterior;
///
/// let p = Posterior::new(10.0, 4.0); // mean 10, variance 4 (std 2)
/// let (lo, hi) = p.interval(0.9545); // ±2σ covers ~95.45 %
/// assert!((lo - 6.0).abs() < 0.01);
/// assert!((hi - 14.0).abs() < 0.01);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Posterior {
    /// The point estimate.
    pub mean: f64,
    /// Variance of the estimate (0 means "certain").
    pub variance: f64,
}

impl Posterior {
    /// Builds a posterior; a negative variance is clamped to zero (it
    /// can only arise from floating-point cancellation upstream).
    pub fn new(mean: f64, variance: f64) -> Self {
        Posterior {
            mean,
            variance: variance.max(0.0),
        }
    }

    /// Standard deviation of the posterior.
    pub fn std(&self) -> f64 {
        self.variance.sqrt()
    }

    /// The central interval covering `confidence` of the posterior mass.
    ///
    /// # Panics
    ///
    /// Panics unless `confidence` lies strictly inside `(0, 1)`.
    pub fn interval(&self, confidence: f64) -> (f64, f64) {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must lie in (0, 1), got {confidence}"
        );
        if self.variance == 0.0 {
            return (self.mean, self.mean);
        }
        let z = standard_quantile(0.5 + confidence / 2.0);
        let half = z * self.std();
        (self.mean - half, self.mean + half)
    }
}

/// Standard normal quantile via [`Normal`].
fn standard_quantile(p: f64) -> f64 {
    Normal::new(0.0, 1.0)
        .expect("unit normal parameters are valid")
        .quantile(p)
}

/// Derives an independent sub-seed from `(seed, stream)` with the
/// SplitMix64 finalizer — the same splittable-stream idiom the GBRT
/// trainer and the chaos harness use. Stream `s` of seed `x` never
/// collides with stream `s` of seed `y ≠ x` in practice, and adjacent
/// streams are statistically independent.
///
/// # Examples
///
/// ```
/// use cm_stats::estimator::mix_seed;
///
/// assert_ne!(mix_seed(7, 0), mix_seed(7, 1));
/// assert_eq!(mix_seed(7, 3), mix_seed(7, 3));
/// ```
pub fn mix_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic SplitMix64 random stream for posterior resampling.
///
/// Stream `(seed, stream)` is a pure function of its two arguments:
/// resampling draw `d` can be generated on any thread, in any order,
/// and always yields the same numbers — the property every stability
/// score in the pipeline leans on.
///
/// # Examples
///
/// ```
/// use cm_stats::estimator::ResampleStream;
///
/// let mut a = ResampleStream::new(42, 0);
/// let mut b = ResampleStream::new(42, 0);
/// assert_eq!(a.next_u64(), b.next_u64());
/// let u = a.next_f64();
/// assert!((0.0..1.0).contains(&u));
/// ```
#[derive(Debug, Clone)]
pub struct ResampleStream {
    state: u64,
}

impl ResampleStream {
    /// Opens stream `stream` of `seed`.
    pub fn new(seed: u64, stream: u64) -> Self {
        ResampleStream {
            state: mix_seed(seed, stream),
        }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next uniform draw in `[0, 1)` (53 bits of mantissa).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Next standard-normal draw, via the inverse CDF (so one uniform
    /// consumes exactly one `next_u64`, keeping streams aligned).
    pub fn next_gaussian(&mut self) -> f64 {
        let u = self.next_f64().clamp(f64::EPSILON, 1.0 - f64::EPSILON);
        standard_quantile(u)
    }
}

/// Indices of the top `k` values, descending, ties broken by lower
/// index first (a total order, so the baseline is unambiguous).
fn top_order(values: &[f64], k: usize) -> Vec<usize> {
    let mut order: Vec<usize> = (0..values.len()).collect();
    order.sort_by(|&a, &b| values[b].total_cmp(&values[a]).then(a.cmp(&b)));
    order.truncate(k);
    order
}

/// The ranking-stability score: the probability that the top-`top_k`
/// order of `means` (descending) survives resampling every value from
/// `N(means[i], stds[i]²)`.
///
/// Each of the `draws` resamples perturbs all values with an
/// independent [`ResampleStream`] keyed on `(seed, draw)` and checks
/// whether the perturbed top-K *order* (the same events in the same
/// positions) matches the unperturbed one; the score is the fraction of
/// draws that match. `1.0` means the order is rock-solid under the
/// posteriors; values near `0.0` mean the order is mostly noise.
///
/// Degenerate inputs short-circuit to exactly `1.0` without running the
/// Monte Carlo: an empty ranking, `top_k` of zero, a single value, or
/// all-zero `stds` (no posterior noise means the order cannot flip, so
/// the draws could only waste time agreeing).
///
/// # Errors
///
/// Returns [`StatsError::MismatchedLengths`] when `means` and `stds`
/// disagree, and [`StatsError::InvalidParameter`] for zero `draws`, a
/// non-finite mean or std, or a negative std.
///
/// # Examples
///
/// ```
/// use cm_stats::estimator::rank_stability;
///
/// // Well-separated means with tiny noise: the order always holds.
/// let solid = rank_stability(&[50.0, 30.0, 10.0], &[0.1, 0.1, 0.1], 2, 64, 7)?;
/// assert_eq!(solid, 1.0);
/// // Nearly-tied means with large noise: the order rarely holds.
/// let shaky = rank_stability(&[30.1, 30.0, 29.9], &[20.0, 20.0, 20.0], 2, 64, 7)?;
/// assert!(shaky < 0.9);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
pub fn rank_stability(
    means: &[f64],
    stds: &[f64],
    top_k: usize,
    draws: usize,
    seed: u64,
) -> Result<f64, StatsError> {
    if means.len() != stds.len() {
        return Err(StatsError::MismatchedLengths {
            left: means.len(),
            right: stds.len(),
        });
    }
    if draws == 0 {
        return Err(StatsError::InvalidParameter("draws must be at least 1"));
    }
    if means.iter().chain(stds).any(|v| !v.is_finite()) {
        return Err(StatsError::InvalidParameter(
            "means and stds must be finite",
        ));
    }
    if stds.iter().any(|&s| s < 0.0) {
        return Err(StatsError::InvalidParameter("stds must be nonnegative"));
    }
    // Degenerate rankings are perfectly stable by construction; answer
    // exactly 1.0 instead of resampling noise that cannot flip anything.
    if means.is_empty() || top_k == 0 || means.len() == 1 || stds.iter().all(|&s| s == 0.0) {
        return Ok(1.0);
    }
    let k = top_k.min(means.len());
    let baseline = top_order(means, k);
    let mut perturbed = vec![0.0f64; means.len()];
    let mut matches = 0usize;
    for draw in 0..draws {
        let mut stream = ResampleStream::new(seed, draw as u64);
        for (i, p) in perturbed.iter_mut().enumerate() {
            *p = means[i] + stds[i] * stream.next_gaussian();
        }
        if top_order(&perturbed, k) == baseline {
            matches += 1;
        }
    }
    Ok(matches as f64 / draws as f64)
}

/// The calibration check behind "are the intervals honest?": the
/// fraction of `truths` that fall inside their posterior's central
/// `confidence` interval. An honest estimator's empirical coverage
/// tracks the nominal level; the ground-truth calibration sweep in
/// `crates/sim` asserts exactly that against exact simulated counts.
///
/// # Errors
///
/// Returns [`StatsError::MismatchedLengths`] when the slices disagree
/// and [`StatsError::EmptyInput`] when there is nothing to check.
///
/// # Examples
///
/// ```
/// use cm_stats::estimator::{empirical_coverage, Posterior};
///
/// let posteriors = [Posterior::new(10.0, 1.0), Posterior::new(0.0, 1.0)];
/// // One truth inside its 95 % interval, one far outside.
/// let coverage = empirical_coverage(&[10.5, 9.0], &posteriors, 0.95)?;
/// assert_eq!(coverage, 0.5);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
pub fn empirical_coverage(
    truths: &[f64],
    posteriors: &[Posterior],
    confidence: f64,
) -> Result<f64, StatsError> {
    if truths.len() != posteriors.len() {
        return Err(StatsError::MismatchedLengths {
            left: truths.len(),
            right: posteriors.len(),
        });
    }
    if truths.is_empty() {
        return Err(StatsError::EmptyInput);
    }
    let covered = truths
        .iter()
        .zip(posteriors)
        .filter(|(&t, p)| {
            let (lo, hi) = p.interval(confidence);
            lo <= t && t <= hi
        })
        .count();
    Ok(covered as f64 / truths.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn posterior_interval_widens_with_confidence() {
        let p = Posterior::new(5.0, 9.0);
        let (lo90, hi90) = p.interval(0.90);
        let (lo99, hi99) = p.interval(0.99);
        assert!(lo99 < lo90 && hi99 > hi90);
        assert!((lo90 + hi90) / 2.0 - 5.0 < 1e-9);
    }

    #[test]
    fn zero_variance_interval_is_a_point() {
        let p = Posterior::new(3.0, 0.0);
        assert_eq!(p.interval(0.99), (3.0, 3.0));
    }

    #[test]
    fn negative_variance_is_clamped() {
        assert_eq!(Posterior::new(1.0, -1e-18).variance, 0.0);
    }

    #[test]
    #[should_panic(expected = "confidence")]
    fn interval_rejects_confidence_of_one() {
        Posterior::new(0.0, 1.0).interval(1.0);
    }

    #[test]
    fn streams_are_reproducible_and_distinct() {
        let draw = |seed, stream| {
            let mut s = ResampleStream::new(seed, stream);
            (0..4).map(|_| s.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(draw(1, 0), draw(1, 0));
        assert_ne!(draw(1, 0), draw(1, 1));
        assert_ne!(draw(1, 0), draw(2, 0));
    }

    #[test]
    fn gaussian_draws_have_sane_moments() {
        let mut s = ResampleStream::new(11, 0);
        let n = 4000;
        let draws: Vec<f64> = (0..n).map(|_| s.next_gaussian()).collect();
        let mean = draws.iter().sum::<f64>() / n as f64;
        let var = draws.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn stability_is_deterministic() {
        let means = [40.0, 35.0, 15.0, 10.0];
        let stds = [5.0, 5.0, 5.0, 5.0];
        let a = rank_stability(&means, &stds, 3, 128, 9).unwrap();
        let b = rank_stability(&means, &stds, 3, 128, 9).unwrap();
        assert_eq!(a, b);
        assert!((0.0..=1.0).contains(&a));
    }

    #[test]
    fn zero_noise_is_perfectly_stable() {
        let means = [4.0, 3.0, 2.0, 1.0];
        let stds = [0.0; 4];
        assert_eq!(rank_stability(&means, &stds, 4, 32, 0).unwrap(), 1.0);
    }

    /// Regression: a negative std was silently accepted and fed into the
    /// resampler, where it sign-flips every perturbation — a nonsense
    /// posterior quietly producing a plausible-looking score. It must be
    /// a typed error.
    #[test]
    fn negative_std_is_a_typed_error() {
        assert_eq!(
            rank_stability(&[2.0, 1.0], &[0.5, -0.5], 2, 16, 0),
            Err(StatsError::InvalidParameter("stds must be nonnegative"))
        );
    }

    /// Degenerate inputs must short-circuit to *exactly* 1.0 — a single
    /// event cannot change order and all-zero stds cannot perturb —
    /// regardless of the draw count or seed.
    #[test]
    fn degenerate_inputs_are_exactly_stable() {
        for draws in [1, 7, 64] {
            for seed in [0, 9, u64::MAX] {
                assert_eq!(
                    rank_stability(&[3.5], &[100.0], 1, draws, seed).unwrap(),
                    1.0
                );
                assert_eq!(
                    rank_stability(&[5.0, 4.0, 3.0], &[0.0; 3], 2, draws, seed).unwrap(),
                    1.0
                );
            }
        }
    }

    #[test]
    fn ties_under_huge_noise_are_unstable() {
        let means = [10.0, 10.0, 10.0, 10.0];
        let stds = [50.0; 4];
        let s = rank_stability(&means, &stds, 3, 256, 3).unwrap();
        // 4 equally-likely candidates for 3 slots: ~1/24 of draws match.
        assert!(s < 0.25, "stability {s}");
    }

    #[test]
    fn stability_validates_inputs() {
        assert!(rank_stability(&[1.0], &[1.0, 2.0], 1, 8, 0).is_err());
        assert!(rank_stability(&[1.0], &[1.0], 1, 0, 0).is_err());
        assert!(rank_stability(&[f64::NAN], &[1.0], 1, 8, 0).is_err());
        assert_eq!(rank_stability(&[], &[], 3, 8, 0).unwrap(), 1.0);
        assert_eq!(rank_stability(&[1.0], &[1.0], 0, 8, 0).unwrap(), 1.0);
    }

    #[test]
    fn top_k_larger_than_input_is_clamped() {
        let s = rank_stability(&[9.0, 1.0], &[0.01, 0.01], 10, 16, 5).unwrap();
        assert_eq!(s, 1.0);
    }

    #[test]
    fn coverage_of_honest_gaussians_tracks_nominal() {
        // Truths drawn from the very posteriors we report: coverage must
        // sit near the nominal level.
        let mut stream = ResampleStream::new(21, 0);
        let posteriors: Vec<Posterior> = (0..2000).map(|i| Posterior::new(i as f64, 4.0)).collect();
        let truths: Vec<f64> = posteriors
            .iter()
            .map(|p| p.mean + p.std() * stream.next_gaussian())
            .collect();
        let c90 = empirical_coverage(&truths, &posteriors, 0.90).unwrap();
        assert!((c90 - 0.90).abs() < 0.03, "coverage {c90}");
    }

    #[test]
    fn coverage_validates_inputs() {
        let p = [Posterior::new(0.0, 1.0)];
        assert!(empirical_coverage(&[1.0, 2.0], &p, 0.9).is_err());
        assert!(empirical_coverage(&[], &[], 0.9).is_err());
    }
}
