use crate::descriptive;
use crate::distribution::Distribution;
use crate::StatsError;

/// Euler–Mascheroni constant.
pub(crate) const EULER_GAMMA: f64 = 0.577_215_664_901_532_9;

/// Gumbel (type-I extreme value) distribution.
///
/// The GEV family degenerates to Gumbel when its shape parameter is zero;
/// the paper lists Gumbel among the long-tail candidates it tested with
/// Anderson–Darling before settling on GEV.
///
/// # Examples
///
/// ```
/// use cm_stats::{Distribution, Gumbel};
///
/// let g = Gumbel::new(0.0, 1.0)?;
/// // Mode of the standard Gumbel is at 0 with CDF exp(-1).
/// assert!((g.cdf(0.0) - (-1.0f64).exp()).abs() < 1e-12);
/// # Ok::<(), cm_stats::StatsError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gumbel {
    mu: f64,
    beta: f64,
}

impl Gumbel {
    /// Creates a Gumbel distribution with location `mu` and scale `beta`.
    ///
    /// # Errors
    ///
    /// Returns [`StatsError::InvalidParameter`] unless `beta > 0` and
    /// both parameters are finite.
    pub fn new(mu: f64, beta: f64) -> Result<Self, StatsError> {
        if !mu.is_finite() || !beta.is_finite() || beta <= 0.0 {
            return Err(StatsError::InvalidParameter(
                "gumbel requires finite mu and beta > 0",
            ));
        }
        Ok(Gumbel { mu, beta })
    }

    /// Fits by the method of moments: `beta = s·sqrt(6)/pi`,
    /// `mu = mean - beta·gamma`.
    ///
    /// # Errors
    ///
    /// Returns an error for fewer than two values or zero-variance data.
    pub fn fit(data: &[f64]) -> Result<Self, StatsError> {
        if data.len() < 2 {
            return Err(StatsError::NotEnoughData {
                required: 2,
                available: data.len(),
            });
        }
        let m = descriptive::mean(data)?;
        let sd = descriptive::std_dev(data)?;
        let beta = sd * 6.0f64.sqrt() / std::f64::consts::PI;
        Gumbel::new(m - beta * EULER_GAMMA, beta)
    }

    /// Location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter.
    pub fn beta(&self) -> f64 {
        self.beta
    }
}

impl Distribution for Gumbel {
    fn pdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.beta;
        ((-z - (-z).exp()).exp()) / self.beta
    }

    fn cdf(&self, x: f64) -> f64 {
        let z = (x - self.mu) / self.beta;
        (-(-z).exp()).exp()
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile requires p in (0, 1)");
        self.mu - self.beta * (-p.ln()).ln()
    }

    fn mean(&self) -> f64 {
        self.mu + self.beta * EULER_GAMMA
    }

    fn variance(&self) -> f64 {
        let pi = std::f64::consts::PI;
        pi * pi * self.beta * self.beta / 6.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_bad_parameters() {
        assert!(Gumbel::new(0.0, 0.0).is_err());
        assert!(Gumbel::new(f64::INFINITY, 1.0).is_err());
    }

    #[test]
    fn quantile_inverts_cdf() {
        let g = Gumbel::new(2.0, 0.5).unwrap();
        for p in [0.01, 0.2, 0.5, 0.8, 0.99] {
            assert!((g.cdf(g.quantile(p)) - p).abs() < 1e-10);
        }
    }

    #[test]
    fn pdf_integrates_to_one() {
        let g = Gumbel::new(0.0, 1.0).unwrap();
        let (lo, hi, steps) = (-5.0, 20.0, 40_000);
        let h = (hi - lo) / steps as f64;
        let integral: f64 = (0..steps)
            .map(|i| g.pdf(lo + (i as f64 + 0.5) * h) * h)
            .sum();
        assert!((integral - 1.0).abs() < 1e-5);
    }

    #[test]
    fn fit_recovers_parameters() {
        let truth = Gumbel::new(10.0, 2.0).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let data: Vec<f64> = (0..30_000).map(|_| truth.sample(&mut rng)).collect();
        let fitted = Gumbel::fit(&data).unwrap();
        assert!((fitted.mu() - 10.0).abs() < 0.1, "mu = {}", fitted.mu());
        assert!(
            (fitted.beta() - 2.0).abs() < 0.1,
            "beta = {}",
            fitted.beta()
        );
    }

    #[test]
    fn moments_match_formulas() {
        let g = Gumbel::new(1.0, 3.0).unwrap();
        assert!((Distribution::mean(&g) - (1.0 + 3.0 * EULER_GAMMA)).abs() < 1e-12);
        let pi = std::f64::consts::PI;
        assert!((g.variance() - pi * pi * 1.5).abs() < 1e-12);
    }

    #[test]
    fn right_tail_is_heavier_than_left() {
        let g = Gumbel::new(0.0, 1.0).unwrap();
        // P(X > mean + 3) should exceed P(X < mean - 3).
        let m = Distribution::mean(&g);
        assert!(1.0 - g.cdf(m + 3.0) > g.cdf(m - 3.0));
    }
}
