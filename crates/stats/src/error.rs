use std::error::Error;
use std::fmt;

/// Errors produced by statistical routines in this crate.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum StatsError {
    /// An input slice was empty where at least one value is required.
    EmptyInput,
    /// Two paired inputs had different lengths.
    MismatchedLengths {
        /// Length of the first input.
        left: usize,
        /// Length of the second input.
        right: usize,
    },
    /// A distribution or algorithm parameter was out of range.
    InvalidParameter(&'static str),
    /// A linear system was singular (e.g. collinear regressors).
    SingularSystem,
    /// Not enough data points for the requested computation.
    NotEnoughData {
        /// Points required.
        required: usize,
        /// Points available.
        available: usize,
    },
    /// A decomposition was asked for more components than the data's
    /// numerical rank supports.
    RankDeficient {
        /// Components requested.
        requested: usize,
        /// Components the data actually supports.
        found: usize,
    },
}

impl fmt::Display for StatsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatsError::EmptyInput => f.write_str("input slice was empty"),
            StatsError::MismatchedLengths { left, right } => {
                write!(
                    f,
                    "paired inputs have different lengths ({left} vs {right})"
                )
            }
            StatsError::InvalidParameter(what) => write!(f, "invalid parameter: {what}"),
            StatsError::SingularSystem => f.write_str("linear system is singular"),
            StatsError::NotEnoughData {
                required,
                available,
            } => write!(f, "need at least {required} data points, got {available}"),
            StatsError::RankDeficient { requested, found } => write!(
                f,
                "requested {requested} components but the data supports only {found}"
            ),
        }
    }
}

impl Error for StatsError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_concise() {
        let msgs = [
            StatsError::EmptyInput.to_string(),
            StatsError::MismatchedLengths { left: 1, right: 2 }.to_string(),
            StatsError::InvalidParameter("sigma must be positive").to_string(),
            StatsError::SingularSystem.to_string(),
            StatsError::NotEnoughData {
                required: 4,
                available: 1,
            }
            .to_string(),
            StatsError::RankDeficient {
                requested: 3,
                found: 1,
            }
            .to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(!m.ends_with('.'));
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<StatsError>();
    }
}
