//! Property-based tests for the statistical substrate.

use cm_stats::{descriptive, dtw, knn, regression, Distribution, Gev, Gumbel, Logistic, Normal};
use proptest::prelude::*;

fn finite_series(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-1.0e6..1.0e6f64, 1..max_len)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn dtw_identity_is_zero(a in finite_series(64)) {
        prop_assert!(dtw::distance(&a, &a).abs() < 1e-9);
    }

    #[test]
    fn dtw_is_symmetric(a in finite_series(48), b in finite_series(48)) {
        let ab = dtw::distance(&a, &b);
        let ba = dtw::distance(&b, &a);
        prop_assert!((ab - ba).abs() < 1e-9 * (1.0 + ab.abs()));
    }

    #[test]
    fn dtw_is_nonnegative(a in finite_series(48), b in finite_series(48)) {
        prop_assert!(dtw::distance(&a, &b) >= 0.0);
    }

    #[test]
    fn dtw_ignores_duplicated_samples(a in finite_series(32)) {
        // Warping absorbs repetition: duplicating every sample costs 0.
        let doubled: Vec<f64> = a.iter().flat_map(|&v| [v, v]).collect();
        prop_assert!(dtw::distance(&a, &doubled).abs() < 1e-9);
    }

    #[test]
    fn banded_dtw_upper_bounds_exact(
        a in finite_series(40),
        b in finite_series(40),
        radius in 1usize..16,
    ) {
        let exact = dtw::distance(&a, &b);
        let banded = dtw::distance_banded(&a, &b, radius);
        prop_assert!(banded >= exact - 1e-9 * (1.0 + exact.abs()));
    }

    #[test]
    fn banded_with_radius_covering_both_lengths_is_exact(
        a in finite_series(40),
        b in finite_series(40),
    ) {
        // A band at least max(len(a), len(b)) wide covers the whole DP
        // grid, so the banded distance must equal the exact one.
        let radius = a.len().max(b.len());
        let exact = dtw::distance(&a, &b);
        let banded = dtw::distance_banded(&a, &b, radius);
        prop_assert!((exact - banded).abs() <= 1e-9 * (1.0 + exact.abs()));
    }

    #[test]
    fn batch_dtw_matches_sequential_elementwise(
        series in prop::collection::vec(finite_series(32), 2..10),
    ) {
        let pairs: Vec<(&[f64], &[f64])> = (0..series.len() - 1)
            .map(|k| (series[k].as_slice(), series[k + 1].as_slice()))
            .collect();
        let batch = dtw::distance_batch(&pairs);
        let banded = dtw::distance_batch_banded(&pairs, 6);
        prop_assert_eq!(batch.len(), pairs.len());
        for (k, &(a, b)) in pairs.iter().enumerate() {
            prop_assert_eq!(batch[k], dtw::distance(a, b));
            prop_assert_eq!(banded[k], dtw::distance_banded(a, b, 6));
        }
    }

    #[test]
    fn mean_lies_between_min_and_max(data in finite_series(64)) {
        let mean = descriptive::mean(&data).unwrap();
        let min = descriptive::min(&data).unwrap();
        let max = descriptive::max(&data).unwrap();
        prop_assert!(min <= mean + 1e-9 && mean <= max + 1e-9);
    }

    #[test]
    fn quantiles_are_monotone(data in finite_series(64), q1 in 0.0..1.0f64, q2 in 0.0..1.0f64) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let a = descriptive::quantile(&data, lo).unwrap();
        let b = descriptive::quantile(&data, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn fraction_within_is_monotone_in_threshold(
        data in finite_series(64),
        t1 in -1.0e6..1.0e6f64,
        t2 in -1.0e6..1.0e6f64,
    ) {
        let (lo, hi) = if t1 <= t2 { (t1, t2) } else { (t2, t1) };
        let a = descriptive::fraction_within(&data, lo).unwrap();
        let b = descriptive::fraction_within(&data, hi).unwrap();
        prop_assert!(a <= b);
    }

    #[test]
    fn normal_quantile_inverts_cdf(
        mu in -100.0..100.0f64,
        sigma in 0.1..50.0f64,
        p in 0.001..0.999f64,
    ) {
        let d = Normal::new(mu, sigma).unwrap();
        prop_assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-6);
    }

    #[test]
    fn gumbel_quantile_inverts_cdf(
        mu in -100.0..100.0f64,
        beta in 0.1..50.0f64,
        p in 0.001..0.999f64,
    ) {
        let d = Gumbel::new(mu, beta).unwrap();
        prop_assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-9);
    }

    #[test]
    fn logistic_quantile_inverts_cdf(
        mu in -100.0..100.0f64,
        s in 0.1..50.0f64,
        p in 0.001..0.999f64,
    ) {
        let d = Logistic::new(mu, s).unwrap();
        prop_assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-9);
    }

    #[test]
    fn gev_quantile_inverts_cdf(
        mu in -10.0..10.0f64,
        sigma in 0.1..10.0f64,
        xi in -0.45..0.45f64,
        p in 0.001..0.999f64,
    ) {
        let d = Gev::new(mu, sigma, xi).unwrap();
        prop_assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-7);
    }

    #[test]
    fn cdfs_are_monotone(
        mu in -10.0..10.0f64,
        sigma in 0.1..10.0f64,
        x1 in -100.0..100.0f64,
        x2 in -100.0..100.0f64,
    ) {
        let d = Normal::new(mu, sigma).unwrap();
        let (lo, hi) = if x1 <= x2 { (x1, x2) } else { (x2, x1) };
        prop_assert!(d.cdf(lo) <= d.cdf(hi) + 1e-12);
    }

    #[test]
    fn knn_prediction_within_target_range(
        ys in prop::collection::vec(-1.0e3..1.0e3f64, 3..32),
        query in -100.0..100.0f64,
        k in 1usize..4,
    ) {
        let xs: Vec<f64> = (0..ys.len()).map(|i| i as f64).collect();
        let model = knn::KnnRegressor::fit(&xs, &ys, k).unwrap();
        let pred = model.predict(query);
        let min = ys.iter().copied().fold(f64::INFINITY, f64::min);
        let max = ys.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(pred >= min - 1e-9 && pred <= max + 1e-9);
    }

    #[test]
    fn simple_regression_recovers_exact_lines(
        slope in -100.0..100.0f64,
        intercept in -100.0..100.0f64,
        n in 3usize..32,
    ) {
        let xs: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| intercept + slope * x).collect();
        let fit = regression::SimpleLinear::fit(&xs, &ys).unwrap();
        prop_assert!((fit.slope() - slope).abs() < 1e-6 * (1.0 + slope.abs()));
        prop_assert!((fit.intercept() - intercept).abs() < 1e-5 * (1.0 + intercept.abs()));
    }

    #[test]
    fn impute_preserves_valid_samples(
        mut values in prop::collection::vec(0.5..1.0e3f64, 8..48),
        gap in 0usize..8,
    ) {
        let gap = gap.min(values.len() - 6);
        let missing: Vec<usize> = (0..gap).collect();
        for &i in &missing {
            values[i] = 0.0;
        }
        let original = values.clone();
        knn::impute_series(&mut values, &missing, 5).unwrap();
        // Non-missing positions unchanged; missing ones within range.
        let vmin = original.iter().skip(gap).fold(f64::INFINITY, |a, &b| a.min(b));
        let vmax = original.iter().skip(gap).fold(0.0f64, |a, &b| a.max(b));
        for (i, (&now, &before)) in values.iter().zip(&original).enumerate() {
            if missing.contains(&i) {
                prop_assert!(now >= vmin - 1e-9 && now <= vmax + 1e-9);
            } else {
                prop_assert_eq!(now, before);
            }
        }
    }
}
