//! The request/response protocol and its transport seam.

use cm_events::EventId;
use cm_sim::Benchmark;
use cm_store::{SeriesKey, StoreInfo};
use cm_stream::{AppendReport, RankSummary};
use counterminer::{AnalysisReport, ClusterConfig, ClusterReport, IngestSummary};
use std::error::Error;
use std::fmt;
use std::sync::Arc;

/// One request to the serving layer. Stores are addressed by the name
/// they were registered under ([`Server::add_store`](crate::Server::add_store)).
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Liveness probe; answered with [`Response::Pong`] without
    /// touching any store.
    Ping,
    /// Aggregate facts about a store ([`Store::info`](cm_store::Store::info)).
    Info {
        /// Registered store name.
        store: String,
    },
    /// Read one stored series. Concurrent queries against the same
    /// store are coalesced into one batched read.
    Query {
        /// Registered store name.
        store: String,
        /// The series to read.
        key: SeriesKey,
    },
    /// Run (or resume) the full analysis of a benchmark from the
    /// store's persisted snapshot, collecting first if the store is
    /// cold. Identical concurrent requests are deduplicated.
    Analyze {
        /// Registered store name.
        store: String,
        /// The benchmark to analyze.
        benchmark: Benchmark,
    },
    /// Like [`Request::Analyze`], but answered with just the top `k`
    /// of the importance ranking — piggybacks on any concurrent
    /// analysis of the same `(store, benchmark)`.
    Ranked {
        /// Registered store name.
        store: String,
        /// The benchmark to analyze.
        benchmark: Benchmark,
        /// How many ranking entries to return.
        top_k: usize,
    },
    /// Run the cross-benchmark `cluster` analysis mode
    /// ([`CounterMiner::analyze_cluster`](counterminer::CounterMiner::analyze_cluster)):
    /// cluster cleaned counter signatures and flag anomalous runs,
    /// ingesting any cold benchmark first. Identical concurrent
    /// requests deduplicate into one computation, like
    /// [`Request::Analyze`].
    Cluster {
        /// Registered store name.
        store: String,
        /// The benchmarks to cluster across.
        benchmarks: Vec<Benchmark>,
        /// Clustering and anomaly-detection knobs.
        config: ClusterConfig,
    },
    /// Collect and persist a benchmark's snapshot without modeling
    /// (the serving form of `counterminer ingest`).
    Ingest {
        /// Registered store name.
        store: String,
        /// The benchmark to collect.
        benchmark: Benchmark,
    },
    /// Append the next `rows` sampling intervals of a live stream to
    /// the store (opening — or resuming — the server-side
    /// [`StreamSession`](cm_stream::StreamSession) on first touch).
    /// Appends to one `(store, benchmark)` stream serialize; the commit
    /// is atomic, so a failed append leaves the previous committed
    /// snapshot intact and answers with a typed error.
    StreamAppend {
        /// Registered store name.
        store: String,
        /// The benchmark being streamed.
        benchmark: Benchmark,
        /// How many source rows to append.
        rows: usize,
    },
    /// Watch a stream: be notified when — and only when — the top-K
    /// importance order or the MAPM materially changes
    /// (see [`RankSummary::materially_differs`](cm_stream::RankSummary::materially_differs)).
    Subscribe {
        /// Registered store name.
        store: String,
        /// The benchmark stream to watch.
        benchmark: Benchmark,
        /// How many leading ranking entries the subscriber cares about.
        top_k: usize,
    },
    /// Drain a subscription's queued notifications with sequence
    /// numbers greater than `after`. Never blocks server-side: an empty
    /// answer means "nothing new yet".
    Poll {
        /// The subscription to drain.
        id: SubscriptionId,
        /// Only notifications with `seq > after` are returned.
        after: u64,
    },
}

/// A successful answer to a [`Request`] (same order of variants).
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Answer to [`Request::Ping`].
    Pong,
    /// Answer to [`Request::Info`].
    Info(StoreInfo),
    /// Answer to [`Request::Query`]: the decoded series, shared with
    /// the block cache (cloning the `Arc` copies no samples).
    Series(Arc<Vec<f64>>),
    /// Answer to [`Request::Analyze`]: the shared analysis — every
    /// deduplicated waiter receives the same allocation.
    Analysis(Arc<RankedAnalysis>),
    /// Answer to [`Request::Ranked`]: the top-k importance ranking.
    Ranked(Vec<(EventId, f64)>),
    /// Answer to [`Request::Cluster`]: the shared cluster report —
    /// every deduplicated waiter receives the same allocation.
    Clustered(Arc<ClusterReport>),
    /// Answer to [`Request::Ingest`].
    Ingested(IngestSummary),
    /// Answer to [`Request::StreamAppend`]: what the append did.
    Appended(AppendReport),
    /// Answer to [`Request::Subscribe`]: the id to poll with.
    Subscribed(SubscriptionId),
    /// Answer to [`Request::Poll`]: the notifications drained, oldest
    /// first (empty when nothing material happened since `after`).
    Notify(Vec<Notification>),
}

/// Identifies one subscription on one server.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(pub u64);

/// Why a subscriber was notified.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NotifyReason {
    /// The first analysis this subscription observed.
    Initial,
    /// The order of the watched top-K ranking entries changed.
    TopKChanged,
    /// The MAPM changed: a different event set, or a material shift in
    /// its held-out error.
    MapmChanged,
}

/// One ranking-change notification.
#[derive(Debug, Clone, PartialEq)]
pub struct Notification {
    /// Monotonic per-subscription sequence number, starting at 1.
    pub seq: u64,
    /// What changed.
    pub reason: NotifyReason,
    /// Rows the triggering analysis was trained on.
    pub sealed_rows: usize,
    /// The new ranking summary.
    pub summary: RankSummary,
}

/// The serving-layer view of an [`AnalysisReport`]: the rankings and
/// cleaning tallies, without the trained model (which is large and not
/// `Clone`). This is what a wire format would carry.
#[derive(Debug, Clone, PartialEq)]
pub struct RankedAnalysis {
    /// The benchmark analyzed.
    pub benchmark: Benchmark,
    /// The snapshot fingerprint the analysis was computed from — the
    /// deduplication key.
    pub fingerprint: u64,
    /// The MAPM importance ranking: `(event, importance %)`,
    /// descending.
    pub ranking: Vec<(EventId, f64)>,
    /// Cross-validation error of the most accurate model.
    pub best_error: f64,
    /// Interaction ranking as `(event_a, event_b, intensity, share %)`.
    pub interactions: Vec<(EventId, EventId, f64, f64)>,
    /// Total outliers replaced during cleaning.
    pub outliers_replaced: usize,
    /// Total missing values filled during cleaning.
    pub missing_filled: usize,
    /// Ranking-stability score (`bayes` cleaning mode only): probability
    /// the top-K importance order survives resampling from the
    /// posteriors. `None` under the point cleaner. Lets a subscriber
    /// judge whether a rank change between two analyses is within noise.
    pub stability: Option<f64>,
}

impl RankedAnalysis {
    /// Flattens a pipeline report into the wire shape.
    pub fn from_report(report: &AnalysisReport, fingerprint: u64) -> Self {
        RankedAnalysis {
            benchmark: report.benchmark,
            fingerprint,
            ranking: report.eir.ranking.clone(),
            best_error: report.eir.best_error(),
            interactions: report
                .interactions
                .iter()
                .map(|p| (p.pair.0, p.pair.1, p.intensity, p.share))
                .collect(),
            outliers_replaced: report.outliers_replaced,
            missing_filled: report.missing_filled,
            stability: report.eir.uncertainty.as_ref().map(|u| u.stability),
        }
    }
}

/// Why a request failed. Always typed, always delivered to the
/// submitting client — a failing request never unwinds the server.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServeError {
    /// The request named a store that was never registered.
    UnknownStore(String),
    /// The store layer failed (I/O, checksum, truncation); the message
    /// is the rendered [`StoreError`](cm_store::StoreError).
    Store(String),
    /// The analysis pipeline failed (or a handler panicked); the
    /// message is the rendered [`CmError`](counterminer::CmError).
    Pipeline(String),
    /// The streaming layer refused: configuration mismatch against the
    /// persisted stream, or inconsistent stream state; the message is
    /// the rendered [`StreamError`](cm_stream::StreamError).
    Stream(String),
    /// A [`Request::Poll`] named a subscription that does not exist.
    UnknownSubscription(SubscriptionId),
    /// The server shut down before answering.
    Closed,
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::UnknownStore(name) => write!(f, "unknown store {name:?}"),
            ServeError::Store(msg) => write!(f, "store failure: {msg}"),
            ServeError::Pipeline(msg) => write!(f, "pipeline failure: {msg}"),
            ServeError::Stream(msg) => write!(f, "stream failure: {msg}"),
            ServeError::UnknownSubscription(SubscriptionId(id)) => {
                write!(f, "unknown subscription #{id}")
            }
            ServeError::Closed => write!(f, "server closed"),
        }
    }
}

impl Error for ServeError {}

/// The transport seam: anything that can carry a request to a server
/// and bring back its response. The in-process [`Client`](crate::Client)
/// is the only implementation today; a socket client would be another.
pub trait Transport {
    /// Submits `req` and blocks until its response arrives.
    ///
    /// # Errors
    ///
    /// Returns the request's [`ServeError`] — including
    /// [`ServeError::Closed`] if the server went away.
    fn send(&self, req: Request) -> Result<Response, ServeError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serve_error_renders_each_variant() {
        assert_eq!(
            ServeError::UnknownStore("x".into()).to_string(),
            "unknown store \"x\""
        );
        assert!(ServeError::Store("bad crc".into())
            .to_string()
            .contains("bad crc"));
        assert!(ServeError::Pipeline("no data".into())
            .to_string()
            .contains("no data"));
        assert_eq!(ServeError::Closed.to_string(), "server closed");
    }
}
