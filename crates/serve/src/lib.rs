//! The CounterMiner serving layer: a long-running, concurrent analysis
//! service over one or more persistent [`cm_store`] files.
//!
//! The batch pipeline (`counterminer analyze`) answers one question per
//! process. This crate turns the same engine into a *service*: a
//! [`Server`] owns a set of `.cmstore` files plus one [`CounterMiner`]
//! configuration, and any number of [`Client`]s — one per simulated
//! connection, cheaply cloneable — submit [`Request`]s concurrently and
//! wait on [`Response`]s. Transport is an in-process channel behind the
//! [`Transport`] trait, so a socket server can slot in later without
//! touching the scheduling core.
//!
//! # Scheduling: batching and deduplication
//!
//! The perf story is the scheduler (see [`ServeConfig::batching`]).
//! Requests are drained from the submission channel in batches and
//! *coalesced* before execution:
//!
//! * concurrent [`Request::Query`]s against the same store merge into a
//!   single [`Store::read_series_batch`] call — one pass of region
//!   coalescing, positioned reads, and parallel decode for the whole
//!   group instead of one small read per request;
//! * concurrent [`Request::Analyze`] / [`Request::Ranked`] requests for
//!   the same `(store, benchmark)` — which share a snapshot fingerprint
//!   under the server's single miner configuration — are deduplicated:
//!   one leader computes the analysis, every waiter receives the same
//!   [`RankedAnalysis`] behind an [`Arc`](std::sync::Arc). Observable
//!   as `serve.dedup.hits`.
//!
//! All stores share one [`BlockCache`](cm_store::BlockCache) (via
//! [`Store::open_with_cache`]), so hot blocks are cached once per
//! *server*, not once per store handle, and
//! [`ServerHandle::publish_gauges`] exposes per-shard occupancy and
//! hit/miss/eviction gauges.
//!
//! # Determinism and failure
//!
//! Response *payloads* are bit-identical to single-threaded execution:
//! batching and deduplication change when work happens, never what it
//! computes. The batch-formation counters (`serve.batch.*`,
//! `serve.dedup.*`) depend on queue timing and are scheduling-scoped,
//! like `par.sched.*`; `serve.requests` / `serve.errors` are
//! workload-deterministic. Request failures — unknown store, store
//! corruption, a panicking handler — come back as typed
//! [`ServeError`]s on the submitting client; they never take down the
//! server or other in-flight requests.
//!
//! # Examples
//!
//! ```no_run
//! use cm_serve::{Request, Response, ServeConfig, Server};
//! use cm_sim::Benchmark;
//!
//! let mut server = Server::new(ServeConfig::default());
//! server.add_store("main", "perf.cmstore")?;
//! let handle = server.start();
//! let client = handle.client();
//! let pending = client.submit(Request::Analyze {
//!     store: "main".to_string(),
//!     benchmark: Benchmark::Sort,
//! });
//! match pending.wait()? {
//!     Response::Analysis(report) => println!("top event: {:?}", report.ranking[0]),
//!     other => panic!("unexpected response {other:?}"),
//! }
//! handle.shutdown();
//! # Ok::<(), cm_serve::ServeError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod proto;
mod server;

pub use proto::{
    Notification, NotifyReason, RankedAnalysis, Request, Response, ServeError, SubscriptionId,
    Transport,
};
pub use server::{
    Client, Pending, ServeConfig, ServeStats, Server, ServerHandle, SubscriptionHandle,
};

// Re-exported so service users can build configurations without naming
// the pipeline crate directly.
pub use cm_store::{CacheConfig, Store};
pub use cm_stream::{AppendReport, RankSummary, StreamConfig};
pub use counterminer::{CounterMiner, MinerConfig};
