//! The server: submission channel, batching scheduler, worker pool.

use crate::proto::{
    Notification, NotifyReason, RankedAnalysis, Request, Response, ServeError, SubscriptionId,
    Transport,
};
use cm_obs::{span_enter_detached, span_enter_under, SpanGuard, SpanHandle};
use cm_sim::Benchmark;
use cm_store::{BlockCache, CacheConfig, CacheStats, SeriesKey, Store, StoreError, Vfs};
use cm_stream::{RankSummary, StreamConfig, StreamError, StreamSession};
use counterminer::{ClusterConfig, ClusterReport, CmError, CounterMiner, MinerConfig};
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How the server schedules and executes requests.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Worker threads executing request batches; `0` means one per
    /// available CPU.
    pub workers: usize,
    /// Most requests drained into one scheduling batch.
    pub max_batch: usize,
    /// Whether to coalesce queries and deduplicate analyses. `false`
    /// executes every request individually — the baseline the load
    /// harness compares against.
    pub batching: bool,
    /// How long the scheduler waits after the first request of a batch
    /// for more to arrive. Zero (the default) only drains what is
    /// already queued — lowest latency; a small linger trades latency
    /// for larger batches under open-loop load.
    pub linger: Duration,
    /// The pipeline configuration shared by every analysis this server
    /// performs. One configuration per server is what makes identical
    /// requests share a snapshot fingerprint.
    pub miner: MinerConfig,
    /// The shared block cache all registered stores draw from.
    pub cache: CacheConfig,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 0,
            max_batch: 64,
            batching: true,
            linger: Duration::ZERO,
            miner: MinerConfig::default(),
            cache: CacheConfig::default(),
        }
    }
}

/// A submitted request travelling to the scheduler.
struct ReqEnvelope {
    req: Request,
    reply: Sender<Result<Response, ServeError>>,
    /// The client-side request span; worker execution spans attach
    /// under it so the span tree reads request → exec even though they
    /// run on different threads.
    parent: SpanHandle,
}

enum Envelope {
    Req(ReqEnvelope),
    Shutdown,
}

/// Atomic mirror of the `serve.*` counters, readable without enabling
/// observability.
#[derive(Debug, Default)]
struct StatsInner {
    requests: AtomicU64,
    errors: AtomicU64,
    batch_flushes: AtomicU64,
    batch_coalesced: AtomicU64,
    dedup_hits: AtomicU64,
}

/// A point-in-time copy of the server's request counters (see
/// [`ServerHandle::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServeStats {
    /// Requests dispatched (every request counts exactly once).
    pub requests: u64,
    /// Requests answered with a [`ServeError`].
    pub errors: u64,
    /// Scheduling batches flushed to the worker pool.
    pub batch_flushes: u64,
    /// Query requests that rode along in a batched store read instead
    /// of issuing their own (`group size - 1`, summed).
    pub batch_coalesced: u64,
    /// Analyze/ranked requests answered from another request's
    /// computation (`group size - 1`, summed).
    pub dedup_hits: u64,
}

/// One subscriber's change-detection state: comparisons run against the
/// last summary it was *notified* with, so a slow drift still notifies
/// once it accumulates past the tolerance.
#[derive(Debug)]
struct Subscription {
    store: String,
    benchmark: Benchmark,
    top_k: usize,
    last: Option<RankSummary>,
    queue: Vec<Notification>,
    next_seq: u64,
}

/// The subscription table; ids are never reused.
#[derive(Debug, Default)]
struct SubRegistry {
    next_id: u64,
    subs: HashMap<SubscriptionId, Subscription>,
}

/// State shared by the scheduler and every worker.
#[derive(Debug)]
struct Shared {
    stores: HashMap<String, Arc<RwLock<Store>>>,
    miner: CounterMiner,
    cache: Arc<BlockCache>,
    stats: StatsInner,
    /// Configuration every server-side stream session opens with.
    stream: StreamConfig,
    /// Live stream sessions, one per `(store, benchmark)`. The mutex
    /// serializes appends to a stream; a session that fails is dropped
    /// so the next append reopens from the last committed snapshot.
    streams: Mutex<HashMap<(String, Benchmark), StreamSession>>,
    subs: Mutex<SubRegistry>,
}

impl Shared {
    fn store(&self, name: &str) -> Result<&Arc<RwLock<Store>>, ServeError> {
        self.stores
            .get(name)
            .ok_or_else(|| ServeError::UnknownStore(name.to_string()))
    }
}

fn store_err(e: StoreError) -> ServeError {
    ServeError::Store(e.to_string())
}

fn stream_err(e: StreamError) -> ServeError {
    match e {
        StreamError::Store(s) => ServeError::Store(s.to_string()),
        other => ServeError::Stream(other.to_string()),
    }
}

fn cm_err(e: CmError) -> ServeError {
    match e {
        CmError::Store(s) => ServeError::Store(s.to_string()),
        other => ServeError::Pipeline(other.to_string()),
    }
}

/// A configured-but-not-yet-running server. Stores are registered
/// here; [`Server::start`] moves everything onto the scheduler thread
/// and returns the [`ServerHandle`].
///
/// Clients may be created (and may submit) *before* `start` — requests
/// queue in the channel and are drained into the first scheduling
/// batch. Tests use this to make batch formation deterministic.
#[derive(Debug)]
pub struct Server {
    config: ServeConfig,
    cache: Arc<BlockCache>,
    stores: HashMap<String, Arc<RwLock<Store>>>,
    tx: Sender<Envelope>,
    rx: Receiver<Envelope>,
}

impl Server {
    /// Creates a server with no stores registered.
    pub fn new(config: ServeConfig) -> Self {
        let cache = Arc::new(BlockCache::new(config.cache));
        let (tx, rx) = mpsc::channel();
        Server {
            config,
            cache,
            stores: HashMap::new(),
            tx,
            rx,
        }
    }

    /// The scheduling configuration this server was built with.
    pub fn config(&self) -> &ServeConfig {
        &self.config
    }

    /// Opens the store at `path` against the server's shared block
    /// cache and registers it under `name`. Re-registering a name
    /// replaces the previous store.
    ///
    /// # Errors
    ///
    /// Any [`StoreError`] from opening, as [`ServeError::Store`].
    pub fn add_store(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
    ) -> Result<(), ServeError> {
        let store = Store::open_with_cache(path, Arc::clone(&self.cache)).map_err(store_err)?;
        self.stores
            .insert(name.into(), Arc::new(RwLock::new(store)));
        Ok(())
    }

    /// Like [`Server::add_store`], with filesystem operations routed
    /// through `vfs` — how the chaos suite serves from a faulty disk.
    ///
    /// # Errors
    ///
    /// As for [`Server::add_store`].
    pub fn add_store_with_vfs(
        &mut self,
        name: impl Into<String>,
        path: impl AsRef<Path>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<(), ServeError> {
        let store = Store::open_shared(path, Arc::clone(&self.cache), vfs).map_err(store_err)?;
        self.stores
            .insert(name.into(), Arc::new(RwLock::new(store)));
        Ok(())
    }

    /// A client bound to this server. Valid before and after
    /// [`Server::start`].
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.clone(),
        }
    }

    /// Starts the scheduler and worker pool, consuming the server.
    pub fn start(self) -> ServerHandle {
        let Server {
            config,
            cache,
            stores,
            tx,
            rx,
        } = self;
        let shared = Arc::new(Shared {
            stores,
            miner: CounterMiner::new(config.miner),
            cache,
            stats: StatsInner::default(),
            stream: StreamConfig::from_env(config.miner),
            streams: Mutex::new(HashMap::new()),
            subs: Mutex::new(SubRegistry::default()),
        });
        let workers = if config.workers == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.workers
        };
        let scheduler = {
            let shared = Arc::clone(&shared);
            let sched = Scheduler {
                shared,
                max_batch: config.max_batch.max(1),
                batching: config.batching,
                linger: config.linger,
                workers,
            };
            std::thread::Builder::new()
                .name("cm-serve-sched".to_string())
                .spawn(move || sched.run(rx))
                .expect("spawn scheduler thread")
        };
        ServerHandle {
            tx,
            scheduler: Some(scheduler),
            shared,
        }
    }
}

/// A running server. Dropping the handle shuts the server down (any
/// still-queued requests answer [`ServeError::Closed`]).
#[derive(Debug)]
pub struct ServerHandle {
    tx: Sender<Envelope>,
    scheduler: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ServerHandle {
    /// A new client of this server. Clients are cheap (`Clone` of a
    /// channel sender) and safe to move across threads.
    pub fn client(&self) -> Client {
        Client {
            tx: self.tx.clone(),
        }
    }

    /// A snapshot of the request counters.
    pub fn stats(&self) -> ServeStats {
        let s = &self.shared.stats;
        ServeStats {
            requests: s.requests.load(Ordering::Relaxed),
            errors: s.errors.load(Ordering::Relaxed),
            batch_flushes: s.batch_flushes.load(Ordering::Relaxed),
            batch_coalesced: s.batch_coalesced.load(Ordering::Relaxed),
            dedup_hits: s.dedup_hits.load(Ordering::Relaxed),
        }
    }

    /// Aggregate statistics of the shared block cache.
    pub fn cache_stats(&self) -> CacheStats {
        self.shared.cache.stats()
    }

    /// Publishes the shared cache's per-shard occupancy and activity
    /// as `serve.cache.shard.*` gauges — the load harness's stats
    /// sampler calls this periodically. Free when observability is off.
    pub fn publish_gauges(&self) {
        if !cm_obs::enabled() {
            return;
        }
        for (i, shard) in self.shared.cache.shard_stats().iter().enumerate() {
            cm_obs::gauge_set(
                &format!("serve.cache.shard.{i}.entries"),
                shard.entries as f64,
            );
            cm_obs::gauge_set(&format!("serve.cache.shard.{i}.bytes"), shard.bytes as f64);
            cm_obs::gauge_set(&format!("serve.cache.shard.{i}.hits"), shard.hits as f64);
            cm_obs::gauge_set(
                &format!("serve.cache.shard.{i}.misses"),
                shard.misses as f64,
            );
            cm_obs::gauge_set(
                &format!("serve.cache.shard.{i}.evictions"),
                shard.evictions as f64,
            );
        }
    }

    /// Stops accepting requests, finishes the in-flight batch, joins
    /// the scheduler and workers, and returns the final counters.
    pub fn shutdown(mut self) -> ServeStats {
        self.stop();
        self.stats()
    }

    fn stop(&mut self) {
        if let Some(handle) = self.scheduler.take() {
            let _ = self.tx.send(Envelope::Shutdown);
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// A connection to a server: submit requests, await responses.
#[derive(Debug, Clone)]
pub struct Client {
    tx: Sender<Envelope>,
}

impl Client {
    /// Submits `req` without waiting; the returned [`Pending`] is the
    /// other half. A client can hold any number of requests in flight.
    pub fn submit(&self, req: Request) -> Pending {
        let span = span_enter_detached("serve.request".to_string());
        let (reply_tx, reply_rx) = mpsc::channel();
        let env = ReqEnvelope {
            req,
            reply: reply_tx,
            parent: span.handle(),
        };
        let sent = self.tx.send(Envelope::Req(env)).is_ok();
        Pending {
            rx: reply_rx,
            _span: span,
            sent,
        }
    }

    /// Submit-and-wait: the synchronous call shape.
    ///
    /// # Errors
    ///
    /// The request's [`ServeError`].
    pub fn call(&self, req: Request) -> Result<Response, ServeError> {
        self.submit(req).wait()
    }

    /// Subscribes to ranking changes of a benchmark stream and returns
    /// a handle that polls for notifications (the transport is
    /// request/response, so "push" is a poll the handle does for you).
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownStore`] for an unregistered store, plus the
    /// usual transport errors.
    pub fn subscribe(
        &self,
        store: impl Into<String>,
        benchmark: Benchmark,
        top_k: usize,
    ) -> Result<SubscriptionHandle, ServeError> {
        match self.call(Request::Subscribe {
            store: store.into(),
            benchmark,
            top_k,
        })? {
            Response::Subscribed(id) => Ok(SubscriptionHandle {
                client: self.clone(),
                id,
                after: 0,
            }),
            other => Err(ServeError::Pipeline(format!(
                "unexpected response to subscribe: {other:?}"
            ))),
        }
    }
}

/// A live subscription: drains ranking-change notifications for one
/// `(store, benchmark)` stream. Obtained from [`Client::subscribe`].
///
/// The handle tracks the last sequence number it returned, so each
/// [`SubscriptionHandle::poll`] yields every notification exactly once.
#[derive(Debug)]
pub struct SubscriptionHandle {
    client: Client,
    id: SubscriptionId,
    after: u64,
}

impl SubscriptionHandle {
    /// The server-side subscription id.
    pub fn id(&self) -> SubscriptionId {
        self.id
    }

    /// Drains notifications queued since the last poll, oldest first.
    /// Non-blocking on the server: an empty vec means "nothing new".
    ///
    /// # Errors
    ///
    /// [`ServeError::UnknownSubscription`] if the id is gone, plus the
    /// usual transport errors.
    pub fn poll(&mut self) -> Result<Vec<Notification>, ServeError> {
        match self.client.call(Request::Poll {
            id: self.id,
            after: self.after,
        })? {
            Response::Notify(list) => {
                if let Some(last) = list.last() {
                    self.after = last.seq;
                }
                Ok(list)
            }
            other => Err(ServeError::Pipeline(format!(
                "unexpected response to poll: {other:?}"
            ))),
        }
    }

    /// Polls until at least one notification arrives or `timeout`
    /// elapses (returning the empty vec in that case).
    ///
    /// # Errors
    ///
    /// As for [`SubscriptionHandle::poll`].
    pub fn wait_next(&mut self, timeout: Duration) -> Result<Vec<Notification>, ServeError> {
        let deadline = Instant::now() + timeout;
        loop {
            let list = self.poll()?;
            if !list.is_empty() || Instant::now() >= deadline {
                return Ok(list);
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl Transport for Client {
    fn send(&self, req: Request) -> Result<Response, ServeError> {
        self.call(req)
    }
}

/// An in-flight request. Dropping it abandons the response (the server
/// still executes the work). The held request span records the full
/// submit-to-response wall time when the `Pending` drops.
#[derive(Debug)]
pub struct Pending {
    rx: Receiver<Result<Response, ServeError>>,
    _span: SpanGuard,
    sent: bool,
}

impl Pending {
    /// Blocks until the response arrives.
    ///
    /// # Errors
    ///
    /// The request's [`ServeError`]; [`ServeError::Closed`] if the
    /// server shut down without answering.
    pub fn wait(self) -> Result<Response, ServeError> {
        if !self.sent {
            return Err(ServeError::Closed);
        }
        self.rx.recv().unwrap_or(Err(ServeError::Closed))
    }
}

/// One unit handed to the worker pool: either a coalesced group or a
/// run of individually-executed requests.
enum Job {
    /// Executed one by one (pings, infos, ingests — and *everything*
    /// when batching is off).
    Singles(Vec<ReqEnvelope>),
    /// Queries against one store, answered by a single batched read.
    QueryBatch {
        store: String,
        envs: Vec<ReqEnvelope>,
    },
    /// Analyze/ranked requests sharing `(store, benchmark)`, answered
    /// by a single analysis.
    AnalysisGroup {
        store: String,
        benchmark: cm_sim::Benchmark,
        envs: Vec<ReqEnvelope>,
    },
    /// Identical cluster requests (same store, benchmark list, and
    /// configuration), answered by a single clustering.
    ClusterGroup {
        store: String,
        benchmarks: Vec<Benchmark>,
        config: ClusterConfig,
        envs: Vec<ReqEnvelope>,
    },
}

struct Scheduler {
    shared: Arc<Shared>,
    max_batch: usize,
    batching: bool,
    linger: Duration,
    workers: usize,
}

impl Scheduler {
    fn run(self, rx: Receiver<Envelope>) {
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));
        let mut pool = Vec::with_capacity(self.workers);
        for i in 0..self.workers {
            let shared = Arc::clone(&self.shared);
            let job_rx = Arc::clone(&job_rx);
            pool.push(
                std::thread::Builder::new()
                    .name(format!("cm-serve-worker-{i}"))
                    .spawn(move || loop {
                        let job = {
                            let guard = job_rx.lock().unwrap_or_else(|e| e.into_inner());
                            guard.recv()
                        };
                        match job {
                            Ok(job) => run_job(&shared, job),
                            Err(_) => break,
                        }
                    })
                    .expect("spawn worker thread"),
            );
        }

        let mut shutdown = false;
        while !shutdown {
            let first = match rx.recv() {
                Ok(env) => env,
                Err(_) => break,
            };
            let mut batch = Vec::new();
            match first {
                Envelope::Shutdown => shutdown = true,
                Envelope::Req(env) => batch.push(env),
            }
            let deadline = Instant::now() + self.linger;
            while !shutdown && batch.len() < self.max_batch {
                let remaining = deadline.saturating_duration_since(Instant::now());
                let next = if remaining.is_zero() {
                    rx.try_recv().ok()
                } else {
                    rx.recv_timeout(remaining).ok()
                };
                match next {
                    Some(Envelope::Req(env)) => batch.push(env),
                    Some(Envelope::Shutdown) => shutdown = true,
                    None => break,
                }
            }
            if !batch.is_empty() {
                self.dispatch(batch, &job_tx);
            }
        }
        // Closing the job channel stops the pool once queued jobs
        // drain; queued-but-undispatched requests drop their reply
        // senders, so their clients observe `Closed`.
        drop(job_tx);
        for worker in pool {
            let _ = worker.join();
        }
    }

    /// Partitions one drained batch into jobs and hands them to the
    /// pool. This is where coalescing and deduplication happen.
    fn dispatch(&self, batch: Vec<ReqEnvelope>, job_tx: &Sender<Job>) {
        let stats = &self.shared.stats;
        stats.batch_flushes.fetch_add(1, Ordering::Relaxed);
        stats
            .requests
            .fetch_add(batch.len() as u64, Ordering::Relaxed);
        cm_obs::counter_add("serve.batch.flushes", 1);
        cm_obs::counter_add("serve.requests", batch.len() as u64);

        if !self.batching {
            for env in batch {
                let _ = job_tx.send(Job::Singles(vec![env]));
            }
            return;
        }

        let mut singles: Vec<ReqEnvelope> = Vec::new();
        let mut queries: HashMap<String, Vec<ReqEnvelope>> = HashMap::new();
        let mut analyses: HashMap<(String, cm_sim::Benchmark), Vec<ReqEnvelope>> = HashMap::new();
        // Cluster configs hold floats, so the dedup key is request
        // equality rather than a hash — batches are small.
        let mut clusters: Vec<(Request, Vec<ReqEnvelope>)> = Vec::new();
        for env in batch {
            match &env.req {
                Request::Query { store, .. } => {
                    queries.entry(store.clone()).or_default().push(env);
                }
                Request::Analyze { store, benchmark }
                | Request::Ranked {
                    store, benchmark, ..
                } => {
                    analyses
                        .entry((store.clone(), *benchmark))
                        .or_default()
                        .push(env);
                }
                Request::Cluster { .. } => {
                    match clusters.iter_mut().find(|(req, _)| *req == env.req) {
                        Some((_, envs)) => envs.push(env),
                        None => clusters.push((env.req.clone(), vec![env])),
                    }
                }
                Request::Ping
                | Request::Info { .. }
                | Request::Ingest { .. }
                | Request::StreamAppend { .. }
                | Request::Subscribe { .. }
                | Request::Poll { .. } => {
                    singles.push(env);
                }
            }
        }
        for (store, envs) in queries {
            if envs.len() > 1 {
                let extra = (envs.len() - 1) as u64;
                stats.batch_coalesced.fetch_add(extra, Ordering::Relaxed);
                cm_obs::counter_add("serve.batch.coalesced", extra);
            }
            let _ = job_tx.send(Job::QueryBatch { store, envs });
        }
        for ((store, benchmark), envs) in analyses {
            if envs.len() > 1 {
                let extra = (envs.len() - 1) as u64;
                stats.dedup_hits.fetch_add(extra, Ordering::Relaxed);
                cm_obs::counter_add("serve.dedup.hits", extra);
            }
            let _ = job_tx.send(Job::AnalysisGroup {
                store,
                benchmark,
                envs,
            });
        }
        for (req, envs) in clusters {
            if envs.len() > 1 {
                let extra = (envs.len() - 1) as u64;
                stats.dedup_hits.fetch_add(extra, Ordering::Relaxed);
                cm_obs::counter_add("serve.dedup.hits", extra);
            }
            let Request::Cluster {
                store,
                benchmarks,
                config,
            } = req
            else {
                unreachable!("cluster group holds only cluster requests");
            };
            let _ = job_tx.send(Job::ClusterGroup {
                store,
                benchmarks,
                config,
                envs,
            });
        }
        if !singles.is_empty() {
            let _ = job_tx.send(Job::Singles(singles));
        }
    }
}

/// Sends `result` to `reply`, counting errors. A receiver that already
/// gave up (dropped its [`Pending`]) is fine.
fn respond(
    shared: &Shared,
    reply: &Sender<Result<Response, ServeError>>,
    result: Result<Response, ServeError>,
) {
    if result.is_err() {
        shared.stats.errors.fetch_add(1, Ordering::Relaxed);
        cm_obs::counter_add("serve.errors", 1);
    }
    let _ = reply.send(result);
}

/// Flattens a `catch_unwind` outcome into the request's result type.
fn flatten_panic<T>(caught: std::thread::Result<Result<T, ServeError>>) -> Result<T, ServeError> {
    match caught {
        Ok(result) => result,
        Err(_) => Err(ServeError::Pipeline("request handler panicked".to_string())),
    }
}

fn run_job(shared: &Shared, job: Job) {
    match job {
        Job::Singles(envs) => {
            for env in envs {
                let _exec = exec_span(&env.parent, "serve.exec");
                let result = flatten_panic(catch_unwind(AssertUnwindSafe(|| {
                    exec_single(shared, &env.req)
                })));
                respond(shared, &env.reply, result);
            }
        }
        Job::QueryBatch { store, envs } => {
            let _exec = exec_span(&envs[0].parent, "serve.exec.query_batch");
            let keys: Vec<SeriesKey> = envs
                .iter()
                .map(|env| match &env.req {
                    Request::Query { key, .. } => key.clone(),
                    _ => unreachable!("query batch holds only queries"),
                })
                .collect();
            let result = flatten_panic(catch_unwind(AssertUnwindSafe(|| {
                let handle = shared.store(&store)?;
                let guard = handle.read().unwrap_or_else(|e| e.into_inner());
                guard.read_series_batch(&keys).map_err(store_err)
            })));
            match result {
                Ok(series) => {
                    for (env, values) in envs.iter().zip(series) {
                        respond(shared, &env.reply, Ok(Response::Series(values)));
                    }
                }
                Err(e) => {
                    for env in &envs {
                        respond(shared, &env.reply, Err(e.clone()));
                    }
                }
            }
        }
        Job::AnalysisGroup {
            store,
            benchmark,
            envs,
        } => {
            let _exec = exec_span(&envs[0].parent, "serve.exec.analyze");
            let result = flatten_panic(catch_unwind(AssertUnwindSafe(|| {
                compute_analysis(shared, &store, benchmark)
            })));
            match result {
                Ok(analysis) => {
                    for env in &envs {
                        let response = match &env.req {
                            Request::Ranked { top_k, .. } => {
                                let k = (*top_k).min(analysis.ranking.len());
                                Response::Ranked(analysis.ranking[..k].to_vec())
                            }
                            _ => Response::Analysis(Arc::clone(&analysis)),
                        };
                        respond(shared, &env.reply, Ok(response));
                    }
                }
                Err(e) => {
                    for env in &envs {
                        respond(shared, &env.reply, Err(e.clone()));
                    }
                }
            }
        }
        Job::ClusterGroup {
            store,
            benchmarks,
            config,
            envs,
        } => {
            let _exec = exec_span(&envs[0].parent, "serve.exec.cluster");
            let result = flatten_panic(catch_unwind(AssertUnwindSafe(|| {
                compute_cluster(shared, &store, &benchmarks, &config)
            })));
            match result {
                Ok(report) => {
                    for env in &envs {
                        respond(
                            shared,
                            &env.reply,
                            Ok(Response::Clustered(Arc::clone(&report))),
                        );
                    }
                }
                Err(e) => {
                    for env in &envs {
                        respond(shared, &env.reply, Err(e.clone()));
                    }
                }
            }
        }
    }
}

fn exec_span(parent: &SpanHandle, name: &str) -> SpanGuard {
    span_enter_under(parent, name.to_string())
}

/// Executes one request in isolation — the no-batching path, and the
/// path for request kinds that never coalesce.
fn exec_single(shared: &Shared, req: &Request) -> Result<Response, ServeError> {
    match req {
        Request::Ping => Ok(Response::Pong),
        Request::Info { store } => {
            let handle = shared.store(store)?;
            let guard = handle.read().unwrap_or_else(|e| e.into_inner());
            Ok(Response::Info(guard.info()))
        }
        Request::Query { store, key } => {
            let handle = shared.store(store)?;
            let guard = handle.read().unwrap_or_else(|e| e.into_inner());
            guard
                .read_series(key)
                .map(Response::Series)
                .map_err(store_err)
        }
        Request::Analyze { store, benchmark } => {
            compute_analysis(shared, store, *benchmark).map(Response::Analysis)
        }
        Request::Ranked {
            store,
            benchmark,
            top_k,
        } => {
            let analysis = compute_analysis(shared, store, *benchmark)?;
            let k = (*top_k).min(analysis.ranking.len());
            Ok(Response::Ranked(analysis.ranking[..k].to_vec()))
        }
        Request::Cluster {
            store,
            benchmarks,
            config,
        } => compute_cluster(shared, store, benchmarks, config).map(Response::Clustered),
        Request::Ingest { store, benchmark } => {
            let handle = shared.store(store)?;
            let mut guard = handle.write().unwrap_or_else(|e| e.into_inner());
            shared
                .miner
                .ingest(*benchmark, &mut guard)
                .map(Response::Ingested)
                .map_err(cm_err)
        }
        Request::StreamAppend {
            store,
            benchmark,
            rows,
        } => exec_stream_append(shared, store, *benchmark, *rows),
        Request::Subscribe {
            store,
            benchmark,
            top_k,
        } => {
            shared.store(store)?; // fail fast on unknown stores
            let mut registry = shared.subs.lock().unwrap_or_else(|e| e.into_inner());
            registry.next_id += 1;
            let id = SubscriptionId(registry.next_id);
            registry.subs.insert(
                id,
                Subscription {
                    store: store.clone(),
                    benchmark: *benchmark,
                    top_k: *top_k,
                    last: None,
                    queue: Vec::new(),
                    next_seq: 0,
                },
            );
            cm_obs::counter_add("serve.subscriptions", 1);
            Ok(Response::Subscribed(id))
        }
        Request::Poll { id, after } => {
            let mut registry = shared.subs.lock().unwrap_or_else(|e| e.into_inner());
            let sub = registry
                .subs
                .get_mut(id)
                .ok_or(ServeError::UnknownSubscription(*id))?;
            // Everything at or below `after` is acknowledged: drop it.
            sub.queue.retain(|n| n.seq > *after);
            Ok(Response::Notify(sub.queue.clone()))
        }
    }
}

/// Appends to the server-side stream session for `(store, benchmark)`,
/// opening (or resuming) it on first touch, then notifies any
/// subscribers whose watched summary materially changed.
///
/// The streams mutex serializes appends per server; the store's write
/// lock covers staging and the atomic commit. A failed session is
/// removed so the next append reopens from the last committed snapshot
/// — the client sees a typed error, never a torn stream.
fn exec_stream_append(
    shared: &Shared,
    store_name: &str,
    benchmark: Benchmark,
    rows: usize,
) -> Result<Response, ServeError> {
    let handle = shared.store(store_name)?;
    let mut streams = shared.streams.lock().unwrap_or_else(|e| e.into_inner());
    let key = (store_name.to_string(), benchmark);

    let report = {
        let mut guard = handle.write().unwrap_or_else(|e| e.into_inner());
        if !streams.contains_key(&key) {
            let session = StreamSession::open(&mut guard, benchmark, shared.stream.clone())
                .map_err(stream_err)?;
            streams.insert(key.clone(), session);
        }
        let session = streams.get_mut(&key).expect("session just ensured");
        match session.append(&mut guard, rows) {
            Ok(report) => report,
            Err(e) => {
                streams.remove(&key);
                return Err(stream_err(e));
            }
        }
    };

    // Only pay for an analysis when someone is watching this stream
    // (and even then, an append that sealed nothing warm-starts).
    let session = streams.get_mut(&key).expect("session exists");
    let mut registry = shared.subs.lock().unwrap_or_else(|e| e.into_inner());
    let watching = registry
        .subs
        .values()
        .any(|s| s.store == key.0 && s.benchmark == benchmark);
    if watching {
        if let Some(analysis) = session.analysis().map_err(stream_err)? {
            for sub in registry
                .subs
                .values_mut()
                .filter(|s| s.store == key.0 && s.benchmark == benchmark)
            {
                let summary = analysis.summary(sub.top_k);
                let reason = match &sub.last {
                    None => Some(NotifyReason::Initial),
                    Some(prev) if summary.order_changed(prev) => Some(NotifyReason::TopKChanged),
                    Some(prev) if summary.mapm_changed(prev) => Some(NotifyReason::MapmChanged),
                    Some(_) => None,
                };
                if let Some(reason) = reason {
                    sub.next_seq += 1;
                    sub.queue.push(Notification {
                        seq: sub.next_seq,
                        reason,
                        sealed_rows: analysis.sealed_rows,
                        summary: summary.clone(),
                    });
                    sub.last = Some(summary);
                    cm_obs::counter_add("serve.notifications", 1);
                }
            }
        }
    }
    Ok(Response::Appended(report))
}

/// The analysis hot path: try the warm, shared-read route first; on a
/// cold store, ingest under the write lock, then analyze warm. Many
/// threads analyzing different benchmarks from one store proceed in
/// parallel on the read path.
fn compute_analysis(
    shared: &Shared,
    store: &str,
    benchmark: cm_sim::Benchmark,
) -> Result<Arc<RankedAnalysis>, ServeError> {
    let handle = shared.store(store)?;
    let fingerprint = shared.miner.snapshot_fingerprint(benchmark);
    {
        let guard = handle.read().unwrap_or_else(|e| e.into_inner());
        if let Some(report) = shared
            .miner
            .analyze_snapshot(benchmark, &guard)
            .map_err(cm_err)?
        {
            return Ok(Arc::new(RankedAnalysis::from_report(&report, fingerprint)));
        }
    }
    {
        let mut guard = handle.write().unwrap_or_else(|e| e.into_inner());
        shared.miner.ingest(benchmark, &mut guard).map_err(cm_err)?;
    }
    let guard = handle.read().unwrap_or_else(|e| e.into_inner());
    match shared
        .miner
        .analyze_snapshot(benchmark, &guard)
        .map_err(cm_err)?
    {
        Some(report) => Ok(Arc::new(RankedAnalysis::from_report(&report, fingerprint))),
        None => Err(ServeError::Pipeline(
            "snapshot missing immediately after ingest".to_string(),
        )),
    }
}

/// The cluster analogue of [`compute_analysis`]: warm, shared-read
/// clustering from committed snapshots first; on a cold store, ingest
/// every missing benchmark under the write lock, then cluster warm.
fn compute_cluster(
    shared: &Shared,
    store: &str,
    benchmarks: &[Benchmark],
    config: &ClusterConfig,
) -> Result<Arc<ClusterReport>, ServeError> {
    let handle = shared.store(store)?;
    {
        let guard = handle.read().unwrap_or_else(|e| e.into_inner());
        if let Some(report) = shared
            .miner
            .cluster_snapshot(benchmarks, &guard, config)
            .map_err(cm_err)?
        {
            return Ok(Arc::new(report));
        }
    }
    {
        let mut guard = handle.write().unwrap_or_else(|e| e.into_inner());
        for &benchmark in benchmarks {
            shared.miner.ingest(benchmark, &mut guard).map_err(cm_err)?;
        }
    }
    let guard = handle.read().unwrap_or_else(|e| e.into_inner());
    match shared
        .miner
        .cluster_snapshot(benchmarks, &guard, config)
        .map_err(cm_err)?
    {
        Some(report) => Ok(Arc::new(report)),
        None => Err(ServeError::Pipeline(
            "snapshot missing immediately after ingest".to_string(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::{EventId, SampleMode};
    use cm_sim::Benchmark;
    use counterminer::MinerConfig;

    fn tiny_config() -> MinerConfig {
        let mut config = MinerConfig {
            runs_per_benchmark: 1,
            events_to_measure: Some(14),
            interaction_top_k: 4,
            ..MinerConfig::default()
        };
        config.importance.sgbrt.n_trees = 40;
        config.importance.sgbrt.tree.max_depth = 3;
        config.importance.prune_step = 3;
        config.importance.min_events = 8;
        config
    }

    fn temp_store_path(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cm_serve_unit_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir.join("unit.cmstore")
    }

    fn tiny_server(tag: &str) -> (ServerHandle, std::path::PathBuf) {
        let path = temp_store_path(tag);
        let _ = std::fs::remove_file(&path);
        let config = ServeConfig {
            miner: tiny_config(),
            workers: 2,
            ..ServeConfig::default()
        };
        let mut server = Server::new(config);
        server.add_store("main", &path).expect("register store");
        (server.start(), path)
    }

    #[test]
    fn ping_and_unknown_store_round_trip() {
        let (handle, path) = tiny_server("ping");
        let client = handle.client();
        assert!(matches!(client.call(Request::Ping), Ok(Response::Pong)));
        let err = client
            .call(Request::Info {
                store: "nope".into(),
            })
            .unwrap_err();
        assert_eq!(err, ServeError::UnknownStore("nope".into()));
        let stats = handle.shutdown();
        assert_eq!(stats.requests, 2);
        assert_eq!(stats.errors, 1);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn analyze_then_query_serves_persisted_series() {
        let (handle, path) = tiny_server("analyze");
        let client = handle.client();
        let analysis = match client
            .call(Request::Analyze {
                store: "main".into(),
                benchmark: Benchmark::Sort,
            })
            .expect("analyze")
        {
            Response::Analysis(a) => a,
            other => panic!("unexpected response {other:?}"),
        };
        assert!(!analysis.ranking.is_empty());
        assert_eq!(analysis.benchmark, Benchmark::Sort);

        // The snapshot's series are now stored under the benchmark's
        // snapshot namespace; read one back through the service.
        let info = match client
            .call(Request::Info {
                store: "main".into(),
            })
            .expect("info")
        {
            Response::Info(info) => info,
            other => panic!("unexpected response {other:?}"),
        };
        assert!(info.series > 0);

        // Ranked piggybacks on the same snapshot.
        let ranked = match client
            .call(Request::Ranked {
                store: "main".into(),
                benchmark: Benchmark::Sort,
                top_k: 3,
            })
            .expect("ranked")
        {
            Response::Ranked(r) => r,
            other => panic!("unexpected response {other:?}"),
        };
        assert_eq!(ranked.len(), 3);
        assert_eq!(ranked, analysis.ranking[..3].to_vec());
        handle.shutdown();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn queries_queued_before_start_coalesce_into_one_batched_read() {
        let path = temp_store_path("coalesce");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = Store::open(&path).expect("open");
            for event in 0..6 {
                let key = SeriesKey::new("prog", 0, SampleMode::Mlpx, EventId::new(event));
                let values: Vec<f64> = (0..32).map(|i| (event * 100 + i) as f64).collect();
                store.append_series(key, &values).expect("append");
            }
            store.commit().expect("commit");
        }
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let mut server = Server::new(config);
        server.add_store("main", &path).expect("register");
        let client = server.client();
        let pendings: Vec<Pending> = (0..6)
            .map(|event| {
                client.submit(Request::Query {
                    store: "main".into(),
                    key: SeriesKey::new("prog", 0, SampleMode::Mlpx, EventId::new(event)),
                })
            })
            .collect();
        let handle = server.start();
        for (event, pending) in pendings.into_iter().enumerate() {
            match pending.wait().expect("query") {
                Response::Series(values) => {
                    assert_eq!(values[0], (event * 100) as f64);
                    assert_eq!(values.len(), 32);
                }
                other => panic!("unexpected response {other:?}"),
            }
        }
        let stats = handle.shutdown();
        // All six queries were queued before the scheduler started, so
        // they form one batch: one flush, five coalesced riders.
        assert_eq!(stats.batch_flushes, 1);
        assert_eq!(stats.batch_coalesced, 5);
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn batching_off_executes_requests_individually() {
        let path = temp_store_path("nobatch");
        let _ = std::fs::remove_file(&path);
        {
            let mut store = Store::open(&path).expect("open");
            let key = SeriesKey::new("prog", 0, SampleMode::Mlpx, EventId::new(0));
            store.append_series(key, &[1.0, 2.0]).expect("append");
            store.commit().expect("commit");
        }
        let config = ServeConfig {
            batching: false,
            workers: 1,
            ..ServeConfig::default()
        };
        let mut server = Server::new(config);
        server.add_store("main", &path).expect("register");
        let client = server.client();
        let pendings: Vec<Pending> = (0..4)
            .map(|_| {
                client.submit(Request::Query {
                    store: "main".into(),
                    key: SeriesKey::new("prog", 0, SampleMode::Mlpx, EventId::new(0)),
                })
            })
            .collect();
        let handle = server.start();
        for pending in pendings {
            assert!(matches!(pending.wait(), Ok(Response::Series(_))));
        }
        let stats = handle.shutdown();
        assert_eq!(stats.batch_coalesced, 0);
        assert_eq!(stats.dedup_hits, 0);
        assert_eq!(stats.requests, 4);
        let _ = std::fs::remove_file(path);
    }

    fn stream_append(client: &Client, rows: usize) -> cm_stream::AppendReport {
        match client
            .call(Request::StreamAppend {
                store: "main".into(),
                benchmark: Benchmark::Sort,
                rows,
            })
            .expect("stream append")
        {
            Response::Appended(report) => report,
            other => panic!("unexpected response {other:?}"),
        }
    }

    #[test]
    fn subscription_notifies_when_and_only_when_the_answer_changes() {
        let (handle, path) = tiny_server("subscribe");
        let client = handle.client();
        let mut sub = client
            .subscribe("main", Benchmark::Sort, 3)
            .expect("subscribe");

        // A mirror session over a private store predicts, deterministically,
        // what the server's stream computes — the test oracle for
        // "notified exactly when the summary materially changes".
        let mirror_path = temp_store_path("subscribe_mirror");
        let _ = std::fs::remove_file(&mirror_path);
        let mut mirror_store = Store::open(&mirror_path).expect("mirror store");
        let mut mirror = cm_stream::StreamSession::open(
            &mut mirror_store,
            Benchmark::Sort,
            cm_stream::StreamConfig::from_env(tiny_config()),
        )
        .expect("mirror session");

        // Nothing sealed yet: no analysis exists, so no notification.
        let report = stream_append(&client, 40);
        assert_eq!(report.sealed_rows, 0);
        mirror.append(&mut mirror_store, 40).expect("mirror");
        assert!(sub.poll().expect("poll").is_empty());

        // First sealed block: the first analysis always notifies.
        let report = stream_append(&client, 30);
        assert_eq!(report.sealed_rows, 64);
        mirror.append(&mut mirror_store, 30).expect("mirror");
        let first = sub.wait_next(Duration::from_secs(30)).expect("wait");
        assert_eq!(first.len(), 1);
        assert_eq!(first[0].reason, NotifyReason::Initial);
        assert_eq!(first[0].sealed_rows, 64);
        let mut last_notified = mirror
            .analysis()
            .expect("mirror analysis")
            .expect("sealed")
            .summary(3);
        assert_eq!(first[0].summary, last_notified);

        // No new sealed block: warm start, identical answer, silence.
        let report = stream_append(&client, 10);
        assert_eq!(report.sealed_rows, 64);
        mirror.append(&mut mirror_store, 10).expect("mirror");
        assert!(sub.poll().expect("poll").is_empty());

        // Seal several more blocks; the mirror predicts whether each
        // step's summary materially differs from the last notified one.
        for rows in [100, 150] {
            let server_report = stream_append(&client, rows);
            mirror.append(&mut mirror_store, rows).expect("mirror");
            assert_eq!(server_report.total_rows, mirror.total_rows());
            let summary = mirror
                .analysis()
                .expect("mirror analysis")
                .expect("sealed")
                .summary(3);
            let notes = sub.poll().expect("poll");
            if summary.materially_differs(&last_notified) {
                assert_eq!(notes.len(), 1, "material change must notify");
                assert_eq!(notes[0].summary, summary);
                assert!(matches!(
                    notes[0].reason,
                    NotifyReason::TopKChanged | NotifyReason::MapmChanged
                ));
                last_notified = summary;
            } else {
                assert!(notes.is_empty(), "immaterial change must stay silent");
            }
        }

        // Polling an unknown subscription is a typed error.
        let err = client
            .call(Request::Poll {
                id: crate::proto::SubscriptionId(9999),
                after: 0,
            })
            .unwrap_err();
        assert_eq!(
            err,
            ServeError::UnknownSubscription(crate::proto::SubscriptionId(9999))
        );

        handle.shutdown();
        let _ = std::fs::remove_file(path);
        let _ = std::fs::remove_file(mirror_path);
    }

    #[test]
    fn identical_cluster_requests_deduplicate_into_one_computation() {
        let path = temp_store_path("cluster");
        let _ = std::fs::remove_file(&path);
        let config = ServeConfig {
            miner: tiny_config(),
            workers: 2,
            ..ServeConfig::default()
        };
        let mut server = Server::new(config);
        server.add_store("main", &path).expect("register store");
        let client = server.client();
        let request = Request::Cluster {
            store: "main".into(),
            benchmarks: vec![Benchmark::Sort, Benchmark::Wordcount],
            config: ClusterConfig {
                k: 2,
                inject_anomalies: 1,
                ..ClusterConfig::default()
            },
        };
        // Queued before start: all four land in one batch and dedup.
        let pendings: Vec<Pending> = (0..4).map(|_| client.submit(request.clone())).collect();
        let handle = server.start();
        let mut reports = Vec::new();
        for pending in pendings {
            match pending.wait().expect("cluster") {
                Response::Clustered(report) => reports.push(report),
                other => panic!("unexpected response {other:?}"),
            }
        }
        let first = &reports[0];
        assert_eq!(first.k, 2);
        // 1 run per benchmark plus 1 injected probe per benchmark.
        assert_eq!(first.runs.len(), 4);
        assert_eq!(first.runs.iter().filter(|r| r.injected).count(), 2);
        for report in &reports[1..] {
            assert!(Arc::ptr_eq(first, report), "waiters must share the report");
        }
        let stats = handle.shutdown();
        assert_eq!(stats.batch_flushes, 1);
        assert_eq!(stats.dedup_hits, 3);

        // A fresh server over the same store answers warm,
        // bit-identically.
        let mut server = Server::new(ServeConfig {
            miner: tiny_config(),
            workers: 1,
            ..ServeConfig::default()
        });
        server.add_store("main", &path).expect("register store");
        let client = server.client();
        let handle = server.start();
        match client.call(request).expect("warm cluster") {
            Response::Clustered(report) => assert_eq!(**first, *report),
            other => panic!("unexpected response {other:?}"),
        }
        handle.shutdown();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn client_of_dropped_server_observes_closed() {
        let (handle, path) = tiny_server("closed");
        let client = handle.client();
        drop(handle);
        assert_eq!(client.call(Request::Ping), Err(ServeError::Closed));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn transport_trait_is_object_safe_and_routes() {
        let (handle, path) = tiny_server("transport");
        let transport: Box<dyn Transport> = Box::new(handle.client());
        assert!(matches!(transport.send(Request::Ping), Ok(Response::Pong)));
        handle.shutdown();
        let _ = std::fs::remove_file(path);
    }
}
