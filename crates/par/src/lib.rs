//! Deterministic parallel execution layer for the CounterMiner workspace.
//!
//! Every compute kernel of the pipeline — SGBRT split search, k-fold
//! cross-validation, the O(P²) interaction-pair fits, per-series
//! cleaning, batch DTW — is embarrassingly parallel at some granularity,
//! but the results must stay **bit-identical at any thread count**: the
//! paper's rankings are compared across runs, and a ranking that changes
//! with the machine's core count is a reproducibility bug. This crate
//! provides the small set of combinators the workspace parallelizes
//! with, all of which preserve input order:
//!
//! * [`map`] / [`try_map`] — parallel map over a slice, results in input
//!   order; `try_map` returns the error of the *lowest-indexed* failing
//!   item, exactly like a serial `?` loop,
//! * [`map_range`] — parallel map over `0..n`,
//! * [`map_chunked`] — parallel map over contiguous index chunks,
//!   flattened back in order (for per-row kernels too cheap to schedule
//!   individually),
//! * [`join`] — run two closures concurrently.
//!
//! Work is executed on a lazily-spawned global pool of persistent worker
//! threads (spawning an OS thread per parallel region would dwarf the
//! fine-grained regions the GBRT split search creates). The calling
//! thread always participates in its own region, so nested regions —
//! e.g. a parallel cross-validation fold training a tree whose split
//! search is itself parallel — cannot deadlock even when every worker is
//! busy.
//!
//! # Thread-count control
//!
//! The effective thread budget is resolved, in priority order, from
//! [`set_max_threads`], the `CM_THREADS` environment variable, and
//! [`std::thread::available_parallelism`]. A budget of 1 (or building
//! with `--no-default-features`) runs every combinator serially on the
//! calling thread.
//!
//! # Examples
//!
//! ```
//! let squares = cm_par::map_range(8, |i| i * i);
//! assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
//!
//! let sums = cm_par::map(&[1u64, 2, 3], |&x| x + 10);
//! assert_eq!(sums, vec![11, 12, 13]);
//! ```

#![deny(unsafe_code)]
#![deny(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

#[cfg(feature = "parallel")]
mod pool;

/// Explicit thread-count override; 0 means "not set".
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// `CM_THREADS` parsed once; 0 means "absent or invalid".
static ENV_THREADS: OnceLock<usize> = OnceLock::new();

fn env_threads() -> usize {
    *ENV_THREADS.get_or_init(|| {
        std::env::var("CM_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    })
}

fn hardware_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// The thread budget parallel regions run with: the
/// [`set_max_threads`] override if set, else `CM_THREADS`, else the
/// hardware parallelism. Always at least 1.
pub fn max_threads() -> usize {
    let o = OVERRIDE.load(Ordering::Relaxed);
    let n = if o > 0 {
        o
    } else {
        let e = env_threads();
        if e > 0 {
            e
        } else {
            hardware_threads()
        }
    };
    n.max(1)
}

/// Overrides the thread budget for subsequent parallel regions.
///
/// `n = 0` clears the override (falling back to `CM_THREADS` or the
/// hardware parallelism); `n = 1` forces serial execution. Budgets above
/// the pool size established at first use are capped to it.
pub fn set_max_threads(n: usize) {
    OVERRIDE.store(n, Ordering::Relaxed);
}

/// Records one parallel region of `units` logical work items with the
/// observability layer. Counted at the public combinator entry points
/// (never in internal re-dispatch), so `par.regions` / `par.units` are
/// thread-count invariant: they describe the work submitted, not how
/// the scheduler carved it up.
#[inline]
fn record_region(units: usize) {
    if cm_obs::enabled() {
        cm_obs::counter_add("par.regions", 1);
        cm_obs::counter_add("par.units", units as u64);
    }
}

/// Runs `f(i)` for every `i` in `0..n` and returns the results in index
/// order. Deterministic: the output never depends on the thread budget.
///
/// # Examples
///
/// ```
/// let squares = cm_par::map_range(5, |i| i * i);
/// assert_eq!(squares, vec![0, 1, 4, 9, 16]);
/// ```
pub fn map_range<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    record_region(n);
    map_range_inner(n, f)
}

/// [`map_range`] without the region accounting — the shared body every
/// counted entry point dispatches to.
fn map_range_inner<R, F>(n: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    #[cfg(feature = "parallel")]
    {
        if n > 1 && max_threads() > 1 {
            use std::sync::Mutex;
            // One slot per unit keeps the output in index order no
            // matter which thread computes it; each slot's lock is
            // touched exactly once.
            let slots: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
            let work = |i: usize| {
                let r = f(i);
                *slots[i].lock().unwrap_or_else(|e| e.into_inner()) = Some(r);
            };
            pool::run_units(n, &work);
            return slots
                .into_iter()
                .map(|m| {
                    m.into_inner()
                        .unwrap_or_else(|e| e.into_inner())
                        .expect("every unit of a completed region has run")
                })
                .collect();
        }
    }
    (0..n).map(f).collect()
}

/// Parallel map over a slice, results in input order.
///
/// # Examples
///
/// ```
/// let sums = cm_par::map(&[1u64, 2, 3], |&x| x + 10);
/// assert_eq!(sums, vec![11, 12, 13]);
/// ```
pub fn map<T, R, F>(items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    map_range(items.len(), |i| f(&items[i]))
}

/// Parallel fallible map over a slice. On failure, returns the error of
/// the lowest-indexed failing item — exactly what a serial `?` loop
/// would have surfaced — so error behavior is thread-count independent.
///
/// # Errors
///
/// Returns the first (by input index) error produced by `f`.
pub fn try_map<T, R, E, F>(items: &[T], f: F) -> Result<Vec<R>, E>
where
    T: Sync,
    R: Send,
    E: Send,
    F: Fn(&T) -> Result<R, E> + Sync,
{
    let mut out = Vec::with_capacity(items.len());
    for r in map_range(items.len(), |i| f(&items[i])) {
        out.push(r?);
    }
    Ok(out)
}

/// Parallel in-place map: runs `f(i, &mut items[i])` for every element,
/// returning the per-element results in index order. Each element is
/// mutated by exactly one unit, so disjointness is guaranteed by
/// construction (a per-element lock is taken exactly once and never
/// contended).
pub fn map_mut<T, R, F>(items: &mut [T], f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> R + Sync,
{
    use std::sync::Mutex;
    let cells: Vec<Mutex<&mut T>> = items.iter_mut().map(Mutex::new).collect();
    map_range(cells.len(), |i| {
        let mut guard = cells[i].lock().unwrap_or_else(|e| e.into_inner());
        f(i, &mut guard)
    })
}

/// Splits `0..n` into contiguous chunks of at least `min_chunk`
/// elements, maps each chunk with `f`, and flattens the per-chunk
/// results back in order. For kernels (tree prediction, DTW cells) too
/// cheap to schedule one element at a time.
///
/// `f` must return exactly one result per index of its chunk for the
/// flattened output to line up with `0..n`.
pub fn map_chunked<R, F>(n: usize, min_chunk: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(std::ops::Range<usize>) -> Vec<R> + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    record_region(n);
    let budget = max_threads();
    // Aim for a few chunks per thread so the atomic-counter scheduler
    // can balance uneven work, but never below the caller's floor.
    let chunk = n
        .div_ceil(budget.saturating_mul(4).max(1))
        .max(min_chunk.max(1));
    let n_chunks = n.div_ceil(chunk);
    // The chunk count depends on the thread budget, so the inner
    // dispatch must not count it as units.
    let per_chunk = map_range_inner(n_chunks, |c| {
        let lo = c * chunk;
        let hi = (lo + chunk).min(n);
        f(lo..hi)
    });
    let mut out = Vec::with_capacity(n);
    for mut v in per_chunk {
        out.append(&mut v);
    }
    out
}

/// Runs two closures, concurrently when the thread budget allows, and
/// returns both results. Intended for coarse two-way splits (e.g.
/// projecting a train and a test view of a dataset).
pub fn join<RA, RB, A, B>(a: A, b: B) -> (RA, RB)
where
    RA: Send,
    RB: Send,
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
{
    record_region(2);
    #[cfg(feature = "parallel")]
    {
        if max_threads() > 1 {
            return std::thread::scope(|s| {
                let hb = s.spawn(b);
                let ra = a();
                let rb = match hb.join() {
                    Ok(rb) => rb,
                    Err(payload) => std::panic::resume_unwind(payload),
                };
                (ra, rb)
            });
        }
    }
    let ra = a();
    let rb = b();
    (ra, rb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    /// Serializes tests that mutate the global thread override.
    fn with_threads<R>(n: usize, f: impl FnOnce() -> R) -> R {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        set_max_threads(n);
        let out = f();
        set_max_threads(0);
        out
    }

    #[test]
    fn map_range_preserves_order() {
        for threads in [1, 2, 8] {
            let got = with_threads(threads, || map_range(1000, |i| i * 3));
            assert_eq!(got, (0..1000).map(|i| i * 3).collect::<Vec<_>>());
        }
    }

    #[test]
    fn map_matches_serial_iterator() {
        let items: Vec<u64> = (0..257).collect();
        let serial: Vec<u64> = items.iter().map(|&x| x * x + 1).collect();
        for threads in [1, 3, 16] {
            let got = with_threads(threads, || map(&items, |&x| x * x + 1));
            assert_eq!(got, serial);
        }
    }

    #[test]
    fn try_map_returns_lowest_index_error() {
        let items: Vec<usize> = (0..500).collect();
        for threads in [1, 4] {
            let got: Result<Vec<usize>, usize> = with_threads(threads, || {
                try_map(&items, |&x| if x % 7 == 3 { Err(x) } else { Ok(x) })
            });
            assert_eq!(got, Err(3));
        }
        let ok: Result<Vec<usize>, usize> = try_map(&items, |&x| Ok(x));
        assert_eq!(ok.unwrap(), items);
    }

    #[test]
    fn map_chunked_flattens_in_order() {
        for threads in [1, 5] {
            let got = with_threads(threads, || {
                map_chunked(1003, 16, |r| r.map(|i| i as u64 * 2).collect())
            });
            assert_eq!(got, (0..1003).map(|i| i * 2).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn map_mut_mutates_every_element_in_place() {
        for threads in [1, 4] {
            let mut items: Vec<u64> = (0..300).collect();
            let old = with_threads(threads, || {
                map_mut(&mut items, |i, v| {
                    let before = *v;
                    *v += i as u64;
                    before
                })
            });
            assert_eq!(old, (0..300).collect::<Vec<u64>>());
            assert_eq!(items, (0..300).map(|i| i * 2).collect::<Vec<u64>>());
        }
    }

    #[test]
    fn join_returns_both_results() {
        for threads in [1, 2] {
            let (a, b) = with_threads(threads, || join(|| 2 + 2, || "ok".to_string()));
            assert_eq!(a, 4);
            assert_eq!(b, "ok");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u8> = Vec::new();
        assert!(map(&empty, |&x| x).is_empty());
        assert_eq!(map_range(1, |i| i), vec![0]);
        assert!(map_chunked(0, 8, |r| r.collect::<Vec<_>>()).is_empty());
    }

    #[test]
    fn nested_regions_complete() {
        // A region whose work items each open their own region — the
        // shape cross-validation + split search produces. Must not
        // deadlock even when the pool is saturated.
        let got = with_threads(4, || {
            map_range(8, |i| {
                map_range(64, |j| (i * 64 + j) as u64).iter().sum::<u64>()
            })
        });
        let want: Vec<u64> = (0..8u64)
            .map(|i| (0..64u64).map(|j| i * 64 + j).sum())
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn results_are_thread_count_invariant_under_load() {
        let baseline = map_range(2048, |i| (i as u64).wrapping_mul(0x9E37_79B9));
        for threads in [2, 3, 8] {
            let got = with_threads(threads, || {
                map_range(2048, |i| (i as u64).wrapping_mul(0x9E37_79B9))
            });
            assert_eq!(got, baseline);
        }
    }

    #[cfg(feature = "parallel")]
    #[test]
    fn worker_panics_propagate_to_caller() {
        let result = std::panic::catch_unwind(|| {
            with_threads(4, || {
                map_range(128, |i| {
                    if i == 77 {
                        panic!("unit 77 exploded");
                    }
                    i
                })
            })
        });
        assert!(result.is_err());
        // The pool must stay usable after a panicked region.
        let after = with_threads(4, || map_range(32, |i| i + 1));
        assert_eq!(after, (1..=32).collect::<Vec<_>>());
    }

    #[test]
    fn work_actually_runs_once_per_unit() {
        let counter = AtomicU64::new(0);
        let out = with_threads(8, || {
            map_range(513, |i| {
                counter.fetch_add(1, Ordering::Relaxed);
                i
            })
        });
        assert_eq!(counter.load(Ordering::Relaxed), 513);
        assert_eq!(out.len(), 513);
    }
}
