//! The persistent worker pool behind the parallel combinators.
//!
//! Parallel regions in this workspace are frequently *fine-grained* —
//! the GBRT split search opens one region per tree node — so spawning
//! OS threads per region would cost more than the work itself. Instead
//! a global set of workers is spawned once and fed region jobs through
//! a channel; each region is drained cooperatively by the workers *and*
//! the calling thread, which keeps nested regions deadlock-free (the
//! caller can always finish its own region even if every worker is
//! busy elsewhere).
//!
//! This is the one module of the workspace that uses `unsafe`: a region
//! closure is passed to the workers as a raw pointer, erasing its
//! lifetime. The safety argument is a strict happens-before protocol,
//! documented at the single `unsafe` block below.

#![allow(unsafe_code)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Pool {
    tx: Mutex<Sender<Job>>,
    workers: usize,
}

fn lock_resilient<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn global_pool() -> Option<&'static Pool> {
    static POOL: OnceLock<Option<Pool>> = OnceLock::new();
    POOL.get_or_init(|| {
        // One worker fewer than the budget: the caller is the extra
        // runner. Size by the larger of the configured and hardware
        // budgets so a later `set_max_threads` up to the core count is
        // honored even if the pool was first used while capped.
        let size = crate::max_threads()
            .max(crate::hardware_threads())
            .saturating_sub(1);
        if size == 0 {
            return None;
        }
        let (tx, rx) = channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        for k in 0..size {
            let rx = Arc::clone(&rx);
            let spawned = std::thread::Builder::new()
                .name(format!("cm-par-{k}"))
                .spawn(move || loop {
                    // The receiver lock is released before the job runs
                    // (the guard is a temporary of the `let` statement).
                    let job = lock_resilient(&rx).recv();
                    match job {
                        Ok(job) => job(),
                        Err(_) => return, // channel closed: shut down
                    }
                });
            if spawned.is_err() {
                // Could not spawn a full pool; report what we have. If
                // none spawned, fall back to serial execution forever.
                if k == 0 {
                    return None;
                }
                return Some(Pool {
                    tx: Mutex::new(tx),
                    workers: k,
                });
            }
        }
        Some(Pool {
            tx: Mutex::new(tx),
            workers: size,
        })
    })
    .as_ref()
}

/// A `Send`able raw pointer to a region's work closure. Holding the
/// pointer past the region's lifetime is fine (it is never dereferenced
/// after the last unit is claimed — see the safety comment in
/// [`Region::drain`]).
#[derive(Clone, Copy)]
struct WorkPtr(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (shared calls from any thread are safe)
// and the drain protocol guarantees it is only dereferenced while the
// region's caller — who owns the closure — is still blocked in
// `run_units`.
unsafe impl Send for WorkPtr {}

/// Shared state of one parallel region.
struct Region {
    /// Next unclaimed unit index.
    next: AtomicUsize,
    /// Units fully executed (claim + call + bookkeeping).
    done: AtomicUsize,
    /// Total units.
    n: usize,
    /// First panic payload raised by a unit, rethrown by the caller.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
    gate: Mutex<()>,
    cv: Condvar,
}

impl Region {
    fn new(n: usize) -> Self {
        Region {
            next: AtomicUsize::new(0),
            done: AtomicUsize::new(0),
            n,
            panic: Mutex::new(None),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// Claims and runs units until none remain. Called by workers (via
    /// the erased pointer) and by the region's caller (with the real
    /// reference).
    fn drain(&self, work: WorkPtr) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.n {
                break;
            }
            // SAFETY: `i < n`, and every claimed unit below `n` is
            // followed by `mark_done`. The caller does not leave
            // `run_units` (by return *or* unwind) until `done == n`,
            // i.e. until after every such claim has finished its call —
            // so the closure behind the pointer is alive for the whole
            // call. Stale pool jobs arriving after the region completed
            // observe `i >= n` and never dereference.
            let f = unsafe { &*work.0 };
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| f(i))) {
                let mut slot = lock_resilient(&self.panic);
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            self.mark_done();
        }
    }

    fn mark_done(&self) {
        if self.done.fetch_add(1, Ordering::AcqRel) + 1 == self.n {
            // Take the gate so the notify cannot race between the
            // caller's re-check and its wait.
            let _guard = lock_resilient(&self.gate);
            self.cv.notify_all();
        }
    }

    fn wait_all_done(&self) {
        let mut guard = lock_resilient(&self.gate);
        while self.done.load(Ordering::Acquire) < self.n {
            guard = self
                .cv
                .wait(guard)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
        }
    }
}

/// Drains the region, recording the runner's busy time under
/// `par.sched.worker.{thread-name}.busy_ns` when metrics are on. The
/// caller thread reports as `caller` unless it carries a name.
fn drain_timed(region: &Region, work: WorkPtr) {
    if !cm_obs::enabled() {
        region.drain(work);
        return;
    }
    let start = std::time::Instant::now();
    region.drain(work);
    let busy = start.elapsed().as_nanos() as u64;
    let thread = std::thread::current();
    let name = thread.name().unwrap_or("caller");
    cm_obs::counter_add(&format!("par.sched.worker.{name}.busy_ns"), busy);
}

/// Executes `f(0), f(1), …, f(n-1)` exactly once each, using up to the
/// current thread budget of runners, and returns once all calls have
/// finished. Panics from any unit are rethrown on the calling thread
/// after the region has fully quiesced.
pub(crate) fn run_units(n: usize, f: &(dyn Fn(usize) + Sync)) {
    let Some(pool) = global_pool() else {
        for i in 0..n {
            f(i);
        }
        return;
    };
    let runners = crate::max_threads().min(pool.workers + 1);
    let helpers = runners.saturating_sub(1).min(n.saturating_sub(1));
    if helpers == 0 {
        for i in 0..n {
            f(i);
        }
        return;
    }

    let region = Arc::new(Region::new(n));
    // SAFETY: pointer-to-pointer transmute that only erases the
    // closure's lifetime; layout is identical. Validity of later
    // dereferences is argued in `Region::drain`.
    let work = WorkPtr(unsafe {
        std::mem::transmute::<
            *const (dyn Fn(usize) + Sync + '_),
            *const (dyn Fn(usize) + Sync + 'static),
        >(f as *const (dyn Fn(usize) + Sync))
    });
    {
        let tx = lock_resilient(&pool.tx);
        for _ in 0..helpers {
            let region = Arc::clone(&region);
            // When metrics are on, stamp the job at enqueue so the
            // worker can report its queue wait. Scheduling metrics live
            // under `par.sched.*`: they inherently vary with the thread
            // budget and are exempt from the determinism rule.
            let sent_at = cm_obs::enabled().then(std::time::Instant::now);
            // Ignore send failures (workers gone): the caller drains.
            let _ = tx.send(Box::new(move || {
                if let Some(sent_at) = sent_at {
                    cm_obs::counter_add("par.sched.helper_jobs", 1);
                    cm_obs::counter_add(
                        "par.sched.queue_wait_ns",
                        sent_at.elapsed().as_nanos() as u64,
                    );
                }
                drain_timed(&region, work);
            }));
        }
    }

    // The caller participates, then blocks until every unit — including
    // those claimed by workers — has completed. This wait is what keeps
    // the erased pointer valid for the workers.
    drain_timed(&region, work);
    region.wait_all_done();

    let payload = lock_resilient(&region.panic).take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
}
