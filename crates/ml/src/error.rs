use std::error::Error;
use std::fmt;

/// Errors produced by dataset handling and model training.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MlError {
    /// The dataset has no rows.
    EmptyDataset,
    /// Feature rows have inconsistent lengths, or targets do not pair
    /// with rows.
    InconsistentShape {
        /// What was expected.
        expected: usize,
        /// What was found.
        found: usize,
    },
    /// A configuration value was out of range.
    InvalidConfig(&'static str),
    /// A feature index was outside the dataset's width.
    FeatureOutOfRange {
        /// The offending index.
        index: usize,
        /// Number of features available.
        width: usize,
    },
}

impl fmt::Display for MlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MlError::EmptyDataset => f.write_str("dataset has no rows"),
            MlError::InconsistentShape { expected, found } => {
                write!(f, "inconsistent shape: expected {expected}, found {found}")
            }
            MlError::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            MlError::FeatureOutOfRange { index, width } => {
                write!(f, "feature index {index} out of range for width {width}")
            }
        }
    }
}

impl Error for MlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert_eq!(MlError::EmptyDataset.to_string(), "dataset has no rows");
        assert!(MlError::FeatureOutOfRange { index: 9, width: 3 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<MlError>();
    }
}
