//! Histogram-binned regression-tree growth.
//!
//! Split search over a [`BinnedView`] scans per-node **gradient
//! histograms** — (target-sum, count) per bin per feature — instead of
//! per-row presorted orders: building a node's histogram is one O(rows)
//! pass, and the split scan is O(bins) per feature. After a split, only
//! the *smaller* child's histogram is rebuilt; the larger child's is the
//! parent's minus the sibling's (the subtraction trick), so each level of
//! the tree costs roughly half its row count instead of all of it.
//!
//! The variance-reduction objective is identical to the exact trainer's:
//! for a candidate partition into (L, R),
//!
//! ```text
//! improvement = sum_L²/n_L + sum_R²/n_R − sum²/n
//! ```
//!
//! which is algebraically the parent-minus-children SSE the exact scan
//! computes (the squared-target terms cancel). Candidate thresholds are
//! the bin cuts, so when every distinct value has its own bin the search
//! space matches exact search exactly.
//!
//! Per-feature histogram builds and split scans fan out across the
//! [`cm_par`] pool; every reduction is in fixed feature-then-bin order,
//! so the grown tree is bit-identical at any thread count.

use crate::binning::{BinnedView, MAX_BINS};
use crate::tree::{Node, RegressionTree, TreeConfig};
use crate::MlError;

/// Below this many feature·row units of work, a node's histogram build
/// and split scan run serially — scheduling overhead would dominate.
const PAR_MIN_WORK: usize = 8192;

/// Matches the exact trainer's minimum useful squared-error improvement.
const MIN_IMPROVEMENT: f64 = 1e-12;

/// A tree grown on binned codes: the portable raw-threshold
/// [`RegressionTree`] plus a code-space router that classifies any row of
/// the source [`BinnedView`] without touching raw feature values — the
/// boosting loop's residual updates run entirely in bin space.
#[derive(Debug)]
pub(crate) struct HistTree {
    pub(crate) tree: RegressionTree,
    /// Router nodes, children pushed before parents (root last), exactly
    /// mirroring `tree`'s layout.
    router: Vec<RouterNode>,
}

#[derive(Debug)]
enum RouterNode {
    Leaf {
        value: f64,
    },
    Split {
        col: u32,
        cut: u8,
        left: u32,
        right: u32,
    },
}

impl HistTree {
    /// The leaf value `row` of the view routes to.
    pub(crate) fn route(&self, view: &BinnedView<'_>, row: usize) -> f64 {
        let mut i = self.router.len() - 1;
        loop {
            match self.router[i] {
                RouterNode::Leaf { value } => return value,
                RouterNode::Split {
                    col,
                    cut,
                    left,
                    right,
                } => {
                    i = if view.code(col as usize, row) <= cut {
                        left as usize
                    } else {
                        right as usize
                    };
                }
            }
        }
    }
}

/// Per-feature (target-sum, count) histogram of one node.
///
/// Every column's arrays are fixed at [`MAX_BINS`] entries regardless of
/// how many bins the column occupies: a `u8` bin code then provably
/// indexes in bounds, so the accumulation scatter carries no bounds
/// checks. Sums and counts stay in *separate* arrays — a count bump is
/// an integer add that issues alongside the sum's floating-point add,
/// where an interleaved `[sum, count]` f64 layout would serialize two
/// FP adds through the same cache line (measurably slower on the build
/// loop, which dominates hist training).
struct Hist {
    /// `sums[j][b]`: sum of targets of the node's rows with code `b` in
    /// view column `j`. Length [`MAX_BINS`].
    sums: Vec<Vec<f64>>,
    /// `cnts[j][b]`: number of such rows. Length [`MAX_BINS`].
    cnts: Vec<Vec<u32>>,
}

impl Hist {
    /// Turns `self` (a parent histogram) into the sibling of `child` —
    /// the subtraction trick. Fixed feature-then-bin order. Slots past a
    /// column's occupied bins are `+0.0` (resp. `0`) in both parent and
    /// child, and `0.0 - 0.0 == +0.0`, so subtracting the full
    /// fixed-width slice is safe and branch-free.
    fn subtract(mut self, child: &Hist) -> Hist {
        for (ps, cs) in self.sums.iter_mut().zip(&child.sums) {
            for (p, c) in ps.iter_mut().zip(cs) {
                *p -= c;
            }
        }
        for (pc, cc) in self.cnts.iter_mut().zip(&child.cnts) {
            for (p, c) in pc.iter_mut().zip(cc) {
                *p -= c;
            }
        }
        self
    }
}

struct BestSplit {
    col: usize,
    cut: u8,
    improvement: f64,
}

/// Fits one regression tree to `gradients` (indexed by view row) over
/// the sampled rows `sample` (repeats allowed), growing by histogram
/// split search.
pub(crate) fn fit_hist_tree(
    view: &BinnedView<'_>,
    gradients: &[f64],
    sample: &[usize],
    config: TreeConfig,
) -> Result<HistTree, MlError> {
    config.validate()?;
    if sample.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    debug_assert_eq!(gradients.len(), view.n_rows());
    let mut ws = HistWorkspace::new(view, gradients, sample);
    let mut out = HistTree {
        tree: RegressionTree::from_nodes(Vec::new(), view.n_features()),
        router: Vec::new(),
    };
    let m = sample.len();
    let root_hist = ws.build_hist(0..m);
    build(&mut out, &mut ws, view, 0..m, 0, Some(root_hist), config);
    Ok(out)
}

/// Per-tree gathered state: sample-local code columns, targets, and one
/// position array kept partitioned so a node's samples are contiguous.
struct HistWorkspace {
    /// `codes[j][p]`: bin code of view column `j` at sample position `p`.
    codes: Vec<Vec<u8>>,
    /// `n_bins[j]`: occupied bins of view column `j`.
    n_bins: Vec<usize>,
    /// `y[p]`: gradient (residual target) of sample position `p`.
    y: Vec<f64>,
    /// Sample positions, partitioned in place as nodes split.
    positions: Vec<u32>,
    /// Scratch: side of the pending split per sample position.
    goes_left: Vec<bool>,
}

impl HistWorkspace {
    fn new(view: &BinnedView<'_>, gradients: &[f64], sample: &[usize]) -> Self {
        let m = sample.len();
        let n_cols = view.n_features();
        // One gather per column per tree — O(F·m), replacing the exact
        // trainer's O(F·m log m) per-tree sorts.
        let codes = cm_par::map_range(n_cols, |j| {
            let col = view.code_column(j);
            sample.iter().map(|&i| col[i]).collect::<Vec<u8>>()
        });
        HistWorkspace {
            codes,
            n_bins: (0..n_cols).map(|j| view.n_bins(j)).collect(),
            y: sample.iter().map(|&i| gradients[i]).collect(),
            positions: (0..m as u32).collect(),
            goes_left: vec![false; m],
        }
    }

    fn segment_sum(&self, seg: std::ops::Range<usize>) -> f64 {
        self.positions[seg]
            .iter()
            .map(|&p| self.y[p as usize])
            .sum()
    }

    /// Builds the (sum, count) histogram of a segment, one pass per
    /// column. Columns fan out on the pool; rows within a column are
    /// accumulated in segment order.
    fn build_hist(&self, seg: std::ops::Range<usize>) -> Hist {
        let positions = &self.positions[seg.clone()];
        let y = self.y.as_slice();
        let one_col = |j: usize| -> (Vec<f64>, Vec<u32>) {
            let codes = self.codes[j].as_slice();
            let mut sums = vec![0.0f64; MAX_BINS];
            let mut cnts = vec![0u32; MAX_BINS];
            // Constant-length reslices: every `s[b]` / `c[b]` below is
            // provably in bounds for a u8 code, so the scatter loop
            // carries no bounds checks.
            let s = &mut sums[..MAX_BINS];
            let c = &mut cnts[..MAX_BINS];
            for &p in positions {
                let b = usize::from(codes[p as usize]);
                s[b] += y[p as usize];
                c[b] += 1;
            }
            (sums, cnts)
        };
        let n_cols = self.codes.len();
        let per_col: Vec<(Vec<f64>, Vec<u32>)> =
            if seg.len().saturating_mul(n_cols) >= PAR_MIN_WORK && cm_par::max_threads() > 1 {
                cm_par::map_range(n_cols, one_col)
            } else {
                (0..n_cols).map(one_col).collect()
            };
        let (sums, cnts) = per_col.into_iter().unzip();
        Hist { sums, cnts }
    }

    /// Finds the best bin cut over all columns, or `None` when no cut
    /// satisfies the leaf-size constraint and improves the squared
    /// error. The cross-column reduction prefers the lowest column (and,
    /// within a column, the lowest cut) on exact ties, matching a
    /// sequential column-major scan.
    fn best_split(&self, hist: &Hist, n: usize, min_leaf: usize) -> Option<BestSplit> {
        if n < 2 * min_leaf {
            return None;
        }
        // Total over the *occupied* bins of column 0 in bin order —
        // every column's bins partition the same rows. (Summing the
        // fixed-width tail too would fold extra `+0.0` terms into the
        // total; harmless numerically but not bit-identical when the
        // running sum is `-0.0`.)
        let total: f64 = hist.sums[0].iter().take(self.n_bins[0]).sum();
        let scan_col = |j: usize| -> Option<(f64, u8)> {
            let sums = &hist.sums[j][..MAX_BINS];
            let cnts = &hist.cnts[j][..MAX_BINS];
            let mut best: Option<(f64, u8)> = None;
            let mut left_sum = 0.0;
            let mut left_n = 0usize;
            // The last bin cannot be a left side: no cut above it.
            for b in 0..self.n_bins[j].saturating_sub(1) {
                left_sum += sums[b];
                left_n += cnts[b] as usize;
                let right_n = n - left_n;
                if left_n < min_leaf || right_n < min_leaf {
                    continue;
                }
                let right_sum = total - left_sum;
                let improvement = left_sum * left_sum / left_n as f64
                    + right_sum * right_sum / right_n as f64
                    - total * total / n as f64;
                if improvement > MIN_IMPROVEMENT && best.is_none_or(|(g, _)| improvement > g) {
                    best = Some((improvement, b as u8));
                }
            }
            best
        };
        let n_cols = self.codes.len();
        let candidates: Vec<Option<(f64, u8)>> =
            if n.saturating_mul(n_cols) >= PAR_MIN_WORK && cm_par::max_threads() > 1 {
                cm_par::map_range(n_cols, scan_col)
            } else {
                (0..n_cols).map(scan_col).collect()
            };
        let mut best: Option<BestSplit> = None;
        for (col, cand) in candidates.into_iter().enumerate() {
            if let Some((improvement, cut)) = cand {
                if best.as_ref().is_none_or(|b| improvement > b.improvement) {
                    best = Some(BestSplit {
                        col,
                        cut,
                        improvement,
                    });
                }
            }
        }
        best
    }

    /// Stably partitions the segment so samples with
    /// `code[col] <= cut` come first; returns the boundary position.
    fn apply_split(&mut self, seg: std::ops::Range<usize>, col: usize, cut: u8) -> usize {
        let codes = &self.codes[col];
        let mut left_n = 0usize;
        for pos in seg.clone() {
            let p = self.positions[pos] as usize;
            let left = codes[p] <= cut;
            self.goes_left[p] = left;
            left_n += left as usize;
        }
        let n = seg.len();
        let slice = &mut self.positions[seg.clone()];
        let mut kept = Vec::with_capacity(n - left_n);
        let mut write = 0usize;
        for read in 0..n {
            let p = slice[read];
            if self.goes_left[p as usize] {
                slice[write] = p;
                write += 1;
            } else {
                kept.push(p);
            }
        }
        slice[write..].copy_from_slice(&kept);
        seg.start + left_n
    }
}

/// Builds a subtree over `seg`, returning its node id (shared by the
/// tree and the router, which are pushed in lockstep).
///
/// `hist` carries the node's histogram when the parent already computed
/// it (root, or a child derived by subtraction); `None` means "build it
/// fresh if the node can split at all".
fn build(
    out: &mut HistTree,
    ws: &mut HistWorkspace,
    view: &BinnedView<'_>,
    seg: std::ops::Range<usize>,
    depth: usize,
    hist: Option<Hist>,
    config: TreeConfig,
) -> u32 {
    let n = seg.len();
    let mean = ws.segment_sum(seg.clone()) / n as f64;
    let leaf = |out: &mut HistTree| -> u32 {
        out.tree.push_node(Node::Leaf { value: mean });
        out.router.push(RouterNode::Leaf { value: mean });
        (out.router.len() - 1) as u32
    };
    if depth >= config.max_depth || n < config.min_samples_split {
        return leaf(out);
    }
    let hist = hist.unwrap_or_else(|| ws.build_hist(seg.clone()));
    match ws.best_split(&hist, n, config.min_samples_leaf) {
        None => leaf(out),
        Some(split) => {
            let mid = ws.apply_split(seg.clone(), split.col, split.cut);
            let (left_seg, right_seg) = (seg.start..mid, mid..seg.end);
            let splittable = |s: &std::ops::Range<usize>| {
                depth + 1 < config.max_depth && s.len() >= config.min_samples_split
            };
            // Child histograms: when both children can split, build the
            // smaller fresh and derive the larger by subtraction; when
            // only one can, build just that one fresh; when neither can,
            // skip histogram work entirely.
            let (lh, rh) = match (splittable(&left_seg), splittable(&right_seg)) {
                (true, true) => {
                    if left_seg.len() <= right_seg.len() {
                        let lh = ws.build_hist(left_seg.clone());
                        let rh = hist.subtract(&lh);
                        (Some(lh), Some(rh))
                    } else {
                        let rh = ws.build_hist(right_seg.clone());
                        let lh = hist.subtract(&rh);
                        (Some(lh), Some(rh))
                    }
                }
                (true, false) => (Some(ws.build_hist(left_seg.clone())), None),
                (false, true) => (None, Some(ws.build_hist(right_seg.clone()))),
                (false, false) => (None, None),
            };
            let left = build(out, ws, view, left_seg, depth + 1, lh, config);
            let right = build(out, ws, view, right_seg, depth + 1, rh, config);
            out.tree.push_node(Node::Split {
                feature: split.col,
                threshold: view.cut_value(split.col, split.cut as usize),
                improvement: split.improvement,
                left: left as usize,
                right: right as usize,
            });
            out.router.push(RouterNode::Split {
                col: split.col as u32,
                cut: split.cut,
                left,
                right,
            });
            (out.router.len() - 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::binning::BinnedDataset;
    use crate::Dataset;

    fn step_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, 0.0]).collect();
        let y: Vec<f64> = (0..n).map(|i| if i < n / 2 { -1.0 } else { 1.0 }).collect();
        Dataset::new(rows, y).unwrap()
    }

    fn fit_full(data: &Dataset, config: TreeConfig) -> HistTree {
        let binned = BinnedDataset::from_dataset(data, 256);
        let view = binned.view();
        let indices: Vec<usize> = (0..data.n_rows()).collect();
        fit_hist_tree(&view, data.targets(), &indices, config).unwrap()
    }

    #[test]
    fn fits_step_function_exactly() {
        let data = step_data(40);
        let fit = fit_full(&data, TreeConfig::default());
        assert_eq!(fit.tree.predict(&[0.0, 0.0]), -1.0);
        assert_eq!(fit.tree.predict(&[39.0, 0.0]), 1.0);
        assert!(fit.tree.split_count() >= 1);
    }

    #[test]
    fn router_matches_raw_tree_on_training_rows() {
        let data = step_data(64);
        let binned = BinnedDataset::from_dataset(&data, 256);
        let view = binned.view();
        let indices: Vec<usize> = (0..data.n_rows()).collect();
        let fit = fit_hist_tree(&view, data.targets(), &indices, TreeConfig::default()).unwrap();
        for (i, row) in data.rows().iter().enumerate() {
            assert_eq!(fit.route(&view, i), fit.tree.predict(row), "row {i}");
        }
    }

    #[test]
    fn respects_leaf_and_depth_constraints() {
        let data = step_data(8);
        let fit = fit_full(
            &data,
            TreeConfig {
                max_depth: 10,
                min_samples_leaf: 4,
                min_samples_split: 2,
            },
        );
        assert_eq!(fit.tree.split_count(), 1);
        let stump = fit_full(
            &step_data(64),
            TreeConfig {
                max_depth: 1,
                ..TreeConfig::default()
            },
        );
        assert_eq!(stump.tree.split_count(), 1);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let data = Dataset::new(rows, vec![7.0; 10]).unwrap();
        let fit = fit_full(&data, TreeConfig::default());
        assert_eq!(fit.tree.split_count(), 0);
        assert_eq!(fit.tree.predict(&[123.0]), 7.0);
    }

    #[test]
    fn repeated_sample_rows_weight_the_leaves() {
        let data = step_data(16);
        let binned = BinnedDataset::from_dataset(&data, 256);
        let view = binned.view();
        let indices: Vec<usize> = (0..16).chain(0..4).chain(0..4).collect();
        let fit = fit_hist_tree(&view, data.targets(), &indices, TreeConfig::default()).unwrap();
        assert_eq!(fit.tree.predict(&[0.0, 0.0]), -1.0);
        assert_eq!(fit.tree.predict(&[15.0, 0.0]), 1.0);
    }

    #[test]
    fn empty_sample_is_rejected() {
        let data = step_data(8);
        let binned = BinnedDataset::from_dataset(&data, 256);
        let view = binned.view();
        assert!(fit_hist_tree(&view, data.targets(), &[], TreeConfig::default()).is_err());
    }

    /// With one bin per distinct value and the whole row set sampled,
    /// histogram search scans the same candidate partitions as exact
    /// presorted search — the chosen split structure must agree with the
    /// exact tree wherever improvements are not rounding-level ties.
    #[test]
    fn matches_exact_tree_on_small_distinct_data() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..6u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            // Integer-valued features: clean midpoint cuts, no
            // rounding-sensitive near-ties in the gain comparison.
            let rows: Vec<Vec<f64>> = (0..150)
                .map(|_| (0..4).map(|_| rng.gen_range(0..25) as f64).collect())
                .collect();
            let y: Vec<f64> = rows
                .iter()
                .map(|r| (r[0] * 3.0).sin() * 4.0 + r[2] + rng.gen_range(-0.5..0.5))
                .collect();
            let data = Dataset::new(rows, y).unwrap();
            let exact = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
            let hist = fit_full(&data, TreeConfig::default());
            for (i, row) in data.rows().iter().enumerate() {
                let (e, h) = (exact.predict(row), hist.tree.predict(row));
                assert!(
                    (e - h).abs() < 1e-9,
                    "seed {seed} row {i}: exact {e} hist {h}"
                );
            }
        }
    }
}
