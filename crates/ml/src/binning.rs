//! Feature quantization for histogram-binned GBRT training.
//!
//! Exact split search scans O(rows) candidate thresholds per feature per
//! node. Quantizing each feature once into at most [`MAX_BINS`] bins lets
//! every node scan O(bins) instead: per-node gradient histograms are
//! accumulated over bin codes and split candidates are the bin
//! boundaries. The quantization is a *per-dataset* cost — a
//! [`BinnedDataset`] is built once and reused across boosting stages, and
//! (via [`BinnedDataset::select`]) across the EIR pruning rounds that
//! retrain on shrinking feature subsets, so retraining never re-quantizes.

use crate::{Dataset, MlError};

/// Default (and maximum representable) number of bins per feature: bin
/// codes are stored as `u8`, so one byte per feature per row.
pub const MAX_BINS: usize = 256;

/// A dataset quantized column-by-column into at most [`MAX_BINS`] bins
/// per feature.
///
/// Bin boundaries ("cuts") are placed at quantiles of each feature's
/// observed distribution, at midpoints between adjacent distinct values —
/// so when a feature has at most `max_bins` distinct values the
/// quantization is lossless and histogram split search considers exactly
/// the thresholds exact search would.
///
/// # Examples
///
/// ```
/// use cm_ml::{BinnedDataset, Dataset};
///
/// let rows: Vec<Vec<f64>> = (0..100).map(|i| vec![(i % 10) as f64]).collect();
/// let y = vec![0.0; 100];
/// let data = Dataset::new(rows, y)?;
/// let binned = BinnedDataset::from_dataset(&data, 256);
/// assert_eq!(binned.n_rows(), 100);
/// assert_eq!(binned.n_bins(0), 10); // 10 distinct values -> 10 bins
/// # Ok::<(), cm_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct BinnedDataset {
    /// `codes[f][row]`: bin index of feature `f` at `row` (column-major,
    /// so per-feature histogram passes stream contiguous memory).
    codes: Vec<Vec<u8>>,
    /// `cuts[f][b]`: raw-value threshold separating bin `b` from bin
    /// `b + 1` (`len == n_bins - 1`). A row falls in bin `b` iff
    /// `cuts[b-1] < value <= cuts[b]` (with virtual ±∞ ends), so a split
    /// "code <= b" corresponds to the raw split `value <= cuts[b]`.
    cuts: Vec<Vec<f64>>,
    n_rows: usize,
}

impl BinnedDataset {
    /// Quantizes every feature of `data` into at most
    /// `max_bins.clamp(2, MAX_BINS)` bins. Columns are quantized in
    /// parallel on the [`cm_par`] pool; the result is identical at any
    /// thread count.
    pub fn from_dataset(data: &Dataset, max_bins: usize) -> Self {
        let max_bins = max_bins.clamp(2, MAX_BINS);
        let n_rows = data.n_rows();
        let per_feature = cm_par::map_range(data.n_features(), |f| {
            let col: Vec<f64> = data.column(f).collect();
            let cuts = quantile_cuts(&col, max_bins);
            let codes: Vec<u8> = col.iter().map(|&v| code_of(&cuts, v)).collect();
            (codes, cuts)
        });
        let mut codes = Vec::with_capacity(per_feature.len());
        let mut cuts = Vec::with_capacity(per_feature.len());
        for (c, q) in per_feature {
            codes.push(c);
            cuts.push(q);
        }
        let binned = BinnedDataset {
            codes,
            cuts,
            n_rows,
        };
        if cm_obs::enabled() {
            cm_obs::counter_add("ml.binnings", 1);
            let total: usize = (0..binned.n_features()).map(|f| binned.n_bins(f)).sum();
            cm_obs::counter_add("ml.bins_built", total as u64);
        }
        binned
    }

    /// Number of quantized rows.
    pub fn n_rows(&self) -> usize {
        self.n_rows
    }

    /// Number of quantized features.
    pub fn n_features(&self) -> usize {
        self.codes.len()
    }

    /// Number of occupied bins of feature `f` (`cuts + 1`).
    pub fn n_bins(&self, f: usize) -> usize {
        self.cuts[f].len() + 1
    }

    /// The bin code of feature `f` at `row`.
    pub(crate) fn code(&self, f: usize, row: usize) -> u8 {
        self.codes[f][row]
    }

    /// The contiguous code column of feature `f`.
    pub(crate) fn code_column(&self, f: usize) -> &[u8] {
        &self.codes[f]
    }

    /// The raw-value threshold of the split "code <= b" on feature `f`.
    pub(crate) fn cut_value(&self, f: usize, b: usize) -> f64 {
        self.cuts[f][b]
    }

    /// A zero-copy view of every column, in order.
    pub fn view(&self) -> BinnedView<'_> {
        BinnedView {
            binned: self,
            cols: (0..self.n_features()).collect(),
        }
    }

    /// A zero-copy view of a column subset, in the given order — the EIR
    /// loop's per-round feature selection without re-quantizing.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureOutOfRange`] for bad indices and
    /// [`MlError::InvalidConfig`] for an empty selection.
    pub fn select(&self, cols: &[usize]) -> Result<BinnedView<'_>, MlError> {
        if cols.is_empty() {
            return Err(MlError::InvalidConfig(
                "binned view must keep at least one column",
            ));
        }
        let width = self.n_features();
        if let Some(&bad) = cols.iter().find(|&&c| c >= width) {
            return Err(MlError::FeatureOutOfRange { index: bad, width });
        }
        Ok(BinnedView {
            binned: self,
            cols: cols.to_vec(),
        })
    }
}

/// A zero-copy column view of a [`BinnedDataset`]: the view's feature `j`
/// is the underlying column `cols[j]`. Rows are shared, never copied.
#[derive(Debug, Clone)]
pub struct BinnedView<'a> {
    binned: &'a BinnedDataset,
    cols: Vec<usize>,
}

impl BinnedView<'_> {
    /// Number of rows.
    pub fn n_rows(&self) -> usize {
        self.binned.n_rows()
    }

    /// Number of selected columns.
    pub fn n_features(&self) -> usize {
        self.cols.len()
    }

    /// Number of bins of view column `j`.
    pub(crate) fn n_bins(&self, j: usize) -> usize {
        self.binned.n_bins(self.cols[j])
    }

    /// The contiguous code column of view column `j`.
    pub(crate) fn code_column(&self, j: usize) -> &[u8] {
        self.binned.code_column(self.cols[j])
    }

    /// The bin code of view column `j` at `row`.
    pub(crate) fn code(&self, j: usize, row: usize) -> u8 {
        self.binned.code(self.cols[j], row)
    }

    /// The raw-value threshold of the split "code <= b" on view column
    /// `j`.
    pub(crate) fn cut_value(&self, j: usize, b: usize) -> f64 {
        self.binned.cut_value(self.cols[j], b)
    }
}

/// Quantile cut points over a column: strictly increasing raw-value
/// thresholds at midpoints between adjacent distinct values, at most
/// `max_bins - 1` of them.
fn quantile_cuts(col: &[f64], max_bins: usize) -> Vec<f64> {
    let mut sorted = col.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.dedup();
    let distinct = sorted.len();
    if distinct <= 1 {
        return Vec::new();
    }
    if distinct <= max_bins {
        // Lossless: one bin per distinct value, cuts at midpoints.
        return sorted.windows(2).map(|w| 0.5 * (w[0] + w[1])).collect();
    }
    // Quantiles over the *distinct* values, so heavy repeats cannot
    // collapse multiple cuts onto one value.
    let mut cuts = Vec::with_capacity(max_bins - 1);
    for b in 1..max_bins {
        let pos = b * distinct / max_bins;
        // pos >= 1 because b >= 1 and distinct > max_bins.
        let cut = 0.5 * (sorted[pos - 1] + sorted[pos]);
        if cuts.last().is_none_or(|&last| cut > last) {
            cuts.push(cut);
        }
    }
    cuts
}

/// The bin a raw value falls in: the number of cuts strictly below it.
fn code_of(cuts: &[f64], v: f64) -> u8 {
    cuts.partition_point(|&c| v > c) as u8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_column(values: Vec<f64>) -> Dataset {
        let n = values.len();
        let rows = values.into_iter().map(|v| vec![v]).collect();
        Dataset::new(rows, vec![0.0; n]).unwrap()
    }

    #[test]
    fn lossless_when_distinct_values_fit() {
        let data = single_column((0..50).map(|i| (i % 5) as f64).collect());
        let binned = BinnedDataset::from_dataset(&data, 256);
        assert_eq!(binned.n_bins(0), 5);
        // Every distinct value gets its own code, in value order.
        for (i, row) in data.rows().iter().enumerate() {
            assert_eq!(binned.code(0, i) as usize, row[0] as usize);
        }
    }

    #[test]
    fn cuts_are_strictly_increasing_and_consistent_with_codes() {
        let values: Vec<f64> = (0..1000).map(|i| ((i * 37) % 997) as f64 * 0.31).collect();
        let data = single_column(values);
        let binned = BinnedDataset::from_dataset(&data, 64);
        assert!(binned.n_bins(0) <= 64);
        let cuts: Vec<f64> = (0..binned.n_bins(0) - 1)
            .map(|b| binned.cut_value(0, b))
            .collect();
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        // code <= b exactly when value <= cuts[b].
        for (i, row) in data.rows().iter().enumerate() {
            let code = binned.code(0, i) as usize;
            for (b, &cut) in cuts.iter().enumerate() {
                assert_eq!(code <= b, row[0] <= cut, "row {i} bin {b}");
            }
        }
    }

    #[test]
    fn constant_column_has_one_bin() {
        let data = single_column(vec![3.0; 20]);
        let binned = BinnedDataset::from_dataset(&data, 256);
        assert_eq!(binned.n_bins(0), 1);
        assert!(binned.code_column(0).iter().all(|&c| c == 0));
    }

    #[test]
    fn heavy_repeats_do_not_collapse_cuts() {
        // 90% zeros, then 300 distinct positives: naive row-quantiles
        // would put many cuts at 0.
        let mut values = vec![0.0; 2700];
        values.extend((0..300).map(|i| 1.0 + i as f64));
        let data = single_column(values);
        let binned = BinnedDataset::from_dataset(&data, 32);
        let cuts: Vec<f64> = (0..binned.n_bins(0) - 1)
            .map(|b| binned.cut_value(0, b))
            .collect();
        assert!(cuts.windows(2).all(|w| w[0] < w[1]));
        assert!(binned.n_bins(0) > 16, "bins {}", binned.n_bins(0));
    }

    #[test]
    fn select_projects_columns_zero_copy() {
        let rows: Vec<Vec<f64>> = (0..30).map(|i| vec![i as f64, (i % 3) as f64]).collect();
        let data = Dataset::new(rows, vec![0.0; 30]).unwrap();
        let binned = BinnedDataset::from_dataset(&data, 256);
        let view = binned.select(&[1]).unwrap();
        assert_eq!(view.n_features(), 1);
        assert_eq!(view.n_bins(0), 3);
        assert_eq!(view.code(0, 4), binned.code(1, 4));
        assert!(binned.select(&[]).is_err());
        assert!(binned.select(&[2]).is_err());
    }

    #[test]
    fn binning_is_thread_count_invariant() {
        let rows: Vec<Vec<f64>> = (0..500)
            .map(|i| (0..6).map(|f| ((i * 13 + f * 7) % 101) as f64).collect())
            .collect();
        let data = Dataset::new(rows, vec![0.0; 500]).unwrap();
        cm_par::set_max_threads(1);
        let serial = BinnedDataset::from_dataset(&data, 64);
        cm_par::set_max_threads(0);
        let parallel = BinnedDataset::from_dataset(&data, 64);
        assert_eq!(serial, parallel);
    }
}
