use crate::{Dataset, MlError};

/// Below this many feature·row units of work, a node's split search and
/// partition run serially — scheduling overhead would dominate.
const PAR_MIN_WORK: usize = 8192;

/// Configuration for a single CART regression tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth; depth 1 is a single split (a stump).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum samples a node needs to be considered for splitting.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 3,
            min_samples_leaf: 2,
            min_samples_split: 4,
        }
    }
}

impl TreeConfig {
    pub(crate) fn validate(&self) -> Result<(), MlError> {
        if self.max_depth == 0 {
            return Err(MlError::InvalidConfig("max_depth must be at least 1"));
        }
        if self.min_samples_leaf == 0 {
            return Err(MlError::InvalidConfig(
                "min_samples_leaf must be at least 1",
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Squared-error improvement contributed by this split — the
        /// `P²(k)` ingredient of the paper's importance measure (Eq. 10).
        improvement: f64,
        left: usize,
        right: usize,
    },
}

/// A CART regression tree with variance-reduction splits.
///
/// Trees record the squared-error improvement of every split so the
/// ensemble can compute Friedman feature importance.
///
/// Split search is *presorted*: per-feature sample orders are sorted
/// once per tree, and every node scans them in O(features · rows) with
/// a stable lockstep partition carrying the orders down the recursion —
/// instead of re-sorting every feature at every node. Per-node feature
/// scans fan out across the [`cm_par`] thread pool; the chosen split is
/// identical at any thread count.
///
/// # Examples
///
/// ```
/// use cm_ml::{Dataset, RegressionTree, TreeConfig};
///
/// let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = rows.iter().map(|r| if r[0] < 10.0 { 1.0 } else { 5.0 }).collect();
/// let data = Dataset::new(rows, y)?;
/// let tree = RegressionTree::fit(&data, TreeConfig::default())?;
/// assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-9);
/// assert!((tree.predict(&[15.0]) - 5.0).abs() < 1e-9);
/// # Ok::<(), cm_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fits a tree to the full dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidConfig`] for a bad configuration.
    pub fn fit(data: &Dataset, config: TreeConfig) -> Result<Self, MlError> {
        let indices: Vec<usize> = (0..data.n_rows()).collect();
        Self::fit_indices(data, &indices, config)
    }

    /// Fits a tree to a row subset (used by the boosted ensemble's
    /// stochastic subsampling). Rows may repeat.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidConfig`] for a bad configuration or
    /// [`MlError::EmptyDataset`] for an empty index set.
    pub fn fit_indices(
        data: &Dataset,
        indices: &[usize],
        config: TreeConfig,
    ) -> Result<Self, MlError> {
        Self::fit_with_targets(data, data.targets(), indices, config)
    }

    /// Like [`RegressionTree::fit_indices`] but with `targets` replacing
    /// the dataset's own target column — the boosting loop retargets the
    /// same feature matrix at each stage's residuals without cloning it.
    pub(crate) fn fit_with_targets(
        data: &Dataset,
        targets: &[f64],
        indices: &[usize],
        config: TreeConfig,
    ) -> Result<Self, MlError> {
        config.validate()?;
        if indices.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        debug_assert_eq!(targets.len(), data.n_rows());
        let mut ws = SplitWorkspace::new(data, targets, indices);
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: data.n_features(),
        };
        let m = indices.len();
        tree.build(&mut ws, 0..m, 0, config);
        Ok(tree)
    }

    /// Builds a subtree over the sample segment `seg`, returning its
    /// node id.
    fn build(
        &mut self,
        ws: &mut SplitWorkspace,
        seg: std::ops::Range<usize>,
        depth: usize,
        config: TreeConfig,
    ) -> usize {
        let n = seg.len();
        let mean = ws.segment_sum(seg.clone()) / n as f64;
        if depth >= config.max_depth || n < config.min_samples_split {
            return self.push(Node::Leaf { value: mean });
        }
        match ws.best_split(seg.clone(), config.min_samples_leaf) {
            None => self.push(Node::Leaf { value: mean }),
            Some(split) => {
                // Partition every feature's order in place around the
                // chosen threshold; both children stay presorted.
                let mid = ws.apply_split(seg.clone(), split.feature, split.threshold);
                let left = self.build(ws, seg.start..mid, depth + 1, config);
                let right = self.build(ws, mid..seg.end, depth + 1, config);
                self.push(Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    improvement: split.improvement,
                    left,
                    right,
                })
            }
        }
    }

    /// Assembles a tree from prebuilt nodes (children pushed before
    /// their parent, root last) — the histogram grower's constructor.
    pub(crate) fn from_nodes(nodes: Vec<Node>, n_features: usize) -> Self {
        RegressionTree { nodes, n_features }
    }

    /// Appends a node, returning its id (see [`RegressionTree::from_nodes`]).
    pub(crate) fn push_node(&mut self, node: Node) -> usize {
        self.push(node)
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn root(&self) -> usize {
        // Children are pushed before their parent, so the root is last.
        self.nodes.len() - 1
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the training width.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(
            row.len(),
            self.n_features,
            "feature row length does not match the fitted tree"
        );
        let mut node = self.root();
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of decision nodes (splits) in the tree.
    pub fn split_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Split { .. }))
            .count()
    }

    /// Accumulates each feature's squared-improvement into `acc`
    /// (`acc.len()` must equal the training feature count).
    pub(crate) fn accumulate_importance(&self, acc: &mut [f64]) {
        debug_assert_eq!(acc.len(), self.n_features);
        for node in &self.nodes {
            if let Node::Split {
                feature,
                improvement,
                ..
            } = node
            {
                acc[*feature] += improvement;
            }
        }
    }
}

/// One node of a [`FlatForest`]: 16 bytes, so an entire node — tag,
/// child link, and payload — lands on a single cache line and four nodes
/// pack per line. (The previous structure-of-arrays layout spread each
/// node over four parallel arrays, touching up to four cache lines per
/// hop; profiles showed that made flat traversal *slower* than walking
/// the nested trees.)
#[derive(Debug, Clone, Copy, PartialEq)]
struct FlatNode {
    /// `feature + 1` for a split node; `0` marks a leaf.
    feat: u32,
    /// Left-child slot (the right child is `left + 1`); unused for
    /// leaves.
    left: u32,
    /// Split threshold, or the leaf's value.
    x: f64,
}

/// Rows per block in [`FlatForest::predict_rows_into`]. Small enough
/// that a block's accumulators and row pointers stay in registers/L1,
/// large enough to amortize streaming the forest once per block.
const ROW_BLOCK: usize = 16;

/// An ensemble of fitted trees flattened into one contiguous node
/// array, every tree laid out breadth-first with sibling children
/// adjacent (`right == left + 1`).
///
/// Traversal touches one flat array of 16-byte [`FlatNode`]s instead of
/// chasing `Vec<Node>` enums through pointer-sized tags, and the branch
/// in the hot loop is a single arithmetic select. Batch prediction
/// ([`FlatForest::predict_rows_into`]) additionally blocks rows so the
/// whole forest streams through cache once per [`ROW_BLOCK`] rows
/// instead of once per row. Prediction accumulates leaf values in tree
/// order, so results are bit-identical to summing
/// [`RegressionTree::predict`] over the same trees.
#[derive(Debug, Clone, PartialEq)]
pub(crate) struct FlatForest {
    nodes: Vec<FlatNode>,
    /// Root slot of each tree, in tree order.
    roots: Vec<u32>,
}

impl FlatForest {
    /// Flattens the trees of an ensemble, preserving tree order.
    pub(crate) fn from_trees(trees: &[RegressionTree]) -> Self {
        let total: usize = trees.iter().map(|t| t.nodes.len()).sum();
        let mut flat = FlatForest {
            nodes: Vec::with_capacity(total),
            roots: Vec::with_capacity(trees.len()),
        };
        let mut queue: std::collections::VecDeque<(usize, usize)> =
            std::collections::VecDeque::new();
        for tree in trees {
            let alloc = |flat: &mut FlatForest| -> usize {
                flat.nodes.push(FlatNode {
                    feat: 0,
                    left: 0,
                    x: 0.0,
                });
                flat.nodes.len() - 1
            };
            let root = alloc(&mut flat);
            flat.roots.push(root as u32);
            queue.clear();
            queue.push_back((tree.root(), root));
            while let Some((node, slot)) = queue.pop_front() {
                match &tree.nodes[node] {
                    Node::Leaf { value } => flat.nodes[slot].x = *value,
                    Node::Split {
                        feature,
                        threshold,
                        left,
                        right,
                        ..
                    } => {
                        // Children take adjacent slots so the traversal
                        // can select `left + went_right`.
                        let l = alloc(&mut flat);
                        let _r = alloc(&mut flat);
                        flat.nodes[slot] = FlatNode {
                            feat: *feature as u32 + 1,
                            left: l as u32,
                            x: *threshold,
                        };
                        queue.push_back((*left, l));
                        queue.push_back((*right, l + 1));
                    }
                }
            }
        }
        flat
    }

    /// Sum of every tree's leaf value for one feature row, in tree
    /// order.
    #[inline]
    pub(crate) fn predict_row(&self, row: &[f64]) -> f64 {
        let mut acc = 0.0;
        for &root in &self.roots {
            let mut i = root as usize;
            loop {
                let n = self.nodes[i];
                if n.feat == 0 {
                    acc += n.x;
                    break;
                }
                let right = (row[(n.feat - 1) as usize] > n.x) as usize;
                i = n.left as usize + right;
            }
        }
        acc
    }

    /// Raw forest sums (no base or learning-rate scaling) for a batch of
    /// rows, written into `out`.
    ///
    /// Rows are processed in [`ROW_BLOCK`]-sized blocks with the *tree*
    /// loop outermost inside a block: each tree's nodes are walked for
    /// all rows of the block while they are hot in cache, so the forest
    /// streams through memory once per block instead of once per row.
    /// Each row's accumulator still receives its leaf values in tree
    /// order, so every output is bit-identical to
    /// [`FlatForest::predict_row`].
    pub(crate) fn predict_rows_into(&self, rows: &[&[f64]], out: &mut [f64]) {
        debug_assert_eq!(rows.len(), out.len());
        for (rows, accs) in rows.chunks(ROW_BLOCK).zip(out.chunks_mut(ROW_BLOCK)) {
            accs.fill(0.0);
            for &root in &self.roots {
                for (row, acc) in rows.iter().zip(accs.iter_mut()) {
                    let mut i = root as usize;
                    loop {
                        let n = self.nodes[i];
                        if n.feat == 0 {
                            *acc += n.x;
                            break;
                        }
                        let right = (row[(n.feat - 1) as usize] > n.x) as usize;
                        i = n.left as usize + right;
                    }
                }
            }
        }
    }

    /// [`FlatForest::predict_rows_into`] for rows packed row-major in
    /// one contiguous buffer of width `n_features` — the walk indexes
    /// the buffer directly, so the flat entry point never materializes
    /// per-row slice references.
    pub(crate) fn predict_packed_into(&self, rows: &[f64], n_features: usize, out: &mut [f64]) {
        debug_assert_eq!(rows.len(), out.len() * n_features);
        for (rows, accs) in rows
            .chunks(ROW_BLOCK * n_features)
            .zip(out.chunks_mut(ROW_BLOCK))
        {
            accs.fill(0.0);
            for &root in &self.roots {
                for (row, acc) in rows.chunks_exact(n_features).zip(accs.iter_mut()) {
                    let mut i = root as usize;
                    loop {
                        let n = self.nodes[i];
                        if n.feat == 0 {
                            *acc += n.x;
                            break;
                        }
                        let right = (row[(n.feat - 1) as usize] > n.x) as usize;
                        i = n.left as usize + right;
                    }
                }
            }
        }
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    improvement: f64,
}

/// Per-tree presorted state: gathered feature columns, gathered targets,
/// and one sample order per feature, kept partitioned in lockstep so a
/// node's samples occupy the same contiguous segment — already sorted —
/// in every feature's order.
struct SplitWorkspace {
    /// `cols[f][p]`: feature `f` of sample position `p`.
    cols: Vec<Vec<f64>>,
    /// `y[p]`: target of sample position `p`.
    y: Vec<f64>,
    /// `orders[f]`: sample positions sorted ascending by `cols[f]`.
    orders: Vec<Vec<u32>>,
    /// Scratch: side of the pending split per sample position.
    goes_left: Vec<bool>,
}

impl SplitWorkspace {
    fn new(data: &Dataset, targets: &[f64], indices: &[usize]) -> Self {
        let m = indices.len();
        let n_features = data.n_features();
        // Gathering a column and sorting its order is independent per
        // feature; this is the O(F·m log m) once-per-tree cost replacing
        // the seed algorithm's per-node re-sorts.
        let mut gathered = cm_par::map_range(n_features, |f| {
            let col: Vec<f64> = indices.iter().map(|&i| data.row(i)[f]).collect();
            let mut order: Vec<u32> = (0..m as u32).collect();
            order.sort_by(|&a, &b| col[a as usize].total_cmp(&col[b as usize]));
            (col, order)
        });
        let mut cols = Vec::with_capacity(n_features);
        let mut orders = Vec::with_capacity(n_features);
        for (col, order) in gathered.drain(..) {
            cols.push(col);
            orders.push(order);
        }
        SplitWorkspace {
            cols,
            y: indices.iter().map(|&i| targets[i]).collect(),
            orders,
            goes_left: vec![false; m],
        }
    }

    /// Sum of targets over a node's segment.
    fn segment_sum(&self, seg: std::ops::Range<usize>) -> f64 {
        self.orders[0][seg]
            .iter()
            .map(|&p| self.y[p as usize])
            .sum()
    }

    /// Finds the variance-reduction-optimal split over all features, or
    /// `None` when no split satisfies the leaf-size constraint or
    /// improves the squared error. Features are scanned in parallel;
    /// the cross-feature reduction prefers the lowest feature on exact
    /// ties, matching a sequential feature-major scan.
    fn best_split(&self, seg: std::ops::Range<usize>, min_leaf: usize) -> Option<SplitChoice> {
        let n = seg.len();
        if n < 2 * min_leaf {
            return None;
        }
        let root_order = &self.orders[0][seg.clone()];
        let total_sum: f64 = root_order.iter().map(|&p| self.y[p as usize]).sum();
        let total_sq: f64 = root_order
            .iter()
            .map(|&p| self.y[p as usize] * self.y[p as usize])
            .sum();
        let parent_sse = total_sq - total_sum * total_sum / n as f64;

        let scan_feature = |feature: usize| -> Option<(f64, f64)> {
            let order = &self.orders[feature][seg.clone()];
            let col = &self.cols[feature];
            let mut best: Option<(f64, f64)> = None;
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for pos in 0..n - 1 {
                let p = order[pos] as usize;
                let y = self.y[p];
                left_sum += y;
                left_sq += y * y;
                let left_n = pos + 1;
                let right_n = n - left_n;
                if left_n < min_leaf || right_n < min_leaf {
                    continue;
                }
                let x_here = col[p];
                let x_next = col[order[pos + 1] as usize];
                if x_here == x_next {
                    continue; // cannot split between equal values
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let left_sse = left_sq - left_sum * left_sum / left_n as f64;
                let right_sse = right_sq - right_sum * right_sum / right_n as f64;
                let improvement = parent_sse - left_sse - right_sse;
                if improvement > 1e-12 && best.is_none_or(|(b, _)| improvement > b) {
                    best = Some((improvement, 0.5 * (x_here + x_next)));
                }
            }
            best
        };

        let n_features = self.cols.len();
        let candidates: Vec<Option<(f64, f64)>> =
            if n.saturating_mul(n_features) >= PAR_MIN_WORK && cm_par::max_threads() > 1 {
                cm_par::map_range(n_features, scan_feature)
            } else {
                (0..n_features).map(scan_feature).collect()
            };

        let mut best: Option<SplitChoice> = None;
        for (feature, cand) in candidates.into_iter().enumerate() {
            if let Some((improvement, threshold)) = cand {
                if best.as_ref().is_none_or(|b| improvement > b.improvement) {
                    best = Some(SplitChoice {
                        feature,
                        threshold,
                        improvement,
                    });
                }
            }
        }
        best
    }

    /// Stably partitions every feature's segment so samples with
    /// `feature <= threshold` come first; returns the boundary position.
    /// Stability keeps each child segment sorted in every feature.
    fn apply_split(
        &mut self,
        seg: std::ops::Range<usize>,
        feature: usize,
        threshold: f64,
    ) -> usize {
        let n = seg.len();
        let mut left_n = 0usize;
        for pos in seg.clone() {
            let p = self.orders[feature][pos] as usize;
            let left = self.cols[feature][p] <= threshold;
            self.goes_left[p] = left;
            left_n += left as usize;
        }

        let goes_left = &self.goes_left;
        let partition_one = |order: &mut Vec<u32>| {
            let slice = &mut order[seg.clone()];
            let mut kept = Vec::with_capacity(n - left_n);
            let mut write = 0usize;
            for read in 0..n {
                let p = slice[read];
                if goes_left[p as usize] {
                    slice[write] = p;
                    write += 1;
                } else {
                    kept.push(p);
                }
            }
            slice[write..].copy_from_slice(&kept);
        };

        if n.saturating_mul(self.orders.len()) >= PAR_MIN_WORK && cm_par::max_threads() > 1 {
            cm_par::map_mut(&mut self.orders, |_, order| partition_one(order));
        } else {
            for order in &mut self.orders {
                partition_one(order);
            }
        }
        seg.start + left_n
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, 0.0]).collect();
        let y: Vec<f64> = (0..n).map(|i| if i < n / 2 { -1.0 } else { 1.0 }).collect();
        Dataset::new(rows, y).unwrap()
    }

    #[test]
    fn fits_step_function_exactly() {
        let data = step_data(40);
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        assert_eq!(tree.predict(&[0.0, 0.0]), -1.0);
        assert_eq!(tree.predict(&[39.0, 0.0]), 1.0);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let data = Dataset::new(rows, vec![7.0; 10]).unwrap();
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        assert_eq!(tree.split_count(), 0);
        assert_eq!(tree.predict(&[123.0]), 7.0);
    }

    #[test]
    fn respects_max_depth() {
        let data = step_data(64);
        let tree = RegressionTree::fit(
            &data,
            TreeConfig {
                max_depth: 1,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(tree.split_count(), 1);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let data = step_data(8);
        let tree = RegressionTree::fit(
            &data,
            TreeConfig {
                max_depth: 10,
                min_samples_leaf: 4,
                min_samples_split: 2,
            },
        )
        .unwrap();
        // Only one split (4 | 4) is legal.
        assert_eq!(tree.split_count(), 1);
    }

    #[test]
    fn importance_lands_on_informative_feature() {
        let data = step_data(40); // feature 1 is constant noise
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        let mut acc = vec![0.0; 2];
        tree.accumulate_importance(&mut acc);
        assert!(acc[0] > 0.0);
        assert_eq!(acc[1], 0.0);
    }

    #[test]
    fn fit_indices_uses_subset_only() {
        let data = step_data(40);
        // All-left subset: the tree never sees a positive target.
        let indices: Vec<usize> = (0..20).collect();
        let tree = RegressionTree::fit_indices(&data, &indices, TreeConfig::default()).unwrap();
        assert_eq!(tree.predict(&[39.0, 0.0]), -1.0);
    }

    #[test]
    fn fit_indices_handles_repeated_rows() {
        let data = step_data(16);
        // Triplicate a lopsided subset; repeats must weight the means.
        let indices: Vec<usize> = (0..16).chain(0..4).chain(0..4).collect();
        let tree = RegressionTree::fit_indices(&data, &indices, TreeConfig::default()).unwrap();
        assert_eq!(tree.predict(&[0.0, 0.0]), -1.0);
        assert_eq!(tree.predict(&[15.0, 0.0]), 1.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = step_data(8);
        assert!(RegressionTree::fit(
            &data,
            TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            }
        )
        .is_err());
        assert!(RegressionTree::fit_indices(&data, &[], TreeConfig::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "feature row length")]
    fn predict_wrong_width_panics() {
        let data = step_data(8);
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        tree.predict(&[1.0]);
    }

    #[test]
    fn ties_in_feature_values_handled() {
        // All x equal: no legal split, falls back to mean leaf.
        let rows = vec![vec![5.0]; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let data = Dataset::new(rows, y).unwrap();
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        assert_eq!(tree.split_count(), 0);
        assert!((tree.predict(&[5.0]) - 4.5).abs() < 1e-12);
    }

    #[test]
    fn flat_forest_matches_tree_walks_exactly() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let rows: Vec<Vec<f64>> = (0..80)
            .map(|_| (0..3).map(|_| rng.gen_range(-5.0..5.0)).collect())
            .collect();
        let trees: Vec<RegressionTree> = (0..4)
            .map(|t| {
                let y: Vec<f64> = rows
                    .iter()
                    .map(|r| r[t % 3] * (t as f64 + 1.0) + rng.gen_range(-0.1..0.1))
                    .collect();
                let data = Dataset::new(rows.clone(), y).unwrap();
                RegressionTree::fit(
                    &data,
                    TreeConfig {
                        max_depth: 4,
                        ..TreeConfig::default()
                    },
                )
                .unwrap()
            })
            .collect();
        let flat = FlatForest::from_trees(&trees);
        for row in &rows {
            let walked: f64 = trees.iter().map(|t| t.predict(row)).sum();
            assert_eq!(flat.predict_row(row), walked);
        }
        assert_eq!(FlatForest::from_trees(&[]).predict_row(&[1.0]), 0.0);

        // The blocked batch path must agree bit-for-bit with the
        // per-row walk at every block-boundary batch size (ROW_BLOCK is
        // 16): empty, partial, exact, one-over, and multi-block.
        for n in [0usize, 1, 15, 16, 17, 33] {
            let batch: Vec<&[f64]> = rows.iter().take(n).map(|r| r.as_slice()).collect();
            let mut out = vec![f64::NAN; n];
            flat.predict_rows_into(&batch, &mut out);
            for (row, &got) in batch.iter().zip(&out) {
                assert_eq!(got.to_bits(), flat.predict_row(row).to_bits(), "n={n}");
            }
        }
    }

    /// The seed implementation's split search, kept as a test oracle:
    /// re-sorts the index set per feature per node. The presorted search
    /// must choose the same splits.
    fn oracle_best_split(
        data: &Dataset,
        indices: &[usize],
        min_leaf: usize,
    ) -> Option<(usize, f64)> {
        let n = indices.len();
        if n < 2 * min_leaf {
            return None;
        }
        let total_sum: f64 = indices.iter().map(|&i| data.target(i)).sum();
        let total_sq: f64 = indices
            .iter()
            .map(|&i| data.target(i) * data.target(i))
            .sum();
        let parent_sse = total_sq - total_sum * total_sum / n as f64;
        let mut best: Option<(usize, f64, f64)> = None;
        let mut order: Vec<usize> = indices.to_vec();
        for feature in 0..data.n_features() {
            order.sort_by(|&a, &b| data.row(a)[feature].total_cmp(&data.row(b)[feature]));
            let mut left_sum = 0.0;
            let mut left_sq = 0.0;
            for pos in 0..n - 1 {
                let i = order[pos];
                let y = data.target(i);
                left_sum += y;
                left_sq += y * y;
                let left_n = pos + 1;
                let right_n = n - left_n;
                if left_n < min_leaf || right_n < min_leaf {
                    continue;
                }
                let x_here = data.row(i)[feature];
                let x_next = data.row(order[pos + 1])[feature];
                if x_here == x_next {
                    continue;
                }
                let right_sum = total_sum - left_sum;
                let right_sq = total_sq - left_sq;
                let left_sse = left_sq - left_sum * left_sum / left_n as f64;
                let right_sse = right_sq - right_sum * right_sum / right_n as f64;
                let improvement = parent_sse - left_sse - right_sse;
                if improvement > 1e-12 && best.is_none_or(|(_, _, b)| improvement > b) {
                    best = Some((feature, 0.5 * (x_here + x_next), improvement));
                }
            }
        }
        best.map(|(f, t, _)| (f, t))
    }

    #[test]
    fn presorted_search_matches_per_node_resort_oracle() {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let rows: Vec<Vec<f64>> = (0..120)
                .map(|_| (0..5).map(|_| rng.gen_range(-10.0..10.0)).collect())
                .collect();
            let y: Vec<f64> = rows
                .iter()
                .map(|r| r[0].sin() * 4.0 + r[2] + rng.gen_range(-0.5..0.5))
                .collect();
            let data = Dataset::new(rows, y).unwrap();
            let indices: Vec<usize> = (0..data.n_rows()).collect();
            let oracle = oracle_best_split(&data, &indices, 2);
            let ws = SplitWorkspace::new(&data, data.targets(), &indices);
            let got = ws
                .best_split(0..indices.len(), 2)
                .map(|s| (s.feature, s.threshold));
            assert_eq!(got, oracle, "seed {seed}");
        }
    }
}
