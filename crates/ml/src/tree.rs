use crate::{Dataset, MlError};

/// Configuration for a single CART regression tree.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TreeConfig {
    /// Maximum tree depth; depth 1 is a single split (a stump).
    pub max_depth: usize,
    /// Minimum samples a leaf may hold.
    pub min_samples_leaf: usize,
    /// Minimum samples a node needs to be considered for splitting.
    pub min_samples_split: usize,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 3,
            min_samples_leaf: 2,
            min_samples_split: 4,
        }
    }
}

impl TreeConfig {
    fn validate(&self) -> Result<(), MlError> {
        if self.max_depth == 0 {
            return Err(MlError::InvalidConfig("max_depth must be at least 1"));
        }
        if self.min_samples_leaf == 0 {
            return Err(MlError::InvalidConfig(
                "min_samples_leaf must be at least 1",
            ));
        }
        Ok(())
    }
}

#[derive(Debug, Clone)]
enum Node {
    Leaf {
        value: f64,
    },
    Split {
        feature: usize,
        threshold: f64,
        /// Squared-error improvement contributed by this split — the
        /// `P²(k)` ingredient of the paper's importance measure (Eq. 10).
        improvement: f64,
        left: usize,
        right: usize,
    },
}

/// A CART regression tree with variance-reduction splits.
///
/// Trees record the squared-error improvement of every split so the
/// ensemble can compute Friedman feature importance.
///
/// # Examples
///
/// ```
/// use cm_ml::{Dataset, RegressionTree, TreeConfig};
///
/// let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
/// let y: Vec<f64> = rows.iter().map(|r| if r[0] < 10.0 { 1.0 } else { 5.0 }).collect();
/// let data = Dataset::new(rows, y)?;
/// let tree = RegressionTree::fit(&data, TreeConfig::default())?;
/// assert!((tree.predict(&[3.0]) - 1.0).abs() < 1e-9);
/// assert!((tree.predict(&[15.0]) - 5.0).abs() < 1e-9);
/// # Ok::<(), cm_ml::MlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct RegressionTree {
    nodes: Vec<Node>,
    n_features: usize,
}

impl RegressionTree {
    /// Fits a tree to the full dataset.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidConfig`] for a bad configuration.
    pub fn fit(data: &Dataset, config: TreeConfig) -> Result<Self, MlError> {
        let indices: Vec<usize> = (0..data.n_rows()).collect();
        Self::fit_indices(data, &indices, config)
    }

    /// Fits a tree to a row subset (used by the boosted ensemble's
    /// stochastic subsampling). Rows may repeat.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidConfig`] for a bad configuration or
    /// [`MlError::EmptyDataset`] for an empty index set.
    pub fn fit_indices(
        data: &Dataset,
        indices: &[usize],
        config: TreeConfig,
    ) -> Result<Self, MlError> {
        config.validate()?;
        if indices.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        let mut tree = RegressionTree {
            nodes: Vec::new(),
            n_features: data.n_features(),
        };
        let mut idx = indices.to_vec();
        tree.build(data, &mut idx, 0, config);
        Ok(tree)
    }

    /// Builds a subtree over `indices`, returning its node id.
    fn build(
        &mut self,
        data: &Dataset,
        indices: &mut [usize],
        depth: usize,
        config: TreeConfig,
    ) -> usize {
        let mean = indices.iter().map(|&i| data.target(i)).sum::<f64>() / indices.len() as f64;
        if depth >= config.max_depth || indices.len() < config.min_samples_split {
            return self.push(Node::Leaf { value: mean });
        }
        match best_split(data, indices, config.min_samples_leaf) {
            None => self.push(Node::Leaf { value: mean }),
            Some(split) => {
                // Partition in place around the chosen threshold.
                let mid = partition(data, indices, split.feature, split.threshold);
                let (left_idx, right_idx) = indices.split_at_mut(mid);
                let left = self.build(data, left_idx, depth + 1, config);
                let right = self.build(data, right_idx, depth + 1, config);
                self.push(Node::Split {
                    feature: split.feature,
                    threshold: split.threshold,
                    improvement: split.improvement,
                    left,
                    right,
                })
            }
        }
    }

    fn push(&mut self, node: Node) -> usize {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn root(&self) -> usize {
        // Children are pushed before their parent, so the root is last.
        self.nodes.len() - 1
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the training width.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(
            row.len(),
            self.n_features,
            "feature row length does not match the fitted tree"
        );
        let mut node = self.root();
        loop {
            match &self.nodes[node] {
                Node::Leaf { value } => return *value,
                Node::Split {
                    feature,
                    threshold,
                    left,
                    right,
                    ..
                } => {
                    node = if row[*feature] <= *threshold {
                        *left
                    } else {
                        *right
                    };
                }
            }
        }
    }

    /// Number of decision nodes (splits) in the tree.
    pub fn split_count(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n, Node::Split { .. }))
            .count()
    }

    /// Accumulates each feature's squared-improvement into `acc`
    /// (`acc.len()` must equal the training feature count).
    pub(crate) fn accumulate_importance(&self, acc: &mut [f64]) {
        debug_assert_eq!(acc.len(), self.n_features);
        for node in &self.nodes {
            if let Node::Split {
                feature,
                improvement,
                ..
            } = node
            {
                acc[*feature] += improvement;
            }
        }
    }
}

struct SplitChoice {
    feature: usize,
    threshold: f64,
    improvement: f64,
}

/// Finds the variance-reduction-optimal split over all features, or
/// `None` when no split satisfies the leaf-size constraint or improves
/// the squared error.
fn best_split(data: &Dataset, indices: &[usize], min_leaf: usize) -> Option<SplitChoice> {
    let n = indices.len();
    if n < 2 * min_leaf {
        return None;
    }
    let total_sum: f64 = indices.iter().map(|&i| data.target(i)).sum();
    let total_sq: f64 = indices
        .iter()
        .map(|&i| data.target(i) * data.target(i))
        .sum();
    let parent_sse = total_sq - total_sum * total_sum / n as f64;

    let mut best: Option<SplitChoice> = None;
    let mut order: Vec<usize> = indices.to_vec();
    for feature in 0..data.n_features() {
        order.sort_by(|&a, &b| data.row(a)[feature].total_cmp(&data.row(b)[feature]));
        let mut left_sum = 0.0;
        let mut left_sq = 0.0;
        for pos in 0..n - 1 {
            let i = order[pos];
            let y = data.target(i);
            left_sum += y;
            left_sq += y * y;
            let left_n = pos + 1;
            let right_n = n - left_n;
            if left_n < min_leaf || right_n < min_leaf {
                continue;
            }
            let x_here = data.row(i)[feature];
            let x_next = data.row(order[pos + 1])[feature];
            if x_here == x_next {
                continue; // cannot split between equal values
            }
            let right_sum = total_sum - left_sum;
            let right_sq = total_sq - left_sq;
            let left_sse = left_sq - left_sum * left_sum / left_n as f64;
            let right_sse = right_sq - right_sum * right_sum / right_n as f64;
            let improvement = parent_sse - left_sse - right_sse;
            if improvement > 1e-12 && best.as_ref().is_none_or(|b| improvement > b.improvement) {
                best = Some(SplitChoice {
                    feature,
                    threshold: 0.5 * (x_here + x_next),
                    improvement,
                });
            }
        }
    }
    best
}

/// Partitions `indices` so rows with `feature <= threshold` come first;
/// returns the boundary position.
fn partition(data: &Dataset, indices: &mut [usize], feature: usize, threshold: f64) -> usize {
    let mut mid = 0;
    for i in 0..indices.len() {
        if data.row(indices[i])[feature] <= threshold {
            indices.swap(i, mid);
            mid += 1;
        }
    }
    mid
}

#[cfg(test)]
mod tests {
    use super::*;

    fn step_data(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, 0.0]).collect();
        let y: Vec<f64> = (0..n).map(|i| if i < n / 2 { -1.0 } else { 1.0 }).collect();
        Dataset::new(rows, y).unwrap()
    }

    #[test]
    fn fits_step_function_exactly() {
        let data = step_data(40);
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        assert_eq!(tree.predict(&[0.0, 0.0]), -1.0);
        assert_eq!(tree.predict(&[39.0, 0.0]), 1.0);
    }

    #[test]
    fn constant_targets_give_single_leaf() {
        let rows: Vec<Vec<f64>> = (0..10).map(|i| vec![i as f64]).collect();
        let data = Dataset::new(rows, vec![7.0; 10]).unwrap();
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        assert_eq!(tree.split_count(), 0);
        assert_eq!(tree.predict(&[123.0]), 7.0);
    }

    #[test]
    fn respects_max_depth() {
        let data = step_data(64);
        let tree = RegressionTree::fit(
            &data,
            TreeConfig {
                max_depth: 1,
                ..TreeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(tree.split_count(), 1);
    }

    #[test]
    fn respects_min_samples_leaf() {
        let data = step_data(8);
        let tree = RegressionTree::fit(
            &data,
            TreeConfig {
                max_depth: 10,
                min_samples_leaf: 4,
                min_samples_split: 2,
            },
        )
        .unwrap();
        // Only one split (4 | 4) is legal.
        assert_eq!(tree.split_count(), 1);
    }

    #[test]
    fn importance_lands_on_informative_feature() {
        let data = step_data(40); // feature 1 is constant noise
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        let mut acc = vec![0.0; 2];
        tree.accumulate_importance(&mut acc);
        assert!(acc[0] > 0.0);
        assert_eq!(acc[1], 0.0);
    }

    #[test]
    fn fit_indices_uses_subset_only() {
        let data = step_data(40);
        // All-left subset: the tree never sees a positive target.
        let indices: Vec<usize> = (0..20).collect();
        let tree = RegressionTree::fit_indices(&data, &indices, TreeConfig::default()).unwrap();
        assert_eq!(tree.predict(&[39.0, 0.0]), -1.0);
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = step_data(8);
        assert!(RegressionTree::fit(
            &data,
            TreeConfig {
                max_depth: 0,
                ..TreeConfig::default()
            }
        )
        .is_err());
        assert!(RegressionTree::fit_indices(&data, &[], TreeConfig::default()).is_err());
    }

    #[test]
    #[should_panic(expected = "feature row length")]
    fn predict_wrong_width_panics() {
        let data = step_data(8);
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        tree.predict(&[1.0]);
    }

    #[test]
    fn ties_in_feature_values_handled() {
        // All x equal: no legal split, falls back to mean leaf.
        let rows = vec![vec![5.0]; 10];
        let y: Vec<f64> = (0..10).map(|i| i as f64).collect();
        let data = Dataset::new(rows, y).unwrap();
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        assert_eq!(tree.split_count(), 0);
        assert!((tree.predict(&[5.0]) - 4.5).abs() < 1e-12);
    }
}
