use crate::binning::{BinnedDataset, BinnedView, MAX_BINS};
use crate::tree::{FlatForest, RegressionTree, TreeConfig};
use crate::{hist, Dataset, MlError};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Rows per parallel chunk for batch prediction and residual updates.
const PREDICT_CHUNK: usize = 64;

/// Which split-search algorithm trains each boosting stage.
///
/// # Examples
///
/// ```
/// use cm_ml::Trainer;
///
/// assert_eq!("hist".parse::<Trainer>().unwrap(), Trainer::Hist);
/// assert_eq!("EXACT".parse::<Trainer>().unwrap(), Trainer::Exact);
/// assert!("warp".parse::<Trainer>().is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Trainer {
    /// Presorted exact search: every distinct value is a candidate
    /// threshold, O(rows) per feature per node.
    Exact,
    /// Histogram-binned search (the default): features are quantized
    /// once into ≤ [`MAX_BINS`] bins, nodes scan O(bins) candidates over
    /// gradient histograms, and sibling histograms are derived by
    /// subtraction. Same objective, near-identical models, much faster
    /// on EIR-sized data.
    Hist,
}

impl Default for Trainer {
    /// `Hist`, unless the `CM_TRAINER` environment variable says
    /// `exact` — the knob the CI feature matrix (and a cautious user)
    /// flips without touching code.
    fn default() -> Self {
        static ENV: std::sync::OnceLock<Trainer> = std::sync::OnceLock::new();
        *ENV.get_or_init(|| match std::env::var("CM_TRAINER").as_deref() {
            Ok(v) if v.eq_ignore_ascii_case("exact") => Trainer::Exact,
            _ => Trainer::Hist,
        })
    }
}

impl std::str::FromStr for Trainer {
    type Err = MlError;

    fn from_str(s: &str) -> Result<Self, MlError> {
        if s.eq_ignore_ascii_case("exact") {
            Ok(Trainer::Exact)
        } else if s.eq_ignore_ascii_case("hist") {
            Ok(Trainer::Hist)
        } else {
            Err(MlError::InvalidConfig("trainer must be `exact` or `hist`"))
        }
    }
}

/// Derives an independent RNG stream from a base seed (splitmix64
/// finalizer). Stream `t` seeds tree `t`'s subsampling, so each stage's
/// sample is a pure function of `(seed, t)` — independent of execution
/// order and therefore of the thread count.
pub(crate) fn stream_seed(seed: u64, stream: u64) -> u64 {
    let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Configuration for the stochastic gradient boosted ensemble
/// (Friedman 2002, the algorithm the paper uses via scikit-learn).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SgbrtConfig {
    /// Number of boosting stages.
    pub n_trees: usize,
    /// Shrinkage applied to each stage's contribution.
    pub learning_rate: f64,
    /// Fraction of rows sampled (without replacement) per stage — the
    /// "stochastic" in SGBRT.
    pub subsample: f64,
    /// Per-stage tree shape.
    pub tree: TreeConfig,
    /// RNG seed for the row subsampling, making training reproducible.
    /// Stage `t` subsamples with an independent stream derived from
    /// `(seed, t)`, so the trained model is bit-identical at any thread
    /// count.
    pub seed: u64,
    /// Split-search algorithm. Both trainers draw identical per-stage
    /// subsamples from the same seed streams.
    pub trainer: Trainer,
}

impl Default for SgbrtConfig {
    fn default() -> Self {
        SgbrtConfig {
            n_trees: 120,
            learning_rate: 0.1,
            subsample: 0.7,
            tree: TreeConfig::default(),
            seed: 0,
            trainer: Trainer::default(),
        }
    }
}

impl SgbrtConfig {
    /// Returns the config with a different seed (builder-style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Trains with early stopping: a `validation_fraction` of rows is
    /// held out, and boosting stops once the validation MSE has not
    /// improved for `patience` consecutive stages. The returned model is
    /// truncated at the best validation stage, preventing the late-stage
    /// overfitting that plain [`SgbrtConfig::fit`] allows.
    ///
    /// # Errors
    ///
    /// Same conditions as [`SgbrtConfig::fit`], plus invalid
    /// `validation_fraction` (must leave both sides non-empty) or zero
    /// `patience`.
    pub fn fit_early_stopping(
        self,
        data: &Dataset,
        validation_fraction: f64,
        patience: usize,
    ) -> Result<Sgbrt, MlError> {
        if patience == 0 {
            return Err(MlError::InvalidConfig("patience must be at least 1"));
        }
        let mut rng = StdRng::seed_from_u64(self.seed ^ 0x5EED);
        let (train, validation) = data.train_test_split(validation_fraction, &mut rng)?;
        let full = self.fit(&train)?;

        // Walk the staged predictions over the validation set.
        let mut preds: Vec<f64> = vec![full.base; validation.n_rows()];
        let mut best_stage = 0usize;
        let mut best_mse = crate::metrics::mse(validation.targets(), &preds)?;
        let mut since_best = 0usize;
        for (stage, tree) in full.trees.iter().enumerate() {
            for (p, row) in preds.iter_mut().zip(validation.rows()) {
                *p += full.learning_rate * tree.predict(row);
            }
            let mse = crate::metrics::mse(validation.targets(), &preds)?;
            if mse < best_mse {
                best_mse = mse;
                best_stage = stage + 1;
                since_best = 0;
            } else {
                since_best += 1;
                if since_best >= patience {
                    break;
                }
            }
        }
        let mut trees = full.trees;
        trees.truncate(best_stage.max(1));
        // Reflatten: the SoA predictor must mirror the kept stages.
        Ok(Sgbrt::from_parts(
            full.base,
            full.learning_rate,
            trees,
            full.n_features,
        ))
    }

    /// Trains an ensemble on `data`, dispatching on
    /// [`SgbrtConfig::trainer`]. The histogram path quantizes `data`
    /// once ([`BinnedDataset::from_dataset`]) and trains on the binned
    /// view; callers that retrain repeatedly on column subsets (the EIR
    /// loop) should bin once themselves and call
    /// [`SgbrtConfig::fit_binned`] per round instead.
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_ml::{Dataset, SgbrtConfig};
    ///
    /// let rows: Vec<Vec<f64>> = (0..80)
    ///     .map(|i| vec![i as f64, (i % 7) as f64])
    ///     .collect();
    /// let y: Vec<f64> = rows.iter().map(|r| 2.0 * r[0] + r[1]).collect();
    /// let data = Dataset::new(rows, y)?;
    /// let config = SgbrtConfig { n_trees: 25, ..SgbrtConfig::default() };
    /// let model = config.fit(&data)?;
    /// let pred = model.predict(&[40.0, 5.0]);
    /// assert!((pred - 85.0).abs() < 25.0, "prediction {pred}");
    /// # Ok::<(), cm_ml::MlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidConfig`] for out-of-range
    /// hyperparameters or [`MlError::EmptyDataset`] via dataset
    /// construction.
    pub fn fit(self, data: &Dataset) -> Result<Sgbrt, MlError> {
        match self.trainer {
            Trainer::Exact => self.fit_exact(data),
            Trainer::Hist => {
                let binned = BinnedDataset::from_dataset(data, MAX_BINS);
                self.fit_binned(&binned.view(), data.targets())
            }
        }
    }

    fn validate(&self) -> Result<(), MlError> {
        if self.n_trees == 0 {
            return Err(MlError::InvalidConfig("n_trees must be at least 1"));
        }
        if !(self.learning_rate > 0.0 && self.learning_rate <= 1.0) {
            return Err(MlError::InvalidConfig("learning_rate must be in (0, 1]"));
        }
        if !(self.subsample > 0.0 && self.subsample <= 1.0) {
            return Err(MlError::InvalidConfig("subsample must be in (0, 1]"));
        }
        Ok(())
    }

    /// The per-stage subsample of stage `t` — shared by both trainers so
    /// switching trainer never changes which rows a stage sees.
    fn stage_sample(&self, n: usize, t: usize) -> Vec<usize> {
        let subsample_n = ((n as f64) * self.subsample).round().max(1.0) as usize;
        let mut rng = StdRng::seed_from_u64(stream_seed(self.seed, t as u64));
        let mut sample: Vec<usize> = (0..n).collect();
        sample.shuffle(&mut rng);
        sample.truncate(subsample_n);
        sample
    }

    fn fit_exact(self, data: &Dataset) -> Result<Sgbrt, MlError> {
        self.validate()?;
        record_fit(self.n_trees, "exact");
        let n = data.n_rows();
        let base = data.targets().iter().sum::<f64>() / n as f64;
        let mut residuals: Vec<f64> = data.targets().iter().map(|&y| y - base).collect();
        let mut trees = Vec::with_capacity(self.n_trees);

        for t in 0..self.n_trees {
            let sample = self.stage_sample(n, t);
            // Retarget the feature matrix at the current residuals —
            // no per-stage clone of the rows.
            let tree = RegressionTree::fit_with_targets(data, &residuals, &sample, self.tree)?;
            let step: Vec<f64> = cm_par::map_chunked(n, PREDICT_CHUNK, |range| {
                range.map(|i| tree.predict(data.row(i))).collect()
            });
            for (r, p) in residuals.iter_mut().zip(&step) {
                *r -= self.learning_rate * p;
            }
            trees.push(tree);
        }

        Ok(Sgbrt::from_parts(
            base,
            self.learning_rate,
            trees,
            data.n_features(),
        ))
    }

    /// Trains a histogram-binned ensemble directly on a pre-quantized
    /// view, regardless of [`SgbrtConfig::trainer`]. The EIR loop bins
    /// its training split once and calls this with a shrinking
    /// [`BinnedDataset::select`] view each pruning round, so retraining
    /// never re-quantizes — the residual updates run entirely in bin
    /// space via the per-tree router.
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_ml::{BinnedDataset, Dataset, SgbrtConfig, MAX_BINS};
    ///
    /// let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64]).collect();
    /// let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
    /// let data = Dataset::new(rows, y)?;
    /// let binned = BinnedDataset::from_dataset(&data, MAX_BINS);
    /// let config = SgbrtConfig { n_trees: 20, ..SgbrtConfig::default() };
    /// let model = config.fit_binned(&binned.view(), data.targets())?;
    /// assert_eq!(model.n_trees(), 20);
    /// # Ok::<(), cm_ml::MlError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidConfig`] for out-of-range
    /// hyperparameters and [`MlError::InconsistentShape`] when `targets`
    /// does not pair with the view's rows.
    pub fn fit_binned(self, view: &BinnedView<'_>, targets: &[f64]) -> Result<Sgbrt, MlError> {
        self.validate()?;
        record_fit(self.n_trees, "hist");
        let n = view.n_rows();
        if targets.len() != n {
            return Err(MlError::InconsistentShape {
                expected: n,
                found: targets.len(),
            });
        }
        if n == 0 {
            return Err(MlError::EmptyDataset);
        }
        let base = targets.iter().sum::<f64>() / n as f64;
        let mut residuals: Vec<f64> = targets.iter().map(|&y| y - base).collect();
        let mut trees = Vec::with_capacity(self.n_trees);

        for t in 0..self.n_trees {
            let sample = self.stage_sample(n, t);
            let fitted = hist::fit_hist_tree(view, &residuals, &sample, self.tree)?;
            // Route every row through the tree by bin code — no raw
            // feature reads in the training loop.
            let step: Vec<f64> = cm_par::map_chunked(n, PREDICT_CHUNK, |range| {
                range.map(|i| fitted.route(view, i)).collect()
            });
            for (r, p) in residuals.iter_mut().zip(&step) {
                *r -= self.learning_rate * p;
            }
            trees.push(fitted.tree);
        }

        Ok(Sgbrt::from_parts(
            base,
            self.learning_rate,
            trees,
            view.n_features(),
        ))
    }
}

/// One observability record per training run: which trainer ran and how
/// many stages it will grow. Counted at entry (not per stage) so the
/// totals are independent of how the stages are scheduled.
fn record_fit(n_trees: usize, trainer: &str) {
    if cm_obs::enabled() {
        cm_obs::counter_add("ml.fits", 1);
        cm_obs::counter_add("ml.trees_grown", n_trees as u64);
        cm_obs::label_set("ml.trainer", trainer);
    }
}

/// K-fold cross-validation of an SGBRT configuration: returns the
/// held-out relative error (Eq. 14 of the paper) of each fold.
///
/// Folds are contiguous row ranges (rows are assumed already shuffled or
/// exchangeable, as the simulator's interval rows are after windowing).
/// Folds train concurrently on the [`cm_par`] pool; each fold is a pure
/// function of `(config, data, fold)`, so the returned errors are
/// identical at any thread count.
///
/// # Errors
///
/// Returns [`MlError::InvalidConfig`] unless `2 <= k <= n_rows`, plus
/// any training failure.
pub fn cross_validate(config: SgbrtConfig, data: &Dataset, k: usize) -> Result<Vec<f64>, MlError> {
    if k < 2 || k > data.n_rows() {
        return Err(MlError::InvalidConfig("k must be in 2..=n_rows"));
    }
    let n = data.n_rows();
    let folds: Vec<usize> = (0..k).collect();
    cm_par::try_map(&folds, |&fold| {
        let lo = fold * n / k;
        let hi = (fold + 1) * n / k;
        let train_idx: Vec<usize> = (0..n).filter(|i| *i < lo || *i >= hi).collect();
        let test_idx: Vec<usize> = (lo..hi).collect();
        let pick = |idx: &[usize]| {
            Dataset::new(
                idx.iter().map(|&i| data.row(i).to_vec()).collect(),
                idx.iter().map(|&i| data.target(i)).collect(),
            )
        };
        let train = pick(&train_idx)?;
        let test = pick(&test_idx)?;
        let model = config.fit(&train)?;
        let preds = model.predict_batch(test.rows());
        crate::metrics::relative_error(test.targets(), &preds)
    })
}

/// A trained stochastic gradient boosted regression tree ensemble.
///
/// # Examples
///
/// ```
/// use cm_ml::{Dataset, SgbrtConfig};
///
/// let rows: Vec<Vec<f64>> = (0..80).map(|i| vec![(i % 10) as f64]).collect();
/// let y: Vec<f64> = rows.iter().map(|r| r[0] * r[0]).collect();
/// let data = Dataset::new(rows, y)?;
/// let model = SgbrtConfig::default().with_seed(3).fit(&data)?;
/// // Nonlinear fit: prediction near the true square.
/// assert!((model.predict(&[7.0]) - 49.0).abs() < 5.0);
/// # Ok::<(), cm_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Sgbrt {
    base: f64,
    learning_rate: f64,
    trees: Vec<RegressionTree>,
    n_features: usize,
    /// The trees reflattened into one contiguous 16-byte-node array —
    /// every prediction path walks this, never the node enums.
    flat: FlatForest,
}

impl Sgbrt {
    /// Assembles a model, flattening the trees into the compact predictor.
    fn from_parts(
        base: f64,
        learning_rate: f64,
        trees: Vec<RegressionTree>,
        n_features: usize,
    ) -> Self {
        let flat = FlatForest::from_trees(&trees);
        Sgbrt {
            base,
            learning_rate,
            trees,
            n_features,
            flat,
        }
    }

    /// Predicts the target for one feature row.
    ///
    /// # Panics
    ///
    /// Panics if `row.len()` differs from the training width.
    pub fn predict(&self, row: &[f64]) -> f64 {
        assert_eq!(
            row.len(),
            self.n_features,
            "feature row length does not match the fitted ensemble"
        );
        self.base + self.learning_rate * self.flat.predict_row(row)
    }

    /// Predicts a batch of rows.
    ///
    /// Chunks fan out across threads; within a chunk the flat forest's
    /// blocked traversal streams the node array once per row block
    /// instead of once per row. Leaf values accumulate in tree order,
    /// so every prediction is bit-identical to [`Sgbrt::predict`].
    ///
    /// # Panics
    ///
    /// Panics if any row's length differs from the training width.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        cm_par::map_chunked(rows.len(), PREDICT_CHUNK, |range| {
            let chunk: Vec<&[f64]> = rows[range]
                .iter()
                .map(|row| {
                    assert_eq!(
                        row.len(),
                        self.n_features,
                        "feature row length does not match the fitted ensemble"
                    );
                    row.as_slice()
                })
                .collect();
            self.finish_block(&chunk)
        })
    }

    /// Runs the blocked forest walk over one chunk of row slices and
    /// applies the boosting affine map `base + learning_rate · sum`.
    fn finish_block(&self, chunk: &[&[f64]]) -> Vec<f64> {
        let mut out = vec![0.0; chunk.len()];
        self.flat.predict_rows_into(chunk, &mut out);
        for v in &mut out {
            *v = self.base + self.learning_rate * *v;
        }
        out
    }

    /// Predicts a batch packed as one contiguous row-major buffer of
    /// `k · n_features` values — the allocation-free entry point for
    /// dense sweeps (the interaction ranker writes candidate rows into
    /// one reusable buffer instead of a `Vec<f64>` per row).
    /// Bit-identical to calling [`Sgbrt::predict`] on each row slice.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the training width.
    pub fn predict_batch_flat(&self, rows: &[f64]) -> Vec<f64> {
        assert_eq!(
            rows.len() % self.n_features,
            0,
            "flat buffer length must be a multiple of the feature count"
        );
        let k = rows.len() / self.n_features;
        cm_par::map_chunked(k, PREDICT_CHUNK, |range| {
            let packed = &rows[range.start * self.n_features..range.end * self.n_features];
            let mut out = vec![0.0; range.len()];
            self.flat
                .predict_packed_into(packed, self.n_features, &mut out);
            for v in &mut out {
                *v = self.base + self.learning_rate * *v;
            }
            out
        })
    }

    /// Number of boosting stages.
    pub fn n_trees(&self) -> usize {
        self.trees.len()
    }

    /// Number of features the model was trained on.
    pub fn n_features(&self) -> usize {
        self.n_features
    }

    /// Friedman relative feature importance, normalized to sum to 100
    /// (Eqs. 10–11 of the paper): each feature's squared-error
    /// improvements are summed over the splits that use it and averaged
    /// over trees.
    ///
    /// Returns all zeros when no tree made any split (constant target).
    pub fn feature_importances(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.n_features];
        for tree in &self.trees {
            tree.accumulate_importance(&mut acc);
        }
        let total: f64 = acc.iter().sum();
        if total > 0.0 {
            for v in &mut acc {
                *v *= 100.0 / total;
            }
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics;

    fn friedman_like(n: usize, seed: u64) -> Dataset {
        // y = 10·sin(x0) + 5·x1² + x2, x3 irrelevant.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..4).map(|_| rng.gen_range(0.0..3.0)).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| 10.0 * r[0].sin() + 5.0 * r[1] * r[1] + r[2])
            .collect();
        Dataset::new(rows, y).unwrap()
    }

    #[test]
    fn learns_nonlinear_function() {
        let train = friedman_like(400, 1);
        let test = friedman_like(100, 2);
        let model = SgbrtConfig {
            n_trees: 200,
            ..SgbrtConfig::default()
        }
        .fit(&train)
        .unwrap();
        let preds = model.predict_batch(test.rows());
        let err = metrics::relative_error(test.targets(), &preds).unwrap();
        assert!(err < 0.15, "relative error {err}");
    }

    #[test]
    fn importance_ranks_strong_features_first() {
        let data = friedman_like(500, 3);
        let model = SgbrtConfig::default().with_seed(1).fit(&data).unwrap();
        let imp = model.feature_importances();
        assert!((imp.iter().sum::<f64>() - 100.0).abs() < 1e-6);
        // x1 (quadratic, biggest range of effect) dominates; x3 is noise.
        assert!(imp[1] > imp[3]);
        assert!(imp[0] > imp[3]);
        assert!(imp[3] < 5.0, "irrelevant feature importance {}", imp[3]);
    }

    #[test]
    fn constant_target_predicts_constant() {
        let rows: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let data = Dataset::new(rows, vec![3.25; 20]).unwrap();
        let model = SgbrtConfig::default().fit(&data).unwrap();
        assert!((model.predict(&[100.0]) - 3.25).abs() < 1e-9);
        assert!(model.feature_importances().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn training_is_seed_deterministic() {
        let data = friedman_like(150, 4);
        let a = SgbrtConfig::default().with_seed(7).fit(&data).unwrap();
        let b = SgbrtConfig::default().with_seed(7).fit(&data).unwrap();
        let c = SgbrtConfig::default().with_seed(8).fit(&data).unwrap();
        let row = data.row(0);
        assert_eq!(a.predict(row), b.predict(row));
        assert_eq!(a, b);
        // Different subsampling almost surely changes the model.
        assert_ne!(a.predict(row), c.predict(row));
    }

    #[test]
    fn training_is_thread_count_invariant() {
        let data = friedman_like(200, 9);
        let config = SgbrtConfig {
            n_trees: 30,
            ..SgbrtConfig::default()
        };
        cm_par::set_max_threads(1);
        let serial = config.fit(&data).unwrap();
        cm_par::set_max_threads(4);
        let parallel = config.fit(&data).unwrap();
        cm_par::set_max_threads(0);
        let default_threads = config.fit(&data).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial, default_threads);
    }

    #[test]
    fn predict_batch_matches_predict_exactly() {
        let data = friedman_like(300, 11);
        let model = SgbrtConfig {
            n_trees: 50,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        let batch = model.predict_batch(data.rows());
        assert_eq!(batch.len(), data.n_rows());
        for (row, &b) in data.rows().iter().zip(&batch) {
            assert_eq!(model.predict(row), b);
        }
        assert!(model.predict_batch(&[]).is_empty());
    }

    #[test]
    fn shrinkage_slows_fitting() {
        let data = friedman_like(200, 5);
        let fast = SgbrtConfig {
            n_trees: 10,
            learning_rate: 0.5,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        let slow = SgbrtConfig {
            n_trees: 10,
            learning_rate: 0.01,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        let fast_err = metrics::mse(data.targets(), &fast.predict_batch(data.rows())).unwrap();
        let slow_err = metrics::mse(data.targets(), &slow.predict_batch(data.rows())).unwrap();
        assert!(fast_err < slow_err);
    }

    #[test]
    fn invalid_configs_rejected() {
        let data = friedman_like(50, 6);
        for cfg in [
            SgbrtConfig {
                n_trees: 0,
                ..SgbrtConfig::default()
            },
            SgbrtConfig {
                learning_rate: 0.0,
                ..SgbrtConfig::default()
            },
            SgbrtConfig {
                learning_rate: 1.5,
                ..SgbrtConfig::default()
            },
            SgbrtConfig {
                subsample: 0.0,
                ..SgbrtConfig::default()
            },
        ] {
            assert!(cfg.fit(&data).is_err(), "{cfg:?} should be rejected");
        }
    }

    #[test]
    fn early_stopping_truncates_and_does_not_hurt() {
        // Pure-noise target: extra stages only overfit, so early stopping
        // should truncate well before the full 200 stages.
        use rand::Rng;
        let mut rng = StdRng::seed_from_u64(12);
        let rows: Vec<Vec<f64>> = (0..300)
            .map(|_| vec![rng.gen_range(-1.0..1.0), rng.gen_range(-1.0..1.0)])
            .collect();
        let y: Vec<f64> = (0..300).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let data = Dataset::new(rows, y).unwrap();
        let config = SgbrtConfig {
            n_trees: 200,
            ..SgbrtConfig::default()
        };
        let stopped = config.fit_early_stopping(&data, 0.25, 5).unwrap();
        assert!(
            stopped.n_trees() < 200,
            "expected truncation, kept {}",
            stopped.n_trees()
        );
        assert!(stopped.n_trees() >= 1);
    }

    #[test]
    fn early_stopping_keeps_signal_stages() {
        let data = friedman_like(400, 13);
        let config = SgbrtConfig {
            n_trees: 150,
            ..SgbrtConfig::default()
        };
        let stopped = config.fit_early_stopping(&data, 0.2, 10).unwrap();
        // A real signal keeps many stages and predicts decently.
        assert!(stopped.n_trees() > 20, "kept {}", stopped.n_trees());
        let test = friedman_like(100, 14);
        let err =
            metrics::relative_error(test.targets(), &stopped.predict_batch(test.rows())).unwrap();
        assert!(err < 0.2, "error {err}");
    }

    #[test]
    fn early_stopping_validates_inputs() {
        let data = friedman_like(50, 15);
        assert!(SgbrtConfig::default()
            .fit_early_stopping(&data, 0.2, 0)
            .is_err());
        assert!(SgbrtConfig::default()
            .fit_early_stopping(&data, 0.0, 3)
            .is_err());
    }

    #[test]
    fn cross_validation_returns_k_fold_errors() {
        let data = friedman_like(200, 20);
        let config = SgbrtConfig {
            n_trees: 40,
            ..SgbrtConfig::default()
        };
        let errors = cross_validate(config, &data, 4).unwrap();
        assert_eq!(errors.len(), 4);
        // A learnable function: every fold achieves a sane error.
        for e in &errors {
            assert!(*e < 0.5, "fold error {e}");
        }
        assert!(cross_validate(config, &data, 1).is_err());
        assert!(cross_validate(config, &data, 500).is_err());
    }

    #[test]
    fn cross_validation_is_thread_count_invariant() {
        let data = friedman_like(120, 21);
        let config = SgbrtConfig {
            n_trees: 15,
            ..SgbrtConfig::default()
        };
        cm_par::set_max_threads(1);
        let serial = cross_validate(config, &data, 3).unwrap();
        cm_par::set_max_threads(0);
        let parallel = cross_validate(config, &data, 3).unwrap();
        assert_eq!(serial, parallel);
    }

    /// Oracle: the histogram trainer's cross-validated error must track
    /// the exact trainer's on the Friedman-style dataset — the binning
    /// is an approximation of split *placement*, not of the objective.
    #[test]
    fn hist_cv_error_within_tolerance_of_exact() {
        let data = friedman_like(600, 31);
        let cv_mean = |trainer: Trainer| {
            let cfg = SgbrtConfig {
                n_trees: 60,
                trainer,
                ..SgbrtConfig::default()
            };
            let errs = cross_validate(cfg, &data, 4).unwrap();
            errs.iter().sum::<f64>() / errs.len() as f64
        };
        let exact = cv_mean(Trainer::Exact);
        let hist = cv_mean(Trainer::Hist);
        assert!(
            (hist - exact).abs() / exact < 0.05,
            "hist CV error {hist} drifted from exact {exact}"
        );
    }

    #[test]
    fn hist_training_is_thread_count_invariant() {
        let data = friedman_like(300, 17);
        let config = SgbrtConfig {
            n_trees: 30,
            trainer: Trainer::Hist,
            ..SgbrtConfig::default()
        };
        cm_par::set_max_threads(1);
        let serial = config.fit(&data).unwrap();
        cm_par::set_max_threads(2);
        let two = config.fit(&data).unwrap();
        cm_par::set_max_threads(0);
        let all = config.fit(&data).unwrap();
        assert_eq!(serial, two);
        assert_eq!(serial, all);
    }

    /// Forcing one worker (the serial fallback path taken by
    /// `--no-default-features` builds) must reproduce the pooled result.
    #[test]
    fn hist_serial_fallback_matches_pooled_run() {
        let data = friedman_like(250, 19);
        let config = SgbrtConfig {
            n_trees: 20,
            trainer: Trainer::Hist,
            ..SgbrtConfig::default()
        };
        cm_par::set_max_threads(1);
        let serial = config.fit(&data).unwrap();
        let serial_preds = serial.predict_batch(data.rows());
        cm_par::set_max_threads(0);
        let pooled = config.fit(&data).unwrap();
        assert_eq!(serial, pooled);
        assert_eq!(serial_preds, pooled.predict_batch(data.rows()));
    }

    /// `fit` with the hist trainer is exactly `fit_binned` over a
    /// freshly binned view — the convenience path adds nothing.
    #[test]
    fn fit_binned_matches_hist_fit() {
        let data = friedman_like(200, 23);
        let config = SgbrtConfig {
            n_trees: 25,
            trainer: Trainer::Hist,
            ..SgbrtConfig::default()
        };
        let via_fit = config.fit(&data).unwrap();
        let binned = BinnedDataset::from_dataset(&data, MAX_BINS);
        let via_view = config.fit_binned(&binned.view(), data.targets()).unwrap();
        assert_eq!(via_fit, via_view);
    }

    /// The EIR reuse contract: training on a zero-copy column view of a
    /// once-binned dataset is bit-identical to re-binning the projected
    /// dataset — pruning rounds can skip re-quantization entirely.
    #[test]
    fn binned_column_view_matches_rebinned_projection() {
        let data = friedman_like(300, 27);
        let config = SgbrtConfig {
            n_trees: 20,
            trainer: Trainer::Hist,
            ..SgbrtConfig::default()
        };
        let binned = BinnedDataset::from_dataset(&data, MAX_BINS);
        for cols in [vec![0usize, 2], vec![3, 1], vec![0, 1, 2, 3]] {
            let view = binned.select(&cols).unwrap();
            let via_view = config.fit_binned(&view, data.targets()).unwrap();
            let projected = data.select_features(&cols).unwrap();
            let via_projection = config.fit(&projected).unwrap();
            assert_eq!(via_view, via_projection, "columns {cols:?}");
        }
    }

    #[test]
    fn predict_batch_flat_matches_predict() {
        let data = friedman_like(150, 29);
        let model = SgbrtConfig {
            n_trees: 30,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        let flat: Vec<f64> = data.rows().iter().flatten().copied().collect();
        let batch = model.predict_batch_flat(&flat);
        assert_eq!(batch.len(), data.n_rows());
        for (row, &b) in data.rows().iter().zip(&batch) {
            assert_eq!(model.predict(row), b);
        }
        assert!(model.predict_batch_flat(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "multiple of the feature count")]
    fn predict_batch_flat_rejects_ragged_buffers() {
        let data = friedman_like(50, 33);
        let model = SgbrtConfig {
            n_trees: 5,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        model.predict_batch_flat(&[1.0, 2.0, 3.0]);
    }

    #[test]
    fn trainer_parses_and_rejects() {
        assert_eq!("exact".parse::<Trainer>().unwrap(), Trainer::Exact);
        assert_eq!("HIST".parse::<Trainer>().unwrap(), Trainer::Hist);
        assert!("fast".parse::<Trainer>().is_err());
    }

    #[test]
    fn subsample_one_uses_all_rows() {
        let data = friedman_like(100, 7);
        let model = SgbrtConfig {
            subsample: 1.0,
            n_trees: 20,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        assert_eq!(model.n_trees(), 20);
        assert_eq!(model.n_features(), 4);
    }
}
