//! Machine-learning substrate for CounterMiner: stochastic gradient
//! boosted regression trees (SGBRT) with Friedman feature importance.
//!
//! The paper (Section III-C) models `IPC = perf(e1, …, en)` with SGBRT
//! — an ensemble of shallow regression trees fit stagewise to residuals,
//! each on a random subsample of the training rows (Friedman 2002) — and
//! quantifies each event's importance from the squared improvements of
//! the splits that use it (Eqs. 10–11). scikit-learn provided this in the
//! paper; this crate implements it from scratch:
//!
//! * [`Dataset`] — row-major feature matrix + targets, with splitting
//!   and column selection,
//! * [`RegressionTree`] — CART with variance-reduction splits,
//! * [`Sgbrt`] — the boosted ensemble with subsampling and shrinkage,
//! * [`metrics`] — MSE and the paper's relative-error measure (Eq. 14).
//!
//! # Examples
//!
//! ```
//! use cm_ml::{Dataset, SgbrtConfig};
//!
//! // y = 3·x0 + noise-free, x1 is irrelevant.
//! let rows: Vec<Vec<f64>> = (0..60).map(|i| vec![i as f64, (i % 7) as f64]).collect();
//! let y: Vec<f64> = rows.iter().map(|r| 3.0 * r[0]).collect();
//! let data = Dataset::new(rows, y)?;
//!
//! let model = SgbrtConfig::default().with_seed(1).fit(&data)?;
//! let imp = model.feature_importances();
//! assert!(imp[0] > 90.0); // x0 carries (almost) all the importance
//! # Ok::<(), cm_ml::MlError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod binning;
mod dataset;
mod error;
mod gbrt;
mod hist;
pub mod metrics;
mod tree;

pub use binning::{BinnedDataset, BinnedView, MAX_BINS};
pub use dataset::Dataset;
pub use error::MlError;
pub use gbrt::{cross_validate, Sgbrt, SgbrtConfig, Trainer};
pub use tree::{RegressionTree, TreeConfig};
