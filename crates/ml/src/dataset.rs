use crate::MlError;
use rand::seq::SliceRandom;
use rand::Rng;

/// A row-major supervised-learning dataset: one feature row and one
/// target per sample.
///
/// In CounterMiner a row is the event values of one sampling interval
/// (or one run) and the target is the measured IPC.
///
/// # Examples
///
/// ```
/// use cm_ml::Dataset;
///
/// let data = Dataset::new(vec![vec![1.0, 2.0], vec![3.0, 4.0]], vec![0.5, 0.7])?;
/// assert_eq!(data.n_rows(), 2);
/// assert_eq!(data.n_features(), 2);
/// # Ok::<(), cm_ml::MlError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Dataset {
    rows: Vec<Vec<f64>>,
    targets: Vec<f64>,
}

impl Dataset {
    /// Builds a dataset, validating that all rows have equal width and
    /// pair one-to-one with targets.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::EmptyDataset`] for zero rows and
    /// [`MlError::InconsistentShape`] for ragged rows or mismatched
    /// target counts.
    pub fn new(rows: Vec<Vec<f64>>, targets: Vec<f64>) -> Result<Self, MlError> {
        if rows.is_empty() {
            return Err(MlError::EmptyDataset);
        }
        if rows.len() != targets.len() {
            return Err(MlError::InconsistentShape {
                expected: rows.len(),
                found: targets.len(),
            });
        }
        let width = rows[0].len();
        for row in &rows {
            if row.len() != width {
                return Err(MlError::InconsistentShape {
                    expected: width,
                    found: row.len(),
                });
            }
        }
        Ok(Dataset { rows, targets })
    }

    /// Number of samples.
    pub fn n_rows(&self) -> usize {
        self.rows.len()
    }

    /// Number of features per sample.
    pub fn n_features(&self) -> usize {
        self.rows[0].len()
    }

    /// One feature row.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// One target value.
    ///
    /// # Panics
    ///
    /// Panics if `i >= n_rows()`.
    pub fn target(&self, i: usize) -> f64 {
        self.targets[i]
    }

    /// All targets.
    pub fn targets(&self) -> &[f64] {
        &self.targets
    }

    /// All feature rows.
    pub fn rows(&self) -> &[Vec<f64>] {
        &self.rows
    }

    /// The values of feature `f` across all rows, in row order.
    ///
    /// # Panics
    ///
    /// Panics (on iteration) if `f >= n_features()`.
    pub fn column(&self, f: usize) -> impl Iterator<Item = f64> + '_ {
        self.rows.iter().map(move |row| row[f])
    }

    /// Splits into `(train, test)` with `test_fraction` of rows going to
    /// the test set, shuffled by `rng`.
    ///
    /// The paper trains on `m` examples and evaluates on `m/4` unseen
    /// ones, i.e. `test_fraction = 0.2` of the combined pool.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::InvalidConfig`] unless `0 < test_fraction < 1`
    /// leaves both sides non-empty.
    pub fn train_test_split<R: Rng + ?Sized>(
        &self,
        test_fraction: f64,
        rng: &mut R,
    ) -> Result<(Dataset, Dataset), MlError> {
        if !(0.0..1.0).contains(&test_fraction) || test_fraction == 0.0 {
            return Err(MlError::InvalidConfig("test_fraction must be in (0, 1)"));
        }
        let n_test = ((self.n_rows() as f64) * test_fraction).round() as usize;
        if n_test == 0 || n_test >= self.n_rows() {
            return Err(MlError::InvalidConfig(
                "test_fraction leaves an empty train or test set",
            ));
        }
        let mut order: Vec<usize> = (0..self.n_rows()).collect();
        order.shuffle(rng);
        let (test_idx, train_idx) = order.split_at(n_test);
        Ok((self.subset(train_idx), self.subset(test_idx)))
    }

    fn subset(&self, indices: &[usize]) -> Dataset {
        Dataset {
            rows: indices.iter().map(|&i| self.rows[i].clone()).collect(),
            targets: indices.iter().map(|&i| self.targets[i]).collect(),
        }
    }

    /// Projects the dataset onto a subset of feature columns, in the
    /// given order. Used by the EIR loop when pruning events.
    ///
    /// # Errors
    ///
    /// Returns [`MlError::FeatureOutOfRange`] for bad indices and
    /// [`MlError::InvalidConfig`] for an empty selection.
    pub fn select_features(&self, columns: &[usize]) -> Result<Dataset, MlError> {
        if columns.is_empty() {
            return Err(MlError::InvalidConfig(
                "feature selection must keep at least one column",
            ));
        }
        let width = self.n_features();
        if let Some(&bad) = columns.iter().find(|&&c| c >= width) {
            return Err(MlError::FeatureOutOfRange { index: bad, width });
        }
        Ok(Dataset {
            rows: self
                .rows
                .iter()
                .map(|row| columns.iter().map(|&c| row[c]).collect())
                .collect(),
            targets: self.targets.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn make(n: usize) -> Dataset {
        let rows: Vec<Vec<f64>> = (0..n).map(|i| vec![i as f64, (i * i) as f64]).collect();
        let targets: Vec<f64> = (0..n).map(|i| i as f64 * 2.0).collect();
        Dataset::new(rows, targets).unwrap()
    }

    #[test]
    fn validates_shapes() {
        assert_eq!(Dataset::new(vec![], vec![]), Err(MlError::EmptyDataset));
        assert!(Dataset::new(vec![vec![1.0]], vec![]).is_err());
        assert!(Dataset::new(vec![vec![1.0], vec![1.0, 2.0]], vec![0.0, 0.0]).is_err());
    }

    #[test]
    fn split_partitions_rows() {
        let data = make(100);
        let mut rng = StdRng::seed_from_u64(9);
        let (train, test) = data.train_test_split(0.25, &mut rng).unwrap();
        assert_eq!(train.n_rows(), 75);
        assert_eq!(test.n_rows(), 25);
        // Rows must be a partition: every (x0, target) pair accounted for.
        let mut seen: Vec<f64> = train
            .rows()
            .iter()
            .chain(test.rows())
            .map(|r| r[0])
            .collect();
        seen.sort_by(f64::total_cmp);
        let expected: Vec<f64> = (0..100).map(|i| i as f64).collect();
        assert_eq!(seen, expected);
    }

    #[test]
    fn split_rejects_degenerate_fractions() {
        let data = make(10);
        let mut rng = StdRng::seed_from_u64(1);
        assert!(data.train_test_split(0.0, &mut rng).is_err());
        assert!(data.train_test_split(1.0, &mut rng).is_err());
        assert!(data.train_test_split(0.999, &mut rng).is_err());
    }

    #[test]
    fn split_is_seed_deterministic() {
        let data = make(50);
        let split = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            data.train_test_split(0.2, &mut rng).unwrap()
        };
        let (a_train, _) = split(4);
        let (b_train, _) = split(4);
        assert_eq!(a_train, b_train);
        let (c_train, _) = split(5);
        assert_ne!(a_train, c_train);
    }

    #[test]
    fn select_features_projects_columns() {
        let data = make(5);
        let projected = data.select_features(&[1]).unwrap();
        assert_eq!(projected.n_features(), 1);
        assert_eq!(projected.row(3), &[9.0]);
        assert_eq!(projected.targets(), data.targets());
        // Order is respected and duplication allowed.
        let doubled = data.select_features(&[1, 0, 1]).unwrap();
        assert_eq!(doubled.row(2), &[4.0, 2.0, 4.0]);
    }

    #[test]
    fn column_iterates_in_row_order() {
        let data = make(4);
        let col: Vec<f64> = data.column(1).collect();
        assert_eq!(col, vec![0.0, 1.0, 4.0, 9.0]);
    }

    #[test]
    fn select_features_validates() {
        let data = make(5);
        assert!(data.select_features(&[]).is_err());
        assert_eq!(
            data.select_features(&[2]),
            Err(MlError::FeatureOutOfRange { index: 2, width: 2 })
        );
    }
}
