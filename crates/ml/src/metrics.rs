//! Model-quality metrics, including the paper's relative IPC error
//! (Eq. 14).

use crate::MlError;

fn check_paired(actual: &[f64], predicted: &[f64]) -> Result<(), MlError> {
    if actual.is_empty() {
        return Err(MlError::EmptyDataset);
    }
    if actual.len() != predicted.len() {
        return Err(MlError::InconsistentShape {
            expected: actual.len(),
            found: predicted.len(),
        });
    }
    Ok(())
}

/// Mean squared error.
///
/// # Errors
///
/// Returns an error for empty or mismatched inputs.
pub fn mse(actual: &[f64], predicted: &[f64]) -> Result<f64, MlError> {
    check_paired(actual, predicted)?;
    Ok(actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p) * (a - p))
        .sum::<f64>()
        / actual.len() as f64)
}

/// Mean absolute error.
///
/// # Errors
///
/// Returns an error for empty or mismatched inputs.
pub fn mae(actual: &[f64], predicted: &[f64]) -> Result<f64, MlError> {
    check_paired(actual, predicted)?;
    Ok(actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p).abs())
        .sum::<f64>()
        / actual.len() as f64)
}

/// The paper's model error (Eq. 14), averaged over samples:
///
/// ```text
/// err = mean( |IPC_meas - IPC_pred| / IPC_meas )
/// ```
///
/// Samples with `actual == 0` are skipped (relative error undefined).
/// Returned as a fraction (multiply by 100 for percent).
///
/// # Errors
///
/// Returns an error for empty or mismatched inputs, or when every actual
/// value is zero.
pub fn relative_error(actual: &[f64], predicted: &[f64]) -> Result<f64, MlError> {
    check_paired(actual, predicted)?;
    let mut sum = 0.0;
    let mut count = 0usize;
    for (&a, &p) in actual.iter().zip(predicted) {
        if a != 0.0 {
            sum += ((a - p) / a).abs();
            count += 1;
        }
    }
    if count == 0 {
        return Err(MlError::InvalidConfig(
            "relative error undefined when all actual values are zero",
        ));
    }
    Ok(sum / count as f64)
}

/// Coefficient of determination R².
///
/// # Errors
///
/// Returns an error for empty/mismatched inputs or constant actuals.
pub fn r_squared(actual: &[f64], predicted: &[f64]) -> Result<f64, MlError> {
    check_paired(actual, predicted)?;
    let mean = actual.iter().sum::<f64>() / actual.len() as f64;
    let tss: f64 = actual.iter().map(|&a| (a - mean) * (a - mean)).sum();
    if tss == 0.0 {
        return Err(MlError::InvalidConfig(
            "r-squared undefined for constant actuals",
        ));
    }
    let rss: f64 = actual
        .iter()
        .zip(predicted)
        .map(|(&a, &p)| (a - p) * (a - p))
        .sum();
    Ok(1.0 - rss / tss)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions() {
        let y = [1.0, 2.0, 3.0];
        assert_eq!(mse(&y, &y).unwrap(), 0.0);
        assert_eq!(mae(&y, &y).unwrap(), 0.0);
        assert_eq!(relative_error(&y, &y).unwrap(), 0.0);
        assert_eq!(r_squared(&y, &y).unwrap(), 1.0);
    }

    #[test]
    fn known_values() {
        let actual = [2.0, 4.0];
        let predicted = [1.0, 6.0];
        assert_eq!(mse(&actual, &predicted).unwrap(), 2.5);
        assert_eq!(mae(&actual, &predicted).unwrap(), 1.5);
        // (0.5 + 0.5) / 2
        assert_eq!(relative_error(&actual, &predicted).unwrap(), 0.5);
    }

    #[test]
    fn relative_error_skips_zero_actuals() {
        let actual = [0.0, 2.0];
        let predicted = [5.0, 3.0];
        assert_eq!(relative_error(&actual, &predicted).unwrap(), 0.5);
        assert!(relative_error(&[0.0, 0.0], &[1.0, 1.0]).is_err());
    }

    #[test]
    fn shape_validation() {
        assert!(mse(&[], &[]).is_err());
        assert!(mae(&[1.0], &[1.0, 2.0]).is_err());
        assert!(r_squared(&[1.0, 1.0], &[1.0, 1.0]).is_err()); // constant
    }

    #[test]
    fn r_squared_of_mean_prediction_is_zero() {
        let actual = [1.0, 2.0, 3.0, 4.0];
        let predicted = [2.5; 4];
        assert!((r_squared(&actual, &predicted).unwrap()).abs() < 1e-12);
    }
}
