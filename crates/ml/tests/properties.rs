//! Property-based tests for the ML substrate.

use cm_ml::{metrics, Dataset, RegressionTree, SgbrtConfig, TreeConfig};
use proptest::prelude::*;

fn dataset_strategy(max_rows: usize) -> impl Strategy<Value = Dataset> {
    (2usize..5, 4usize..max_rows).prop_flat_map(|(width, rows)| {
        (
            prop::collection::vec(
                prop::collection::vec(-100.0..100.0f64, width..=width),
                rows..=rows,
            ),
            prop::collection::vec(-100.0..100.0f64, rows..=rows),
        )
            .prop_map(|(x, y)| Dataset::new(x, y).unwrap())
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_predictions_stay_within_target_range(data in dataset_strategy(40)) {
        let tree = RegressionTree::fit(&data, TreeConfig::default()).unwrap();
        let min = data.targets().iter().copied().fold(f64::INFINITY, f64::min);
        let max = data.targets().iter().copied().fold(f64::NEG_INFINITY, f64::max);
        for row in data.rows() {
            let p = tree.predict(row);
            prop_assert!(p >= min - 1e-9 && p <= max + 1e-9);
        }
    }

    #[test]
    fn deeper_trees_never_fit_worse_on_training_data(data in dataset_strategy(40)) {
        let shallow = RegressionTree::fit(
            &data,
            TreeConfig { max_depth: 1, ..TreeConfig::default() },
        )
        .unwrap();
        let deep = RegressionTree::fit(
            &data,
            TreeConfig { max_depth: 6, ..TreeConfig::default() },
        )
        .unwrap();
        let err = |t: &RegressionTree| {
            let preds: Vec<f64> = data.rows().iter().map(|r| t.predict(r)).collect();
            metrics::mse(data.targets(), &preds).unwrap()
        };
        prop_assert!(err(&deep) <= err(&shallow) + 1e-9);
    }

    #[test]
    fn split_partitions_every_row(data in dataset_strategy(40), frac in 0.1..0.9f64) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(1);
        if let Ok((train, test)) = data.train_test_split(frac, &mut rng) {
            prop_assert_eq!(train.n_rows() + test.n_rows(), data.n_rows());
            prop_assert_eq!(train.n_features(), data.n_features());
        }
    }

    #[test]
    fn importances_are_normalized_or_zero(data in dataset_strategy(30)) {
        let model = SgbrtConfig {
            n_trees: 10,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        let imp = model.feature_importances();
        prop_assert_eq!(imp.len(), data.n_features());
        let total: f64 = imp.iter().sum();
        prop_assert!(imp.iter().all(|&v| v >= 0.0));
        prop_assert!(total.abs() < 1e-9 || (total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn metrics_agree_on_perfect_predictions(y in prop::collection::vec(0.5..100.0f64, 1..32)) {
        prop_assert_eq!(metrics::mse(&y, &y).unwrap(), 0.0);
        prop_assert_eq!(metrics::mae(&y, &y).unwrap(), 0.0);
        prop_assert_eq!(metrics::relative_error(&y, &y).unwrap(), 0.0);
    }

    #[test]
    fn mse_dominates_squared_mae(
        a in prop::collection::vec(-100.0..100.0f64, 2..32),
    ) {
        // Jensen: mean(e^2) >= mean(|e|)^2.
        let zeros = vec![0.0; a.len()];
        let mse = metrics::mse(&a, &zeros).unwrap();
        let mae = metrics::mae(&a, &zeros).unwrap();
        prop_assert!(mse + 1e-9 >= mae * mae);
    }

    #[test]
    fn select_features_preserves_rows_and_targets(
        data in dataset_strategy(30),
        col in 0usize..2,
    ) {
        let projected = data.select_features(&[col]).unwrap();
        prop_assert_eq!(projected.n_rows(), data.n_rows());
        prop_assert_eq!(projected.targets(), data.targets());
        for (orig, proj) in data.rows().iter().zip(projected.rows()) {
            prop_assert_eq!(proj[0], orig[col]);
        }
    }
}
