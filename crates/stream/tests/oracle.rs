//! The streaming oracle: for *any* sequence of appends, at *any* thread
//! count, the streamed cleaned series and the final ranking are
//! bit-identical to a cold batch run over the same data.
//!
//! This is the correctness contract that makes incremental analysis
//! trustworthy — a subscriber watching a live stream converges on
//! exactly the answer a batch re-analysis would give.

use cm_sim::Benchmark;
use cm_store::Store;
use cm_stream::{StreamConfig, StreamSession};
use counterminer::MinerConfig;
use std::path::PathBuf;

fn tiny_config() -> MinerConfig {
    let mut config = MinerConfig {
        runs_per_benchmark: 1,
        events_to_measure: Some(10),
        interaction_top_k: 4,
        ..MinerConfig::default()
    };
    config.importance.sgbrt.n_trees = 40;
    config.importance.sgbrt.tree.max_depth = 3;
    config.importance.prune_step = 3;
    config.importance.min_events = 8;
    config
}

fn stream_config() -> StreamConfig {
    StreamConfig {
        miner: tiny_config(),
        block: 32,
    }
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_stream_oracle_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join("oracle.cmstore")
}

/// Streams `total` rows into a fresh store in `chunk`-sized appends and
/// returns the session (chunk 0 means "everything in one append").
fn stream_in_chunks(tag: &str, total: usize, chunk: usize) -> (StreamSession, Store) {
    let path = temp_store(tag);
    let mut store = Store::open(&path).expect("open store");
    let mut session =
        StreamSession::open(&mut store, Benchmark::Sort, stream_config()).expect("open session");
    assert!(total <= session.source_rows());
    if chunk == 0 {
        session.append(&mut store, total).expect("append all");
    } else {
        let mut done = 0;
        while done < total {
            let n = chunk.min(total - done);
            let report = session.append(&mut store, n).expect("append chunk");
            assert_eq!(report.appended_rows, n);
            done += n;
        }
    }
    assert_eq!(session.total_rows(), total);
    (session, store)
}

/// Everything the oracle compares, rendered bit-faithfully: cleaned
/// bytes per series, the full importance ranking, the MAPM event set
/// and held-out error, and the interaction ranking.
fn fingerprint(session: &mut StreamSession) -> String {
    let mut out = String::new();
    for run in 0..session.config().miner.runs_per_benchmark {
        for &event in &session.events().to_vec() {
            let cleaned = session.cleaned_series(run, event).expect("cleaned series");
            let bits: Vec<u64> = cleaned.iter().map(|v| v.to_bits()).collect();
            out.push_str(&format!("clean r{run} e{}: {bits:?}\n", event.index()));
        }
    }
    if let Some(analysis) = session.analysis().expect("analysis") {
        out.push_str(&format!("sealed: {}\n", analysis.sealed_rows));
        let eir = &analysis.report.eir;
        let ranking: Vec<(usize, u64)> = eir
            .ranking
            .iter()
            .map(|&(e, v)| (e.index(), v.to_bits()))
            .collect();
        out.push_str(&format!("ranking: {ranking:?}\n"));
        let mapm: Vec<usize> = eir.mapm_events.iter().map(|e| e.index()).collect();
        out.push_str(&format!(
            "mapm: {mapm:?} err {}\n",
            eir.best_error().to_bits()
        ));
        out.push_str(&format!(
            "interactions: {:?}\n",
            analysis.report.interactions
        ));
    } else {
        out.push_str("no analysis\n");
    }
    out
}

#[test]
fn any_append_partitioning_matches_the_cold_batch_run() {
    let total = 160; // five sealed blocks of 32
    let (mut cold, _s) = stream_in_chunks("cold", total, 0);
    let want = fingerprint(&mut cold);

    for chunk in [1, 7, 32, 100] {
        let (mut streamed, _s) = stream_in_chunks(&format!("chunk{chunk}"), total, chunk);
        let got = fingerprint(&mut streamed);
        assert_eq!(got, want, "partitioning into chunks of {chunk} diverged");
    }
}

#[test]
fn thread_count_never_changes_the_answer() {
    let total = 96;
    let want = {
        cm_par::set_max_threads(1);
        let (mut s, _st) = stream_in_chunks("t1", total, 40);
        fingerprint(&mut s)
    };
    for threads in [2, 4] {
        cm_par::set_max_threads(threads);
        let (mut s, _st) = stream_in_chunks(&format!("t{threads}"), total, 40);
        let got = fingerprint(&mut s);
        assert_eq!(got, want, "{threads} threads diverged from serial");
    }
    cm_par::set_max_threads(0);
}

#[test]
fn full_source_stream_matches_cold_batch() {
    let probe_store = temp_store("probe");
    let mut probe = Store::open(&probe_store).expect("open");
    let total = StreamSession::open(&mut probe, Benchmark::Sort, stream_config())
        .expect("open session")
        .source_rows();

    let (mut cold, _s) = stream_in_chunks("full_cold", total, 0);
    let (mut streamed, _s2) = stream_in_chunks("full_stream", total, 64);
    assert_eq!(fingerprint(&mut streamed), fingerprint(&mut cold));
}

#[test]
fn resumed_session_continues_bit_identically() {
    let total = 128;
    let (mut oneshot, _s) = stream_in_chunks("resume_ref", total, 0);
    let want = fingerprint(&mut oneshot);

    // Stream half, drop everything, reopen the store, resume, stream
    // the rest: the handoff must be invisible in the bytes.
    let path = temp_store("resume_split");
    let mut store = Store::open(&path).expect("open");
    let mut session =
        StreamSession::open(&mut store, Benchmark::Sort, stream_config()).expect("open");
    session.append(&mut store, 70).expect("first half");
    drop(session);
    drop(store);

    let mut store = Store::open(&path).expect("reopen");
    let mut session =
        StreamSession::open(&mut store, Benchmark::Sort, stream_config()).expect("resume");
    assert_eq!(session.total_rows(), 70);
    session.append(&mut store, (total - 70) / 2).expect("more");
    session
        .append(&mut store, total - session.total_rows())
        .expect("rest");
    assert_eq!(fingerprint(&mut session), want);
}
