//! Compact ranking summaries and the "did the answer really change?"
//! predicate the subscription layer is built on.

use cm_events::EventId;
use counterminer::AnalysisReport;

/// Relative change in the MAPM's held-out error below which two
/// analyses are considered the same answer (1 %). Importance values
/// jitter slightly as rows accumulate; subscribers care about the
/// *ordering* and about genuine model-quality shifts, not noise.
pub const ERROR_TOLERANCE: f64 = 0.01;

/// What a subscriber sees of one analysis: the top-K importance order,
/// the MAPM's event set, and its held-out error.
///
/// # Examples
///
/// ```
/// use cm_events::EventId;
/// use cm_stream::RankSummary;
///
/// let a = RankSummary {
///     top: vec![(EventId::new(3), 40.0), (EventId::new(1), 30.0)],
///     mapm_events: vec![EventId::new(1), EventId::new(3)],
///     best_error: 0.10,
///     stability: Some(0.9),
/// };
/// // Same order, same MAPM, error within 1 %: not a material change.
/// let mut b = a.clone();
/// b.best_error = 0.1005;
/// assert!(!b.materially_differs(&a));
/// // Swapped top-2: material — but stability 0.9 says a reorder was
/// // only ~10 % likely under the posteriors, so it means something.
/// b.top.swap(0, 1);
/// assert!(b.materially_differs(&a));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct RankSummary {
    /// The top-K events with their importance percentages, descending.
    pub top: Vec<(EventId, f64)>,
    /// The events the most accurate performance model (MAPM) uses, in
    /// column order.
    pub mapm_events: Vec<EventId>,
    /// Held-out error of the MAPM, as a fraction.
    pub best_error: f64,
    /// Ranking-stability score of the analysis (`bayes` cleaning mode
    /// only): probability the top-K order survives resampling the
    /// importances from their posteriors. `None` under the point
    /// cleaner. A subscriber seeing an order change while the previous
    /// stability was low knows the change is within noise.
    pub stability: Option<f64>,
}

impl RankSummary {
    /// Summarizes an analysis down to its top `k` events.
    pub fn of(report: &AnalysisReport, k: usize) -> Self {
        RankSummary {
            top: report.eir.top(k).to_vec(),
            mapm_events: report.eir.mapm_events.clone(),
            best_error: report.eir.best_error(),
            stability: report.eir.uncertainty.as_ref().map(|u| u.stability),
        }
    }

    /// The top events alone, in rank order.
    pub fn top_events(&self) -> Vec<EventId> {
        self.top.iter().map(|&(e, _)| e).collect()
    }

    /// Whether the top-K *order* differs from `prev` (events or their
    /// ranking positions, ignoring importance magnitudes).
    pub fn order_changed(&self, prev: &Self) -> bool {
        self.top_events() != prev.top_events()
    }

    /// Whether the MAPM differs from `prev`: a different event set, or
    /// a held-out error shifted by more than [`ERROR_TOLERANCE`]
    /// relative to the previous error.
    pub fn mapm_changed(&self, prev: &Self) -> bool {
        if self.mapm_events != prev.mapm_events {
            return true;
        }
        let base = prev.best_error.abs().max(f64::EPSILON);
        (self.best_error - prev.best_error).abs() / base > ERROR_TOLERANCE
    }

    /// The subscription predicate: notify only when the top-K order or
    /// the MAPM materially changed.
    pub fn materially_differs(&self, prev: &Self) -> bool {
        self.order_changed(prev) || self.mapm_changed(prev)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn summary() -> RankSummary {
        RankSummary {
            top: vec![(EventId::new(5), 50.0), (EventId::new(2), 25.0)],
            mapm_events: vec![EventId::new(2), EventId::new(5), EventId::new(9)],
            best_error: 0.2,
            stability: None,
        }
    }

    #[test]
    fn stability_does_not_affect_material_difference() {
        let a = summary();
        let mut b = summary();
        b.stability = Some(0.4);
        // Stability annotates; it never triggers a notification alone.
        assert!(!b.materially_differs(&a));
    }

    #[test]
    fn identical_summaries_do_not_differ() {
        let a = summary();
        assert!(!a.materially_differs(&summary()));
    }

    #[test]
    fn importance_jitter_without_reorder_is_immaterial() {
        let a = summary();
        let mut b = summary();
        b.top[0].1 = 51.3;
        b.best_error = 0.2001;
        assert!(!b.materially_differs(&a));
    }

    #[test]
    fn order_change_is_material() {
        let a = summary();
        let mut b = summary();
        b.top.swap(0, 1);
        assert!(b.order_changed(&a));
        assert!(b.materially_differs(&a));
    }

    #[test]
    fn mapm_event_set_change_is_material() {
        let a = summary();
        let mut b = summary();
        b.mapm_events.pop();
        assert!(b.mapm_changed(&a));
        assert!(b.materially_differs(&a));
    }

    #[test]
    fn large_error_shift_is_material() {
        let a = summary();
        let mut b = summary();
        b.best_error = 0.25;
        assert!(b.mapm_changed(&a));
    }
}
