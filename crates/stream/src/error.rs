//! Streaming-layer errors.

use counterminer::CmError;
use std::fmt;

/// Everything that can go wrong while streaming.
#[derive(Debug)]
pub enum StreamError {
    /// A pipeline stage (cleaning, modeling, ranking) failed.
    Core(CmError),
    /// The backing store failed.
    Store(cm_store::StoreError),
    /// The store already holds a stream for this benchmark recorded
    /// under a different configuration; resuming would mix
    /// incompatible data.
    ConfigMismatch {
        /// Configuration recorded in the store.
        found: String,
        /// Configuration this session was opened with.
        expected: String,
    },
    /// The store's stream metadata and its series disagree — the
    /// signature of an interrupted append by a writer that did not go
    /// through the atomic-commit path.
    Inconsistent(String),
}

impl fmt::Display for StreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StreamError::Core(e) => write!(f, "stream pipeline error: {e}"),
            StreamError::Store(e) => write!(f, "stream store error: {e}"),
            StreamError::ConfigMismatch { found, expected } => write!(
                f,
                "stream config mismatch: store recorded `{found}`, session expects `{expected}`"
            ),
            StreamError::Inconsistent(what) => write!(f, "inconsistent stream state: {what}"),
        }
    }
}

impl std::error::Error for StreamError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StreamError::Core(e) => Some(e),
            StreamError::Store(e) => Some(e),
            _ => None,
        }
    }
}

impl From<CmError> for StreamError {
    fn from(e: CmError) -> Self {
        StreamError::Core(e)
    }
}

impl From<cm_store::StoreError> for StreamError {
    fn from(e: cm_store::StoreError) -> Self {
        StreamError::Store(e)
    }
}
