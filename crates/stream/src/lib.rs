//! The CounterMiner streaming layer: chunked ingest plus incremental
//! analysis over a live [`cm_store::Store`].
//!
//! The batch pipeline answers "analyze this finished run". This crate
//! answers "keep the answer fresh while the run is still happening": a
//! [`StreamSession`] appends counter samples to the store in chunks
//! (through [`cm_store::Store::extend_series`] and the atomic-commit
//! path), cleans them *incrementally*, and re-ranks importance only
//! when new data could change the answer — warm-starting from the
//! previous result otherwise.
//!
//! # Block-incremental cleaning
//!
//! Every series is cleaned in independent fixed-width blocks of
//! [`StreamConfig::block`] intervals (`CM_STREAM_BLOCK` overrides the
//! default of 64). A block is *sealed* the moment it is complete:
//! sealed blocks are cleaned exactly once and never revisited, and only
//! the partial tail block is re-cleaned after an append (counted by the
//! `stream.reclean_rows` counter). Because block boundaries depend only
//! on position — never on how the data arrived — the cleaned series and
//! every ranking derived from it are **bit-identical for any append
//! partitioning**, at any thread count: streaming one interval at a
//! time produces exactly the bytes a cold one-shot run over the same
//! data produces. The `stream_oracle` integration test enforces this.
//!
//! # Warm-started analysis
//!
//! [`StreamSession::analysis`] trains only on sealed blocks. When an
//! append did not seal a new block, the previous result is returned
//! verbatim (`stream.warm_starts`); when it did, the model is retrained
//! deterministically from the sealed prefix. Continuing the boosting
//! run from the previous forest is deliberately *not* done — it would
//! make results depend on the append history and break the oracle
//! guarantee (see DESIGN §15).
//!
//! # Example: append, analyze, warm-start
//!
//! ```
//! use cm_sim::Benchmark;
//! use cm_stream::{StreamConfig, StreamSession};
//! use cm_store::Store;
//! use counterminer::{ImportanceConfig, MinerConfig};
//!
//! let dir = std::env::temp_dir().join(format!("cm_stream_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("live.cmstore");
//! # let _ = std::fs::remove_file(&path);
//! let mut store = Store::open(&path)?;
//!
//! let config = StreamConfig {
//!     miner: MinerConfig {
//!         runs_per_benchmark: 1,
//!         events_to_measure: Some(10),
//!         ..MinerConfig::default()
//!     },
//!     block: 32,
//! };
//! let mut session = StreamSession::open(&mut store, Benchmark::Sort, config)?;
//!
//! // Stream the first 40 intervals in two chunks: 32 + 8.
//! session.append(&mut store, 32)?;
//! let report = session.append(&mut store, 8)?;
//! assert_eq!(report.total_rows, 40);
//! assert_eq!(report.sealed_rows, 32); // one complete block of 32
//!
//! // First analysis trains; a second call without new sealed data is a
//! // warm start returning the identical result.
//! let first = session.analysis()?.expect("a sealed block to train on");
//! let again = session.analysis()?.expect("still sealed");
//! assert!(std::sync::Arc::ptr_eq(&first, &again));
//! # std::fs::remove_file(&path)?;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```
//!
//! Subscriptions — being notified only when the top-K order or MAPM
//! materially changes — live one layer up in `cm-serve`, built on
//! [`RankSummary::materially_differs`].

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod error;
mod session;
mod summary;

pub use error::StreamError;
pub use session::{AppendReport, StreamAnalysis, StreamConfig, StreamSession, DEFAULT_BLOCK};
pub use summary::{RankSummary, ERROR_TOLERANCE};
