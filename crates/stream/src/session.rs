//! The streaming session: chunked append, block-incremental cleaning,
//! and warm-started analysis.

use crate::{RankSummary, StreamError};
use cm_events::{EventCatalog, EventId, RunRecord, SampleMode, TimeSeries};
use cm_sim::{Benchmark, SimRun, Workload};
use cm_store::{SeriesKey, Store};
use counterminer::{
    collector, AnalysisReport, CleanerKind, DataCleaner, ImportanceRanker, InteractionRanker,
    MinerConfig, VarianceAggregate,
};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Default sealed-block width in sampling intervals; override with the
/// `CM_STREAM_BLOCK` environment variable or [`StreamConfig::block`].
pub const DEFAULT_BLOCK: usize = 64;

/// Reserved per-run series slot the session persists measured IPC
/// under — far outside any catalog event index.
const IPC_SLOT: usize = u16::MAX as usize;

/// Configuration of a [`StreamSession`]: the pipeline knobs plus the
/// sealed-block width.
///
/// # Examples
///
/// ```
/// use cm_stream::{StreamConfig, DEFAULT_BLOCK};
///
/// let config = StreamConfig::default();
/// assert_eq!(config.block, DEFAULT_BLOCK);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct StreamConfig {
    /// The pipeline configuration (collection, cleaning, EIR).
    pub miner: MinerConfig,
    /// Sealed-block width in sampling intervals. Complete blocks are
    /// cleaned exactly once and never revisited; only the partial tail
    /// block is re-cleaned after an append. Must be at least 1.
    pub block: usize,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            miner: MinerConfig::default(),
            block: DEFAULT_BLOCK,
        }
    }
}

impl StreamConfig {
    /// Like `Default`, but the block width honors `CM_STREAM_BLOCK`
    /// when it parses as a positive integer (anything else keeps the
    /// default, matching how `CM_STORE_CACHE` is treated).
    pub fn from_env(miner: MinerConfig) -> Self {
        let mut config = StreamConfig {
            miner,
            block: DEFAULT_BLOCK,
        };
        if let Ok(raw) = std::env::var("CM_STREAM_BLOCK") {
            if let Ok(block) = raw.trim().parse::<usize>() {
                if block > 0 {
                    config.block = block;
                }
            }
        }
        config
    }

    /// The configuration fingerprint persisted in stream metadata: two
    /// sessions may share one stream if and only if their fingerprints
    /// are equal (same collection seeds, same cleaner, same block
    /// width — the preconditions for bit-identical incremental state).
    pub fn fingerprint(&self) -> String {
        format!("{:?}|block={}", self.miner, self.block)
    }
}

/// What one [`StreamSession::append`] did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppendReport {
    /// Rows (sampling intervals per run) appended by this call. Zero
    /// when the source is exhausted.
    pub appended_rows: usize,
    /// Total rows appended over the session's lifetime.
    pub total_rows: usize,
    /// Rows inside sealed (complete, never re-cleaned) blocks.
    pub sealed_rows: usize,
    /// Tail rows re-cleaned by this append (bounded by the block
    /// width, however large the append was).
    pub recleaned_rows: usize,
    /// Whether the source has no more rows to stream.
    pub exhausted: bool,
}

/// One incremental analysis: the full report plus the sealed-row count
/// it was trained on.
#[derive(Debug)]
pub struct StreamAnalysis {
    /// Rows (per run) the model was trained on — always a whole number
    /// of sealed blocks.
    pub sealed_rows: usize,
    /// The complete analysis (EIR ranking, MAPM, interactions).
    pub report: AnalysisReport,
}

impl StreamAnalysis {
    /// Summarizes this analysis for change detection; see
    /// [`RankSummary::materially_differs`].
    pub fn summary(&self, top_k: usize) -> RankSummary {
        RankSummary::of(&self.report, top_k)
    }
}

/// Per-(run, event) cleaned values: sealed prefix and re-cleaned tail.
#[derive(Debug, Default, Clone)]
struct CleanColumn {
    sealed: Vec<f64>,
    tail: Vec<f64>,
}

/// A live ingest-and-analyze session for one benchmark over one store.
///
/// The session owns a deterministic sample source (the simulated PMU,
/// collected up front exactly as the batch pipeline would) and replays
/// it into the store chunk by chunk: [`Self::append`] stages the next
/// rows with [`Store::extend_series`], commits atomically, then
/// advances the incremental cleaning state. [`Self::analysis`] ranks
/// from sealed blocks only, warm-starting when nothing sealed changed.
///
/// Reopening a session over a store that already holds streamed rows
/// *resumes* it: the configuration fingerprint must match, the row
/// counts must be consistent, and the cleaning state is rebuilt
/// deterministically — reads and analyses continue bit-identically.
///
/// See the [crate docs](crate) for an end-to-end example.
#[derive(Debug)]
pub struct StreamSession {
    config: StreamConfig,
    benchmark: Benchmark,
    program: String,
    events: Vec<EventId>,
    /// Raw source values: `raw[run][event_pos][interval]`.
    raw: Vec<Vec<Vec<f64>>>,
    /// Per-run measured IPC for every source interval.
    ipc: Vec<Vec<f64>>,
    /// Per-run wall time of the (complete) source run.
    exec_secs: Vec<f64>,
    /// Rows appended (and committed) so far.
    rows: usize,
    /// Rows available in the source.
    source_rows: usize,
    cleaner: DataCleaner,
    sealed_blocks: usize,
    /// Cleaned values: `clean[run][event_pos]`.
    clean: Vec<Vec<CleanColumn>>,
    sealed_outliers: usize,
    sealed_missing: usize,
    /// `bayes` mode only: reconstruction-variance aggregates over the
    /// sealed prefix, `uncertainty[run][event_pos]`. Blocks fold in
    /// ascending block order, so any append partitioning of the same
    /// source reaches bit-identical sums.
    uncertainty: Option<Vec<Vec<VarianceAggregate>>>,
    /// Last analysis, keyed by the sealed-row count it saw.
    cache: Option<(usize, Arc<StreamAnalysis>)>,
}

impl StreamSession {
    /// Opens (or resumes) a streaming session for `benchmark` over
    /// `store`.
    ///
    /// A store with no stream for this benchmark starts fresh (nothing
    /// is durable until the first [`Self::append`]). A store that
    /// already holds streamed rows resumes: the recorded configuration
    /// fingerprint must equal this one's, and every series must hold
    /// exactly the recorded row count.
    ///
    /// # Errors
    ///
    /// [`StreamError::ConfigMismatch`] when the store's stream was
    /// recorded under a different configuration, and
    /// [`StreamError::Inconsistent`] when its metadata and series
    /// disagree (the signature of a writer that bypassed the
    /// atomic-commit path).
    pub fn open(
        store: &mut Store,
        benchmark: Benchmark,
        config: StreamConfig,
    ) -> Result<Self, StreamError> {
        let _span = cm_obs::span!("stream.open", benchmark = benchmark.name());
        let catalog = EventCatalog::haswell();
        let workload = Workload::new(benchmark, &catalog);
        let n_events = config
            .miner
            .events_to_measure
            .unwrap_or(catalog.len())
            .min(catalog.len());
        let measured = workload.top_event_ids(&catalog, n_events);

        // The deterministic sample source: collect the full runs up
        // front with the batch pipeline's seeds; `append` replays them
        // into the store chunk by chunk.
        let source = collector::collect_runs(
            &workload,
            &measured,
            SampleMode::Mlpx,
            config.miner.runs_per_benchmark,
            &config.miner.pmu,
            config.miner.seed,
        );
        let events: Vec<EventId> = source[0].record.events().collect();
        let source_rows = source[0].intervals();

        let raw: Vec<Vec<Vec<f64>>> = source
            .iter()
            .map(|run| {
                events
                    .iter()
                    .map(|&e| {
                        run.record
                            .series(e)
                            .expect("measured event")
                            .values()
                            .to_vec()
                    })
                    .collect()
            })
            .collect();
        let ipc: Vec<Vec<f64>> = source.iter().map(|r| r.ipc.values().to_vec()).collect();
        let exec_secs: Vec<f64> = source.iter().map(|r| r.record.exec_time_secs()).collect();

        let program = format!("stream/{}", benchmark.name());
        let expected = config.fingerprint();
        let rows = match store.meta(&meta_key(&program, "config")) {
            None => {
                store.set_meta(meta_key(&program, "config"), expected);
                0
            }
            Some(found) if found != expected => {
                return Err(StreamError::ConfigMismatch {
                    found: found.to_string(),
                    expected,
                })
            }
            Some(_) => {
                let raw_rows = store.meta(&meta_key(&program, "rows")).ok_or_else(|| {
                    StreamError::Inconsistent("stream config present but row count missing".into())
                })?;
                raw_rows.parse::<usize>().map_err(|_| {
                    StreamError::Inconsistent(format!("unparseable stream row count `{raw_rows}`"))
                })?
            }
        };
        if rows > source_rows {
            return Err(StreamError::Inconsistent(format!(
                "store records {rows} streamed rows but the source holds only {source_rows}"
            )));
        }

        let runs = raw.len();
        let mut session = StreamSession {
            cleaner: DataCleaner::new(config.miner.cleaner),
            config,
            benchmark,
            program,
            events,
            raw,
            ipc,
            exec_secs,
            rows: 0,
            source_rows,
            sealed_blocks: 0,
            clean: Vec::new(),
            sealed_outliers: 0,
            sealed_missing: 0,
            uncertainty: None,
            cache: None,
        };
        session.clean = vec![vec![CleanColumn::default(); session.events.len()]; runs];
        if session.config.miner.cleaner_kind == CleanerKind::Bayes {
            session.uncertainty =
                Some(vec![
                    vec![VarianceAggregate::default(); session.events.len()];
                    runs
                ]);
        }

        if rows > 0 {
            session.check_store_rows(store, rows)?;
            session.rows = rows;
            session.advance_clean(rows)?;
        }
        Ok(session)
    }

    /// The benchmark being streamed.
    pub fn benchmark(&self) -> Benchmark {
        self.benchmark
    }

    /// The session configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.config
    }

    /// The measured events, in dataset column order.
    pub fn events(&self) -> &[EventId] {
        &self.events
    }

    /// Rows appended (and committed) so far.
    pub fn total_rows(&self) -> usize {
        self.rows
    }

    /// Rows inside sealed blocks — what [`Self::analysis`] trains on.
    pub fn sealed_rows(&self) -> usize {
        self.sealed_blocks * self.config.block
    }

    /// Rows the source can still stream.
    pub fn remaining_rows(&self) -> usize {
        self.source_rows - self.rows
    }

    /// Total rows the source holds.
    pub fn source_rows(&self) -> usize {
        self.source_rows
    }

    /// Outliers replaced across all sealed blocks so far.
    pub fn outliers_replaced(&self) -> usize {
        self.sealed_outliers
    }

    /// Missing values filled across all sealed blocks so far.
    pub fn missing_filled(&self) -> usize {
        self.sealed_missing
    }

    /// The series key one run's samples of `event` are stored under.
    pub fn series_key(&self, run: u32, event: EventId) -> SeriesKey {
        SeriesKey::new(self.program.clone(), run, SampleMode::Mlpx, event)
    }

    /// The series key one run's measured IPC is stored under (a
    /// reserved slot outside the event catalog).
    pub fn ipc_key(&self, run: u32) -> SeriesKey {
        self.series_key(run, EventId::new(IPC_SLOT))
    }

    /// The cleaned values of one run's series for `event`: the sealed
    /// prefix plus the re-cleaned tail. `None` for an unmeasured event
    /// or an out-of-range run.
    ///
    /// This is the stream-side half of the oracle guarantee: for any
    /// append partitioning of the same source, these bytes are
    /// identical.
    pub fn cleaned_series(&self, run: usize, event: EventId) -> Option<Vec<f64>> {
        let pos = self.events.iter().position(|&e| e == event)?;
        let col = &self.clean.get(run)?[pos];
        let mut out = Vec::with_capacity(col.sealed.len() + col.tail.len());
        out.extend_from_slice(&col.sealed);
        out.extend_from_slice(&col.tail);
        Some(out)
    }

    /// Appends up to `rows` source rows to the store: stages every
    /// series extension and the updated row count, commits atomically,
    /// then advances the incremental cleaning state. An exhausted
    /// source yields `appended_rows: 0` without touching the store.
    ///
    /// Row positions are counted against the run's interval count (the
    /// IPC series). Multiplexed event series may be *shorter* — ragged
    /// lengths are the paper's DTW motivation — so each series streams
    /// only up to its own end and simply stops contributing once the
    /// cursor passes it.
    ///
    /// On an error the store file keeps its previous committed
    /// generation and the session state is unchanged; discard both and
    /// reopen to continue (the chaos harness exercises exactly this).
    ///
    /// Emits `stream.appends` / `stream.append_rows` /
    /// `stream.reclean_rows` counters.
    ///
    /// # Errors
    ///
    /// Propagates store failures from staging or commit, and cleaning
    /// failures from the incremental advance.
    pub fn append(&mut self, store: &mut Store, rows: usize) -> Result<AppendReport, StreamError> {
        let n = rows.min(self.remaining_rows());
        if n == 0 {
            return Ok(AppendReport {
                appended_rows: 0,
                total_rows: self.rows,
                sealed_rows: self.sealed_rows(),
                recleaned_rows: 0,
                exhausted: true,
            });
        }
        let _span = cm_obs::span!("stream.append", benchmark = self.benchmark.name());

        let next = self.rows + n;
        for (r, run_raw) in self.raw.iter().enumerate() {
            for (pos, &event) in self.events.iter().enumerate() {
                let len = run_raw[pos].len();
                let (from, to) = (self.rows.min(len), next.min(len));
                if from < to {
                    store
                        .extend_series(self.series_key(r as u32, event), &run_raw[pos][from..to])?;
                }
            }
            let ipc_len = self.ipc[r].len();
            let (from, to) = (self.rows.min(ipc_len), next.min(ipc_len));
            if from < to {
                store.extend_series(self.ipc_key(r as u32), &self.ipc[r][from..to])?;
            }
        }
        store.set_meta(meta_key(&self.program, "rows"), next.to_string());
        store.set_meta(meta_key(&self.program, "config"), self.config.fingerprint());
        store.commit()?;

        // Durable — now advance the in-memory state.
        self.rows = next;
        let recleaned = self.advance_clean(next)?;
        cm_obs::counter_add("stream.appends", 1);
        cm_obs::counter_add("stream.append_rows", n as u64);
        cm_obs::counter_add("stream.reclean_rows", recleaned as u64);
        Ok(AppendReport {
            appended_rows: n,
            total_rows: self.rows,
            sealed_rows: self.sealed_rows(),
            recleaned_rows: recleaned,
            exhausted: self.rows == self.source_rows,
        })
    }

    /// The current incremental analysis, trained on sealed blocks only;
    /// `None` until the first block seals.
    ///
    /// When no new block has sealed since the last call, the previous
    /// result is returned verbatim — the *warm start*, observable as
    /// `stream.warm_starts` (a retrain counts `stream.trains`). Both
    /// paths yield results bit-identical to a cold batch run over the
    /// same sealed prefix, at any thread count.
    ///
    /// # Errors
    ///
    /// Propagates dataset, training, and ranking failures.
    pub fn analysis(&mut self) -> Result<Option<Arc<StreamAnalysis>>, StreamError> {
        let sealed_rows = self.sealed_rows();
        if sealed_rows == 0 {
            return Ok(None);
        }
        if let Some((rows, cached)) = &self.cache {
            if *rows == sealed_rows {
                cm_obs::counter_add("stream.warm_starts", 1);
                return Ok(Some(cached.clone()));
            }
        }
        let _span = cm_obs::span!("stream.analysis", benchmark = self.benchmark.name());

        // Assemble the sealed prefix as cleaned runs and replay the
        // batch pipeline's modeling half over it.
        let runs: Vec<SimRun> = (0..self.clean.len())
            .map(|r| {
                let mut record = RunRecord::new(self.program.clone(), r as u32, SampleMode::Mlpx);
                record.set_exec_time_secs(self.exec_secs[r]);
                for (pos, &event) in self.events.iter().enumerate() {
                    record.insert_series(
                        event,
                        TimeSeries::from_values(self.clean[r][pos].sealed.clone()),
                    );
                }
                SimRun {
                    record,
                    ipc: TimeSeries::from_values(
                        self.ipc[r][..sealed_rows.min(self.ipc[r].len())].to_vec(),
                    ),
                    true_counts: BTreeMap::new(),
                }
            })
            .collect();

        let data = collector::build_dataset(&runs, &self.events, None)?;
        let data = collector::aggregate_windows(&data, self.config.miner.aggregation_window)?;
        let data = collector::normalize_columns(&data)?;

        // Bayes: fold the per-run aggregates into per-event column
        // aggregates (run order — deterministic) and rank with them.
        let column_uncertainty: Option<Vec<f64>> = self.uncertainty.as_ref().map(|per_run| {
            let mut columns = vec![VarianceAggregate::default(); self.events.len()];
            for run in per_run {
                for (column, aggregate) in columns.iter_mut().zip(run) {
                    column.merge(aggregate);
                }
            }
            let total_variance: f64 = columns.iter().map(|a| a.sum_variance).sum();
            let reconstructed: u64 = columns.iter().map(|a| a.reconstructed).sum();
            cm_obs::series_push("clean.variance.total", reconstructed as f64, total_variance);
            columns
                .iter()
                .map(VarianceAggregate::relative_uncertainty)
                .collect()
        });

        let ranker = ImportanceRanker::new(self.config.miner.importance);
        let eir =
            ranker.rank_with_uncertainty(&data, &self.events, column_uncertainty.as_deref())?;

        let top: Vec<EventId> = eir
            .top(self.config.miner.interaction_top_k)
            .iter()
            .map(|&(e, _)| e)
            .collect();
        let mapm_cols: Vec<usize> = eir
            .mapm_events
            .iter()
            .map(|e| self.events.iter().position(|x| x == e).expect("mapm event"))
            .collect();
        let mapm_data = data
            .select_features(&mapm_cols)
            .map_err(counterminer::CmError::Ml)?;
        let interactions = InteractionRanker::new().rank_pairs_additive(
            &eir.mapm,
            &eir.mapm_events,
            &mapm_data,
            &top,
        )?;

        let analysis = Arc::new(StreamAnalysis {
            sealed_rows,
            report: AnalysisReport {
                benchmark: self.benchmark,
                cleaner: self.config.miner.cleaner_kind,
                eir,
                interactions,
                outliers_replaced: self.sealed_outliers,
                missing_filled: self.sealed_missing,
            },
        });
        self.cache = Some((sealed_rows, analysis.clone()));
        cm_obs::counter_add("stream.trains", 1);
        Ok(Some(analysis))
    }

    /// Seals newly completed blocks (cleaning each exactly once) and
    /// re-cleans the partial tail. Returns the tail rows re-cleaned.
    fn advance_clean(&mut self, upto: usize) -> Result<usize, StreamError> {
        let block = self.config.block;
        let sealed_target = upto / block;
        for b in self.sealed_blocks..sealed_target {
            let range = b * block..(b + 1) * block;
            for (r, run_raw) in self.raw.iter().enumerate() {
                for (pos, event_raw) in run_raw.iter().enumerate() {
                    // Ragged series end before the run does: clamp the
                    // block to this series' own length. The clamped
                    // slice depends only on the block index and the
                    // static raw data, so partitioning invariance holds.
                    let slice = &event_raw
                        [range.start.min(event_raw.len())..range.end.min(event_raw.len())];
                    if slice.is_empty() {
                        continue;
                    }
                    let series = TimeSeries::from_values(slice.to_vec());
                    // Bayes carries the block's reconstruction variances
                    // through the seal; values are bit-identical either
                    // way, so the point path stays the fast default.
                    let (cleaned, report) = match self.uncertainty.as_mut() {
                        Some(aggregates) => {
                            let (cleaned, report, block_uncertainty) =
                                self.cleaner.clean_series_bayes(&series)?;
                            aggregates[r][pos]
                                .merge(&VarianceAggregate::of_series(&cleaned, &block_uncertainty));
                            (cleaned, report)
                        }
                        None => self.cleaner.clean_series(&series)?,
                    };
                    self.clean[r][pos]
                        .sealed
                        .extend_from_slice(cleaned.values());
                    self.sealed_outliers += report.outliers_replaced;
                    self.sealed_missing += report.missing_filled;
                }
            }
        }
        self.sealed_blocks = sealed_target;

        let tail_start = sealed_target * block;
        let tail_len = upto - tail_start;
        for (r, run_raw) in self.raw.iter().enumerate() {
            for (pos, event_raw) in run_raw.iter().enumerate() {
                let from = tail_start.min(event_raw.len());
                let to = upto.min(event_raw.len());
                self.clean[r][pos].tail = if from >= to {
                    Vec::new()
                } else {
                    let slice = &event_raw[from..to];
                    self.cleaner
                        .clean_series(&TimeSeries::from_values(slice.to_vec()))?
                        .0
                        .into_values()
                };
            }
        }
        Ok(tail_len)
    }

    /// Verifies that every series in the store holds exactly `rows`
    /// values — the resume-time torn-writer check.
    fn check_store_rows(&self, store: &Store, rows: usize) -> Result<(), StreamError> {
        for r in 0..self.raw.len() {
            for (pos, &event) in self.events.iter().enumerate() {
                // A ragged series stops growing at its own end, so the
                // committed length is the row cursor clamped to it.
                let expected = (rows as u64).min(self.raw[r][pos].len() as u64);
                let key = self.series_key(r as u32, event);
                match store.series_len(&key) {
                    Some(len) if len == expected => {}
                    Some(len) => {
                        return Err(StreamError::Inconsistent(format!(
                            "series {}#{} holds {len} values, metadata implies {expected}",
                            key.program,
                            key.event.index()
                        )))
                    }
                    None if expected == 0 => {}
                    None => {
                        return Err(StreamError::Inconsistent(format!(
                            "series {}#{} missing from the store",
                            key.program,
                            key.event.index()
                        )))
                    }
                }
            }
            let expected = (rows as u64).min(self.ipc[r].len() as u64);
            let ipc_len = store.series_len(&self.ipc_key(r as u32));
            if ipc_len != Some(expected) && !(expected == 0 && ipc_len.is_none()) {
                return Err(StreamError::Inconsistent(format!(
                    "IPC series of run {r} holds {ipc_len:?} values, metadata implies {expected}"
                )));
            }
        }
        Ok(())
    }
}

fn meta_key(program: &str, field: &str) -> String {
    format!("{program}/{field}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cm_stream_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir.join("s.cmstore")
    }

    fn tiny_stream_config() -> StreamConfig {
        StreamConfig {
            miner: MinerConfig {
                runs_per_benchmark: 1,
                events_to_measure: Some(10),
                ..MinerConfig::default()
            },
            block: 32,
        }
    }

    #[test]
    fn append_seals_blocks_and_bounds_reclean() {
        let path = temp_store("seal");
        let mut store = Store::open(&path).unwrap();
        let mut s = StreamSession::open(&mut store, Benchmark::Sort, tiny_stream_config()).unwrap();
        let r = s.append(&mut store, 40).unwrap();
        assert_eq!(r.appended_rows, 40);
        assert_eq!(r.sealed_rows, 32);
        assert_eq!(r.recleaned_rows, 8);
        let r = s.append(&mut store, 100).unwrap();
        assert_eq!(r.total_rows, 140);
        assert_eq!(r.sealed_rows, 128);
        assert_eq!(r.recleaned_rows, 12);
        // Rows are durable: the store holds exactly what was appended.
        let key = s.series_key(0, s.events()[0]);
        assert_eq!(store.series_len(&key), Some(140));
    }

    #[test]
    fn append_past_source_end_is_exhausted_not_an_error() {
        let path = temp_store("exhaust");
        let mut store = Store::open(&path).unwrap();
        let mut s = StreamSession::open(&mut store, Benchmark::Sort, tiny_stream_config()).unwrap();
        let total = s.source_rows();
        let r = s.append(&mut store, total + 999).unwrap();
        assert_eq!(r.appended_rows, total);
        assert!(r.exhausted);
        let r = s.append(&mut store, 1).unwrap();
        assert_eq!(r.appended_rows, 0);
        assert!(r.exhausted);
    }

    #[test]
    fn ragged_mlpx_series_stream_to_their_own_ends() {
        // Runs differ in interval count and multiplexed series end
        // before their run does (ragged lengths, the paper's DTW
        // motivation), yet the row cursor counts run 0's intervals.
        // Appends must clamp each series to its own end instead of
        // indexing past it — the default 3-run full-catalog source is
        // exactly the shape that broke the CLI smoke test.
        let config = StreamConfig {
            miner: MinerConfig::default(),
            block: 64,
        };
        let runs = config.miner.runs_per_benchmark as u32;

        let path = temp_store("ragged_oneshot");
        let mut store = Store::open(&path).unwrap();
        let mut s = StreamSession::open(&mut store, Benchmark::Sort, config.clone()).unwrap();
        let total = s.source_rows();
        let r = s.append(&mut store, total).unwrap();
        assert!(r.exhausted);

        let lens: Vec<u64> = (0..runs)
            .flat_map(|run| s.events().to_vec().into_iter().map(move |e| (run, e)))
            .map(|(run, e)| store.series_len(&s.series_key(run, e)).unwrap_or_default())
            .collect();
        assert!(
            lens.iter().any(|&l| l < total as u64),
            "source produced no ragged series; the test is vacuous"
        );
        assert!(lens.iter().all(|&l| l <= total as u64));

        // Chunked appends land every series at the identical length and
        // identical cleaned bytes (the oracle guarantee, ragged case).
        let path2 = temp_store("ragged_chunked");
        let mut store2 = Store::open(&path2).unwrap();
        let mut s2 = StreamSession::open(&mut store2, Benchmark::Sort, config.clone()).unwrap();
        while !s2.append(&mut store2, 31).unwrap().exhausted {}
        for run in 0..runs {
            for &e in s.events().to_vec().iter() {
                assert_eq!(
                    store2.series_len(&s2.series_key(run, e)),
                    store.series_len(&s.series_key(run, e))
                );
                assert_eq!(
                    s2.cleaned_series(run as usize, e),
                    s.cleaned_series(run as usize, e)
                );
            }
        }

        // And a ragged store resumes cleanly.
        let s3 = StreamSession::open(&mut store2, Benchmark::Sort, config).unwrap();
        assert_eq!(s3.total_rows(), total);
    }

    #[test]
    fn resume_restores_bitwise_state() {
        let path = temp_store("resume");
        let mut store = Store::open(&path).unwrap();
        let mut s = StreamSession::open(&mut store, Benchmark::Sort, tiny_stream_config()).unwrap();
        s.append(&mut store, 70).unwrap();
        let want = s.cleaned_series(0, s.events()[3]).unwrap();
        drop(s);

        // A new session over a reopened store resumes at row 70 with
        // identical cleaned bytes.
        let mut store = Store::open(&path).unwrap();
        let s2 = StreamSession::open(&mut store, Benchmark::Sort, tiny_stream_config()).unwrap();
        assert_eq!(s2.total_rows(), 70);
        let got = s2.cleaned_series(0, s2.events()[3]).unwrap();
        assert_eq!(
            want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            got.iter().map(|v| v.to_bits()).collect::<Vec<_>>()
        );
    }

    #[test]
    fn resume_with_other_config_is_typed_mismatch() {
        let path = temp_store("mismatch");
        let mut store = Store::open(&path).unwrap();
        let mut s = StreamSession::open(&mut store, Benchmark::Sort, tiny_stream_config()).unwrap();
        s.append(&mut store, 10).unwrap();
        drop(s);

        let mut other = tiny_stream_config();
        other.miner.seed = 99;
        let mut store = Store::open(&path).unwrap();
        assert!(matches!(
            StreamSession::open(&mut store, Benchmark::Sort, other),
            Err(StreamError::ConfigMismatch { .. })
        ));
    }

    #[test]
    fn truncated_series_is_detected_on_resume() {
        let path = temp_store("torn");
        let mut store = Store::open(&path).unwrap();
        let mut s = StreamSession::open(&mut store, Benchmark::Sort, tiny_stream_config()).unwrap();
        s.append(&mut store, 20).unwrap();
        // Forge metadata claiming more rows than any series holds.
        store.set_meta("stream/sort/rows", "25");
        store.commit().unwrap();
        drop(s);

        let mut store = Store::open(&path).unwrap();
        assert!(matches!(
            StreamSession::open(&mut store, Benchmark::Sort, tiny_stream_config()),
            Err(StreamError::Inconsistent(_))
        ));
    }

    /// Streaming in `bayes` mode: sealed bytes stay bit-identical to
    /// the point session's, the analysis carries uncertainty, and the
    /// stability score is append-partitioning invariant.
    #[test]
    fn bayes_stream_matches_point_bytes_and_is_partition_invariant() {
        // Pin both kinds explicitly: under `CM_CLEANER=bayes` the
        // default-kind config would silently run bayes on both sides.
        let with_kind = |kind| StreamConfig {
            miner: MinerConfig {
                cleaner_kind: kind,
                ..tiny_stream_config().miner
            },
            ..tiny_stream_config()
        };
        let bayes_config = || with_kind(CleanerKind::Bayes);
        let point_config = || with_kind(CleanerKind::Point);

        let path = temp_store("bayes_oneshot");
        let mut store = Store::open(&path).unwrap();
        let mut s = StreamSession::open(&mut store, Benchmark::Sort, bayes_config()).unwrap();
        s.append(&mut store, 96).unwrap();
        let a = s.analysis().unwrap().unwrap();
        let uncertainty = a
            .report
            .eir
            .uncertainty
            .as_ref()
            .expect("bayes uncertainty");
        assert!((0.0..=1.0).contains(&uncertainty.stability));
        assert!(a
            .report
            .eir
            .iterations
            .iter()
            .all(|i| i.stability.is_some()));
        assert_eq!(a.report.cleaner, CleanerKind::Bayes);

        // Point session over the same source: identical sealed bytes.
        let path_p = temp_store("bayes_vs_point");
        let mut store_p = Store::open(&path_p).unwrap();
        let mut p = StreamSession::open(&mut store_p, Benchmark::Sort, point_config()).unwrap();
        p.append(&mut store_p, 96).unwrap();
        for &e in s.events().to_vec().iter() {
            let want = p.cleaned_series(0, e).unwrap();
            let got = s.cleaned_series(0, e).unwrap();
            assert_eq!(
                want.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
                got.iter().map(|v| v.to_bits()).collect::<Vec<_>>(),
            );
        }
        let ap = p.analysis().unwrap().unwrap();
        assert_eq!(ap.report.eir.ranking, a.report.eir.ranking);
        assert!(ap.report.eir.uncertainty.is_none());

        // Chunked appends reach the identical analysis, stability
        // included (the oracle guarantee, uncertainty edition).
        let path2 = temp_store("bayes_chunked");
        let mut store2 = Store::open(&path2).unwrap();
        let mut s2 = StreamSession::open(&mut store2, Benchmark::Sort, bayes_config()).unwrap();
        let mut left = 96;
        for chunk in [7usize, 40, 19, 30] {
            s2.append(&mut store2, chunk.min(left)).unwrap();
            left -= chunk.min(left);
        }
        let b = s2.analysis().unwrap().unwrap();
        assert_eq!(a.report.eir.ranking, b.report.eir.ranking);
        assert_eq!(a.report.eir.uncertainty, b.report.eir.uncertainty);

        // And a resumed bayes session rebuilds the same uncertainty.
        drop(s2);
        let mut store2 = Store::open(&path2).unwrap();
        let mut s3 = StreamSession::open(&mut store2, Benchmark::Sort, bayes_config()).unwrap();
        let c = s3.analysis().unwrap().unwrap();
        assert_eq!(a.report.eir.uncertainty, c.report.eir.uncertainty);
    }

    #[test]
    fn analysis_warm_starts_until_a_block_seals() {
        let path = temp_store("warm");
        let mut store = Store::open(&path).unwrap();
        let mut s = StreamSession::open(&mut store, Benchmark::Sort, tiny_stream_config()).unwrap();
        assert!(s.analysis().unwrap().is_none(), "nothing sealed yet");
        s.append(&mut store, 33).unwrap();
        let a = s.analysis().unwrap().unwrap();
        // +5 rows: still one sealed block -> warm start, same Arc.
        s.append(&mut store, 5).unwrap();
        let b = s.analysis().unwrap().unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        // Seal another block -> retrain on more rows.
        s.append(&mut store, 30).unwrap();
        let c = s.analysis().unwrap().unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        assert_eq!(c.sealed_rows, 64);
    }
}
