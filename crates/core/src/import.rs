//! Importing real profiler output into the pipeline.
//!
//! The simulator substitutes for the paper's cluster, but the pipeline
//! itself is profiler-agnostic: this module parses the interval output
//! of `perf stat -I <ms> -x <sep> -e <events>` into a [`RunRecord`], so
//! CounterMiner's cleaner and rankers can run on *real* counter data.
//!
//! Format parsed (one line per event per interval):
//!
//! ```text
//! <interval_time><sep><value><sep><unit><sep><event_name><sep>...
//! ```
//!
//! `perf` prints `<not counted>` for an event that was multiplexed out
//! of an entire interval; those become `0.0` — exactly the missing
//! values the data cleaner classifies and fills. Comment lines (`#`)
//! and blank lines are skipped. Events not present in the catalog are
//! collected into the report rather than silently dropped.

use crate::CmError;
use cm_events::{EventCatalog, RunRecord, SampleMode, TimeSeries};
use std::collections::BTreeMap;

/// Outcome of an import: the run plus diagnostics.
#[derive(Debug)]
pub struct ImportReport {
    /// The assembled run record.
    pub run: RunRecord,
    /// Event names present in the input but not in the catalog.
    pub unknown_events: Vec<String>,
    /// Samples recorded as `<not counted>` (now zeros for the cleaner).
    pub not_counted: usize,
    /// Number of sampling intervals parsed.
    pub intervals: usize,
}

/// Parses `perf stat -I -x<sep>` interval output into a run record.
///
/// `separator` is the `-x` field separator (`,` and `;` are perf's
/// common choices). Event names are resolved against `catalog` by their
/// full `perf`-style name (e.g. `ILD_STALL.IQ_FULL`); case-insensitive.
///
/// # Errors
///
/// Returns [`CmError::Invalid`] when no parsable event line exists or a
/// value field is malformed.
///
/// # Examples
///
/// ```
/// use cm_events::EventCatalog;
/// use counterminer::import::parse_perf_stat;
///
/// let catalog = EventCatalog::haswell();
/// let text = "\
/// 1.001,12345,,ICACHE.MISSES,100,\n\
/// 1.001,<not counted>,,ILD_STALL.IQ_FULL,0,\n\
/// 2.002,23456,,ICACHE.MISSES,100,\n\
/// 2.002,999,,ILD_STALL.IQ_FULL,100,\n";
/// let report = parse_perf_stat(text, ',', "myprog", 0, &catalog)?;
/// assert_eq!(report.intervals, 2);
/// assert_eq!(report.not_counted, 1);
/// assert_eq!(report.run.event_count(), 2);
/// # Ok::<(), counterminer::CmError>(())
/// ```
pub fn parse_perf_stat(
    text: &str,
    separator: char,
    program: &str,
    run_index: u32,
    catalog: &EventCatalog,
) -> Result<ImportReport, CmError> {
    // event name -> (per-interval values, in first-seen interval order)
    let mut series: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut interval_keys: Vec<String> = Vec::new();
    let mut current_interval: Option<String> = None;
    let mut not_counted = 0usize;
    let mut last_time = f64::NEG_INFINITY;

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split(separator).collect();
        if fields.len() < 4 {
            return Err(CmError::Invalid(
                "perf line has fewer than four fields (wrong separator?)",
            ));
        }
        let time_str = fields[0].trim();
        let value_str = fields[1].trim();
        let event_name = fields[3].trim();
        if event_name.is_empty() {
            continue;
        }

        // Track interval boundaries by the timestamp column.
        if current_interval.as_deref() != Some(time_str) {
            let time: f64 = time_str.parse().map_err(|_| {
                let _ = lineno;
                CmError::Invalid("unparsable interval timestamp")
            })?;
            if time < last_time {
                return Err(CmError::Invalid(
                    "interval timestamps must be non-decreasing",
                ));
            }
            last_time = time;
            current_interval = Some(time_str.to_string());
            interval_keys.push(time_str.to_string());
            // New interval: pad every known series to the new length so
            // events missing from some interval stay aligned.
            for values in series.values_mut() {
                while values.len() < interval_keys.len() - 1 {
                    values.push(0.0);
                }
            }
        }
        let interval_idx = interval_keys.len() - 1;

        let value = if value_str.contains("not counted") || value_str.contains("not supported") {
            not_counted += 1;
            0.0
        } else {
            // perf may group thousands with commas only when -x is not
            // used; with -x the number is plain. Accept underscores too.
            value_str
                .replace('_', "")
                .parse()
                .map_err(|_| CmError::Invalid("unparsable counter value"))?
        };

        let values = series.entry(event_name.to_string()).or_default();
        while values.len() < interval_idx {
            values.push(0.0);
        }
        if values.len() == interval_idx {
            values.push(value);
        } else {
            // Duplicate (event, interval) line: keep the last value.
            values[interval_idx] = value;
        }
    }

    if interval_keys.is_empty() {
        return Err(CmError::Invalid("no parsable perf interval lines"));
    }
    let n = interval_keys.len();

    let mut run = RunRecord::new(program, run_index, SampleMode::Mlpx);
    if let Some(last) = interval_keys.last() {
        if let Ok(secs) = last.parse::<f64>() {
            run.set_exec_time_secs(secs);
        }
    }
    let mut unknown_events = Vec::new();
    for (name, mut values) in series {
        while values.len() < n {
            values.push(0.0);
        }
        match lookup(catalog, &name) {
            Some(id) => run.insert_series(id, TimeSeries::from_values(values)),
            None => unknown_events.push(name),
        }
    }
    if run.event_count() == 0 && !unknown_events.is_empty() {
        return Err(CmError::Invalid(
            "no imported event matched the catalog (names must be perf-style)",
        ));
    }

    Ok(ImportReport {
        run,
        unknown_events,
        not_counted,
        intervals: n,
    })
}

fn lookup(catalog: &EventCatalog, name: &str) -> Option<cm_events::EventId> {
    if let Some(info) = catalog.by_name(name) {
        return Some(info.id());
    }
    // Case-insensitive fallback: perf lowercases many event names.
    let upper = name.to_uppercase();
    catalog.by_name(&upper).map(|info| info.id())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::abbrev;

    fn catalog() -> EventCatalog {
        EventCatalog::haswell()
    }

    const SAMPLE: &str = "\
# started on Mon Jul  6 2026
1.000,1000,,ICACHE.MISSES,100,
1.000,500,,ILD_STALL.IQ_FULL,100,
2.000,<not counted>,,ICACHE.MISSES,0,
2.000,700,,ILD_STALL.IQ_FULL,100,
3.000,1200,,ICACHE.MISSES,100,
3.000,650,,ILD_STALL.IQ_FULL,100,
";

    #[test]
    fn parses_interval_series() {
        let c = catalog();
        let report = parse_perf_stat(SAMPLE, ',', "real_app", 0, &c).unwrap();
        assert_eq!(report.intervals, 3);
        assert_eq!(report.not_counted, 1);
        assert!(report.unknown_events.is_empty());

        let icm = c.by_abbrev(abbrev::ICM).unwrap().id();
        let isf = c.by_abbrev(abbrev::ISF).unwrap().id();
        assert_eq!(
            report.run.series(icm).unwrap().values(),
            &[1000.0, 0.0, 1200.0]
        );
        assert_eq!(
            report.run.series(isf).unwrap().values(),
            &[500.0, 700.0, 650.0]
        );
        assert_eq!(report.run.mode(), SampleMode::Mlpx);
        assert!((report.run.exec_time_secs() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn lowercase_names_resolve() {
        let c = catalog();
        let text = "1.0,42,,icache.misses,100,\n";
        let report = parse_perf_stat(text, ',', "p", 0, &c).unwrap();
        assert_eq!(report.run.event_count(), 1);
    }

    #[test]
    fn unknown_events_are_reported_not_dropped_silently() {
        let c = catalog();
        let text = "\
1.0,10,,ICACHE.MISSES,100,
1.0,20,,SOME_VENDOR.SPECIAL_THING,100,
";
        let report = parse_perf_stat(text, ',', "p", 0, &c).unwrap();
        assert_eq!(report.unknown_events, vec!["SOME_VENDOR.SPECIAL_THING"]);
        assert_eq!(report.run.event_count(), 1);
    }

    #[test]
    fn semicolon_separator_works() {
        let c = catalog();
        let text = "1.0;10;;ICACHE.MISSES;100;\n2.0;12;;ICACHE.MISSES;100;\n";
        let report = parse_perf_stat(text, ';', "p", 0, &c).unwrap();
        assert_eq!(report.intervals, 2);
    }

    #[test]
    fn missing_event_lines_pad_with_zeros() {
        // ISF is absent from interval 2 entirely.
        let c = catalog();
        let text = "\
1.0,10,,ICACHE.MISSES,100,
1.0,5,,ILD_STALL.IQ_FULL,100,
2.0,12,,ICACHE.MISSES,100,
3.0,14,,ICACHE.MISSES,100,
3.0,6,,ILD_STALL.IQ_FULL,100,
";
        let report = parse_perf_stat(text, ',', "p", 0, &c).unwrap();
        let isf = c.by_abbrev(abbrev::ISF).unwrap().id();
        assert_eq!(report.run.series(isf).unwrap().values(), &[5.0, 0.0, 6.0]);
    }

    #[test]
    fn rejects_garbage() {
        let c = catalog();
        assert!(parse_perf_stat("", ',', "p", 0, &c).is_err());
        assert!(parse_perf_stat("one,two\n", ',', "p", 0, &c).is_err());
        assert!(parse_perf_stat("abc,1,,ICACHE.MISSES,1,\n", ',', "p", 0, &c).is_err());
        assert!(parse_perf_stat("1.0,banana,,ICACHE.MISSES,1,\n", ',', "p", 0, &c).is_err());
        // Only unknown events.
        assert!(parse_perf_stat("1.0,1,,NOPE.NOPE,1,\n", ',', "p", 0, &c).is_err());
        // Time going backwards.
        let backwards = "2.0,1,,ICACHE.MISSES,1,\n1.0,2,,ICACHE.MISSES,1,\n";
        assert!(parse_perf_stat(backwards, ',', "p", 0, &c).is_err());
    }

    #[test]
    fn imported_run_flows_through_the_cleaner() {
        // The <not counted> zero is classified missing and filled.
        let c = catalog();
        let mut text = String::new();
        for i in 0..40 {
            let t = i as f64 + 1.0;
            if i == 20 {
                text.push_str(&format!("{t},<not counted>,,ICACHE.MISSES,0,\n"));
            } else {
                text.push_str(&format!("{t},{},,ICACHE.MISSES,100,\n", 1000 + i % 7));
            }
        }
        let report = parse_perf_stat(&text, ',', "p", 0, &c).unwrap();
        let icm = c.by_abbrev(abbrev::ICM).unwrap().id();
        let cleaner = crate::DataCleaner::default();
        let (cleaned, clean_report) = cleaner
            .clean_series(report.run.series(icm).unwrap())
            .unwrap();
        assert_eq!(clean_report.missing_filled, 1);
        assert_eq!(cleaned.zero_count(), 0);
    }
}
