//! The paper's error measures.
//!
//! *MLPX measurement error* (Section II-B, Eqs. 1–4): because two runs of
//! the same program produce series of different lengths, the error of a
//! multiplexed series is defined through dynamic time warping against
//! golden OCOE references:
//!
//! ```text
//! dist_ref = DTW(S_ocoe1, S_ocoe2)          (run-to-run baseline)
//! dist_mea = DTW(S_mlpx,  S_ocoe1)          (measured distance)
//! error    = |1 - dist_ref / dist_mea| × 100 %
//! ```
//!
//! *Model error* (Eq. 14) is re-exported from [`cm_ml::metrics`].

use crate::CmError;
use cm_events::TimeSeries;
use cm_stats::dtw;

pub use cm_ml::metrics::relative_error as model_error;

/// MLPX measurement error of one event series (Eq. 4), in percent.
///
/// `ocoe1` and `ocoe2` are the same event measured in two independent
/// OCOE runs; `mlpx` is the multiplexed measurement of a third run.
///
/// # Errors
///
/// Returns [`CmError::Invalid`] when any series is empty or the measured
/// DTW distance is zero (which would make the ratio undefined).
///
/// # Examples
///
/// ```
/// use cm_events::TimeSeries;
/// use counterminer::error_metrics::mlpx_error;
///
/// let ocoe1 = TimeSeries::from_values(vec![10.0, 12.0, 11.0, 10.0]);
/// let ocoe2 = TimeSeries::from_values(vec![10.0, 11.5, 11.0, 10.5, 10.0]);
/// let mlpx = TimeSeries::from_values(vec![10.0, 30.0, 11.0, 0.0]);
/// let err = mlpx_error(&ocoe1, &ocoe2, &mlpx)?;
/// assert!(err > 10.0, "a dirty series has a large error ({err}%)");
/// # Ok::<(), counterminer::CmError>(())
/// ```
pub fn mlpx_error(
    ocoe1: &TimeSeries,
    ocoe2: &TimeSeries,
    mlpx: &TimeSeries,
) -> Result<f64, CmError> {
    if ocoe1.is_empty() || ocoe2.is_empty() || mlpx.is_empty() {
        return Err(CmError::Invalid("error metric requires non-empty series"));
    }
    // The `try_` variants reject non-finite samples with a typed error —
    // a NaN-poisoned series must never read as an error percentage.
    let dist_ref = dtw::try_distance(ocoe1.values(), ocoe2.values()).map_err(CmError::Stats)?;
    let dist_mea = dtw::try_distance(mlpx.values(), ocoe1.values()).map_err(CmError::Stats)?;
    if dist_mea == 0.0 {
        // A perfect measurement: define the error as zero rather than
        // dividing by zero.
        return Ok(0.0);
    }
    Ok((1.0 - dist_ref / dist_mea).abs() * 100.0)
}

/// Average MLPX error over many `(ocoe1, ocoe2, mlpx)` triples, in
/// percent. Convenience for the per-benchmark bars of Figs. 1, 6, 7.
///
/// # Errors
///
/// Returns [`CmError::Invalid`] when `triples` is empty or any triple is
/// degenerate.
pub fn mean_mlpx_error(
    triples: &[(&TimeSeries, &TimeSeries, &TimeSeries)],
) -> Result<f64, CmError> {
    if triples.is_empty() {
        return Err(CmError::Invalid("no error triples supplied"));
    }
    // Each triple costs two DTW passes; fan them out. `try_map` keeps
    // input order, so the summation order (and the mean) is unchanged.
    let errors = cm_par::try_map(triples, |&(a, b, m)| mlpx_error(a, b, m))?;
    Ok(errors.iter().sum::<f64>() / triples.len() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(v: &[f64]) -> TimeSeries {
        TimeSeries::from_values(v.to_vec())
    }

    #[test]
    fn perfect_mlpx_has_zero_error() {
        let ocoe1 = ts(&[1.0, 2.0, 3.0]);
        let ocoe2 = ts(&[1.0, 2.0, 3.0]);
        let mlpx = ts(&[1.0, 2.0, 3.0]);
        assert_eq!(mlpx_error(&ocoe1, &ocoe2, &mlpx).unwrap(), 0.0);
    }

    #[test]
    fn error_grows_with_distortion() {
        let ocoe1 = ts(&[10.0, 12.0, 11.0, 10.0, 12.0, 11.0]);
        let ocoe2 = ts(&[10.5, 11.5, 11.0, 10.0, 12.5, 11.0]);
        let mild = ts(&[10.0, 13.0, 11.0, 10.0, 12.0, 11.0]);
        let wild = ts(&[10.0, 40.0, 0.0, 10.0, 50.0, 11.0]);
        let e_mild = mlpx_error(&ocoe1, &ocoe2, &mild).unwrap();
        let e_wild = mlpx_error(&ocoe1, &ocoe2, &wild).unwrap();
        assert!(e_wild > e_mild);
    }

    #[test]
    fn handles_unequal_lengths() {
        let ocoe1 = ts(&[1.0, 2.0, 3.0, 4.0]);
        let ocoe2 = ts(&[1.0, 1.5, 2.0, 3.0, 4.0, 4.0]);
        let mlpx = ts(&[1.0, 3.0, 4.0]);
        assert!(mlpx_error(&ocoe1, &ocoe2, &mlpx).is_ok());
    }

    #[test]
    fn empty_series_rejected() {
        let good = ts(&[1.0]);
        let empty = TimeSeries::new();
        assert!(mlpx_error(&empty, &good, &good).is_err());
        assert!(mlpx_error(&good, &empty, &good).is_err());
        assert!(mlpx_error(&good, &good, &empty).is_err());
    }

    #[test]
    fn mean_over_triples() {
        let a = ts(&[1.0, 2.0]);
        let b = ts(&[1.0, 2.0]);
        let m = ts(&[1.0, 2.0]);
        let mean = mean_mlpx_error(&[(&a, &b, &m), (&a, &b, &m)]).unwrap();
        assert_eq!(mean, 0.0);
        assert!(mean_mlpx_error(&[]).is_err());
    }
}
