//! CounterMiner: mining big performance data from hardware counters.
//!
//! A from-scratch reproduction of the MICRO 2018 paper
//! *"CounterMiner: Mining Big Performance Data from Hardware Counters"*
//! (Lv, Sun, Luo, Wang, Yu, Qian). Modern processors expose hundreds of
//! microarchitectural events but only a handful of counters; measuring
//! many events means multiplexing (MLPX), and multiplexing means dirty
//! data — outliers and missing values. CounterMiner is the
//! post-measurement pipeline that turns that dirty stream into insight:
//!
//! 1. [`DataCleaner`] — replaces outliers (`mean + n·std` threshold with
//!    distribution-aware selection of `n`) and fills missing values
//!    (zero-category rule + KNN regression), Section III-B,
//! 2. [`ImportanceRanker`] — trains SGBRT models `IPC = f(events)` and
//!    iteratively prunes unimportant events (EIR) until the Most
//!    Accurate Performance Model is found, Section III-C,
//! 3. [`InteractionRanker`] — quantifies pairwise event interaction by
//!    the residual variance of per-pair linear models, Section III-D,
//! 4. [`error_metrics`] — the DTW-based MLPX error measure (Eqs. 1–4)
//!    and model error (Eq. 14),
//! 5. [`collector`] — gathers simulated PMU runs into the two-level
//!    store and builds training datasets,
//! 6. [`case_study`] — the Spark-tuning profiling-cost accounting of
//!    Section V-D (method A vs. method B),
//! 7. [`CounterMiner`] — the end-to-end pipeline facade, including the
//!    cross-benchmark `cluster` mode
//!    ([`CounterMiner::analyze_cluster`]) that groups runs by cleaned
//!    counter signature and flags anomalous runs.
//!
//! # Quick start
//!
//! ```
//! use counterminer::{CleanerConfig, DataCleaner};
//! use cm_events::TimeSeries;
//!
//! // A multiplexed series with an outlier and a missing value. (A lone
//! // spike among only a dozen samples cannot exceed any sigma-based
//! // threshold, so use a realistic series length.)
//! let mut values: Vec<f64> = (0..60).map(|i| 10.0 + (i % 7) as f64 * 0.2).collect();
//! values[20] = 900.0; // multiplexing glitch
//! values[40] = 0.0; // missing sample
//! let dirty = TimeSeries::from_values(values);
//!
//! let cleaner = DataCleaner::new(CleanerConfig::default());
//! let (clean, report) = cleaner.clean_series(&dirty)?;
//! assert_eq!(report.outliers_replaced, 1);
//! assert_eq!(report.missing_filled, 1);
//! assert!(clean.values().iter().all(|&v| v > 5.0 && v < 20.0));
//! # Ok::<(), counterminer::CmError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod case_study;
mod cleaner;
mod clusterer;
pub mod collector;
pub mod error_metrics;
mod errors;
pub mod findings;
pub mod import;
mod importance;
mod interaction;
mod pipeline;
pub mod report;
mod snapshot;
mod uncertainty;

pub use clusterer::{ClusterConfig, ClusterReport, ClusteredRun};

pub use cleaner::{
    choose_n, coverage_table, CleanReport, CleanerConfig, CleanerKind, DataCleaner, Reconstruction,
    ReconstructionSource, SeriesDistribution, SeriesUncertainty, StreamedSample, StreamingCleaner,
    N_CANDIDATES, VARIANCE_CALIBRATION,
};
pub use errors::CmError;
pub use importance::{
    EirIteration, EirResult, ImportanceConfig, ImportanceRanker, RankUncertainty,
};
pub use interaction::{InteractionRanker, PairInteraction};
pub use pipeline::{AnalysisReport, CounterMiner, IngestSummary, MinerConfig};
pub use uncertainty::VarianceAggregate;
