//! Column-level uncertainty aggregation for the `bayes` cleaning mode.
//!
//! The cleaner attaches a variance to every value it reconstructs
//! ([`SeriesUncertainty`](crate::SeriesUncertainty)); the pipeline needs
//! those variances *per event column* to turn them into importance
//! confidence intervals. A [`VarianceAggregate`] folds one event's
//! series-level uncertainty into four commutative sums, so per-run
//! aggregates merge in any grouping (streaming blocks, snapshot
//! save/load, parallel fan-in) to the same result — provided the final
//! fold happens in a deterministic order, which every caller guarantees
//! by merging in run order.

use crate::{CmError, SeriesUncertainty};
use cm_events::TimeSeries;

/// Accumulated reconstruction uncertainty for one event column.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct VarianceAggregate {
    /// Sum of posterior variances over all reconstructed samples.
    pub sum_variance: f64,
    /// Number of reconstructed samples.
    pub reconstructed: u64,
    /// Sum of squared cleaned values over **all** samples (the scale the
    /// variance is measured against).
    pub sum_squares: f64,
    /// Total number of samples.
    pub samples: u64,
}

impl VarianceAggregate {
    /// Aggregates one cleaned series and its uncertainty.
    pub fn of_series(series: &TimeSeries, uncertainty: &SeriesUncertainty) -> Self {
        VarianceAggregate {
            sum_variance: uncertainty.total_variance(),
            reconstructed: uncertainty.reconstructions.len() as u64,
            sum_squares: series.values().iter().map(|v| v * v).sum(),
            samples: series.len() as u64,
        }
    }

    /// Folds another aggregate into this one. Callers merge in run
    /// order so the floating-point sums are reproducible.
    pub fn merge(&mut self, other: &VarianceAggregate) {
        self.sum_variance += other.sum_variance;
        self.reconstructed += other.reconstructed;
        self.sum_squares += other.sum_squares;
        self.samples += other.samples;
    }

    /// Relative uncertainty of the column: `sqrt(Σvar / Σv²)` — the
    /// reconstruction noise as a fraction of the column's RMS magnitude.
    /// `0.0` when nothing was reconstructed or the column is all zeros
    /// (no scale to compare against).
    pub fn relative_uncertainty(&self) -> f64 {
        if self.sum_variance <= 0.0 || self.sum_squares <= 0.0 {
            return 0.0;
        }
        (self.sum_variance / self.sum_squares).sqrt()
    }

    /// Serializes to the snapshot meta encoding: the four fields as
    /// lowercase hex (`f64::to_bits` for the sums), colon-separated.
    /// Bit-exact round-trip keeps warm-started analyses byte-identical
    /// to cold ones.
    pub(crate) fn encode(&self) -> String {
        format!(
            "{:016x}:{:x}:{:016x}:{:x}",
            self.sum_variance.to_bits(),
            self.reconstructed,
            self.sum_squares.to_bits(),
            self.samples,
        )
    }

    /// Parses the [`encode`](Self::encode) form.
    pub(crate) fn decode(s: &str) -> Result<Self, CmError> {
        let mut parts = s.split(':');
        let mut next = || {
            parts
                .next()
                .and_then(|p| u64::from_str_radix(p, 16).ok())
                .ok_or(CmError::Invalid("malformed uncertainty aggregate"))
        };
        let sum_variance = f64::from_bits(next()?);
        let reconstructed = next()?;
        let sum_squares = f64::from_bits(next()?);
        let samples = next()?;
        if parts.next().is_some() {
            return Err(CmError::Invalid("malformed uncertainty aggregate"));
        }
        Ok(VarianceAggregate {
            sum_variance,
            reconstructed,
            sum_squares,
            samples,
        })
    }
}

/// Encodes a per-event aggregate list for snapshot meta storage
/// (semicolon-joined [`VarianceAggregate::encode`] entries, in event
/// order).
pub(crate) fn encode_aggregates(aggregates: &[VarianceAggregate]) -> String {
    aggregates
        .iter()
        .map(VarianceAggregate::encode)
        .collect::<Vec<_>>()
        .join(";")
}

/// Parses [`encode_aggregates`] output.
pub(crate) fn decode_aggregates(s: &str) -> Result<Vec<VarianceAggregate>, CmError> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split(';').map(VarianceAggregate::decode).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Reconstruction, ReconstructionSource};

    fn aggregate(
        sum_variance: f64,
        reconstructed: u64,
        sum_squares: f64,
        samples: u64,
    ) -> VarianceAggregate {
        VarianceAggregate {
            sum_variance,
            reconstructed,
            sum_squares,
            samples,
        }
    }

    #[test]
    fn of_series_sums_variances_and_squares() {
        let series = TimeSeries::from_values(vec![3.0, 4.0]);
        let uncertainty = SeriesUncertainty {
            reconstructions: vec![Reconstruction {
                index: 1,
                value: 4.0,
                variance: 0.25,
                source: ReconstructionSource::MissingFill,
            }],
        };
        let agg = VarianceAggregate::of_series(&series, &uncertainty);
        assert_eq!(agg.sum_variance, 0.25);
        assert_eq!(agg.reconstructed, 1);
        assert_eq!(agg.sum_squares, 25.0);
        assert_eq!(agg.samples, 2);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = aggregate(1.0, 2, 10.0, 5);
        a.merge(&aggregate(0.5, 1, 6.0, 3));
        assert_eq!(a, aggregate(1.5, 3, 16.0, 8));
    }

    #[test]
    fn relative_uncertainty_is_rms_fraction() {
        let agg = aggregate(1.0, 4, 100.0, 50);
        assert!((agg.relative_uncertainty() - 0.1).abs() < 1e-12);
        assert_eq!(aggregate(0.0, 0, 100.0, 50).relative_uncertainty(), 0.0);
        assert_eq!(aggregate(1.0, 1, 0.0, 0).relative_uncertainty(), 0.0);
    }

    #[test]
    fn encode_decode_round_trips_bit_exactly() {
        let cases = [
            aggregate(0.0, 0, 0.0, 0),
            aggregate(1.0 / 3.0, 7, 1e300, u64::MAX),
            aggregate(f64::MIN_POSITIVE, 1, 2.5e-7, 42),
        ];
        for agg in cases {
            let decoded = VarianceAggregate::decode(&agg.encode()).unwrap();
            assert_eq!(decoded.sum_variance.to_bits(), agg.sum_variance.to_bits());
            assert_eq!(decoded.sum_squares.to_bits(), agg.sum_squares.to_bits());
            assert_eq!(decoded.reconstructed, agg.reconstructed);
            assert_eq!(decoded.samples, agg.samples);
        }
        let list = vec![aggregate(0.5, 1, 4.0, 2), aggregate(0.0, 0, 9.0, 3)];
        assert_eq!(decode_aggregates(&encode_aggregates(&list)).unwrap(), list);
        assert!(decode_aggregates("").unwrap().is_empty());
    }

    #[test]
    fn decode_rejects_malformed_input() {
        for bad in ["", "1:2:3", "zz:1:0:1:9", "1:2:3:4:5"] {
            assert!(VarianceAggregate::decode(bad).is_err(), "{bad}");
        }
    }
}
