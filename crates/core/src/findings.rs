//! Quantitative checks of the paper's headline findings (Section I lists
//! six). Each function takes completed [`AnalysisReport`]s and returns a
//! measurable statistic, so experiments and tests can assert the
//! findings rather than eyeball them.
//!
//! [`AnalysisReport`]: crate::AnalysisReport

use crate::AnalysisReport;
use cm_events::{EventCatalog, EventKind};
use std::collections::{BTreeMap, HashSet};

/// Finding 1 & the one-three SMI law: per benchmark, how many leading
/// events are "significantly more important" — counted as events whose
/// importance exceeds `factor ×` the median importance of ranks 4–10.
///
/// The paper reports this count is always between one and three.
pub fn smi_dominant_counts(reports: &[AnalysisReport], factor: f64) -> Vec<(String, usize)> {
    reports
        .iter()
        .map(|r| {
            let top = r.eir.top(10);
            let tail: Vec<f64> = top.iter().skip(3).map(|&(_, v)| v).collect();
            let tail_median = if tail.is_empty() {
                0.0
            } else {
                let mut sorted = tail.clone();
                sorted.sort_by(f64::total_cmp);
                sorted[sorted.len() / 2]
            };
            let dominant = top
                .iter()
                .take(3)
                .filter(|&&(_, v)| v > factor * tail_median.max(1e-9))
                .count()
                .max(1);
            (r.benchmark.name().to_string(), dominant)
        })
        .collect()
}

/// Finding 1: how many benchmarks have the instruction-queue-full stall
/// event (ISF) as their single most important event.
pub fn isf_top_count(reports: &[AnalysisReport], catalog: &EventCatalog) -> usize {
    reports
        .iter()
        .filter(|r| {
            r.eir
                .top(1)
                .first()
                .map(|&(e, _)| catalog.info(e).abbrev() == cm_events::abbrev::ISF)
                .unwrap_or(false)
        })
        .count()
}

/// Finding 2: fraction of the top interaction pairs (up to `k` per
/// benchmark) involving at least one branch-related event. The paper
/// measures 83.4 % over the 160 strongest pairs.
pub fn branch_pair_share(reports: &[AnalysisReport], catalog: &EventCatalog, k: usize) -> f64 {
    let mut total = 0usize;
    let mut branchy = 0usize;
    for r in reports {
        for p in r.interactions.iter().take(k) {
            total += 1;
            if catalog.info(p.pair.0).is_branch_related()
                || catalog.info(p.pair.1).is_branch_related()
            {
                branchy += 1;
            }
        }
    }
    if total == 0 {
        0.0
    } else {
        branchy as f64 / total as f64
    }
}

/// Finding 5: events appearing in at least `min_benchmarks` of the
/// reports' top-10 lists, with their microarchitectural kinds — the
/// "common important events" (the paper finds branches, TLBs, and
/// remote memory/cache operations).
pub fn common_important_events(
    reports: &[AnalysisReport],
    catalog: &EventCatalog,
    min_benchmarks: usize,
) -> Vec<(String, EventKind, usize)> {
    let mut counts: BTreeMap<String, (EventKind, usize)> = BTreeMap::new();
    for r in reports {
        for &(e, _) in r.eir.top(10) {
            let info = catalog.info(e);
            counts
                .entry(info.abbrev().to_string())
                .and_modify(|(_, c)| *c += 1)
                .or_insert((info.kind(), 1));
        }
    }
    let mut out: Vec<(String, EventKind, usize)> = counts
        .into_iter()
        .filter(|(_, (_, c))| *c >= min_benchmarks)
        .map(|(abbrev, (kind, count))| (abbrev, kind, count))
        .collect();
    out.sort_by_key(|&(_, _, count)| std::cmp::Reverse(count));
    out
}

/// Finding 6: distinct events across all the reports' top-10 lists —
/// the suite-diversity measure under which the paper finds HiBench
/// *more* diverse than CloudSuite.
pub fn distinct_top10_events(reports: &[AnalysisReport], catalog: &EventCatalog) -> usize {
    let mut set = HashSet::new();
    for r in reports {
        for &(e, _) in r.eir.top(10) {
            set.insert(catalog.info(e).abbrev().to_string());
        }
    }
    set.len()
}

/// The dominant interaction pair's share per benchmark (the "one or two
/// dominant pairs" observation and the tier-strength comparison of
/// Section V-C).
pub fn dominant_pair_shares(reports: &[AnalysisReport]) -> Vec<(String, f64)> {
    reports
        .iter()
        .map(|r| {
            (
                r.benchmark.name().to_string(),
                r.interactions.first().map(|p| p.share).unwrap_or(0.0),
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterMiner, ImportanceConfig, MinerConfig};
    use cm_ml::SgbrtConfig;
    use cm_sim::Benchmark;

    fn small_reports(benchmarks: &[Benchmark]) -> Vec<AnalysisReport> {
        benchmarks
            .iter()
            .map(|&b| {
                let mut miner = CounterMiner::new(MinerConfig {
                    runs_per_benchmark: 1,
                    events_to_measure: Some(20),
                    importance: ImportanceConfig {
                        sgbrt: SgbrtConfig {
                            n_trees: 40,
                            ..SgbrtConfig::default()
                        },
                        prune_step: 5,
                        min_events: 12,
                        ..ImportanceConfig::default()
                    },
                    ..MinerConfig::default()
                });
                miner.analyze(b).unwrap()
            })
            .collect()
    }

    #[test]
    fn findings_functions_compute_over_real_reports() {
        let catalog = cm_events::EventCatalog::haswell();
        let reports = small_reports(&[Benchmark::Wordcount, Benchmark::Sort]);

        let smi = smi_dominant_counts(&reports, 2.0);
        assert_eq!(smi.len(), 2);
        for (name, dominant) in &smi {
            assert!(
                (1..=3).contains(dominant),
                "{name}: dominant count {dominant}"
            );
        }

        let share = branch_pair_share(&reports, &catalog, 10);
        assert!((0.0..=1.0).contains(&share));

        let common = common_important_events(&reports, &catalog, 2);
        // ISF is in both benchmarks' profiles; with 20 events measured it
        // reliably shows in both top-10s.
        assert!(common.iter().any(|(a, _, _)| a == "ISF"), "{common:?}");

        let distinct = distinct_top10_events(&reports, &catalog);
        assert!((10..=20).contains(&distinct));

        let shares = dominant_pair_shares(&reports);
        assert_eq!(shares.len(), 2);
        assert!(shares.iter().all(|&(_, s)| s > 0.0));
    }

    #[test]
    fn empty_reports_are_handled() {
        let catalog = cm_events::EventCatalog::haswell();
        assert_eq!(smi_dominant_counts(&[], 2.0).len(), 0);
        assert_eq!(branch_pair_share(&[], &catalog, 10), 0.0);
        assert_eq!(distinct_top10_events(&[], &catalog), 0);
        assert!(common_important_events(&[], &catalog, 1).is_empty());
    }
}
