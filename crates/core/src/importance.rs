//! The importance ranker (Section III-C): SGBRT performance models with
//! Event Importance Refinement (EIR).
//!
//! A model `IPC = perf(e1, …, en)` is trained, event importances are
//! computed (Friedman squared-improvement, Eqs. 10–11), the 10 least
//! important events are pruned, and the model is retrained — iterating
//! until few events remain. The iteration with the lowest held-out
//! relative error (Eq. 14) is the **Most Accurate Performance Model
//! (MAPM)**; its importances are the final ranking.

use crate::CmError;
use cm_events::EventId;
use cm_ml::{metrics, BinnedDataset, Dataset, Sgbrt, SgbrtConfig, Trainer, MAX_BINS};
use cm_stats::estimator::{mix_seed, rank_stability, Posterior};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration of the importance ranker.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ImportanceConfig {
    /// SGBRT hyperparameters for every EIR iteration.
    pub sgbrt: SgbrtConfig,
    /// Events pruned per iteration (10 in the paper).
    pub prune_step: usize,
    /// Fraction of rows held out for model-error evaluation. The paper
    /// trains on `m` examples and tests on `m/4`, i.e. one fifth held
    /// out.
    pub test_fraction: f64,
    /// Stop pruning when at most this many events remain.
    pub min_events: usize,
    /// Seed for the train/test split.
    pub seed: u64,
    /// Monte-Carlo draws per ranking-stability score (`bayes` mode only;
    /// ignored by the point path).
    pub stability_draws: usize,
    /// Size of the top-K prefix whose order the stability score checks.
    pub stability_top_k: usize,
}

impl Default for ImportanceConfig {
    fn default() -> Self {
        ImportanceConfig {
            sgbrt: SgbrtConfig::default(),
            prune_step: 10,
            test_fraction: 0.2,
            min_events: 20,
            seed: 0,
            stability_draws: 64,
            stability_top_k: 5,
        }
    }
}

/// One EIR iteration's record: how many events were in the model and how
/// accurate it was (one point of the Fig. 8 curve).
#[derive(Debug, Clone, PartialEq)]
pub struct EirIteration {
    /// Number of input events of this iteration's model.
    pub n_events: usize,
    /// Held-out relative error (Eq. 14), as a fraction.
    pub error: f64,
    /// Ranking-stability score of this round's model (`bayes` mode only):
    /// the probability that the top-K importance order holds when
    /// importances are resampled from their posteriors. `None` for the
    /// point path.
    pub stability: Option<f64>,
}

/// Uncertainty attached to an [`EirResult`] when ranking `bayes`-cleaned
/// data: per-event importance standard deviations and the Monte-Carlo
/// ranking-stability score.
#[derive(Debug, Clone, PartialEq)]
pub struct RankUncertainty {
    /// Probability (0..=1) that the MAPM's top-K order survives
    /// resampling every importance from its posterior.
    pub stability: f64,
    /// Importance standard deviations, aligned with
    /// [`EirResult::ranking`] (same order, same units — percent).
    pub stds: Vec<f64>,
    /// The K the stability score was computed over.
    pub top_k: usize,
}

/// The outcome of the EIR procedure.
#[derive(Debug, Clone, PartialEq)]
pub struct EirResult {
    /// The per-iteration error curve, from all events down to
    /// `min_events` (Fig. 8).
    pub iterations: Vec<EirIteration>,
    /// Which iteration produced the most accurate model.
    pub best_iteration: usize,
    /// The MAPM ranking: `(event, importance %)`, descending, importance
    /// normalized to sum to 100 over the MAPM's events.
    pub ranking: Vec<(EventId, f64)>,
    /// The most accurate performance model itself.
    pub mapm: Sgbrt,
    /// The events (dataset columns) the MAPM uses, in column order.
    pub mapm_events: Vec<EventId>,
    /// Ranking uncertainty (`bayes` mode only; `None` for the point path).
    pub uncertainty: Option<RankUncertainty>,
}

impl EirResult {
    /// The top `k` events of the MAPM ranking.
    pub fn top(&self, k: usize) -> &[(EventId, f64)] {
        &self.ranking[..k.min(self.ranking.len())]
    }

    /// Held-out error of the MAPM, as a fraction.
    pub fn best_error(&self) -> f64 {
        self.iterations[self.best_iteration].error
    }

    /// Per-event confidence intervals on the MAPM importances at the
    /// given confidence level, aligned with [`ranking`](Self::ranking):
    /// `(event, lower, upper)` in percent. `None` unless the analysis
    /// ran in `bayes` mode.
    pub fn confidence_intervals(&self, confidence: f64) -> Option<Vec<(EventId, f64, f64)>> {
        let uncertainty = self.uncertainty.as_ref()?;
        Some(
            self.ranking
                .iter()
                .zip(&uncertainty.stds)
                .map(|(&(event, importance), &std)| {
                    let (lo, hi) = Posterior::new(importance, std * std).interval(confidence);
                    (event, lo, hi)
                })
                .collect(),
        )
    }
}

/// The importance ranker.
///
/// # Examples
///
/// See the `importance_integration` test and the `quickstart` example
/// for end-to-end usage against simulated workloads.
#[derive(Debug, Clone, Default)]
pub struct ImportanceRanker {
    config: ImportanceConfig,
}

impl ImportanceRanker {
    /// Creates a ranker with the given configuration.
    pub fn new(config: ImportanceConfig) -> Self {
        ImportanceRanker { config }
    }

    /// The ranker's configuration.
    pub fn config(&self) -> &ImportanceConfig {
        &self.config
    }

    /// Runs EIR on a dataset whose columns correspond to `events`
    /// (column `j` holds values of `events[j]`) and whose target is IPC.
    ///
    /// # Errors
    ///
    /// Returns [`CmError::Invalid`] when `events` does not match the
    /// dataset width, or propagates training errors.
    pub fn rank(&self, data: &Dataset, events: &[EventId]) -> Result<EirResult, CmError> {
        self.rank_with_uncertainty(data, events, None)
    }

    /// [`rank`](Self::rank) with optional per-column uncertainty from
    /// the `bayes` cleaner: `column_uncertainty[j]` is the relative
    /// reconstruction uncertainty of `events[j]`'s data (see
    /// [`VarianceAggregate::relative_uncertainty`](crate::VarianceAggregate::relative_uncertainty)).
    ///
    /// When `Some`, each round's importances get standard deviations
    /// `std_j = importance_j · u_j` (importances are column aggregates
    /// of the column's data, so their relative noise is bounded by the
    /// data's), a Monte-Carlo ranking-stability score is computed per
    /// round and for the final MAPM ranking, and the result carries a
    /// [`RankUncertainty`]. The ranking itself is **identical** to
    /// [`rank`](Self::rank) — uncertainty only annotates it.
    ///
    /// # Errors
    ///
    /// As [`rank`](Self::rank), plus [`CmError::Invalid`] when the
    /// uncertainty slice length does not match `events` or
    /// `stability_draws` is zero.
    pub fn rank_with_uncertainty(
        &self,
        data: &Dataset,
        events: &[EventId],
        column_uncertainty: Option<&[f64]>,
    ) -> Result<EirResult, CmError> {
        if events.len() != data.n_features() {
            return Err(CmError::Invalid(
                "event list must match dataset feature count",
            ));
        }
        if self.config.prune_step == 0 {
            return Err(CmError::Invalid("prune_step must be at least 1"));
        }
        if let Some(u) = column_uncertainty {
            if u.len() != events.len() {
                return Err(CmError::Invalid(
                    "column uncertainty must match event count",
                ));
            }
            if self.config.stability_draws == 0 {
                return Err(CmError::Invalid("stability_draws must be at least 1"));
            }
        }

        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let (train, test) = data.train_test_split(self.config.test_fraction, &mut rng)?;

        // Active columns into the original dataset, shrinking each round.
        let mut active: Vec<usize> = (0..data.n_features()).collect();
        let mut iterations = Vec::new();
        let mut best: Option<(usize, f64, Sgbrt, Vec<usize>)> = None;

        // With the hist trainer, quantize the training rows once per EIR
        // run: every pruning round retrains on a zero-copy column view of
        // this shared binning, so retraining never re-quantizes (and
        // never materializes a pruned copy of the raw training matrix).
        let binned = match self.config.sgbrt.trainer {
            Trainer::Hist => Some(BinnedDataset::from_dataset(&train, MAX_BINS)),
            Trainer::Exact => None,
        };

        loop {
            let _round = cm_obs::span!("eir.round", round = iterations.len());
            let (model, test_view) = match &binned {
                Some(binned) => {
                    // Training reads bin codes only; just the held-out
                    // rows need a raw-value projection for prediction.
                    let train_view = binned.select(&active)?;
                    let test_view = test.select_features(&active)?;
                    let model = self.config.sgbrt.fit_binned(&train_view, train.targets())?;
                    (model, test_view)
                }
                None => {
                    // The two view projections are independent gathers;
                    // training and batch prediction fan out on the pool
                    // themselves.
                    let (train_view, test_view) = cm_par::join(
                        || train.select_features(&active),
                        || test.select_features(&active),
                    );
                    let train_view = train_view?;
                    (self.config.sgbrt.fit(&train_view)?, test_view?)
                }
            };
            let preds = model.predict_batch(test_view.rows());
            let error = metrics::relative_error(test_view.targets(), &preds)?;
            // The paper's pruning curve, one point per round: how the
            // held-out error moves as the event set shrinks.
            cm_obs::series_push("eir.cv_error", active.len() as f64, error);
            // Bayes only: score how stable this round's top-K order is
            // under resampling. A separate importance read keeps the
            // point path's arithmetic untouched.
            let stability = match column_uncertainty {
                Some(u) => {
                    let importances = model.feature_importances();
                    let stds: Vec<f64> = importances
                        .iter()
                        .zip(&active)
                        .map(|(&imp, &col)| imp * u[col])
                        .collect();
                    let score = rank_stability(
                        &importances,
                        &stds,
                        self.config.stability_top_k,
                        self.config.stability_draws,
                        mix_seed(self.config.seed, iterations.len() as u64),
                    )
                    .map_err(CmError::Stats)?;
                    cm_obs::series_push("eir.stability", active.len() as f64, score);
                    Some(score)
                }
                None => None,
            };
            iterations.push(EirIteration {
                n_events: active.len(),
                error,
                stability,
            });
            let is_better = best.as_ref().is_none_or(|(_, e, _, _)| error < *e);
            if is_better {
                best = Some((iterations.len() - 1, error, model.clone(), active.clone()));
            }

            if active.len() <= self.config.min_events {
                break;
            }
            // Prune the `prune_step` least important events (never below
            // min_events).
            let importances = model.feature_importances();
            let mut order: Vec<usize> = (0..active.len()).collect();
            order.sort_by(|&a, &b| importances[a].total_cmp(&importances[b]));
            let prune = self
                .config
                .prune_step
                .min(active.len() - self.config.min_events);
            let drop: std::collections::HashSet<usize> = order[..prune].iter().copied().collect();
            active = active
                .iter()
                .enumerate()
                .filter(|(local, _)| !drop.contains(local))
                .map(|(_, &global)| global)
                .collect();
        }

        if cm_obs::enabled() {
            cm_obs::counter_add("eir.rounds", iterations.len() as u64);
            cm_obs::counter_add(
                "eir.events_pruned",
                (data.n_features() - active.len()) as u64,
            );
        }

        let (best_iteration, _, mapm, mapm_active) =
            best.expect("at least one iteration always runs");
        let mapm_events: Vec<EventId> = mapm_active.iter().map(|&c| events[c]).collect();
        let importances = mapm.feature_importances();
        // Sort events and (in bayes mode) their uncertainties together,
        // so `uncertainty.stds` stays aligned with `ranking`.
        let mut order: Vec<usize> = (0..mapm_events.len()).collect();
        order.sort_by(|&a, &b| importances[b].total_cmp(&importances[a]));
        let ranking: Vec<(EventId, f64)> = order
            .iter()
            .map(|&i| (mapm_events[i], importances[i]))
            .collect();

        let uncertainty = match column_uncertainty {
            Some(u) => {
                let stds: Vec<f64> = order
                    .iter()
                    .map(|&i| importances[i] * u[mapm_active[i]])
                    .collect();
                let means: Vec<f64> = ranking.iter().map(|&(_, imp)| imp).collect();
                let top_k = self.config.stability_top_k;
                let stability = rank_stability(
                    &means,
                    &stds,
                    top_k,
                    self.config.stability_draws,
                    mix_seed(self.config.seed, u64::MAX),
                )
                .map_err(CmError::Stats)?;
                Some(RankUncertainty {
                    stability,
                    stds,
                    top_k,
                })
            }
            None => None,
        };

        Ok(EirResult {
            iterations,
            best_iteration,
            ranking,
            mapm,
            mapm_events,
            uncertainty,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_ml::TreeConfig;
    use rand::Rng;

    /// y depends strongly on column 0, weakly on 1, not at all on 2..6.
    fn synthetic(n: usize, seed: u64) -> (Dataset, Vec<EventId>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..7).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = rows
            .iter()
            .map(|r| {
                2.0 - 1.0 * (r[0] + 0.3 * r[0] * r[0]) - 0.25 * r[1]
                    + 0.01 * rng.gen_range(-1.0..1.0)
            })
            .collect();
        let events = (0..7).map(EventId::new).collect();
        (Dataset::new(rows, y).unwrap(), events)
    }

    fn fast_config() -> ImportanceConfig {
        ImportanceConfig {
            sgbrt: SgbrtConfig {
                n_trees: 60,
                tree: TreeConfig::default(),
                ..SgbrtConfig::default()
            },
            prune_step: 2,
            min_events: 3,
            ..ImportanceConfig::default()
        }
    }

    #[test]
    fn recovers_dominant_feature() {
        let (data, events) = synthetic(400, 1);
        let result = ImportanceRanker::new(fast_config())
            .rank(&data, &events)
            .unwrap();
        assert_eq!(result.ranking[0].0, EventId::new(0));
        assert!(result.ranking[0].1 > 50.0);
        // Importances sum to 100.
        let total: f64 = result.ranking.iter().map(|(_, v)| v).sum();
        assert!((total - 100.0).abs() < 1e-6);
    }

    #[test]
    fn eir_curve_has_expected_bookkeeping() {
        let (data, events) = synthetic(300, 2);
        let result = ImportanceRanker::new(fast_config())
            .rank(&data, &events)
            .unwrap();
        // 7 -> 5 -> 3 events.
        let ns: Vec<usize> = result.iterations.iter().map(|i| i.n_events).collect();
        assert_eq!(ns, vec![7, 5, 3]);
        assert!(result.best_iteration < result.iterations.len());
        assert_eq!(
            result.best_error(),
            result.iterations[result.best_iteration].error
        );
        assert!(result.mapm_events.len() >= 3);
    }

    #[test]
    fn pruning_keeps_informative_features() {
        let (data, events) = synthetic(400, 3);
        let result = ImportanceRanker::new(fast_config())
            .rank(&data, &events)
            .unwrap();
        // The dominant event must survive to the MAPM.
        assert!(result.mapm_events.contains(&EventId::new(0)));
    }

    #[test]
    fn top_k_truncates() {
        let (data, events) = synthetic(200, 4);
        let result = ImportanceRanker::new(fast_config())
            .rank(&data, &events)
            .unwrap();
        assert_eq!(result.top(2).len(), 2);
        assert!(result.top(100).len() <= 7);
    }

    #[test]
    fn validates_inputs() {
        let (data, _) = synthetic(50, 5);
        let ranker = ImportanceRanker::new(fast_config());
        let wrong_events: Vec<EventId> = (0..3).map(EventId::new).collect();
        assert!(ranker.rank(&data, &wrong_events).is_err());

        let bad = ImportanceConfig {
            prune_step: 0,
            ..fast_config()
        };
        let events: Vec<EventId> = (0..7).map(EventId::new).collect();
        assert!(ImportanceRanker::new(bad).rank(&data, &events).is_err());
    }

    #[test]
    fn uncertainty_annotates_without_changing_the_ranking() {
        let (data, events) = synthetic(300, 11);
        let ranker = ImportanceRanker::new(fast_config());
        let point = ranker.rank(&data, &events).unwrap();
        let u = vec![0.05; events.len()];
        let bayes = ranker
            .rank_with_uncertainty(&data, &events, Some(&u))
            .unwrap();
        // Identical ranking and error curve; only annotation differs.
        assert_eq!(point.ranking, bayes.ranking);
        assert_eq!(
            point.iterations.iter().map(|i| i.error).collect::<Vec<_>>(),
            bayes.iterations.iter().map(|i| i.error).collect::<Vec<_>>(),
        );
        assert!(point.uncertainty.is_none());
        assert!(point.iterations.iter().all(|i| i.stability.is_none()));
        let uncertainty = bayes.uncertainty.as_ref().unwrap();
        assert_eq!(uncertainty.stds.len(), bayes.ranking.len());
        assert!((0.0..=1.0).contains(&uncertainty.stability));
        for i in &bayes.iterations {
            let s = i.stability.unwrap();
            assert!((0.0..=1.0).contains(&s), "{s}");
        }
        // stds proportional to importances: aligned with ranking order.
        for (&(_, imp), &std) in bayes.ranking.iter().zip(&uncertainty.stds) {
            assert!((std - imp * 0.05).abs() < 1e-9);
        }
        let intervals = bayes.confidence_intervals(0.95).unwrap();
        assert_eq!(intervals.len(), bayes.ranking.len());
        for ((event, lo, hi), &(re, imp)) in intervals.into_iter().zip(&bayes.ranking) {
            assert_eq!(event, re);
            assert!(lo <= imp && imp <= hi);
        }
        assert!(point.confidence_intervals(0.95).is_none());
    }

    #[test]
    fn zero_uncertainty_is_perfectly_stable() {
        let (data, events) = synthetic(200, 12);
        let u = vec![0.0; events.len()];
        let result = ImportanceRanker::new(fast_config())
            .rank_with_uncertainty(&data, &events, Some(&u))
            .unwrap();
        assert_eq!(result.uncertainty.as_ref().unwrap().stability, 1.0);
        assert!(result.iterations.iter().all(|i| i.stability == Some(1.0)));
    }

    #[test]
    fn uncertainty_validates_inputs() {
        let (data, events) = synthetic(100, 13);
        let ranker = ImportanceRanker::new(fast_config());
        assert!(ranker
            .rank_with_uncertainty(&data, &events, Some(&[0.1; 2]))
            .is_err());
        let bad = ImportanceConfig {
            stability_draws: 0,
            ..fast_config()
        };
        let u = vec![0.1; events.len()];
        assert!(ImportanceRanker::new(bad)
            .rank_with_uncertainty(&data, &events, Some(&u))
            .is_err());
    }

    #[test]
    fn deterministic_given_seed() {
        let (data, events) = synthetic(200, 6);
        let a = ImportanceRanker::new(fast_config())
            .rank(&data, &events)
            .unwrap();
        let b = ImportanceRanker::new(fast_config())
            .rank(&data, &events)
            .unwrap();
        assert_eq!(a.ranking, b.ranking);
        assert_eq!(
            a.iterations.iter().map(|i| i.error).collect::<Vec<_>>(),
            b.iterations.iter().map(|i| i.error).collect::<Vec<_>>()
        );
    }

    /// Both trainers must tell the same qualitative story: the dominant
    /// event tops the MAPM ranking and the held-out errors stay close.
    #[test]
    fn exact_and_hist_trainers_agree_on_dominant_event() {
        let (data, events) = synthetic(400, 8);
        let with_trainer = |trainer| {
            let mut config = fast_config();
            config.sgbrt.trainer = trainer;
            ImportanceRanker::new(config).rank(&data, &events).unwrap()
        };
        let exact = with_trainer(Trainer::Exact);
        let hist = with_trainer(Trainer::Hist);
        assert_eq!(exact.ranking[0].0, EventId::new(0));
        assert_eq!(hist.ranking[0].0, EventId::new(0));
        let (e, h) = (exact.best_error(), hist.best_error());
        assert!((h - e).abs() / e < 0.25, "exact {e} vs hist {h}");
    }

    /// The hist EIR path (bin once, retrain on column views) must be
    /// thread-count invariant end to end.
    #[test]
    fn hist_ranking_is_thread_count_invariant() {
        let (data, events) = synthetic(250, 9);
        let mut config = fast_config();
        config.sgbrt.trainer = Trainer::Hist;
        cm_par::set_max_threads(1);
        let serial = ImportanceRanker::new(config).rank(&data, &events).unwrap();
        cm_par::set_max_threads(2);
        let two = ImportanceRanker::new(config).rank(&data, &events).unwrap();
        cm_par::set_max_threads(0);
        let parallel = ImportanceRanker::new(config).rank(&data, &events).unwrap();
        assert_eq!(serial, two);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn ranking_is_thread_count_invariant() {
        let (data, events) = synthetic(250, 7);
        cm_par::set_max_threads(1);
        let serial = ImportanceRanker::new(fast_config())
            .rank(&data, &events)
            .unwrap();
        cm_par::set_max_threads(0);
        let parallel = ImportanceRanker::new(fast_config())
            .rank(&data, &events)
            .unwrap();
        assert_eq!(serial, parallel);
    }
}
