//! The interaction ranker (Section III-D).
//!
//! For each pair of important events a linear model is fit with all
//! other events held at their means; the **residual variance** of that
//! linear model against the performance surface (Eq. 12) measures how
//! strongly the pair interacts — a linear model captures two
//! non-interacting events perfectly, so residuals indicate interaction.
//! Intensities are normalized across pairs (Eq. 13).

use crate::CmError;
use cm_events::EventId;
use cm_ml::{Dataset, Sgbrt};
use cm_stats::regression::MultipleLinear;

/// One ranked event-pair interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct PairInteraction {
    /// The event pair (in ranking-list order).
    pub pair: (EventId, EventId),
    /// Raw residual variance `v` (Eq. 12).
    pub intensity: f64,
    /// Normalized share of the total across ranked pairs (Eq. 13), in
    /// percent.
    pub share: f64,
}

/// The interaction ranker.
#[derive(Debug, Clone, Default)]
pub struct InteractionRanker;

impl InteractionRanker {
    /// Creates an interaction ranker.
    pub fn new() -> Self {
        InteractionRanker
    }

    /// Ranks all pairs among `top_events` by interaction intensity.
    ///
    /// `model` is the MAPM over `model_events` (column order), and
    /// `data` the dataset the model was trained on (same columns).
    /// For each pair, every other feature is pinned at its dataset mean,
    /// the pair's observed joint values are swept, the MAPM predicts the
    /// performance surface, and a linear model in the two events is fit
    /// to that surface; its residual sum of squares is the intensity.
    ///
    /// Returns pairs sorted by descending intensity.
    ///
    /// # Errors
    ///
    /// Returns [`CmError::Invalid`] when fewer than two top events are
    /// given or an event is not a model column; propagates regression
    /// failures.
    pub fn rank_pairs(
        &self,
        model: &Sgbrt,
        model_events: &[EventId],
        data: &Dataset,
        top_events: &[EventId],
    ) -> Result<Vec<PairInteraction>, CmError> {
        if top_events.len() < 2 {
            return Err(CmError::Invalid(
                "interaction ranking needs at least two events",
            ));
        }
        if model_events.len() != data.n_features() {
            return Err(CmError::Invalid(
                "event list must match dataset feature count",
            ));
        }
        let cols = resolve_columns(model_events, top_events)?;

        // Mean row: all features at their dataset means.
        let means = column_means(data);

        // Each pair's sweep-and-fit is independent; fan the O(P²) loop
        // out across the pool. `try_map` keeps pair order and surfaces
        // the lowest-indexed error, like the serial loop did.
        let pairs = index_pairs(top_events.len());
        record_sweep(pairs.len(), pairs.len() * data.n_rows());
        let intensities = cm_par::try_map(&pairs, |&(i, j)| {
            pair_intensity(model, data, &means, cols[i], cols[j])
        })?;
        let mut out: Vec<PairInteraction> = pairs
            .iter()
            .zip(intensities)
            .map(|(&(i, j), intensity)| PairInteraction {
                pair: (top_events[i], top_events[j]),
                intensity,
                share: 0.0,
            })
            .collect();
        let total: f64 = out.iter().map(|p| p.intensity).sum();
        if total > 0.0 {
            for p in &mut out {
                p.share = p.intensity / total * 100.0;
            }
        }
        out.sort_by(|a, b| b.intensity.total_cmp(&a.intensity));
        Ok(out)
    }

    /// Ranks pairs by **additivity-corrected** interaction intensity:
    /// the cross-difference
    /// `f(a, b) - f(a, ·) - f(·, b) + f(·, ·)` of the MAPM surface,
    /// squared and summed over the observed joint values (Friedman's
    /// H-statistic numerator).
    ///
    /// Eq. 12's pairwise *linear* residual (see
    /// [`InteractionRanker::rank_pairs`]) also counts each event's own
    /// nonlinearity — over a tree-ensemble surface, whose main effects
    /// are piecewise constant, that term dominates, so every pair
    /// containing the single most important event ranks high. The
    /// cross-difference cancels main effects exactly and isolates the
    /// joint term, matching the paper's *intent* ("if two events are
    /// orthogonal, the combined effect is predictable from the
    /// individual ones"). The pipeline uses this variant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InteractionRanker::rank_pairs`].
    pub fn rank_pairs_additive(
        &self,
        model: &Sgbrt,
        model_events: &[EventId],
        data: &Dataset,
        top_events: &[EventId],
    ) -> Result<Vec<PairInteraction>, CmError> {
        if top_events.len() < 2 {
            return Err(CmError::Invalid(
                "interaction ranking needs at least two events",
            ));
        }
        if model_events.len() != data.n_features() {
            return Err(CmError::Invalid(
                "event list must match dataset feature count",
            ));
        }
        let cols = resolve_columns(model_events, top_events)?;

        let means = column_means(data);
        let f0 = model.predict(&means);

        // Univariate partial responses, shared across pairs. Each event's
        // sweep packs its probes into one flat buffer and predicts them
        // as a single batch over the flattened ensemble.
        let nf = means.len();
        let partials: Vec<Vec<f64>> = cm_par::map(&cols, |&c| {
            let mut probes = Vec::with_capacity(data.n_rows() * nf);
            for row in data.rows() {
                let start = probes.len();
                probes.extend_from_slice(&means);
                probes[start + c] = row[c];
            }
            model.predict_batch_flat(&probes)
        });

        // The O(P²) cross-difference loop, fanned out per pair. Summation
        // order within a pair is unchanged, so intensities are
        // bit-identical to the serial loop at any thread count.
        let pairs = index_pairs(top_events.len());
        // Probe rows: one row of probes per dataset row, for each
        // univariate partial and each pair surface.
        record_sweep(pairs.len(), (cols.len() + pairs.len()) * data.n_rows());
        let mut out: Vec<PairInteraction> = cm_par::map(&pairs, |&(i, j)| {
            let (ca, cb) = (cols[i], cols[j]);
            let mut probes = Vec::with_capacity(data.n_rows() * nf);
            for row in data.rows() {
                let start = probes.len();
                probes.extend_from_slice(&means);
                probes[start + ca] = row[ca];
                probes[start + cb] = row[cb];
            }
            let f_ab = model.predict_batch_flat(&probes);
            let mut v = 0.0;
            for r in 0..data.n_rows() {
                let cross = f_ab[r] - partials[i][r] - partials[j][r] + f0;
                v += cross * cross;
            }
            PairInteraction {
                pair: (top_events[i], top_events[j]),
                intensity: v,
                share: 0.0,
            }
        });
        let total: f64 = out.iter().map(|p| p.intensity).sum();
        if total > 0.0 {
            for p in &mut out {
                p.share = p.intensity / total * 100.0;
            }
        }
        out.sort_by(|a, b| b.intensity.total_cmp(&a.intensity));
        Ok(out)
    }

    /// Interaction intensity between two raw observable series and a
    /// target (Eq. 12 applied directly to observations). Used for the
    /// Spark case study's (configuration parameter, event) pairs where
    /// no MAPM surface exists.
    ///
    /// # Errors
    ///
    /// Propagates regression failures (mismatched lengths, collinear
    /// inputs, too few points).
    pub fn observed_intensity(
        &self,
        xs_a: &[f64],
        xs_b: &[f64],
        target: &[f64],
    ) -> Result<f64, CmError> {
        let rows: Vec<Vec<f64>> = xs_a.iter().zip(xs_b).map(|(&a, &b)| vec![a, b]).collect();
        let linear = MultipleLinear::fit(&rows, target).map_err(CmError::Stats)?;
        linear
            .residual_sum_of_squares(&rows, target)
            .map_err(CmError::Stats)
    }
}

/// One observability record per interaction sweep: how many pairs were
/// ranked and how many probe rows the MAPM predicted for them.
fn record_sweep(pairs: usize, probe_rows: usize) {
    if cm_obs::enabled() {
        cm_obs::counter_add("interaction.pairs", pairs as u64);
        cm_obs::counter_add("interaction.probe_rows", probe_rows as u64);
    }
}

/// Per-column means of a dataset — the "mean row" both rankers pin
/// non-swept features to.
pub(crate) fn column_means(data: &Dataset) -> Vec<f64> {
    let n = data.n_rows() as f64;
    let mut means = vec![0.0; data.n_features()];
    for row in data.rows() {
        for (m, &v) in means.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut means {
        *m /= n;
    }
    means
}

/// Maps each top event to its model column, erroring on the first event
/// that is not a model input.
fn resolve_columns(
    model_events: &[EventId],
    top_events: &[EventId],
) -> Result<Vec<usize>, CmError> {
    top_events
        .iter()
        .map(|&event| {
            model_events
                .iter()
                .position(|&e| e == event)
                .ok_or(CmError::Invalid("top event is not a model input"))
        })
        .collect()
}

/// All index pairs `(i, j)` with `i < j < len`, in the serial loop's
/// enumeration order.
fn index_pairs(len: usize) -> Vec<(usize, usize)> {
    let mut pairs = Vec::with_capacity(len * (len - 1) / 2);
    for i in 0..len {
        for j in i + 1..len {
            pairs.push((i, j));
        }
    }
    pairs
}

fn pair_intensity(
    model: &Sgbrt,
    data: &Dataset,
    means: &[f64],
    ca: usize,
    cb: usize,
) -> Result<f64, CmError> {
    // Sweep the pair over its observed joint values, others at means.
    // Probes are packed into one flat buffer — no per-row Vec — and
    // predicted in a single batch over the flattened ensemble.
    let nf = means.len();
    let mut probes = Vec::with_capacity(data.n_rows() * nf);
    let mut pair_rows = Vec::with_capacity(data.n_rows());
    for row in data.rows() {
        let start = probes.len();
        probes.extend_from_slice(means);
        probes[start + ca] = row[ca];
        probes[start + cb] = row[cb];
        pair_rows.push(vec![row[ca], row[cb]]);
    }
    let surface = model.predict_batch_flat(&probes);
    let linear = MultipleLinear::fit(&pair_rows, &surface).map_err(CmError::Stats)?;
    linear
        .residual_sum_of_squares(&pair_rows, &surface)
        .map_err(CmError::Stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_ml::SgbrtConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// y = a·b + c (a,b interact; c is additive).
    fn interacting_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1] + 0.8 * r[2]).collect();
        Dataset::new(rows, y).unwrap()
    }

    fn events(n: usize) -> Vec<EventId> {
        (0..n).map(EventId::new).collect()
    }

    #[test]
    fn interacting_pair_ranks_first() {
        let data = interacting_dataset(500, 1);
        let ev = events(3);
        let model = SgbrtConfig {
            n_trees: 150,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        let ranked = InteractionRanker::new()
            .rank_pairs(&model, &ev, &data, &ev)
            .unwrap();
        assert_eq!(ranked.len(), 3);
        let top = &ranked[0];
        assert_eq!(
            (
                top.pair.0.index().min(top.pair.1.index()),
                top.pair.0.index().max(top.pair.1.index())
            ),
            (0, 1),
            "expected (e0, e1) to dominate: {ranked:?}"
        );
        // Shares sum to 100.
        let total: f64 = ranked.iter().map(|p| p.share).sum();
        assert!((total - 100.0).abs() < 1e-6);
        // Dominance is clear.
        assert!(top.share > 60.0, "top share {}", top.share);
    }

    #[test]
    fn additive_feature_pairs_have_low_intensity() {
        let data = interacting_dataset(500, 2);
        let ev = events(3);
        let model = SgbrtConfig::default().fit(&data).unwrap();
        let ranked = InteractionRanker::new()
            .rank_pairs(&model, &ev, &data, &ev)
            .unwrap();
        // (0,2) and (1,2) are additive pairs: far weaker than (0,1).
        let intensity_of = |a: usize, b: usize| {
            ranked
                .iter()
                .find(|p| {
                    let (x, y) = (p.pair.0.index(), p.pair.1.index());
                    (x, y) == (a, b) || (x, y) == (b, a)
                })
                .unwrap()
                .intensity
        };
        assert!(intensity_of(0, 1) > 3.0 * intensity_of(0, 2));
        assert!(intensity_of(0, 1) > 3.0 * intensity_of(1, 2));
    }

    #[test]
    fn validates_inputs() {
        let data = interacting_dataset(50, 3);
        let ev = events(3);
        let model = SgbrtConfig::default().fit(&data).unwrap();
        let ranker = InteractionRanker::new();
        assert!(ranker
            .rank_pairs(&model, &ev, &data, &[EventId::new(0)])
            .is_err());
        assert!(ranker
            .rank_pairs(&model, &ev, &data, &[EventId::new(0), EventId::new(9)])
            .is_err());
        assert!(ranker.rank_pairs(&model, &events(2), &data, &ev).is_err());
    }

    #[test]
    fn additive_variant_isolates_the_product_pair() {
        // y = a*b + c^2: the naive Eq. 12 residual flags pairs with c
        // (its own curvature); the cross-difference must not.
        let mut rng = StdRng::seed_from_u64(9);
        let rows: Vec<Vec<f64>> = (0..600)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1] + r[2] * r[2]).collect();
        let data = Dataset::new(rows, y).unwrap();
        let ev = events(3);
        let model = SgbrtConfig {
            n_trees: 200,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        let ranked = InteractionRanker::new()
            .rank_pairs_additive(&model, &ev, &data, &ev)
            .unwrap();
        let top = &ranked[0];
        let pair = (
            top.pair.0.index().min(top.pair.1.index()),
            top.pair.0.index().max(top.pair.1.index()),
        );
        assert_eq!(pair, (0, 1), "expected (e0, e1): {ranked:?}");
        assert!(top.share > 50.0, "top share {}", top.share);
    }

    #[test]
    fn additive_variant_validates_like_the_linear_one() {
        let data = interacting_dataset(50, 10);
        let ev = events(3);
        let model = SgbrtConfig::default().fit(&data).unwrap();
        let ranker = InteractionRanker::new();
        assert!(ranker
            .rank_pairs_additive(&model, &ev, &data, &[EventId::new(0)])
            .is_err());
        assert!(ranker
            .rank_pairs_additive(&model, &ev, &data, &[EventId::new(0), EventId::new(9)])
            .is_err());
    }

    #[test]
    fn column_means_averages_each_feature() {
        let rows = vec![vec![1.0, 10.0], vec![3.0, 20.0], vec![5.0, 30.0]];
        let data = Dataset::new(rows, vec![0.0; 3]).unwrap();
        assert_eq!(column_means(&data), vec![3.0, 20.0]);
    }

    #[test]
    fn index_pairs_enumerates_upper_triangle_in_order() {
        assert_eq!(index_pairs(3), vec![(0, 1), (0, 2), (1, 2)]);
        assert!(index_pairs(1).is_empty());
    }

    #[test]
    fn rankings_are_thread_count_invariant() {
        let data = interacting_dataset(300, 11);
        let ev = events(3);
        let model = SgbrtConfig::default().fit(&data).unwrap();
        let ranker = InteractionRanker::new();
        cm_par::set_max_threads(1);
        let serial = ranker.rank_pairs(&model, &ev, &data, &ev).unwrap();
        let serial_add = ranker.rank_pairs_additive(&model, &ev, &data, &ev).unwrap();
        cm_par::set_max_threads(0);
        let parallel = ranker.rank_pairs(&model, &ev, &data, &ev).unwrap();
        let parallel_add = ranker.rank_pairs_additive(&model, &ev, &data, &ev).unwrap();
        assert_eq!(serial, parallel);
        assert_eq!(serial_add, parallel_add);
    }

    #[test]
    fn observed_intensity_detects_product_targets() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let linear_target: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| 2.0 * x - y).collect();
        let product_target: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        let ranker = InteractionRanker::new();
        let v_linear = ranker.observed_intensity(&a, &b, &linear_target).unwrap();
        let v_product = ranker.observed_intensity(&a, &b, &product_target).unwrap();
        assert!(v_linear < 1e-9, "linear target should fit exactly");
        assert!(v_product > 1.0);
    }
}
