//! The interaction ranker (Section III-D).
//!
//! For each pair of important events a linear model is fit with all
//! other events held at their means; the **residual variance** of that
//! linear model against the performance surface (Eq. 12) measures how
//! strongly the pair interacts — a linear model captures two
//! non-interacting events perfectly, so residuals indicate interaction.
//! Intensities are normalized across pairs (Eq. 13).

use crate::CmError;
use cm_events::EventId;
use cm_ml::{Dataset, Sgbrt};
use cm_stats::regression::MultipleLinear;

/// One ranked event-pair interaction.
#[derive(Debug, Clone, PartialEq)]
pub struct PairInteraction {
    /// The event pair (in ranking-list order).
    pub pair: (EventId, EventId),
    /// Raw residual variance `v` (Eq. 12).
    pub intensity: f64,
    /// Normalized share of the total across ranked pairs (Eq. 13), in
    /// percent.
    pub share: f64,
}

/// The interaction ranker.
#[derive(Debug, Clone, Default)]
pub struct InteractionRanker;

impl InteractionRanker {
    /// Creates an interaction ranker.
    pub fn new() -> Self {
        InteractionRanker
    }

    /// Ranks all pairs among `top_events` by interaction intensity.
    ///
    /// `model` is the MAPM over `model_events` (column order), and
    /// `data` the dataset the model was trained on (same columns).
    /// For each pair, every other feature is pinned at its dataset mean,
    /// the pair's observed joint values are swept, the MAPM predicts the
    /// performance surface, and a linear model in the two events is fit
    /// to that surface; its residual sum of squares is the intensity.
    ///
    /// Returns pairs sorted by descending intensity.
    ///
    /// # Errors
    ///
    /// Returns [`CmError::Invalid`] when fewer than two top events are
    /// given or an event is not a model column; propagates regression
    /// failures.
    pub fn rank_pairs(
        &self,
        model: &Sgbrt,
        model_events: &[EventId],
        data: &Dataset,
        top_events: &[EventId],
    ) -> Result<Vec<PairInteraction>, CmError> {
        if top_events.len() < 2 {
            return Err(CmError::Invalid(
                "interaction ranking needs at least two events",
            ));
        }
        if model_events.len() != data.n_features() {
            return Err(CmError::Invalid(
                "event list must match dataset feature count",
            ));
        }
        let col_of = |event: EventId| -> Result<usize, CmError> {
            model_events
                .iter()
                .position(|&e| e == event)
                .ok_or(CmError::Invalid("top event is not a model input"))
        };

        // Mean row: all features at their dataset means.
        let n = data.n_rows() as f64;
        let mut means = vec![0.0; data.n_features()];
        for row in data.rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }

        let mut out = Vec::new();
        for (i, &ea) in top_events.iter().enumerate() {
            for &eb in &top_events[i + 1..] {
                let ca = col_of(ea)?;
                let cb = col_of(eb)?;
                let intensity = pair_intensity(model, data, &means, ca, cb)?;
                out.push(PairInteraction {
                    pair: (ea, eb),
                    intensity,
                    share: 0.0,
                });
            }
        }
        let total: f64 = out.iter().map(|p| p.intensity).sum();
        if total > 0.0 {
            for p in &mut out {
                p.share = p.intensity / total * 100.0;
            }
        }
        out.sort_by(|a, b| b.intensity.total_cmp(&a.intensity));
        Ok(out)
    }

    /// Ranks pairs by **additivity-corrected** interaction intensity:
    /// the cross-difference
    /// `f(a, b) - f(a, ·) - f(·, b) + f(·, ·)` of the MAPM surface,
    /// squared and summed over the observed joint values (Friedman's
    /// H-statistic numerator).
    ///
    /// Eq. 12's pairwise *linear* residual (see
    /// [`InteractionRanker::rank_pairs`]) also counts each event's own
    /// nonlinearity — over a tree-ensemble surface, whose main effects
    /// are piecewise constant, that term dominates, so every pair
    /// containing the single most important event ranks high. The
    /// cross-difference cancels main effects exactly and isolates the
    /// joint term, matching the paper's *intent* ("if two events are
    /// orthogonal, the combined effect is predictable from the
    /// individual ones"). The pipeline uses this variant.
    ///
    /// # Errors
    ///
    /// Same conditions as [`InteractionRanker::rank_pairs`].
    pub fn rank_pairs_additive(
        &self,
        model: &Sgbrt,
        model_events: &[EventId],
        data: &Dataset,
        top_events: &[EventId],
    ) -> Result<Vec<PairInteraction>, CmError> {
        if top_events.len() < 2 {
            return Err(CmError::Invalid(
                "interaction ranking needs at least two events",
            ));
        }
        if model_events.len() != data.n_features() {
            return Err(CmError::Invalid(
                "event list must match dataset feature count",
            ));
        }
        let col_of = |event: EventId| -> Result<usize, CmError> {
            model_events
                .iter()
                .position(|&e| e == event)
                .ok_or(CmError::Invalid("top event is not a model input"))
        };

        let n = data.n_rows() as f64;
        let mut means = vec![0.0; data.n_features()];
        for row in data.rows() {
            for (m, &v) in means.iter_mut().zip(row) {
                *m += v;
            }
        }
        for m in &mut means {
            *m /= n;
        }
        let f0 = model.predict(&means);

        // Univariate partial responses, shared across pairs.
        let mut partials: Vec<Vec<f64>> = Vec::with_capacity(top_events.len());
        let mut cols = Vec::with_capacity(top_events.len());
        for &e in top_events {
            let c = col_of(e)?;
            let mut probe = means.clone();
            let series: Vec<f64> = data
                .rows()
                .iter()
                .map(|row| {
                    probe[c] = row[c];
                    model.predict(&probe)
                })
                .collect();
            partials.push(series);
            cols.push(c);
        }

        let mut out = Vec::new();
        for i in 0..top_events.len() {
            for j in i + 1..top_events.len() {
                let (ca, cb) = (cols[i], cols[j]);
                let mut probe = means.clone();
                let mut v = 0.0;
                for (r, row) in data.rows().iter().enumerate() {
                    probe[ca] = row[ca];
                    probe[cb] = row[cb];
                    let f_ab = model.predict(&probe);
                    probe[ca] = means[ca];
                    probe[cb] = means[cb];
                    let cross = f_ab - partials[i][r] - partials[j][r] + f0;
                    v += cross * cross;
                }
                out.push(PairInteraction {
                    pair: (top_events[i], top_events[j]),
                    intensity: v,
                    share: 0.0,
                });
            }
        }
        let total: f64 = out.iter().map(|p| p.intensity).sum();
        if total > 0.0 {
            for p in &mut out {
                p.share = p.intensity / total * 100.0;
            }
        }
        out.sort_by(|a, b| b.intensity.total_cmp(&a.intensity));
        Ok(out)
    }

    /// Interaction intensity between two raw observable series and a
    /// target (Eq. 12 applied directly to observations). Used for the
    /// Spark case study's (configuration parameter, event) pairs where
    /// no MAPM surface exists.
    ///
    /// # Errors
    ///
    /// Propagates regression failures (mismatched lengths, collinear
    /// inputs, too few points).
    pub fn observed_intensity(
        &self,
        xs_a: &[f64],
        xs_b: &[f64],
        target: &[f64],
    ) -> Result<f64, CmError> {
        let rows: Vec<Vec<f64>> = xs_a.iter().zip(xs_b).map(|(&a, &b)| vec![a, b]).collect();
        let linear = MultipleLinear::fit(&rows, target).map_err(CmError::Stats)?;
        linear
            .residual_sum_of_squares(&rows, target)
            .map_err(CmError::Stats)
    }
}

fn pair_intensity(
    model: &Sgbrt,
    data: &Dataset,
    means: &[f64],
    ca: usize,
    cb: usize,
) -> Result<f64, CmError> {
    // Sweep the pair over its observed joint values, others at means.
    let mut rows = Vec::with_capacity(data.n_rows());
    let mut pair_rows = Vec::with_capacity(data.n_rows());
    for row in data.rows() {
        let mut probe = means.to_vec();
        probe[ca] = row[ca];
        probe[cb] = row[cb];
        pair_rows.push(vec![row[ca], row[cb]]);
        rows.push(probe);
    }
    let surface: Vec<f64> = rows.iter().map(|r| model.predict(r)).collect();
    let linear = MultipleLinear::fit(&pair_rows, &surface).map_err(CmError::Stats)?;
    linear
        .residual_sum_of_squares(&pair_rows, &surface)
        .map_err(CmError::Stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_ml::SgbrtConfig;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// y = a·b + c (a,b interact; c is additive).
    fn interacting_dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = StdRng::seed_from_u64(seed);
        let rows: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1] + 0.8 * r[2]).collect();
        Dataset::new(rows, y).unwrap()
    }

    fn events(n: usize) -> Vec<EventId> {
        (0..n).map(EventId::new).collect()
    }

    #[test]
    fn interacting_pair_ranks_first() {
        let data = interacting_dataset(500, 1);
        let ev = events(3);
        let model = SgbrtConfig {
            n_trees: 150,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        let ranked = InteractionRanker::new()
            .rank_pairs(&model, &ev, &data, &ev)
            .unwrap();
        assert_eq!(ranked.len(), 3);
        let top = &ranked[0];
        assert_eq!(
            (
                top.pair.0.index().min(top.pair.1.index()),
                top.pair.0.index().max(top.pair.1.index())
            ),
            (0, 1),
            "expected (e0, e1) to dominate: {ranked:?}"
        );
        // Shares sum to 100.
        let total: f64 = ranked.iter().map(|p| p.share).sum();
        assert!((total - 100.0).abs() < 1e-6);
        // Dominance is clear.
        assert!(top.share > 60.0, "top share {}", top.share);
    }

    #[test]
    fn additive_feature_pairs_have_low_intensity() {
        let data = interacting_dataset(500, 2);
        let ev = events(3);
        let model = SgbrtConfig::default().fit(&data).unwrap();
        let ranked = InteractionRanker::new()
            .rank_pairs(&model, &ev, &data, &ev)
            .unwrap();
        // (0,2) and (1,2) are additive pairs: far weaker than (0,1).
        let intensity_of = |a: usize, b: usize| {
            ranked
                .iter()
                .find(|p| {
                    let (x, y) = (p.pair.0.index(), p.pair.1.index());
                    (x, y) == (a, b) || (x, y) == (b, a)
                })
                .unwrap()
                .intensity
        };
        assert!(intensity_of(0, 1) > 3.0 * intensity_of(0, 2));
        assert!(intensity_of(0, 1) > 3.0 * intensity_of(1, 2));
    }

    #[test]
    fn validates_inputs() {
        let data = interacting_dataset(50, 3);
        let ev = events(3);
        let model = SgbrtConfig::default().fit(&data).unwrap();
        let ranker = InteractionRanker::new();
        assert!(ranker
            .rank_pairs(&model, &ev, &data, &[EventId::new(0)])
            .is_err());
        assert!(ranker
            .rank_pairs(&model, &ev, &data, &[EventId::new(0), EventId::new(9)])
            .is_err());
        assert!(ranker.rank_pairs(&model, &events(2), &data, &ev).is_err());
    }

    #[test]
    fn additive_variant_isolates_the_product_pair() {
        // y = a*b + c^2: the naive Eq. 12 residual flags pairs with c
        // (its own curvature); the cross-difference must not.
        let mut rng = StdRng::seed_from_u64(9);
        let rows: Vec<Vec<f64>> = (0..600)
            .map(|_| (0..3).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = rows.iter().map(|r| r[0] * r[1] + r[2] * r[2]).collect();
        let data = Dataset::new(rows, y).unwrap();
        let ev = events(3);
        let model = SgbrtConfig {
            n_trees: 200,
            ..SgbrtConfig::default()
        }
        .fit(&data)
        .unwrap();
        let ranked = InteractionRanker::new()
            .rank_pairs_additive(&model, &ev, &data, &ev)
            .unwrap();
        let top = &ranked[0];
        let pair = (
            top.pair.0.index().min(top.pair.1.index()),
            top.pair.0.index().max(top.pair.1.index()),
        );
        assert_eq!(pair, (0, 1), "expected (e0, e1): {ranked:?}");
        assert!(top.share > 50.0, "top share {}", top.share);
    }

    #[test]
    fn additive_variant_validates_like_the_linear_one() {
        let data = interacting_dataset(50, 10);
        let ev = events(3);
        let model = SgbrtConfig::default().fit(&data).unwrap();
        let ranker = InteractionRanker::new();
        assert!(ranker
            .rank_pairs_additive(&model, &ev, &data, &[EventId::new(0)])
            .is_err());
        assert!(ranker
            .rank_pairs_additive(&model, &ev, &data, &[EventId::new(0), EventId::new(9)])
            .is_err());
    }

    #[test]
    fn observed_intensity_detects_product_targets() {
        let mut rng = StdRng::seed_from_u64(4);
        let a: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let b: Vec<f64> = (0..200).map(|_| rng.gen_range(-1.0..1.0)).collect();
        let linear_target: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| 2.0 * x - y).collect();
        let product_target: Vec<f64> = a.iter().zip(&b).map(|(&x, &y)| x * y).collect();
        let ranker = InteractionRanker::new();
        let v_linear = ranker.observed_intensity(&a, &b, &linear_target).unwrap();
        let v_product = ranker.observed_intensity(&a, &b, &product_target).unwrap();
        assert!(v_linear < 1e-9, "linear target should fit exactly");
        assert!(v_product > 1.0);
    }
}
