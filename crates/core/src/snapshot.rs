//! Pipeline snapshot/resume over the persistent columnar store.
//!
//! [`CounterMiner::analyze_with_store`](crate::CounterMiner::analyze_with_store)
//! persists what the expensive front half of the pipeline produced — the
//! raw multiplexed series, the cleaned series, and the per-interval IPC —
//! keyed by a fingerprint of every configuration knob that influences
//! collection and cleaning. A later run with a matching fingerprint
//! resumes from the cleaned data and skips PMU simulation and cleaning
//! entirely; because cleaning is deterministic and the store round-trips
//! `f64` values bit-exactly, the resumed analysis is bit-identical to a
//! cold one.
//!
//! On-store layout for a benchmark `wc` with fingerprint `fp`:
//!
//! | program            | contents                                   |
//! |--------------------|--------------------------------------------|
//! | `wc@fp`            | raw multiplexed series, one run per index  |
//! | `wc@fp#cleaned`    | cleaned series, same keys                  |
//! | `wc@fp#ipc`        | per-run IPC under event index 0            |
//!
//! plus `snapshot.wc.*` metadata entries (fingerprint, event list, run
//! count, cleaner tallies). Namespacing programs by fingerprint lets
//! snapshots for different configurations coexist in one store file.

use crate::uncertainty::{decode_aggregates, encode_aggregates};
use crate::{CleanerKind, CmError, MinerConfig, VarianceAggregate};
use cm_events::{EventId, RunRecord, SampleMode};
use cm_sim::{Benchmark, SimRun};
use cm_store::{RunId, SeriesKey, Store};
use std::collections::BTreeMap;

/// All snapshot series are stored under the multiplexed mode — that is
/// the only mode the pipeline collects in.
const SNAPSHOT_MODE: SampleMode = SampleMode::Mlpx;

/// A front-half pipeline result restored from (or about to enter) the
/// columnar store.
pub(crate) struct Snapshot {
    /// Cleaned runs, IPC attached, `true_counts` empty (ground truth is
    /// a simulation artifact and is not persisted).
    pub runs: Vec<SimRun>,
    /// The measured events, in dataset column order.
    pub events: Vec<EventId>,
    /// Total outliers the cleaner replaced when the snapshot was made.
    pub outliers_replaced: usize,
    /// Total missing values the cleaner filled when the snapshot was made.
    pub missing_filled: usize,
    /// Per-event column variance aggregates, present when the snapshot
    /// was ingested in `bayes` mode (same order as `events`). Persisted
    /// bit-exactly so a warm bayes run replays the cold run's
    /// uncertainty byte for byte.
    pub uncertainty: Option<Vec<VarianceAggregate>>,
}

/// FNV-1a 64-bit hash.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Fingerprints every knob that influences collection and cleaning,
/// plus the *resolved* event set the collector will measure.
///
/// The event ids are sorted before hashing, so two configurations that
/// measure the same set in a different order share a fingerprint (the
/// collected data is identical), while configurations measuring
/// *different* sets of the same size — which used to collide when only
/// the count was hashed — never do.
///
/// Deliberately excludes the importance/interaction/aggregation settings:
/// those shape the *model* half of the pipeline, which always re-runs, so
/// retuning EIR must not force a re-collection.
///
/// The cleaner *kind* is part of the hash (v3): a point snapshot carries
/// no variance aggregates, so letting a bayes analysis warm-start from
/// one would silently drop the uncertainty it was asked for — cross-kind
/// resume must be a miss.
pub(crate) fn fingerprint(benchmark: Benchmark, config: &MinerConfig, events: &[EventId]) -> u64 {
    let mut ids: Vec<usize> = events.iter().map(|e| e.index()).collect();
    ids.sort_unstable();
    ids.dedup();
    let desc = format!(
        "v3|{:?}|pmu={:?}|cleaner={:?}|kind={:?}|runs={}|events={ids:?}|seed={}",
        benchmark,
        config.pmu,
        config.cleaner,
        config.cleaner_kind,
        config.runs_per_benchmark,
        config.seed,
    );
    fnv1a(desc.as_bytes())
}

fn raw_ns(benchmark: Benchmark, fp: u64) -> String {
    format!("{}@{fp:016x}", benchmark.name())
}

fn cleaned_ns(benchmark: Benchmark, fp: u64) -> String {
    format!("{}#cleaned", raw_ns(benchmark, fp))
}

fn ipc_ns(benchmark: Benchmark, fp: u64) -> String {
    format!("{}#ipc", raw_ns(benchmark, fp))
}

fn meta_key(benchmark: Benchmark, field: &str) -> String {
    format!("snapshot.{}.{field}", benchmark.name())
}

/// Re-keys a record under a namespaced program name, preserving series,
/// run index, mode, and execution time.
fn renamed(record: &RunRecord, program: &str) -> RunRecord {
    let mut out = RunRecord::new(program, record.run_index(), record.mode());
    out.set_exec_time_secs(record.exec_time_secs());
    for (event, series) in record.iter() {
        out.insert_series(event, series.clone());
    }
    out
}

/// Stages a full snapshot (raw + cleaned + IPC + metadata) into the
/// store. The caller commits.
///
/// # Errors
///
/// Returns a store error on key collisions — which cannot happen unless
/// two identically-fingerprinted collections race into one store file.
pub(crate) fn save(
    store: &mut Store,
    benchmark: Benchmark,
    fp: u64,
    raw: &[SimRun],
    snapshot: &Snapshot,
) -> Result<(), CmError> {
    let raw_program = raw_ns(benchmark, fp);
    let cleaned_program = cleaned_ns(benchmark, fp);
    let ipc_program = ipc_ns(benchmark, fp);
    for run in raw {
        store.append_run(&renamed(&run.record, &raw_program))?;
    }
    for run in &snapshot.runs {
        store.append_run(&renamed(&run.record, &cleaned_program))?;
        store.append_series(
            SeriesKey::new(
                ipc_program.clone(),
                run.record.run_index(),
                SNAPSHOT_MODE,
                EventId::new(0),
            ),
            run.ipc.values(),
        )?;
    }
    let events: Vec<String> = snapshot
        .events
        .iter()
        .map(|e| e.index().to_string())
        .collect();
    store.set_meta(meta_key(benchmark, "fingerprint"), format!("{fp:016x}"));
    store.set_meta(meta_key(benchmark, "events"), events.join(","));
    store.set_meta(meta_key(benchmark, "runs"), snapshot.runs.len().to_string());
    store.set_meta(
        meta_key(benchmark, "outliers"),
        snapshot.outliers_replaced.to_string(),
    );
    store.set_meta(
        meta_key(benchmark, "missing"),
        snapshot.missing_filled.to_string(),
    );
    let kind = if snapshot.uncertainty.is_some() {
        CleanerKind::Bayes
    } else {
        CleanerKind::Point
    };
    store.set_meta(meta_key(benchmark, "cleaner"), kind.to_string());
    if let Some(aggregates) = &snapshot.uncertainty {
        store.set_meta(
            meta_key(benchmark, "uncertainty"),
            encode_aggregates(aggregates),
        );
    }
    Ok(())
}

fn parsed_meta(store: &Store, benchmark: Benchmark, field: &str) -> Result<usize, CmError> {
    store
        .meta(&meta_key(benchmark, field))
        .and_then(|v| v.parse().ok())
        .ok_or(CmError::Invalid(
            "snapshot metadata is incomplete; re-ingest the benchmark",
        ))
}

/// Loads the snapshot for `benchmark` if one with a matching fingerprint
/// is committed; `Ok(None)` means "no resumable snapshot" (absent or
/// stale fingerprint), which callers treat as a cache miss.
///
/// # Errors
///
/// A matching fingerprint with unreadable data is an error, not a miss:
/// checksum mismatches and truncations surface as
/// [`CmError::Store`] so silent re-collection never masks corruption.
pub(crate) fn load(
    store: &Store,
    benchmark: Benchmark,
    fp: u64,
) -> Result<Option<Snapshot>, CmError> {
    match store.meta(&meta_key(benchmark, "fingerprint")) {
        Some(stored) if stored == format!("{fp:016x}") => {}
        _ => return Ok(None),
    }
    let events: Vec<EventId> = store
        .meta(&meta_key(benchmark, "events"))
        .map(|list| {
            list.split(',')
                .map(|tok| tok.parse::<usize>().map(EventId::new))
                .collect::<Result<Vec<_>, _>>()
        })
        .transpose()
        .ok()
        .flatten()
        .ok_or(CmError::Invalid(
            "snapshot metadata is incomplete; re-ingest the benchmark",
        ))?;
    let n_runs = parsed_meta(store, benchmark, "runs")?;
    let outliers_replaced = parsed_meta(store, benchmark, "outliers")?;
    let missing_filled = parsed_meta(store, benchmark, "missing")?;
    // Bayes snapshots carry their column variance aggregates; their
    // absence under a bayes marker is corruption, not a miss.
    let uncertainty = match store.meta(&meta_key(benchmark, "cleaner")).as_deref() {
        Some("bayes") => {
            let encoded =
                store
                    .meta(&meta_key(benchmark, "uncertainty"))
                    .ok_or(CmError::Invalid(
                        "snapshot metadata is incomplete; re-ingest the benchmark",
                    ))?;
            let aggregates = decode_aggregates(&encoded)?;
            if aggregates.len() != events.len() {
                return Err(CmError::Invalid(
                    "snapshot uncertainty does not match its event list; re-ingest the benchmark",
                ));
            }
            Some(aggregates)
        }
        _ => None,
    };

    let cleaned_program = cleaned_ns(benchmark, fp);
    let ipc_program = ipc_ns(benchmark, fp);
    let mut runs = Vec::with_capacity(n_runs);
    for i in 0..n_runs {
        let record = store.read_run(&RunId::new(
            cleaned_program.clone(),
            i as u32,
            SNAPSHOT_MODE,
        ))?;
        let ipc = store.read_series_ts(&SeriesKey::new(
            ipc_program.clone(),
            i as u32,
            SNAPSHOT_MODE,
            EventId::new(0),
        ))?;
        runs.push(SimRun {
            record,
            ipc,
            true_counts: BTreeMap::new(),
        });
    }
    Ok(Some(Snapshot {
        runs,
        events,
        outliers_replaced,
        missing_filled,
        uncertainty,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::TimeSeries as Ts;

    fn sim_run(program: &str, idx: u32, values: &[f64]) -> SimRun {
        let mut record = RunRecord::new(program, idx, SNAPSHOT_MODE);
        record.set_exec_time_secs(1.5);
        record.insert_series(EventId::new(3), Ts::from_values(values.to_vec()));
        record.insert_series(EventId::new(7), Ts::from_values(vec![0.5; values.len()]));
        SimRun {
            record,
            ipc: Ts::from_values(vec![1.25; values.len()]),
            true_counts: BTreeMap::new(),
        }
    }

    fn temp_store(tag: &str) -> Store {
        let dir = std::env::temp_dir().join(format!("cm_snapshot_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        Store::open(dir.join("snap.cmstore")).unwrap()
    }

    #[test]
    fn fingerprint_tracks_collection_knobs_only() {
        let base = MinerConfig::default();
        let events = [EventId::new(3), EventId::new(7)];
        let fp = fingerprint(Benchmark::Wordcount, &base, &events);
        assert_eq!(fp, fingerprint(Benchmark::Wordcount, &base, &events));
        assert_ne!(fp, fingerprint(Benchmark::Sort, &base, &events));
        let mut reseeded = base;
        reseeded.seed = 99;
        assert_ne!(fp, fingerprint(Benchmark::Wordcount, &reseeded, &events));
        // Model-side settings must not invalidate collected data.
        let mut retuned = base;
        retuned.interaction_top_k = 3;
        retuned.aggregation_window = 4;
        assert_eq!(fp, fingerprint(Benchmark::Wordcount, &retuned, &events));
    }

    /// Regression: the fingerprint used to hash only the *count* of
    /// measured events, so two configurations measuring different
    /// event sets of the same size collided — one would silently resume
    /// from the other's data. It must hash the set, order-invariantly.
    #[test]
    fn fingerprint_covers_the_event_set_order_invariantly() {
        let config = MinerConfig::default();
        let a = [EventId::new(1), EventId::new(2), EventId::new(3)];
        let permuted = [EventId::new(3), EventId::new(1), EventId::new(2)];
        let different = [EventId::new(1), EventId::new(2), EventId::new(4)];
        let fp = fingerprint(Benchmark::Wordcount, &config, &a);
        // Same set, permuted order: identical data, identical fingerprint.
        assert_eq!(fp, fingerprint(Benchmark::Wordcount, &config, &permuted));
        // Different set of the same size: must never collide.
        assert_ne!(fp, fingerprint(Benchmark::Wordcount, &config, &different));
    }

    /// Regression: the fingerprint did not hash the cleaner *kind*, so a
    /// store ingested with the point cleaner warm-started a bayes
    /// analysis (and vice versa) — a stale bit-identical hit with the
    /// uncertainty silently missing.
    #[test]
    fn fingerprint_covers_cleaner_kind() {
        let events = [EventId::new(3), EventId::new(7)];
        let point = MinerConfig {
            cleaner_kind: CleanerKind::Point,
            ..MinerConfig::default()
        };
        let bayes = MinerConfig {
            cleaner_kind: CleanerKind::Bayes,
            ..MinerConfig::default()
        };
        assert_ne!(
            fingerprint(Benchmark::Wordcount, &point, &events),
            fingerprint(Benchmark::Wordcount, &bayes, &events),
        );
    }

    #[test]
    fn bayes_uncertainty_roundtrips_bit_exactly() {
        let mut store = temp_store("uncertainty");
        let fp = 0xBA1E5;
        let raw = vec![sim_run("wordcount", 0, &[1.0, 2.0])];
        let aggregates = vec![
            VarianceAggregate {
                sum_variance: 1.0 / 3.0,
                reconstructed: 2,
                sum_squares: 5.0,
                samples: 2,
            },
            VarianceAggregate::default(),
        ];
        let snap = Snapshot {
            runs: vec![sim_run("wordcount", 0, &[1.0, 2.0])],
            events: vec![EventId::new(3), EventId::new(7)],
            outliers_replaced: 1,
            missing_filled: 1,
            uncertainty: Some(aggregates.clone()),
        };
        save(&mut store, Benchmark::Wordcount, fp, &raw, &snap).unwrap();
        store.commit().unwrap();
        let loaded = load(&store, Benchmark::Wordcount, fp).unwrap().unwrap();
        let loaded_aggregates = loaded
            .uncertainty
            .expect("bayes snapshot keeps uncertainty");
        assert_eq!(loaded_aggregates.len(), aggregates.len());
        for (a, b) in loaded_aggregates.iter().zip(&aggregates) {
            assert_eq!(a.sum_variance.to_bits(), b.sum_variance.to_bits());
            assert_eq!(a.sum_squares.to_bits(), b.sum_squares.to_bits());
            assert_eq!(a.reconstructed, b.reconstructed);
            assert_eq!(a.samples, b.samples);
        }
    }

    #[test]
    fn save_load_roundtrip_is_exact() {
        let mut store = temp_store("roundtrip");
        let fp = 0xDEAD_BEEF;
        let raw = vec![sim_run("wordcount", 0, &[900.0, 905.5, 890.0])];
        let snap = Snapshot {
            runs: vec![sim_run("wordcount", 0, &[900.0, 901.0, 899.0])],
            events: vec![EventId::new(3), EventId::new(7)],
            outliers_replaced: 2,
            missing_filled: 1,
            uncertainty: None,
        };
        save(&mut store, Benchmark::Wordcount, fp, &raw, &snap).unwrap();
        store.commit().unwrap();

        let loaded = load(&store, Benchmark::Wordcount, fp).unwrap().unwrap();
        assert_eq!(loaded.events, snap.events);
        assert_eq!(loaded.outliers_replaced, 2);
        assert_eq!(loaded.missing_filled, 1);
        assert_eq!(loaded.runs.len(), 1);
        assert_eq!(
            loaded.runs[0]
                .record
                .series(EventId::new(3))
                .unwrap()
                .values(),
            &[900.0, 901.0, 899.0]
        );
        assert_eq!(loaded.runs[0].ipc.values(), &[1.25; 3]);
        assert_eq!(loaded.runs[0].record.exec_time_secs(), 1.5);
        // A different fingerprint is a miss, not an error.
        assert!(load(&store, Benchmark::Wordcount, fp + 1)
            .unwrap()
            .is_none());
        assert!(load(&store, Benchmark::Sort, fp).unwrap().is_none());
    }

    #[test]
    fn snapshots_for_two_configs_coexist() {
        let mut store = temp_store("coexist");
        for fp in [1u64, 2u64] {
            let raw = vec![sim_run("wordcount", 0, &[1.0, 2.0])];
            let snap = Snapshot {
                runs: vec![sim_run("wordcount", 0, &[1.0, 2.0])],
                events: vec![EventId::new(3), EventId::new(7)],
                outliers_replaced: 0,
                missing_filled: 0,
                uncertainty: None,
            };
            save(&mut store, Benchmark::Wordcount, fp, &raw, &snap).unwrap();
        }
        store.commit().unwrap();
        // The metadata points at the latest fingerprint; the older
        // snapshot's series are still on disk under their namespace.
        assert!(load(&store, Benchmark::Wordcount, 2).unwrap().is_some());
        assert!(load(&store, Benchmark::Wordcount, 1).unwrap().is_none());
        assert!(store
            .programs()
            .iter()
            .any(|p| p == "wordcount@0000000000000001#cleaned"));
    }
}
