use cm_ml::MlError;
use cm_stats::StatsError;
use cm_store::StoreError;
use std::error::Error;
use std::fmt;

/// Errors produced by the CounterMiner pipeline.
#[derive(Debug)]
#[non_exhaustive]
pub enum CmError {
    /// A statistical routine failed.
    Stats(StatsError),
    /// Model training or dataset handling failed.
    Ml(MlError),
    /// The performance-data store failed.
    Store(StoreError),
    /// A pipeline precondition was violated.
    Invalid(&'static str),
}

impl fmt::Display for CmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CmError::Stats(e) => write!(f, "statistics failure: {e}"),
            CmError::Ml(e) => write!(f, "model failure: {e}"),
            CmError::Store(e) => write!(f, "store failure: {e}"),
            CmError::Invalid(what) => write!(f, "invalid pipeline input: {what}"),
        }
    }
}

impl Error for CmError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CmError::Stats(e) => Some(e),
            CmError::Ml(e) => Some(e),
            CmError::Store(e) => Some(e),
            CmError::Invalid(_) => None,
        }
    }
}

#[doc(hidden)]
impl From<StatsError> for CmError {
    fn from(e: StatsError) -> Self {
        CmError::Stats(e)
    }
}

#[doc(hidden)]
impl From<MlError> for CmError {
    fn from(e: MlError) -> Self {
        CmError::Ml(e)
    }
}

#[doc(hidden)]
impl From<StoreError> for CmError {
    fn from(e: StoreError) -> Self {
        CmError::Store(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_and_sources() {
        let e: CmError = StatsError::EmptyInput.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("statistics"));

        let e: CmError = MlError::EmptyDataset.into();
        assert!(matches!(e, CmError::Ml(_)));

        let e = CmError::Invalid("need at least two OCOE runs");
        assert!(e.source().is_none());
        assert!(e.to_string().contains("two OCOE runs"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<CmError>();
    }
}
