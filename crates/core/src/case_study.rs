//! The Spark-tuning case study (Section V-D): parameter tuning guided by
//! event importance, and the profiling-cost accounting of Fig. 15.
//!
//! Two ways to find a program's important configuration parameters:
//!
//! * **Method B** (direct): rank parameters with the importance ranker.
//!   One training example needs one complete run (execution time is
//!   known only after the run finishes), so `k` examples cost `k` runs —
//!   the paper needs 6000 runs of pagerank for a 90 %-accurate model.
//! * **Method A** (via events): model `IPC = f(events)`. Every sampling
//!   interval of a run is a training example, so a run yields hundreds
//!   of examples; the model costs ~60 runs. Finding which parameter
//!   couples to which important event costs a bounded sweep (1520 runs
//!   in the paper). Total ≈ 1580 runs — about 4× cheaper.

use crate::{CmError, InteractionRanker};
use cm_sim::{SparkConfig, SparkParam, SparkStudy};

/// Cost model for the method A vs. method B comparison.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfilingCostModel {
    /// Training examples per run available to method A (sampling
    /// intervals actually used for training).
    pub samples_per_run: usize,
    /// Number of tunable parameters examined for coupling.
    pub n_params: usize,
    /// Settings swept per parameter in the coupling search.
    pub sweep_points: usize,
    /// Repeated runs per (parameter, setting) to average noise.
    pub repeats: usize,
}

impl Default for ProfilingCostModel {
    /// Defaults calibrated to the paper's pagerank accounting:
    /// 6000 examples for 90 % accuracy, 100 usable samples per run,
    /// 13 parameters × 5 settings × 23 repeats ≈ 1500 coupling runs.
    fn default() -> Self {
        ProfilingCostModel {
            samples_per_run: 100,
            n_params: 13,
            sweep_points: 5,
            repeats: 23,
        }
    }
}

impl ProfilingCostModel {
    /// Training examples needed for a target model accuracy, following
    /// an inverse-square learning curve calibrated so that 90 % accuracy
    /// needs 6000 examples (the paper's measurement for pagerank).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < accuracy < 1`.
    pub fn examples_needed(&self, accuracy: f64) -> usize {
        assert!(
            accuracy > 0.0 && accuracy < 1.0,
            "accuracy must be a fraction in (0, 1)"
        );
        let c = 6000.0 * (1.0 - 0.9) * (1.0 - 0.9);
        (c / ((1.0 - accuracy) * (1.0 - accuracy))).round() as usize
    }

    /// Method B cost: one run per example.
    pub fn method_b_runs(&self, accuracy: f64) -> usize {
        self.examples_needed(accuracy)
    }

    /// Method A's model-building cost: examples amortized over the
    /// samples each run yields.
    pub fn method_a_model_runs(&self, accuracy: f64) -> usize {
        self.examples_needed(accuracy)
            .div_ceil(self.samples_per_run)
    }

    /// Method A's coupling-search cost (parameter × setting × repeat
    /// sweep).
    pub fn coupling_runs(&self) -> usize {
        self.n_params * self.sweep_points * self.repeats
    }

    /// Method A total cost.
    pub fn method_a_runs(&self, accuracy: f64) -> usize {
        self.method_a_model_runs(accuracy) + self.coupling_runs()
    }

    /// How many times cheaper method A is.
    pub fn speedup(&self, accuracy: f64) -> f64 {
        self.method_b_runs(accuracy) as f64 / self.method_a_runs(accuracy) as f64
    }
}

/// Result of sweeping one parameter (one panel of Fig. 14).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepResult {
    /// The swept parameter.
    pub param: SparkParam,
    /// `(setting label, mean execution time in seconds)` per sweep point.
    pub points: Vec<(&'static str, f64)>,
}

impl SweepResult {
    /// Execution-time variation across the sweep,
    /// `(max - min) / min × 100 %` — the paper reports 111.3 % for bbs
    /// vs. 29.4 % for nwt on sort.
    pub fn variation_percent(&self) -> f64 {
        let min = self
            .points
            .iter()
            .map(|&(_, t)| t)
            .fold(f64::INFINITY, f64::min);
        let max = self.points.iter().map(|&(_, t)| t).fold(0.0, f64::max);
        (max - min) / min * 100.0
    }
}

/// Sweeps one Spark parameter over its settings, averaging `repeats`
/// runs per point.
///
/// # Errors
///
/// Returns [`CmError::Invalid`] when `repeats` is zero.
pub fn sweep_parameter(
    study: &SparkStudy,
    param: SparkParam,
    repeats: usize,
    seed: u64,
) -> Result<SweepResult, CmError> {
    if repeats == 0 {
        return Err(CmError::Invalid("sweep needs at least one repeat"));
    }
    let labels = param.sweep_labels();
    let mut points = Vec::with_capacity(labels.len());
    for (label, &setting) in labels.iter().zip(param.sweep_settings().iter()) {
        let config = SparkConfig::new().with(param, setting);
        let mean: f64 = (0..repeats)
            .map(|r| study.exec_time(&config, r as u32, seed))
            .sum::<f64>()
            / repeats as f64;
        points.push((*label, mean));
    }
    Ok(SweepResult { param, points })
}

/// Interaction intensity between every (parameter, coupled-event
/// activity) pair and execution time, normalized to shares (the Fig. 13
/// ranking). Each parameter is swept over `configs` random-ish settings;
/// intensities come from [`InteractionRanker::observed_intensity`].
///
/// Returns `(param, event abbreviation, share %)` sorted descending.
///
/// # Errors
///
/// Propagates regression failures.
pub fn rank_param_event_interactions(
    study: &SparkStudy,
    catalog: &cm_events::EventCatalog,
    repeats_per_setting: usize,
    seed: u64,
) -> Result<Vec<(SparkParam, &'static str, f64)>, CmError> {
    use rand::{rngs::StdRng, Rng, SeedableRng};
    let ranker = InteractionRanker::new();
    let mut raw = Vec::new();
    for (pi, &param) in cm_sim::ALL_PARAMS.iter().enumerate() {
        // Observations: vary the parameter, record the coupled event's
        // *realized* activity (its configured scale plus run-to-run
        // stochastic variation) and the run time. Time responds
        // multiplicatively to activity, so (setting × activity) carries
        // a genuine product term that a linear model cannot absorb —
        // large exactly when the parameter moves an important event.
        let mut rng = StdRng::seed_from_u64(seed ^ ((pi as u64 + 1) << 40));
        let mut xs_param = Vec::new();
        let mut xs_event = Vec::new();
        let mut times = Vec::new();
        let event_id = study.coupled_event_id(param);
        for &setting in param.sweep_settings().iter() {
            let config = SparkConfig::new().with(param, setting);
            let configured = study
                .event_scale_factors(&config)
                .iter()
                .find(|(id, _)| *id == event_id)
                .map(|&(_, f)| f)
                .unwrap_or(1.0);
            for r in 0..repeats_per_setting {
                let realized = configured * (1.0 + 0.15 * rng.gen_range(-1.0..1.0));
                let base_time = study.exec_time(&config, r as u32, seed);
                xs_param.push(setting);
                xs_event.push(realized);
                times.push(base_time * (1.0 + 0.35 * (realized - 1.0)));
            }
        }
        let v = ranker.observed_intensity(&xs_param, &xs_event, &times)?;
        let abbrev = catalog.info(study.coupled_event_id(param)).abbrev();
        // Tie the label to the catalog's static lifetime via the
        // parameter's own coupled-event constant.
        let abbrev_static = param.coupled_event();
        debug_assert_eq!(abbrev, abbrev_static);
        raw.push((param, abbrev_static, v));
    }
    let total: f64 = raw.iter().map(|&(_, _, v)| v).sum();
    let mut shares: Vec<(SparkParam, &'static str, f64)> = raw
        .into_iter()
        .map(|(p, a, v)| (p, a, if total > 0.0 { v / total * 100.0 } else { 0.0 }))
        .collect();
    shares.sort_by(|a, b| b.2.total_cmp(&a.2));
    Ok(shares)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::EventCatalog;
    use cm_sim::Benchmark;

    #[test]
    fn cost_model_matches_paper_accounting() {
        let model = ProfilingCostModel::default();
        assert_eq!(model.method_b_runs(0.9), 6000);
        assert_eq!(model.method_a_model_runs(0.9), 60);
        let total_a = model.method_a_runs(0.9);
        // ~1580 in the paper; our parameterization lands nearby.
        assert!((1400..=1700).contains(&total_a), "method A total {total_a}");
        let speedup = model.speedup(0.9);
        assert!(speedup > 3.0 && speedup < 5.0, "speedup {speedup}");
    }

    #[test]
    fn examples_needed_grows_with_accuracy() {
        let model = ProfilingCostModel::default();
        assert!(model.examples_needed(0.95) > model.examples_needed(0.9));
        assert!(model.examples_needed(0.5) < model.examples_needed(0.9));
    }

    #[test]
    #[should_panic(expected = "accuracy")]
    fn examples_needed_rejects_bad_accuracy() {
        ProfilingCostModel::default().examples_needed(1.0);
    }

    #[test]
    fn sweeping_important_param_shows_large_variation() {
        let catalog = EventCatalog::haswell();
        let study = SparkStudy::new(Benchmark::Sort, &catalog);
        let bbs = sweep_parameter(&study, SparkParam::BroadcastBlockSize, 3, 1).unwrap();
        let nwt = sweep_parameter(&study, SparkParam::NetworkTimeout, 3, 1).unwrap();
        assert_eq!(bbs.points.len(), 5);
        assert_eq!(bbs.points[0].0, "2M");
        assert!(bbs.variation_percent() > 2.0 * nwt.variation_percent());
    }

    #[test]
    fn sweep_rejects_zero_repeats() {
        let catalog = EventCatalog::haswell();
        let study = SparkStudy::new(Benchmark::Sort, &catalog);
        assert!(sweep_parameter(&study, SparkParam::NetworkTimeout, 0, 1).is_err());
    }

    #[test]
    fn param_event_ranking_puts_coupled_important_pair_first() {
        let catalog = EventCatalog::haswell();
        let study = SparkStudy::new(Benchmark::Sort, &catalog);
        let ranked = rank_param_event_interactions(&study, &catalog, 4, 2).unwrap();
        assert_eq!(ranked.len(), cm_sim::ALL_PARAMS.len());
        // Shares sum to 100.
        let total: f64 = ranked.iter().map(|r| r.2).sum();
        assert!((total - 100.0).abs() < 1e-6);
        // For sort, bbs couples to the top event ORO: it must rank high.
        let bbs_rank = ranked
            .iter()
            .position(|r| r.0 == SparkParam::BroadcastBlockSize)
            .unwrap();
        assert!(bbs_rank < 3, "bbs ranked {bbs_rank} in {ranked:?}");
    }
}
