//! Cross-benchmark counter-signature clustering and anomalous-run
//! detection — the `cluster` analysis mode.
//!
//! The paper's motivating claim is that *cleaned* hardware-counter data
//! is meaningful enough to mine; this mode demonstrates it across
//! benchmarks. Every run in the store contributes one **signature**
//! built from its cleaned series (per common event: log mean count and
//! coefficient of variation, plus run length and mean IPC), the
//! signatures are normalized robustly and clustered with seeded
//! k-medoids ([`cm_stats::cluster`]), and each run's distance to its
//! medoid is compared against a per-cluster calibrated threshold —
//! runs beyond it are flagged anomalous.
//!
//! Signatures are built from the cleaned series a snapshot persisted,
//! so the mode works identically for `point` and `bayes` ingests (the
//! bayes cleaner reconstructs the same values and only adds variance).
//! Everything downstream of ingest is deterministic at any thread
//! count.
//!
//! Counters emitted under the `cluster.*` namespace: `cluster.analyses`,
//! `cluster.runs`, `cluster.injected`, `cluster.anomalies` — all counts,
//! bit-identical at any `CM_THREADS`.

use crate::{snapshot, CmError, CounterMiner, DataCleaner};
use cm_events::{EventId, RunRecord};
use cm_sim::{Benchmark, SimRun, Workload};
use cm_stats::cluster::{k_medoids, pairwise_distances, SignatureDistance};
use cm_stats::descriptive;
use cm_store::Store;
use std::collections::BTreeMap;
use std::fmt;

/// Run indices of injected anomalous runs start here, far above any
/// collected run index, so reports can never confuse the two.
const INJECT_BASE: u32 = 1_000_000;

/// Weight applied to the normalized coefficient-of-variation signature
/// dimensions. CV is estimated from a single run's intervals and is far
/// noisier than the mean counts that carry the workload-family signal.
const CV_WEIGHT: f64 = 0.25;

/// Configuration of the `cluster` analysis mode.
///
/// # Examples
///
/// ```
/// use counterminer::ClusterConfig;
///
/// let cfg = ClusterConfig::default();
/// assert_eq!(cfg.k, 4);
/// assert_eq!(cfg.inject_anomalies, 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClusterConfig {
    /// Number of clusters. Defaults to 4 — the simulator's ground-truth
    /// workload family count ([`cm_sim::FAMILIES`]).
    pub k: usize,
    /// Anomaly threshold in robust sigmas: a run is flagged when its
    /// distance to its medoid exceeds
    /// `median + threshold_sigmas * 1.4826 * MAD` of its cluster's
    /// corpus distances. Robust statistics (and corpus-only
    /// calibration) keep anomalies from inflating the threshold that
    /// is supposed to catch them.
    pub threshold_sigmas: f64,
    /// Anomalous runs to inject per benchmark (via
    /// [`Workload::anomalous_run`]), measured and cleaned like real
    /// runs but never persisted. 0 in production; tests and demos use
    /// it to verify detection.
    pub inject_anomalies: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            k: cm_sim::FAMILIES.len(),
            threshold_sigmas: 3.0,
            inject_anomalies: 0,
        }
    }
}

/// One clustered run in a [`ClusterReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct ClusteredRun {
    /// The benchmark the run belongs to.
    pub benchmark: Benchmark,
    /// The run's index (collected runs count from 0; injected
    /// anomalous runs from 1 000 000).
    pub run_index: u32,
    /// Whether this run was injected by
    /// [`ClusterConfig::inject_anomalies`].
    pub injected: bool,
    /// Assigned cluster id in `0..k`.
    pub cluster: usize,
    /// Distance to the cluster's medoid in normalized signature space.
    pub medoid_distance: f64,
    /// The run's silhouette score (0 for injected probes, which are
    /// scored against the fitted clustering but are not part of it).
    pub silhouette: f64,
    /// Whether the run's medoid distance exceeds its cluster's
    /// calibrated threshold.
    pub anomalous: bool,
}

/// The outcome of the `cluster` analysis mode.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterReport {
    /// Number of clusters.
    pub k: usize,
    /// Every clustered run, benchmarks in input order, runs in index
    /// order, injected runs after collected ones per benchmark.
    pub runs: Vec<ClusteredRun>,
    /// Index into `runs` of each cluster's medoid.
    pub medoids: Vec<usize>,
    /// Per-cluster anomaly thresholds (same distance space as
    /// [`ClusteredRun::medoid_distance`]).
    pub thresholds: Vec<f64>,
    /// Mean silhouette of the clustering — quality in one number.
    pub mean_silhouette: f64,
}

impl ClusterReport {
    /// Number of runs flagged anomalous.
    pub fn anomaly_count(&self) -> usize {
        self.runs.iter().filter(|r| r.anomalous).count()
    }

    /// The benchmarks assigned to cluster `c`, deduplicated, in input
    /// order.
    pub fn cluster_benchmarks(&self, c: usize) -> Vec<Benchmark> {
        let mut out = Vec::new();
        for run in self.runs.iter().filter(|r| r.cluster == c) {
            if !out.contains(&run.benchmark) {
                out.push(run.benchmark);
            }
        }
        out
    }
}

impl fmt::Display for ClusterReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "Counter-signature clustering — {} runs, k = {}, mean silhouette {:.3}",
            self.runs.len(),
            self.k,
            self.mean_silhouette
        )?;
        for c in 0..self.k {
            let medoid = &self.runs[self.medoids[c]];
            writeln!(
                f,
                "cluster {c} (medoid {} run {}, threshold {:.3}):",
                medoid.benchmark, medoid.run_index, self.thresholds[c]
            )?;
            for b in self.cluster_benchmarks(c) {
                let members: Vec<&ClusteredRun> = self
                    .runs
                    .iter()
                    .filter(|r| r.cluster == c && r.benchmark == b)
                    .collect();
                let max_d = members
                    .iter()
                    .map(|r| r.medoid_distance)
                    .fold(0.0, f64::max);
                writeln!(
                    f,
                    "  {:<20} {:>2} runs, max distance {max_d:.3}",
                    b.to_string(),
                    members.len()
                )?;
            }
        }
        let anomalies: Vec<&ClusteredRun> = self.runs.iter().filter(|r| r.anomalous).collect();
        if anomalies.is_empty() {
            writeln!(f, "no anomalous runs")?;
        } else {
            writeln!(f, "anomalous runs ({}):", anomalies.len())?;
            for r in anomalies {
                writeln!(
                    f,
                    "  {} run {}{}: distance {:.3} > threshold {:.3}",
                    r.benchmark,
                    r.run_index,
                    if r.injected { " (injected)" } else { "" },
                    r.medoid_distance,
                    self.thresholds[r.cluster],
                )?;
            }
        }
        Ok(())
    }
}

impl CounterMiner {
    /// Runs the `cluster` analysis mode over `benchmarks`: ingests any
    /// benchmark not yet snapshotted in `store` (warm snapshots are
    /// reused bit-identically), then clusters all cleaned runs and
    /// flags anomalies. See the [module docs](self) for the method.
    ///
    /// # Errors
    ///
    /// Propagates ingest and store failures, plus
    /// [`CmError::Invalid`] for an empty benchmark list or `k` larger
    /// than the run count.
    pub fn analyze_cluster(
        &self,
        benchmarks: &[Benchmark],
        store: &mut Store,
        cfg: &ClusterConfig,
    ) -> Result<ClusterReport, CmError> {
        for &b in benchmarks {
            self.ingest(b, store)?;
        }
        self.cluster_snapshot(benchmarks, store, cfg)?
            .ok_or(CmError::Invalid(
                "snapshot vanished immediately after ingest",
            ))
    }

    /// The warm, shared-read half of [`CounterMiner::analyze_cluster`]:
    /// clusters from committed snapshots only, through `&Store`, so the
    /// serving layer can satisfy cluster requests concurrently. Returns
    /// `Ok(None)` when any benchmark has no matching snapshot — the
    /// caller then ingests (one write lock) and retries.
    ///
    /// # Errors
    ///
    /// As [`CounterMiner::analyze_cluster`]; a fingerprint-matching but
    /// corrupt snapshot is an error, never `None`.
    pub fn cluster_snapshot(
        &self,
        benchmarks: &[Benchmark],
        store: &Store,
        cfg: &ClusterConfig,
    ) -> Result<Option<ClusterReport>, CmError> {
        let _span = cm_obs::span!("cluster");
        if benchmarks.is_empty() {
            return Err(CmError::Invalid("cluster needs at least one benchmark"));
        }

        // Load every benchmark's cleaned snapshot (warm reads only).
        let mut snaps = Vec::with_capacity(benchmarks.len());
        {
            let _s = cm_obs::span!("load");
            for &b in benchmarks {
                let fp = self.snapshot_fingerprint(b);
                match snapshot::load(store, b, fp)? {
                    Some(snap) => snaps.push(snap),
                    None => return Ok(None),
                }
            }
        }
        cm_obs::counter_add("cluster.analyses", 1);

        // Inject anomalous runs (measured and cleaned, never persisted).
        let injected = {
            let _s = cm_obs::span!("inject");
            self.inject_anomalies(benchmarks, cfg.inject_anomalies)?
        };

        // The corpus: every persisted run, benchmarks in input order.
        // Injected probes are scored against the fitted clustering but
        // never shape it — medoids, normalization, and thresholds all
        // come from the store's corpus, so a batch of anomalies cannot
        // hijack the medoids it is measured against.
        let mut corpus: Vec<(Benchmark, &SimRun)> = Vec::new();
        for (&b, snap) in benchmarks.iter().zip(&snaps) {
            for run in &snap.runs {
                corpus.push((b, run));
            }
        }
        let probes: Vec<(Benchmark, &SimRun)> = benchmarks
            .iter()
            .zip(&injected)
            .flat_map(|(&b, extra)| extra.iter().map(move |run| (b, run)))
            .collect();
        cm_obs::counter_add("cluster.runs", (corpus.len() + probes.len()) as u64);
        cm_obs::counter_add("cluster.injected", probes.len() as u64);

        // Signatures over the events every benchmark measured,
        // normalized by corpus statistics.
        let events = common_events(snaps.iter().map(|s| s.events.as_slice()));
        if events.is_empty() {
            return Err(CmError::Invalid(
                "benchmarks share no measured events to build signatures from",
            ));
        }
        let (mut signatures, mut probe_signatures) = {
            let _s = cm_obs::span!("signatures");
            let raw = cm_par::map(&corpus, |&(_, run)| run_signature(run, &events));
            let raw_probes = cm_par::map(&probes, |&(_, run)| run_signature(run, &events));
            normalize_signatures(raw, raw_probes)?
        };
        // Down-weight the per-run coefficient-of-variation dimensions:
        // a CV estimated from one run's few intervals is noisy, while
        // the family signal lives in the mean counts. Full weight on
        // both lets run-to-run CV jitter pull single runs across family
        // boundaries.
        for sig in signatures.iter_mut().chain(probe_signatures.iter_mut()) {
            for e in 0..events.len() {
                sig[2 * e + 1] *= CV_WEIGHT;
            }
        }

        // Fit medoids on the corpus and calibrate per-cluster anomaly
        // thresholds from the corpus distances.
        let _s = cm_obs::span!("medoids");
        let distances = pairwise_distances(&signatures, SignatureDistance::Euclidean)
            .map_err(CmError::Stats)?;
        let clustering =
            k_medoids(&distances, cfg.k, self.config().seed).map_err(CmError::Stats)?;
        let medoid_distances = clustering.medoid_distances(&distances);
        let thresholds = anomaly_thresholds(&clustering.assignments, &medoid_distances, cfg)?;

        let mut runs: Vec<ClusteredRun> = corpus
            .iter()
            .enumerate()
            .map(|(i, &(benchmark, run))| ClusteredRun {
                benchmark,
                run_index: run.record.run_index(),
                injected: false,
                cluster: clustering.assignments[i],
                medoid_distance: medoid_distances[i],
                silhouette: clustering.silhouettes[i],
                anomalous: medoid_distances[i] > thresholds[clustering.assignments[i]],
            })
            .collect();
        // Score the probes: nearest fitted medoid, same distance space.
        for (&(benchmark, run), sig) in probes.iter().zip(&probe_signatures) {
            let (cluster, medoid_distance) = clustering
                .medoids
                .iter()
                .enumerate()
                .map(|(c, &m)| (c, euclidean(sig, &signatures[m])))
                .min_by(|a, b| a.1.total_cmp(&b.1))
                .expect("at least one medoid");
            runs.push(ClusteredRun {
                benchmark,
                run_index: run.record.run_index(),
                injected: true,
                cluster,
                medoid_distance,
                silhouette: 0.0,
                anomalous: medoid_distance > thresholds[cluster],
            });
        }
        cm_obs::counter_add(
            "cluster.anomalies",
            runs.iter().filter(|r| r.anomalous).count() as u64,
        );
        Ok(Some(ClusterReport {
            k: cfg.k,
            runs,
            medoids: clustering.medoids,
            thresholds,
            mean_silhouette: clustering.mean_silhouette,
        }))
    }

    /// Collects and cleans `count` anomalous runs per benchmark, exactly
    /// as the real collection path measures runs, without touching any
    /// store.
    fn inject_anomalies(
        &self,
        benchmarks: &[Benchmark],
        count: usize,
    ) -> Result<Vec<Vec<SimRun>>, CmError> {
        let cleaner = DataCleaner::new(self.config().cleaner);
        benchmarks
            .iter()
            .map(|&b| {
                let workload = Workload::new(b, self.catalog());
                let events = self.resolve_events(b);
                (0..count)
                    .map(|i| {
                        let idx = INJECT_BASE + i as u32;
                        let truth = workload.anomalous_run(idx, self.config().seed);
                        let run = self.config().pmu.measure_mlpx(
                            &workload,
                            &truth,
                            &events,
                            idx,
                            self.config().seed,
                        );
                        let mut record = RunRecord::new(
                            run.record.program(),
                            run.record.run_index(),
                            run.record.mode(),
                        );
                        record.set_exec_time_secs(run.record.exec_time_secs());
                        for (event, series) in run.record.iter() {
                            let (clean, _) = cleaner.clean_series(series)?;
                            record.insert_series(event, clean);
                        }
                        Ok(SimRun {
                            record,
                            ipc: run.ipc.clone(),
                            true_counts: BTreeMap::new(),
                        })
                    })
                    .collect()
            })
            .collect()
    }
}

/// The events present in every snapshot, in event-id order.
fn common_events<'a>(mut event_lists: impl Iterator<Item = &'a [EventId]>) -> Vec<EventId> {
    let Some(first) = event_lists.next() else {
        return Vec::new();
    };
    let mut common: Vec<EventId> = first.to_vec();
    for list in event_lists {
        common.retain(|e| list.contains(e));
    }
    common.sort_by_key(|e| e.index());
    common
}

/// One run's raw signature: per common event `[ln(1 + mean count),
/// coefficient of variation]`, then `[ln(intervals), mean IPC]`.
fn run_signature(run: &SimRun, events: &[EventId]) -> Vec<f64> {
    let mut sig = Vec::with_capacity(2 * events.len() + 2);
    for &event in events {
        let values = run
            .record
            .series(event)
            .map(cm_events::TimeSeries::values)
            .unwrap_or(&[]);
        let n = values.len().max(1) as f64;
        let mean = values.iter().sum::<f64>() / n;
        let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / n;
        sig.push((1.0 + mean.max(0.0)).ln());
        sig.push(if mean.abs() > 1e-12 {
            var.sqrt() / mean
        } else {
            0.0
        });
    }
    sig.push((run.ipc.len().max(1) as f64).ln());
    sig.push(run.ipc.iter().sum::<f64>() / run.ipc.len().max(1) as f64);
    sig
}

/// Euclidean distance between two equal-length signature vectors.
fn euclidean(a: &[f64], b: &[f64]) -> f64 {
    a.iter()
        .zip(b)
        .map(|(&x, &y)| (x - y) * (x - y))
        .sum::<f64>()
        .sqrt()
}

/// Normalizes each signature dimension robustly: centre on the corpus
/// median, scale by the corpus IQR (falling back to the standard
/// deviation for near-constant dimensions; dimensions constant across
/// the corpus drop to zero). `probes` are transformed with the *same*
/// corpus statistics — injected anomalies must not skew the scale that
/// is supposed to expose them.
fn normalize_signatures(
    mut corpus: Vec<Vec<f64>>,
    mut probes: Vec<Vec<f64>>,
) -> Result<(Vec<Vec<f64>>, Vec<Vec<f64>>), CmError> {
    let dims = corpus.first().map_or(0, Vec::len);
    for d in 0..dims {
        let column: Vec<f64> = corpus.iter().map(|s| s[d]).collect();
        let centre = descriptive::median(&column).map_err(CmError::Stats)?;
        let iqr = descriptive::quantile(&column, 0.75).map_err(CmError::Stats)?
            - descriptive::quantile(&column, 0.25).map_err(CmError::Stats)?;
        let scale = if iqr > 1e-12 {
            iqr
        } else {
            descriptive::std_dev(&column).unwrap_or(0.0)
        };
        for s in corpus.iter_mut().chain(probes.iter_mut()) {
            s[d] = if scale > 1e-12 {
                (s[d] - centre) / scale
            } else {
                0.0
            };
        }
    }
    Ok((corpus, probes))
}

/// Per-cluster anomaly thresholds: `median + sigmas * 1.4826 * MAD` of
/// the members' medoid distances. An empty cluster (possible when
/// Voronoi iteration empties a seed) gets an infinite threshold — it
/// can flag nothing.
fn anomaly_thresholds(
    assignments: &[usize],
    medoid_distances: &[f64],
    cfg: &ClusterConfig,
) -> Result<Vec<f64>, CmError> {
    (0..cfg.k)
        .map(|c| {
            let members: Vec<f64> = assignments
                .iter()
                .zip(medoid_distances)
                .filter(|&(&a, _)| a == c)
                .map(|(_, &d)| d)
                .collect();
            if members.is_empty() {
                return Ok(f64::INFINITY);
            }
            let centre = descriptive::median(&members).map_err(CmError::Stats)?;
            let deviations: Vec<f64> = members.iter().map(|d| (d - centre).abs()).collect();
            let mad = descriptive::median(&deviations).map_err(CmError::Stats)?;
            Ok(centre + cfg.threshold_sigmas * 1.4826 * mad)
        })
        .collect()
}
