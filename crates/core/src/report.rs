//! Text rendering of analysis results — the shared formatting used by
//! the CLI, the examples, and the experiment harness.

use crate::{EirResult, PairInteraction};
use cm_events::EventCatalog;
use std::fmt::Write as _;

/// Renders the top `k` of an importance ranking, one event per line:
/// abbreviation, full name, importance percent.
pub fn render_importance(catalog: &EventCatalog, eir: &EirResult, k: usize) -> String {
    let mut out = String::new();
    for (event, importance) in eir.top(k) {
        let info = catalog.info(*event);
        let _ = writeln!(
            out,
            "  {:<4} {:<48} {importance:5.1}%",
            info.abbrev(),
            info.name()
        );
    }
    out
}

/// Renders the top `k` interaction pairs, one per line:
/// `AAA-BBB  share%`.
pub fn render_interactions(
    catalog: &EventCatalog,
    interactions: &[PairInteraction],
    k: usize,
) -> String {
    let mut out = String::new();
    for pair in interactions.iter().take(k) {
        let _ = writeln!(
            out,
            "  {}-{}  {:5.1}%",
            catalog.info(pair.pair.0).abbrev(),
            catalog.info(pair.pair.1).abbrev(),
            pair.share
        );
    }
    out
}

/// Renders the EIR error curve, one `events -> error%` line per
/// iteration, marking the MAPM.
pub fn render_eir_curve(eir: &EirResult) -> String {
    let mut out = String::new();
    for (i, it) in eir.iterations.iter().enumerate() {
        let marker = if i == eir.best_iteration {
            "  <- MAPM"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  {:>3} events -> {:5.1}%{marker}",
            it.n_events,
            it.error * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{CounterMiner, ImportanceConfig, MinerConfig};
    use cm_ml::SgbrtConfig;
    use cm_sim::Benchmark;

    fn report() -> (EventCatalog, crate::AnalysisReport) {
        let mut miner = CounterMiner::new(MinerConfig {
            runs_per_benchmark: 1,
            events_to_measure: Some(16),
            importance: ImportanceConfig {
                sgbrt: SgbrtConfig {
                    n_trees: 30,
                    ..SgbrtConfig::default()
                },
                prune_step: 4,
                min_events: 8,
                ..ImportanceConfig::default()
            },
            interaction_top_k: 4,
            ..MinerConfig::default()
        });
        let report = miner.analyze(Benchmark::Scan).unwrap();
        (EventCatalog::haswell(), report)
    }

    #[test]
    fn importance_rendering_has_one_line_per_event() {
        let (catalog, report) = report();
        let text = render_importance(&catalog, &report.eir, 5);
        assert_eq!(text.lines().count(), 5);
        assert!(text.contains('%'));
        // Asking for more than available truncates gracefully.
        let all = render_importance(&catalog, &report.eir, 1000);
        assert_eq!(all.lines().count(), report.eir.ranking.len());
    }

    #[test]
    fn interaction_rendering_uses_pair_labels() {
        let (catalog, report) = report();
        let text = render_interactions(&catalog, &report.interactions, 3);
        assert_eq!(text.lines().count(), 3);
        for line in text.lines() {
            assert!(line.contains('-'), "no pair label in {line:?}");
        }
    }

    #[test]
    fn eir_curve_marks_the_mapm() {
        let (_, report) = report();
        let text = render_eir_curve(&report.eir);
        assert_eq!(text.lines().count(), report.eir.iterations.len());
        assert_eq!(text.matches("<- MAPM").count(), 1);
    }
}
