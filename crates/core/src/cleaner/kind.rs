//! Cleaner-estimator selection: the classic point cleaner vs. the
//! uncertainty-aware `bayes` estimator.

use crate::CmError;

/// Which estimator the data cleaner runs.
///
/// Both kinds reconstruct **identical values** — `Bayes` is the point
/// cleaner plus a per-value variance on every reconstruction (the
/// BayesPerf direction), which the pipeline propagates into confidence
/// intervals on event importance and the EIR ranking-stability score.
/// Selecting `Bayes` therefore never changes a ranking, only annotates
/// how trustworthy it is.
///
/// # Examples
///
/// ```
/// use counterminer::CleanerKind;
///
/// assert_eq!("bayes".parse::<CleanerKind>().unwrap(), CleanerKind::Bayes);
/// assert_eq!("POINT".parse::<CleanerKind>().unwrap(), CleanerKind::Point);
/// assert!("fuzzy".parse::<CleanerKind>().is_err());
/// assert_eq!(CleanerKind::Bayes.to_string(), "bayes");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CleanerKind {
    /// Point estimates only — the paper's cleaner, byte-for-byte.
    Point,
    /// Point estimates plus a Gaussian variance per reconstructed value,
    /// propagated through EIR to importance confidence intervals and the
    /// ranking-stability score.
    Bayes,
}

impl Default for CleanerKind {
    /// `Point`, unless the `CM_CLEANER` environment variable says
    /// `bayes` — the knob the CI cleaner matrix (and a curious user)
    /// flips without touching code.
    fn default() -> Self {
        static ENV: std::sync::OnceLock<CleanerKind> = std::sync::OnceLock::new();
        *ENV.get_or_init(|| match std::env::var("CM_CLEANER").as_deref() {
            Ok(v) if v.eq_ignore_ascii_case("bayes") => CleanerKind::Bayes,
            _ => CleanerKind::Point,
        })
    }
}

impl std::str::FromStr for CleanerKind {
    type Err = CmError;

    fn from_str(s: &str) -> Result<Self, CmError> {
        if s.eq_ignore_ascii_case("point") {
            Ok(CleanerKind::Point)
        } else if s.eq_ignore_ascii_case("bayes") {
            Ok(CleanerKind::Bayes)
        } else {
            Err(CmError::Invalid("cleaner must be `point` or `bayes`"))
        }
    }
}

impl std::fmt::Display for CleanerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CleanerKind::Point => "point",
            CleanerKind::Bayes => "bayes",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_case_insensitively() {
        for s in ["point", "Point", "POINT"] {
            assert_eq!(s.parse::<CleanerKind>().unwrap(), CleanerKind::Point);
        }
        for s in ["bayes", "Bayes", "BAYES"] {
            assert_eq!(s.parse::<CleanerKind>().unwrap(), CleanerKind::Bayes);
        }
        assert!("gauss".parse::<CleanerKind>().is_err());
        assert!("".parse::<CleanerKind>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for kind in [CleanerKind::Point, CleanerKind::Bayes] {
            assert_eq!(kind.to_string().parse::<CleanerKind>().unwrap(), kind);
        }
    }
}
