//! Outlier-threshold selection (Eq. 6 and Table I).
//!
//! The threshold is `mean + n·std`. For Gaussian data `n = 3` (the
//! classical three-sigma rule); for long-tail data the paper selects the
//! smallest `n` (from a candidate set) whose threshold still covers the
//! required fraction of the data (≥ 99 %), and lands on `n = 5` for its
//! event data.

use crate::CmError;
use cm_stats::descriptive;

/// Candidate control-variable values examined by the paper's Table I.
pub const N_CANDIDATES: [f64; 5] = [3.0, 4.0, 5.0, 6.0, 7.0];

/// Fraction of `data` within `mean + n·std` for each candidate `n`
/// (one row of Table I).
///
/// # Errors
///
/// Returns an error for an empty slice.
pub fn coverage_table(data: &[f64]) -> Result<[(f64, f64); 5], CmError> {
    let mean = descriptive::mean(data)?;
    let std = descriptive::std_dev(data)?;
    let mut out = [(0.0, 0.0); 5];
    for (slot, &n) in out.iter_mut().zip(N_CANDIDATES.iter()) {
        let frac = descriptive::fraction_within(data, mean + n * std)?;
        *slot = (n, frac);
    }
    Ok(out)
}

/// Chooses the control variable `n`: the smallest candidate whose
/// coverage reaches `target`, or the largest candidate if none does.
///
/// # Errors
///
/// Returns an error for an empty slice or a target outside `(0, 1]`.
pub fn choose_n(data: &[f64], target: f64) -> Result<f64, CmError> {
    if !(0.0..=1.0).contains(&target) || target == 0.0 {
        return Err(CmError::Invalid("coverage target must be in (0, 1]"));
    }
    let table = coverage_table(data)?;
    for (n, frac) in table {
        if frac >= target {
            return Ok(n);
        }
    }
    // No candidate reaches the target: the tail beyond even n = 7 is
    // real outlier mass. Use the smallest candidate achieving the best
    // coverage — the extra data beyond it is exactly what cleaning
    // should replace.
    let best = table.iter().map(|&(_, f)| f).fold(0.0f64, f64::max);
    Ok(table
        .iter()
        .find(|&&(_, f)| f == best)
        .map(|&(n, _)| n)
        .unwrap_or(N_CANDIDATES[N_CANDIDATES.len() - 1]))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gaussian_like_data_covered_at_small_n() {
        // Tight data: even n = 3 covers everything.
        let data: Vec<f64> = (0..100).map(|i| 10.0 + ((i % 7) as f64) * 0.1).collect();
        assert_eq!(choose_n(&data, 0.99).unwrap(), 3.0);
    }

    #[test]
    fn heavy_tail_needs_larger_n() {
        // 4 % of points in a tail beyond 3 sigma but within 5 sigma:
        // n = 3 covers only 96 %, n = 5 covers all.
        let mut data = vec![10.0; 96];
        data.extend([20.0, 20.0, 20.0, 20.0]);
        let n = choose_n(&data, 0.99).unwrap();
        assert!(n > 3.0, "picked n = {n}");
    }

    #[test]
    fn coverage_is_monotone_in_n() {
        let data: Vec<f64> = (0..50).map(|i| (i * i) as f64).collect();
        let table = coverage_table(&data).unwrap();
        for pair in table.windows(2) {
            assert!(pair[1].1 >= pair[0].1);
        }
    }

    #[test]
    fn falls_back_to_smallest_best_coverage() {
        // Extremely heavy tail: no candidate reaches 100 % and all have
        // the same coverage, so the smallest wins (the tail is genuine
        // outlier mass to be replaced).
        let mut data = vec![1.0; 50];
        data.push(1e9);
        let n = choose_n(&data, 1.0).unwrap();
        assert_eq!(n, 3.0);
    }

    #[test]
    fn validates_inputs() {
        assert!(choose_n(&[], 0.99).is_err());
        assert!(choose_n(&[1.0], 0.0).is_err());
        assert!(choose_n(&[1.0], 1.5).is_err());
    }
}
