//! Missing-value filling (Section III-B.2).
//!
//! A multiplexed profiler reports `0` when an event was never scheduled
//! while it occurred — but some zeros are real. The paper's
//! zero-category rule: if the series' past minimum is zero and its past
//! maximum is below a small bound, zeros are genuine and kept (the error
//! of keeping them is bounded by the bound). Otherwise zeros are treated
//! as missing and filled by KNN regression over the valid samples
//! (k = 5, the paper's pick after trying 3..8).

use super::CleanerConfig;
use crate::CmError;
use cm_stats::knn;

pub(super) struct MissingOutcome {
    pub filled: usize,
    pub kept: usize,
}

/// What the zero-category rule decided about a series' zeros.
enum ZeroClass {
    /// No zeros at all.
    None,
    /// Zeros are genuine (near-zero series, or nothing to fill from):
    /// keep all of them.
    Keep(usize),
    /// Zeros are missing samples at these positions: fill them.
    Fill(Vec<usize>),
}

/// The shared front half of both fill paths: find the zeros and apply
/// the zero-category rule. One classifier feeds the point and bayes
/// variants, so they can never disagree about *which* values to fill.
fn classify_zeros(values: &[f64], config: &CleanerConfig) -> ZeroClass {
    let zeros: Vec<usize> = values
        .iter()
        .enumerate()
        .filter(|(_, &v)| v == 0.0)
        .map(|(i, _)| i)
        .collect();
    if zeros.is_empty() {
        return ZeroClass::None;
    }

    // Zero-category rule on the series' own history.
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if max < config.zero_keep_max {
        return ZeroClass::Keep(zeros.len());
    }

    // Nothing valid to interpolate from: keep the zeros rather than
    // inventing data. (With at least one valid sample, `impute_series`
    // clamps its neighborhood to the valid count, so a sparse series
    // still fills from whatever was observed.)
    let valid = values.len() - zeros.len();
    if valid == 0 {
        return ZeroClass::Keep(zeros.len());
    }
    ZeroClass::Fill(zeros)
}

pub(super) fn fill_missing(
    values: &mut [f64],
    config: &CleanerConfig,
) -> Result<MissingOutcome, CmError> {
    match classify_zeros(values, config) {
        ZeroClass::None => Ok(MissingOutcome { filled: 0, kept: 0 }),
        ZeroClass::Keep(kept) => Ok(MissingOutcome { filled: 0, kept }),
        ZeroClass::Fill(zeros) => {
            knn::impute_series(values, &zeros, config.knn_k).map_err(CmError::Stats)?;
            Ok(MissingOutcome {
                filled: zeros.len(),
                kept: 0,
            })
        }
    }
}

/// [`fill_missing`] plus a per-fill posterior variance, for the bayes
/// estimator: fills bit-identical values (same classifier, same KNN
/// walk) and additionally returns `(index, variance)` per filled
/// position, ascending by index. Kept zeros carry no entry — they are
/// observations, not reconstructions.
pub(super) fn fill_missing_with_variance(
    values: &mut [f64],
    config: &CleanerConfig,
) -> Result<(MissingOutcome, Vec<(usize, f64)>), CmError> {
    match classify_zeros(values, config) {
        ZeroClass::None => Ok((MissingOutcome { filled: 0, kept: 0 }, Vec::new())),
        ZeroClass::Keep(kept) => Ok((MissingOutcome { filled: 0, kept }, Vec::new())),
        ZeroClass::Fill(zeros) => {
            let variances = knn::impute_series_with_variance(values, &zeros, config.knn_k)
                .map_err(CmError::Stats)?;
            let outcome = MissingOutcome {
                filled: zeros.len(),
                kept: 0,
            };
            Ok((outcome, zeros.into_iter().zip(variances).collect()))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CleanerConfig {
        CleanerConfig::default()
    }

    #[test]
    fn fills_single_gap_with_neighbors() {
        let mut v = vec![10.0, 10.0, 0.0, 10.0, 10.0, 10.0];
        let out = fill_missing(&mut v, &config()).unwrap();
        assert_eq!(out.filled, 1);
        assert_eq!(v[2], 10.0);
    }

    #[test]
    fn fills_cold_start_run_of_zeros() {
        // The Fig. 2(b) shape: leading zeros before steady activity.
        let mut v = vec![0.0, 0.0, 0.0, 40.0, 42.0, 41.0, 43.0, 40.0, 42.0];
        let out = fill_missing(&mut v, &config()).unwrap();
        assert_eq!(out.filled, 3);
        for (i, &val) in v.iter().take(3).enumerate() {
            assert!(val > 35.0, "v[{i}] = {val}");
        }
    }

    #[test]
    fn keeps_zeros_of_near_zero_series() {
        let mut v = vec![0.0, 0.005, 0.0, 0.002, 0.0];
        let out = fill_missing(&mut v, &config()).unwrap();
        assert_eq!(out.filled, 0);
        assert_eq!(out.kept, 3);
        assert_eq!(v[0], 0.0);
    }

    /// Regression: fewer valid samples than `k` used to keep the zeros
    /// (leaving multiplexing gaps in the data). The imputer now clamps
    /// its neighborhood, so even two valid samples fill the gaps.
    #[test]
    fn few_valid_samples_still_fill_from_what_exists() {
        let mut v = vec![0.0, 5.0, 0.0, 6.0, 0.0];
        // Only 2 valid samples < k = 5: filled with their mean.
        let out = fill_missing(&mut v, &config()).unwrap();
        assert_eq!(out.filled, 3);
        assert_eq!(out.kept, 0);
        assert!(v.iter().all(|&x| x > 4.0 && x < 7.0));
    }

    #[test]
    fn variance_variant_fills_identically_and_tags_fills() {
        let base = vec![10.0, 10.5, 0.0, 10.2, 0.0, 10.4, 10.1, 10.3];
        let mut point = base.clone();
        fill_missing(&mut point, &config()).unwrap();
        let mut bayes = base.clone();
        let (outcome, variances) = fill_missing_with_variance(&mut bayes, &config()).unwrap();
        assert_eq!(outcome.filled, 2);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&point), bits(&bayes));
        assert_eq!(
            variances.iter().map(|&(i, _)| i).collect::<Vec<_>>(),
            vec![2, 4]
        );
        assert!(variances.iter().all(|&(_, v)| v.is_finite() && v >= 0.0));
    }

    #[test]
    fn variance_variant_keeps_real_zeros_without_entries() {
        let mut v = vec![0.0, 0.005, 0.0, 0.002, 0.0];
        let (outcome, variances) = fill_missing_with_variance(&mut v, &config()).unwrap();
        assert_eq!(outcome.kept, 3);
        assert!(variances.is_empty());
    }

    #[test]
    fn no_zeros_is_a_no_op() {
        let mut v = vec![1.0, 2.0, 3.0];
        let orig = v.clone();
        let out = fill_missing(&mut v, &config()).unwrap();
        assert_eq!(out.filled + out.kept, 0);
        assert_eq!(v, orig);
    }

    #[test]
    fn respects_custom_k() {
        let cfg = CleanerConfig {
            knn_k: 1,
            ..CleanerConfig::default()
        };
        let mut v = vec![7.0, 0.0, 9.0];
        let out = fill_missing(&mut v, &cfg).unwrap();
        assert_eq!(out.filled, 1);
        // k = 1: nearest neighbor (index 0 at distance 1 ties with
        // index 2; the left neighbor wins ties).
        assert_eq!(v[1], 7.0);
    }
}
