//! Outlier replacement (Section III-B.1).
//!
//! A value above `mean + n·std` is an outlier. `n` is 3 when the series
//! passes the Anderson–Darling normality test, otherwise the smallest
//! Table I candidate reaching the coverage target. An outlier is
//! replaced by the **median of the segment it falls in**: the series is
//! divided into `roundup(sqrt(count))` equal time segments (Eq. 7's
//! interval rule), and the median is taken over the segment's
//! non-outlier values (falling back to the global non-outlier median for
//! segments made entirely of outliers).

use super::{threshold, CleanerConfig, SeriesDistribution};
use crate::CmError;
use cm_stats::{anderson, descriptive};

pub(super) struct OutlierOutcome {
    pub replaced: usize,
    pub threshold: f64,
    pub n_used: f64,
    pub distribution: SeriesDistribution,
}

pub(super) fn replace_outliers(
    values: &mut [f64],
    config: &CleanerConfig,
) -> Result<OutlierOutcome, CmError> {
    replace_outliers_impl(values, config, None)
}

/// [`replace_outliers`] plus a per-replacement posterior variance, for
/// the bayes estimator: replaces bit-identical values (one shared
/// implementation; the point path simply skips the variance arithmetic)
/// and additionally returns `(index, variance)` per replaced outlier,
/// ascending by index. The variance is the predictive variance of the
/// segment's non-outlier values — "the true value is another draw from
/// this segment" — falling back to the global non-outlier dispersion
/// for segments made entirely of outliers.
pub(super) fn replace_outliers_with_variance(
    values: &mut [f64],
    config: &CleanerConfig,
) -> Result<(OutlierOutcome, Vec<(usize, f64)>), CmError> {
    let mut variances = Vec::new();
    let outcome = replace_outliers_impl(values, config, Some(&mut variances))?;
    Ok((outcome, variances))
}

fn replace_outliers_impl(
    values: &mut [f64],
    config: &CleanerConfig,
    mut variances: Option<&mut Vec<(usize, f64)>>,
) -> Result<OutlierOutcome, CmError> {
    let (n_used, distribution) = match config.fixed_n {
        Some(n) => (n, SeriesDistribution::Undetermined),
        None => classify_and_choose(values, config)?,
    };
    let mean = descriptive::mean(values)?;
    let std = descriptive::std_dev(values)?;
    let limit = mean + n_used * std;

    // Zero variance means every sample *is* the mean: nothing can be an
    // outlier, and floating-point summation error in `mean` must not be
    // allowed to flag the whole series (if the computed mean rounds a
    // hair below the common value, `v > limit` would be true for every
    // sample). Report the exact common value as the threshold.
    if std == 0.0 {
        return Ok(OutlierOutcome {
            replaced: 0,
            threshold: mean,
            n_used,
            distribution,
        });
    }

    let outlier_mask: Vec<bool> = values.iter().map(|&v| v > limit).collect();
    let replaced = outlier_mask.iter().filter(|&&m| m).count();
    if replaced == 0 {
        return Ok(OutlierOutcome {
            replaced,
            threshold: limit,
            n_used,
            distribution,
        });
    }

    // Global fallback median over non-outliers.
    let clean_values: Vec<f64> = values
        .iter()
        .zip(&outlier_mask)
        .filter(|(_, &m)| !m)
        .map(|(&v, _)| v)
        .collect();
    let global_median = if clean_values.is_empty() {
        mean
    } else {
        descriptive::median(&clean_values)?
    };
    // Global fallback variance, only paid for on the bayes path.
    let global_variance = variances
        .as_ref()
        .map(|_| predictive_variance(&clean_values).unwrap_or(0.0));

    let segments = (values.len() as f64).sqrt().ceil() as usize;
    let seg_len = values.len().div_ceil(segments);
    for seg_start in (0..values.len()).step_by(seg_len.max(1)) {
        let seg_end = (seg_start + seg_len).min(values.len());
        let seg_clean: Vec<f64> = (seg_start..seg_end)
            .filter(|&i| !outlier_mask[i])
            .map(|i| values[i])
            .collect();
        let replacement = if seg_clean.is_empty() {
            global_median
        } else {
            descriptive::median(&seg_clean)?
        };
        let seg_variance = variances.as_ref().map(|_| {
            predictive_variance(&seg_clean)
                .or(global_variance)
                .unwrap_or(0.0)
        });
        for i in seg_start..seg_end {
            if outlier_mask[i] {
                values[i] = replacement;
                if let (Some(out), Some(var)) = (variances.as_deref_mut(), seg_variance) {
                    out.push((i, var));
                }
            }
        }
    }

    Ok(OutlierOutcome {
        replaced,
        threshold: limit,
        n_used,
        distribution,
    })
}

/// Predictive variance of "one more draw from this pool": sample
/// variance (ddof = 1) scaled by `1 + 1/n` to account for the
/// uncertainty of the pool mean itself. `None` when fewer than two
/// samples exist — no dispersion can be estimated.
fn predictive_variance(pool: &[f64]) -> Option<f64> {
    let n = pool.len();
    if n < 2 {
        return None;
    }
    let mean = pool.iter().sum::<f64>() / n as f64;
    let sample_var = pool.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / (n - 1) as f64;
    Some(sample_var * (1.0 + 1.0 / n as f64))
}

fn classify_and_choose(
    values: &[f64],
    config: &CleanerConfig,
) -> Result<(f64, SeriesDistribution), CmError> {
    match anderson::normality_test(values) {
        Ok(result) if result.is_normal() => Ok((3.0, SeriesDistribution::Gaussian)),
        Ok(_) => Ok((
            threshold::choose_n(values, config.coverage_target)?,
            SeriesDistribution::LongTail,
        )),
        // Too short or constant: fall back to the coverage rule when
        // possible, else the conservative default n = 5.
        Err(_) => match threshold::choose_n(values, config.coverage_target) {
            Ok(n) => Ok((n, SeriesDistribution::Undetermined)),
            Err(_) => Ok((5.0, SeriesDistribution::Undetermined)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> CleanerConfig {
        CleanerConfig::default()
    }

    #[test]
    fn replaces_spike_with_local_median() {
        // Two plateaus; a spike on the second plateau must be replaced
        // by a *second-plateau* value, not a global one.
        let mut v: Vec<f64> = Vec::new();
        v.extend(std::iter::repeat_n(10.0, 50));
        v.extend(std::iter::repeat_n(20.0, 50));
        v[75] = 5000.0;
        let out = replace_outliers(&mut v, &config()).unwrap();
        assert_eq!(out.replaced, 1);
        assert_eq!(v[75], 20.0);
    }

    #[test]
    fn no_outliers_leaves_data_untouched() {
        let mut v: Vec<f64> = (0..64).map(|i| 10.0 + (i % 5) as f64).collect();
        let orig = v.clone();
        let out = replace_outliers(&mut v, &config()).unwrap();
        assert_eq!(out.replaced, 0);
        assert_eq!(v, orig);
    }

    #[test]
    fn gaussian_series_uses_three_sigma() {
        // Smooth sinusoid passes normality? Not necessarily; use an
        // explicitly Gaussian sample.
        use cm_stats::{Distribution, Normal};
        use rand::{rngs::StdRng, SeedableRng};
        let normal = Normal::new(100.0, 5.0).unwrap();
        let mut rng = StdRng::seed_from_u64(8);
        let mut v: Vec<f64> = (0..400).map(|_| normal.sample(&mut rng)).collect();
        let out = replace_outliers(&mut v, &config()).unwrap();
        assert_eq!(out.n_used, 3.0);
        assert_eq!(out.distribution, SeriesDistribution::Gaussian);
    }

    #[test]
    fn long_tail_series_uses_larger_n() {
        use cm_stats::{Distribution, Gev};
        use rand::{rngs::StdRng, SeedableRng};
        let gev = Gev::new(100.0, 10.0, 0.3).unwrap();
        let mut rng = StdRng::seed_from_u64(9);
        let mut v: Vec<f64> = (0..400).map(|_| gev.sample(&mut rng)).collect();
        let out = replace_outliers(&mut v, &config()).unwrap();
        assert_eq!(out.distribution, SeriesDistribution::LongTail);
        assert!(out.n_used > 3.0);
    }

    #[test]
    fn fixed_n_override_respected() {
        let cfg = CleanerConfig {
            fixed_n: Some(4.0),
            ..CleanerConfig::default()
        };
        let mut v = vec![10.0; 30];
        v[3] = 1000.0;
        let out = replace_outliers(&mut v, &cfg).unwrap();
        assert_eq!(out.n_used, 4.0);
        assert_eq!(out.distribution, SeriesDistribution::Undetermined);
        assert_eq!(out.replaced, 1);
    }

    #[test]
    fn all_outlier_segment_falls_back_to_global_median() {
        // With 25 % contamination the automatic threshold cannot flag
        // the spikes (their z-score is only ~1.7), so pin n low and make
        // one whole segment (sqrt(16) = 4 segments of 4) outliers.
        let cfg = CleanerConfig {
            fixed_n: Some(0.5),
            ..CleanerConfig::default()
        };
        let mut v = vec![10.0; 16];
        v[4] = 50.0;
        v[5] = 50.0;
        v[6] = 50.0;
        v[7] = 50.0;
        let out = replace_outliers(&mut v, &cfg).unwrap();
        assert_eq!(out.replaced, 4);
        assert!(v.iter().all(|&x| x == 10.0));
    }

    #[test]
    fn short_series_does_not_crash() {
        let mut v = vec![1.0, 2.0, 100.0];
        let out = replace_outliers(&mut v, &config()).unwrap();
        // Whatever n was chosen, the call must succeed.
        assert!(out.n_used >= 3.0);
    }

    #[test]
    fn variance_variant_replaces_identically_and_tags_outliers() {
        let mut base: Vec<f64> = Vec::new();
        base.extend(std::iter::repeat_n(10.0, 50));
        base.extend((0..50).map(|i| 20.0 + (i % 3) as f64));
        base[75] = 5000.0;
        let mut point = base.clone();
        replace_outliers(&mut point, &config()).unwrap();
        let mut bayes = base.clone();
        let (outcome, variances) = replace_outliers_with_variance(&mut bayes, &config()).unwrap();
        assert_eq!(outcome.replaced, 1);
        let bits = |v: &[f64]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&point), bits(&bayes));
        assert_eq!(variances.len(), 1);
        let (idx, var) = variances[0];
        assert_eq!(idx, 75);
        // The spike landed in the noisy second half: its replacement
        // variance must reflect that segment's dispersion.
        assert!(var.is_finite() && var > 0.0);
    }

    #[test]
    fn variance_variant_reports_no_entries_without_outliers() {
        let mut v: Vec<f64> = (0..64).map(|i| 10.0 + (i % 5) as f64).collect();
        let (outcome, variances) = replace_outliers_with_variance(&mut v, &config()).unwrap();
        assert_eq!(outcome.replaced, 0);
        assert!(variances.is_empty());
    }

    #[test]
    fn all_outlier_segment_variance_falls_back_to_global() {
        let cfg = CleanerConfig {
            fixed_n: Some(0.5),
            ..CleanerConfig::default()
        };
        // sqrt(16) = 4 segments of 4; segment two is all outliers.
        let mut v: Vec<f64> = (0..16).map(|i| 10.0 + (i % 2) as f64).collect();
        v[4] = 50.0;
        v[5] = 50.0;
        v[6] = 50.0;
        v[7] = 50.0;
        let (outcome, variances) = replace_outliers_with_variance(&mut v, &cfg).unwrap();
        assert_eq!(outcome.replaced, 4);
        assert_eq!(variances.len(), 4);
        // Global clean pool alternates 10/11: positive predictive variance.
        assert!(variances.iter().all(|&(_, var)| var > 0.0));
    }

    /// Regression: with `std == 0` the threshold `mean + n·0` collapses
    /// onto the mean, and any rounding in the mean could flag every
    /// sample. A constant series must terminate n-selection, flag
    /// nothing, and report a finite threshold — for any magnitude.
    #[test]
    fn zero_variance_series_flags_nothing() {
        for value in [0.0, 0.1, 5.0, 1.0 / 3.0, 1e18, 4503599627370497.0] {
            for len in [1usize, 2, 20, 100] {
                let mut v = vec![value; len];
                let out = replace_outliers(&mut v, &config()).unwrap();
                assert_eq!(out.replaced, 0, "value={value} len={len}");
                assert!(out.threshold.is_finite(), "value={value} len={len}");
                assert!(v.iter().all(|&x| x == value), "value={value} len={len}");
            }
        }
    }
}
