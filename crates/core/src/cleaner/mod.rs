//! The data cleaner (Section III-B): outlier replacement and
//! missing-value filling for multiplexed counter series.

mod kind;
mod missing;
mod outlier;
mod streaming;
mod threshold;

pub use kind::CleanerKind;
pub use streaming::{StreamedSample, StreamingCleaner};
pub use threshold::{choose_n, coverage_table, N_CANDIDATES};

use crate::CmError;
use cm_events::{RunRecord, TimeSeries};
use cm_stats::estimator::Posterior;

/// Which distribution family the cleaner decided a series follows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesDistribution {
    /// Anderson–Darling did not reject normality: `n = 3` (the 3-sigma
    /// rule for Gaussian data).
    Gaussian,
    /// Long-tail: `n` chosen by the 99 %-coverage rule of Table I.
    LongTail,
    /// Too few points to test; the coverage rule is used directly.
    Undetermined,
}

/// Configuration of the data cleaner.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CleanerConfig {
    /// Fraction of data that must fall within the outlier threshold when
    /// choosing the control variable `n` (the paper specifies 99 %).
    pub coverage_target: f64,
    /// Force a fixed `n` instead of selecting it (used by the Table I
    /// ablation). `None` means automatic selection.
    pub fixed_n: Option<f64>,
    /// Neighbors used by KNN missing-value filling (k = 5 in the paper).
    pub knn_k: usize,
    /// The zero-category rule: a series whose past minimum is zero and
    /// past maximum is below this bound keeps its zeros (they are real,
    /// not missing). The paper uses 0.01 on per-1K-instruction
    /// normalized values; we additionally treat the bound as relative to
    /// the series mean for raw counts.
    pub zero_keep_max: f64,
}

impl Default for CleanerConfig {
    fn default() -> Self {
        CleanerConfig {
            coverage_target: 0.99,
            fixed_n: None,
            knn_k: 5,
            zero_keep_max: 0.01,
        }
    }
}

/// Inflation applied to every raw predictive variance before it is
/// attached to a [`Reconstruction`].
///
/// The raw estimate treats a reconstruction as one more draw from the
/// clean neighborhood, but the samples the cleaner overwrites are not
/// random draws: multiplexing glitches and suspicious zeros cluster in
/// the volatile stretches of a series, where the true count strays
/// farthest from the local consensus, and the resulting error
/// distribution is heavy-tailed. Calibrated against the simulator's
/// exact counts (`crates/sim/tests/calibration.rs`, 16 seeds across the
/// benchmark suite): with this factor the empirical coverage of the 90 %
/// and 95 % intervals lands within a few points of nominal; without it,
/// coverage at 90 % nominal is ~55 %.
pub const VARIANCE_CALIBRATION: f64 = 8.0;

/// Why a sample was reconstructed by the cleaner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconstructionSource {
    /// A suspicious zero filled by KNN regression (Section III-B.2).
    MissingFill,
    /// An outlier replaced by its segment median (Section III-B.1).
    Outlier,
}

/// One reconstructed sample with its posterior variance — what the
/// `bayes` estimator knows about a value it invented.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Reconstruction {
    /// Position of the reconstructed sample in the series.
    pub index: usize,
    /// The reconstructed value — bit-identical to the point cleaner's.
    pub value: f64,
    /// Posterior variance of the reconstruction (≥ 0; `0.0` when the
    /// neighborhood had no measurable dispersion).
    pub variance: f64,
    /// Which cleaning stage produced the value.
    pub source: ReconstructionSource,
}

impl Reconstruction {
    /// The reconstruction as a Gaussian [`Posterior`] over the true value.
    pub fn posterior(&self) -> Posterior {
        Posterior::new(self.value, self.variance)
    }
}

/// Per-series uncertainty attached by [`DataCleaner::clean_series_bayes`]:
/// every reconstructed value with its variance, sorted by index. An
/// observed (untouched) sample carries no entry — its variance is the
/// measurement's, not the cleaner's.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SeriesUncertainty {
    /// All reconstructions, ascending by index; at most one per index
    /// (an outlier replacement supersedes a missing-value fill).
    pub reconstructions: Vec<Reconstruction>,
}

impl SeriesUncertainty {
    /// Sum of all reconstruction variances — the series' total injected
    /// uncertainty.
    pub fn total_variance(&self) -> f64 {
        self.reconstructions.iter().map(|r| r.variance).sum()
    }
}

/// What the cleaner did to one series.
#[derive(Debug, Clone, PartialEq)]
pub struct CleanReport {
    /// Outliers found and replaced.
    pub outliers_replaced: usize,
    /// Missing values (suspicious zeros) filled in.
    pub missing_filled: usize,
    /// Zeros kept because the zero-category rule classified them as real.
    pub zeros_kept: usize,
    /// The outlier threshold used (`mean + n·std`).
    pub threshold: f64,
    /// The control variable `n` used.
    pub n_used: f64,
    /// Distribution classification of the series.
    pub distribution: SeriesDistribution,
}

/// The data cleaner.
///
/// See the [crate docs](crate) for an end-to-end example.
///
/// # Examples
///
/// ```
/// use cm_events::TimeSeries;
/// use counterminer::DataCleaner;
///
/// // A steady series with one dropped sample and one glitch.
/// let mut v: Vec<f64> = (0..60)
///     .map(|i| 10.0 + ((i * 37) % 11) as f64 * 0.1)
///     .collect();
/// v[7] = 0.0; // missing (multiplexing gap)
/// v[33] = 900.0; // outlier
/// let cleaner = DataCleaner::default();
/// let (clean, report) = cleaner.clean_series(&TimeSeries::from_values(v))?;
/// assert_eq!(report.missing_filled, 1);
/// assert_eq!(report.outliers_replaced, 1);
/// assert!(clean.values().iter().all(|&x| x > 9.0 && x < 12.0));
/// # Ok::<(), counterminer::CmError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataCleaner {
    config: CleanerConfig,
}

impl DataCleaner {
    /// Creates a cleaner with the given configuration.
    pub fn new(config: CleanerConfig) -> Self {
        DataCleaner { config }
    }

    /// The cleaner's configuration.
    pub fn config(&self) -> &CleanerConfig {
        &self.config
    }

    /// Cleans one series: fills missing values, then replaces outliers.
    ///
    /// # Errors
    ///
    /// Returns [`CmError::Invalid`] for an empty series or one containing
    /// non-finite samples (NaN or ±∞ — a counter can never produce those,
    /// so they signal corrupted input that no threshold arithmetic can
    /// clean), or propagates statistics errors.
    pub fn clean_series(&self, series: &TimeSeries) -> Result<(TimeSeries, CleanReport), CmError> {
        let mut values = Self::validate(series)?;

        // 1. Missing values: classify zeros, fill the suspicious ones by
        //    KNN over the valid samples (Section III-B.2). Done first so
        //    the outlier statistics are not dragged down by zeros.
        let missing_outcome = missing::fill_missing(&mut values, &self.config)?;

        // 2. Outliers: distribution-aware threshold (Table I / Eq. 6),
        //    replacement by segment median (Eq. 7).
        let outlier_outcome = outlier::replace_outliers(&mut values, &self.config)?;

        let report = Self::report(&missing_outcome, &outlier_outcome);
        Self::record_obs(&report);
        Ok((TimeSeries::from_values(values), report))
    }

    /// [`clean_series`](Self::clean_series) in `bayes` mode: the same
    /// fills and replacements (bit-identical output values), plus a
    /// [`SeriesUncertainty`] carrying a posterior variance for every
    /// reconstructed sample.
    ///
    /// Missing-value fills get the KNN neighborhood's predictive
    /// variance; outlier replacements get their segment's. A sample
    /// that is first filled and then re-flagged as an outlier keeps only
    /// the outlier entry — the fill was discarded.
    ///
    /// # Errors
    ///
    /// Exactly as [`clean_series`](Self::clean_series).
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_events::TimeSeries;
    /// use counterminer::DataCleaner;
    ///
    /// let mut v: Vec<f64> = (0..60)
    ///     .map(|i| 10.0 + ((i * 37) % 11) as f64 * 0.1)
    ///     .collect();
    /// v[7] = 0.0; // missing (multiplexing gap)
    /// v[33] = 900.0; // outlier
    /// let series = TimeSeries::from_values(v);
    /// let cleaner = DataCleaner::default();
    /// let (clean, report, uncertainty) = cleaner.clean_series_bayes(&series)?;
    /// assert_eq!(
    ///     uncertainty.reconstructions.len(),
    ///     report.missing_filled + report.outliers_replaced,
    /// );
    /// // Same values as the point cleaner, with variances attached.
    /// let (point, _) = cleaner.clean_series(&series)?;
    /// assert_eq!(point, clean);
    /// # Ok::<(), counterminer::CmError>(())
    /// ```
    pub fn clean_series_bayes(
        &self,
        series: &TimeSeries,
    ) -> Result<(TimeSeries, CleanReport, SeriesUncertainty), CmError> {
        let mut values = Self::validate(series)?;

        let (missing_outcome, fill_variances) =
            missing::fill_missing_with_variance(&mut values, &self.config)?;
        let (outlier_outcome, outlier_variances) =
            outlier::replace_outliers_with_variance(&mut values, &self.config)?;

        // Fills first, then outlier replacements; a replacement at an
        // already-filled index supersedes the fill (the filled value was
        // itself flagged and overwritten). Both lists arrive ascending
        // by index, so superseded fills are a binary search away.
        let mut reconstructions: Vec<Reconstruction> = fill_variances
            .into_iter()
            .filter(|&(index, _)| {
                outlier_variances
                    .binary_search_by_key(&index, |&(i, _)| i)
                    .is_err()
            })
            .map(|(index, variance)| Reconstruction {
                index,
                value: values[index],
                variance: variance * VARIANCE_CALIBRATION,
                source: ReconstructionSource::MissingFill,
            })
            .collect();
        reconstructions.extend(outlier_variances.into_iter().map(|(index, variance)| {
            Reconstruction {
                index,
                value: values[index],
                variance: variance * VARIANCE_CALIBRATION,
                source: ReconstructionSource::Outlier,
            }
        }));
        reconstructions.sort_by_key(|r| r.index);

        let report = Self::report(&missing_outcome, &outlier_outcome);
        Self::record_obs(&report);
        if cm_obs::enabled() {
            // Count-valued, so the total is thread-invariant under
            // `clean_run`'s parallel fan-out.
            cm_obs::counter_add("clean.variance.values", reconstructions.len() as u64);
        }
        Ok((
            TimeSeries::from_values(values),
            report,
            SeriesUncertainty { reconstructions },
        ))
    }

    fn validate(series: &TimeSeries) -> Result<Vec<f64>, CmError> {
        if series.is_empty() {
            return Err(CmError::Invalid("cannot clean an empty series"));
        }
        // A NaN poisons the mean, the threshold, and every comparison
        // against it; an infinity does the same one step later. Reject
        // up front so cleaned output is always finite.
        if series.values().iter().any(|v| !v.is_finite()) {
            return Err(CmError::Invalid(
                "cannot clean a series with non-finite samples",
            ));
        }
        Ok(series.values().to_vec())
    }

    fn report(
        missing_outcome: &missing::MissingOutcome,
        outlier_outcome: &outlier::OutlierOutcome,
    ) -> CleanReport {
        CleanReport {
            outliers_replaced: outlier_outcome.replaced,
            missing_filled: missing_outcome.filled,
            zeros_kept: missing_outcome.kept,
            threshold: outlier_outcome.threshold,
            n_used: outlier_outcome.n_used,
            distribution: outlier_outcome.distribution,
        }
    }

    /// Per-series tallies; sums commute, so `clean_run`'s parallel
    /// fan-out reports the same totals at any thread count.
    fn record_obs(report: &CleanReport) {
        if cm_obs::enabled() {
            cm_obs::counter_add("cleaner.series", 1);
            cm_obs::counter_add("cleaner.outliers_replaced", report.outliers_replaced as u64);
            cm_obs::counter_add("cleaner.missing_filled", report.missing_filled as u64);
            cm_obs::counter_add("cleaner.zeros_kept", report.zeros_kept as u64);
            cm_obs::histogram_record("cleaner.n_used", report.n_used);
            cm_obs::counter_add(
                match report.distribution {
                    SeriesDistribution::Gaussian => "cleaner.dist.gaussian",
                    SeriesDistribution::LongTail => "cleaner.dist.long_tail",
                    SeriesDistribution::Undetermined => "cleaner.dist.undetermined",
                },
                1,
            );
        }
    }

    /// Cleans every series of a run in place, returning per-event
    /// reports in event-id order.
    ///
    /// # Errors
    ///
    /// Propagates the first per-series failure (in event-id order); on
    /// error the run is left unmodified.
    pub fn clean_run(&self, run: &mut RunRecord) -> Result<Vec<CleanReport>, CmError> {
        let events: Vec<_> = run.events().collect();
        // Each series cleans independently; fan the per-event work out
        // across the pool, then re-insert serially so the record is only
        // mutated from one thread.
        let cleaned = cm_par::try_map(&events, |&event| {
            let series = run.series(event).expect("event just listed");
            self.clean_series(series)
        })?;
        let mut reports = Vec::with_capacity(events.len());
        for (event, (series, report)) in events.into_iter().zip(cleaned) {
            run.insert_series(event, series);
            reports.push(report);
        }
        Ok(reports)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn steady(n: usize, level: f64) -> Vec<f64> {
        (0..n)
            .map(|i| level + ((i * 37) % 11) as f64 * 0.01 * level)
            .collect()
    }

    #[test]
    fn clean_series_fixes_outlier_and_missing() {
        let mut v = steady(60, 10.0);
        v[7] = 0.0; // missing
        v[33] = 900.0; // outlier
        let cleaner = DataCleaner::new(CleanerConfig::default());
        let (clean, report) = cleaner.clean_series(&TimeSeries::from_values(v)).unwrap();
        assert_eq!(report.missing_filled, 1);
        assert_eq!(report.outliers_replaced, 1);
        assert!(clean.values().iter().all(|&x| x > 9.0 && x < 12.0));
    }

    #[test]
    fn near_zero_series_keeps_zeros() {
        // The zero-category rule: min 0, max below the keep bound.
        let mut v = vec![0.002; 40];
        for i in (0..40).step_by(5) {
            v[i] = 0.0;
        }
        let cleaner = DataCleaner::new(CleanerConfig::default());
        let (clean, report) = cleaner.clean_series(&TimeSeries::from_values(v)).unwrap();
        assert_eq!(report.missing_filled, 0);
        assert_eq!(report.zeros_kept, 8);
        assert_eq!(clean.zero_count(), 8);
    }

    #[test]
    fn clean_run_processes_every_event() {
        use cm_events::{EventId, SampleMode};
        let mut run = RunRecord::new("p", 0, SampleMode::Mlpx);
        // 200 samples: one spike has z ~ 14, beyond every Table I
        // candidate (a single spike among only ~50 samples caps at
        // z = 7 and can evade the n = 7 threshold).
        let mut a = steady(200, 5.0);
        a[10] = 400.0;
        run.insert_series(EventId::new(0), TimeSeries::from_values(a));
        run.insert_series(EventId::new(1), TimeSeries::from_values(steady(200, 7.0)));
        let cleaner = DataCleaner::default();
        let reports = cleaner.clean_run(&mut run).unwrap();
        assert_eq!(reports.len(), 2);
        assert_eq!(reports[0].outliers_replaced, 1);
        assert_eq!(reports[1].outliers_replaced, 0);
        assert!(run.series(EventId::new(0)).unwrap().max().unwrap() < 10.0);
    }

    #[test]
    fn empty_series_rejected() {
        let cleaner = DataCleaner::default();
        assert!(cleaner.clean_series(&TimeSeries::new()).is_err());
    }

    /// Regression: a NaN sample used to sail through both cleaning
    /// stages — the threshold became NaN, every `v > NaN` comparison was
    /// false, and the NaN survived into "cleaned" output (infinities
    /// likewise poisoned the threshold). Non-finite input must be a
    /// typed error, never NaN-bearing output.
    #[test]
    fn non_finite_samples_are_a_typed_error() {
        let cleaner = DataCleaner::default();
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let mut v = vec![5.0; 20];
            v[3] = bad;
            let err = cleaner
                .clean_series(&TimeSeries::from_values(v))
                .expect_err("non-finite sample must be rejected");
            assert!(matches!(err, CmError::Invalid(_)), "{bad}: {err:?}");
        }
        // All-NaN is the same typed error, not a panic.
        assert!(cleaner
            .clean_series(&TimeSeries::from_values(vec![f64::NAN; 8]))
            .is_err());
    }

    /// Constant series of any length clean to themselves: zero-variance
    /// threshold selection terminates with nothing flagged.
    #[test]
    fn constant_series_clean_to_themselves() {
        let cleaner = DataCleaner::default();
        for len in [1usize, 2, 5, 50] {
            let v = vec![7.5; len];
            let (clean, report) = cleaner
                .clean_series(&TimeSeries::from_values(v.clone()))
                .unwrap();
            assert_eq!(clean.values(), &v[..], "len={len}");
            assert_eq!(report.outliers_replaced, 0, "len={len}");
            assert!(report.threshold.is_finite(), "len={len}");
        }
    }

    #[test]
    fn bayes_values_bit_identical_to_point() {
        let mut v = steady(60, 10.0);
        v[7] = 0.0;
        v[33] = 900.0;
        let series = TimeSeries::from_values(v);
        let cleaner = DataCleaner::default();
        let (point, point_report) = cleaner.clean_series(&series).unwrap();
        let (bayes, bayes_report, uncertainty) = cleaner.clean_series_bayes(&series).unwrap();
        assert_eq!(point_report, bayes_report);
        let bits = |s: &TimeSeries| s.values().iter().map(|x| x.to_bits()).collect::<Vec<_>>();
        assert_eq!(bits(&point), bits(&bayes));
        assert_eq!(
            uncertainty.reconstructions.len(),
            bayes_report.missing_filled + bayes_report.outliers_replaced,
        );
        for r in &uncertainty.reconstructions {
            assert!(r.variance.is_finite() && r.variance >= 0.0);
            assert_eq!(r.value.to_bits(), bayes.values()[r.index].to_bits());
        }
        assert!(uncertainty.total_variance() >= 0.0);
    }

    #[test]
    fn bayes_reconstructions_sorted_and_sourced() {
        let mut v = steady(60, 10.0);
        v[3] = 0.0;
        v[40] = 0.0;
        v[20] = 900.0;
        let cleaner = DataCleaner::default();
        let (_, report, uncertainty) = cleaner
            .clean_series_bayes(&TimeSeries::from_values(v))
            .unwrap();
        assert_eq!(report.missing_filled, 2);
        assert_eq!(report.outliers_replaced, 1);
        let indices: Vec<usize> = uncertainty
            .reconstructions
            .iter()
            .map(|r| r.index)
            .collect();
        assert_eq!(indices, vec![3, 20, 40]);
        assert!(indices.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(
            uncertainty.reconstructions[1].source,
            ReconstructionSource::Outlier
        );
        assert_eq!(
            uncertainty.reconstructions[0].source,
            ReconstructionSource::MissingFill
        );
    }

    #[test]
    fn bayes_clean_data_carries_no_uncertainty() {
        let v = steady(80, 20.0);
        let cleaner = DataCleaner::default();
        let (_, report, uncertainty) = cleaner
            .clean_series_bayes(&TimeSeries::from_values(v))
            .unwrap();
        assert_eq!(report.outliers_replaced + report.missing_filled, 0);
        assert!(uncertainty.reconstructions.is_empty());
        assert_eq!(uncertainty.total_variance(), 0.0);
    }

    #[test]
    fn clean_is_idempotent_on_clean_data() {
        let v = steady(80, 20.0);
        let cleaner = DataCleaner::default();
        let (once, r1) = cleaner.clean_series(&TimeSeries::from_values(v)).unwrap();
        let (twice, r2) = cleaner.clean_series(&once).unwrap();
        assert_eq!(r1.outliers_replaced, 0);
        assert_eq!(r2.outliers_replaced, 0);
        assert_eq!(once, twice);
    }
}
