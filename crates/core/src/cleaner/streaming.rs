//! Streaming (online) data cleaning.
//!
//! CounterMiner cleans *after* measurement, offline. In a production
//! profiler (the GWP-style deployment the paper targets), waiting for
//! the full series is not always possible; this extension applies the
//! same two rules incrementally:
//!
//! * a sample above `mean + n·std` of the trailing window is an outlier,
//!   replaced by the window median;
//! * a zero sample in a series whose window maximum is large is missing,
//!   replaced by the window mean (the causal stand-in for KNN — future
//!   neighbours are not available online).
//!
//! The first `min_samples` values pass through untouched (no reliable
//! statistics yet), so a cold-start transient is preserved — exactly the
//! conservative behaviour an online cleaner must have.

use super::CleanerConfig;
use std::collections::VecDeque;

/// What the streaming cleaner decided about one sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StreamedSample {
    /// The sample passed through unchanged.
    Passed(f64),
    /// The sample was classified an outlier and replaced.
    ReplacedOutlier {
        /// The original value.
        original: f64,
        /// The replacement (trailing-window median).
        replacement: f64,
    },
    /// The sample was classified missing and filled.
    FilledMissing {
        /// The replacement (trailing-window mean).
        replacement: f64,
    },
}

impl StreamedSample {
    /// The value to use downstream.
    pub fn value(&self) -> f64 {
        match *self {
            StreamedSample::Passed(v) => v,
            StreamedSample::ReplacedOutlier { replacement, .. } => replacement,
            StreamedSample::FilledMissing { replacement } => replacement,
        }
    }
}

/// Incremental cleaner over a trailing window.
///
/// # Examples
///
/// ```
/// use counterminer::{CleanerConfig, StreamingCleaner};
///
/// let mut cleaner = StreamingCleaner::new(CleanerConfig::default(), 32);
/// for i in 0..40 {
///     cleaner.push(100.0 + (i % 5) as f64);
/// }
/// // A glitch spike is caught online.
/// let cleaned = cleaner.push(5_000.0);
/// assert!(cleaned.value() < 200.0);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingCleaner {
    config: CleanerConfig,
    window: VecDeque<f64>,
    capacity: usize,
    min_samples: usize,
    outliers: usize,
    filled: usize,
}

impl StreamingCleaner {
    /// Creates a streaming cleaner with a trailing window of `capacity`
    /// samples (at least 8).
    ///
    /// # Panics
    ///
    /// Panics if `capacity < 8` — smaller windows cannot estimate a
    /// threshold.
    pub fn new(config: CleanerConfig, capacity: usize) -> Self {
        assert!(capacity >= 8, "window capacity must be at least 8");
        StreamingCleaner {
            config,
            window: VecDeque::with_capacity(capacity),
            capacity,
            min_samples: 8,
            outliers: 0,
            filled: 0,
        }
    }

    /// Outliers replaced so far.
    pub fn outliers_replaced(&self) -> usize {
        self.outliers
    }

    /// Missing values filled so far.
    pub fn missing_filled(&self) -> usize {
        self.filled
    }

    /// Processes one sample, returning the cleaning decision. The
    /// *original* sample enters the window either way, so one glitch
    /// cannot poison the statistics by its own replacement.
    pub fn push(&mut self, value: f64) -> StreamedSample {
        let decision = self.classify(value);
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        // Feed the cleaned value into the window: keeping gross spikes
        // out of the trailing statistics keeps the threshold tight.
        self.window.push_back(decision.value());
        decision
    }

    fn classify(&mut self, value: f64) -> StreamedSample {
        if self.window.len() < self.min_samples {
            return StreamedSample::Passed(value);
        }
        let data: Vec<f64> = self.window.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|&x| (x - mean) * (x - mean)).sum::<f64>() / data.len() as f64;
        let std = var.sqrt();
        let n = self.config.fixed_n.unwrap_or(5.0);

        // Missing: zero while the window clearly is not a near-zero
        // series (the zero-category rule, applied to the trailing past).
        let max = data.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        if value == 0.0 && max >= self.config.zero_keep_max {
            self.filled += 1;
            return StreamedSample::FilledMissing { replacement: mean };
        }

        if std > 0.0 && value > mean + n * std {
            let mut sorted = data;
            sorted.sort_by(f64::total_cmp);
            let median = sorted[sorted.len() / 2];
            self.outliers += 1;
            return StreamedSample::ReplacedOutlier {
                original: value,
                replacement: median,
            };
        }
        StreamedSample::Passed(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cleaner() -> StreamingCleaner {
        StreamingCleaner::new(CleanerConfig::default(), 32)
    }

    fn warm(c: &mut StreamingCleaner, n: usize) {
        for i in 0..n {
            c.push(100.0 + (i % 7) as f64);
        }
    }

    #[test]
    fn passes_normal_samples() {
        let mut c = cleaner();
        warm(&mut c, 20);
        let out = c.push(103.0);
        assert_eq!(out, StreamedSample::Passed(103.0));
        assert_eq!(c.outliers_replaced(), 0);
        assert_eq!(c.missing_filled(), 0);
    }

    #[test]
    fn replaces_online_outlier_with_window_median() {
        let mut c = cleaner();
        warm(&mut c, 32);
        let out = c.push(10_000.0);
        match out {
            StreamedSample::ReplacedOutlier {
                original,
                replacement,
            } => {
                assert_eq!(original, 10_000.0);
                assert!((99.0..108.0).contains(&replacement));
            }
            other => panic!("expected outlier replacement, got {other:?}"),
        }
        assert_eq!(c.outliers_replaced(), 1);
    }

    #[test]
    fn fills_online_missing_with_window_mean() {
        let mut c = cleaner();
        warm(&mut c, 32);
        let out = c.push(0.0);
        match out {
            StreamedSample::FilledMissing { replacement } => {
                assert!((99.0..108.0).contains(&replacement));
            }
            other => panic!("expected missing fill, got {other:?}"),
        }
        assert_eq!(c.missing_filled(), 1);
    }

    #[test]
    fn keeps_real_zeros_of_near_zero_series() {
        let mut c = cleaner();
        for _ in 0..32 {
            c.push(0.003);
        }
        let out = c.push(0.0);
        assert_eq!(out, StreamedSample::Passed(0.0));
        assert_eq!(c.missing_filled(), 0);
    }

    #[test]
    fn early_samples_pass_untouched() {
        let mut c = cleaner();
        // Even a wild first value passes: no statistics yet.
        assert_eq!(c.push(9e9), StreamedSample::Passed(9e9));
        assert_eq!(c.push(0.0), StreamedSample::Passed(0.0));
    }

    #[test]
    fn replacement_keeps_threshold_tight_for_spike_trains() {
        let mut c = cleaner();
        warm(&mut c, 32);
        // Three consecutive glitches: all must be caught because the
        // window absorbs replacements, not the raw spikes.
        for _ in 0..3 {
            match c.push(50_000.0) {
                StreamedSample::ReplacedOutlier { .. } => {}
                other => panic!("spike passed through: {other:?}"),
            }
        }
        assert_eq!(c.outliers_replaced(), 3);
    }

    #[test]
    #[should_panic(expected = "at least 8")]
    fn tiny_window_rejected() {
        StreamingCleaner::new(CleanerConfig::default(), 4);
    }

    #[test]
    fn agrees_with_offline_cleaner_on_steady_series() {
        // On a clean series both cleaners are identity transforms.
        use crate::DataCleaner;
        use cm_events::TimeSeries;
        let values: Vec<f64> = (0..128).map(|i| 50.0 + (i % 9) as f64).collect();
        let mut stream = cleaner();
        let streamed: Vec<f64> = values.iter().map(|&v| stream.push(v).value()).collect();
        let (offline, _) = DataCleaner::default()
            .clean_series(&TimeSeries::from_values(values.clone()))
            .unwrap();
        assert_eq!(streamed, values);
        assert_eq!(offline.values(), values.as_slice());
    }
}
