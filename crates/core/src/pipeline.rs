//! The end-to-end CounterMiner pipeline (Fig. 4): data collector →
//! two-level store → data cleaner → importance ranker → interaction
//! ranker.

use crate::{
    collector, CleanerConfig, CmError, DataCleaner, EirResult, ImportanceConfig, ImportanceRanker,
    InteractionRanker, PairInteraction,
};
use cm_events::{EventCatalog, EventId, SampleMode};
use cm_sim::{Benchmark, PmuConfig, SimRun, Workload};
use cm_store::Database;

/// Pipeline configuration.
///
/// # Examples
///
/// ```
/// use counterminer::MinerConfig;
///
/// // Downscale the defaults for a quick exploratory run.
/// let config = MinerConfig {
///     runs_per_benchmark: 1,
///     events_to_measure: Some(20),
///     ..MinerConfig::default()
/// };
/// assert_eq!(config.interaction_top_k, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinerConfig {
    /// The simulated PMU.
    pub pmu: PmuConfig,
    /// Data-cleaner settings.
    pub cleaner: CleanerConfig,
    /// Importance-ranker (EIR) settings.
    pub importance: ImportanceConfig,
    /// Profiled runs collected per benchmark.
    pub runs_per_benchmark: usize,
    /// How many events to measure (multiplexed); `None` measures the
    /// whole catalog, the paper's setting for the ranking experiments.
    pub events_to_measure: Option<usize>,
    /// Events whose pairs the interaction ranker examines (10 in the
    /// paper's figures).
    pub interaction_top_k: usize,
    /// Consecutive sampling intervals averaged into one training example
    /// (see [`collector::aggregate_windows`]); 1 disables aggregation.
    pub aggregation_window: usize,
    /// Base seed for all randomness.
    pub seed: u64,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            pmu: PmuConfig::default(),
            cleaner: CleanerConfig::default(),
            importance: ImportanceConfig::default(),
            runs_per_benchmark: 3,
            events_to_measure: None,
            interaction_top_k: 10,
            aggregation_window: 1,
            seed: 0,
        }
    }
}

/// The complete analysis of one benchmark.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The benchmark analyzed.
    pub benchmark: Benchmark,
    /// EIR outcome: error curve, MAPM, importance ranking.
    pub eir: EirResult,
    /// Interaction ranking over the top events.
    pub interactions: Vec<PairInteraction>,
    /// Total outliers replaced during cleaning.
    pub outliers_replaced: usize,
    /// Total missing values filled during cleaning.
    pub missing_filled: usize,
}

/// The pipeline facade: owns the catalog, the store, and the component
/// configurations.
///
/// # Examples
///
/// ```no_run
/// use counterminer::{CounterMiner, MinerConfig};
/// use cm_sim::Benchmark;
///
/// let mut miner = CounterMiner::new(MinerConfig::default());
/// let report = miner.analyze(Benchmark::Wordcount)?;
/// for (event, importance) in report.eir.top(3) {
///     println!("{event}: {importance:.1}%");
/// }
/// # Ok::<(), counterminer::CmError>(())
/// ```
#[derive(Debug)]
pub struct CounterMiner {
    catalog: EventCatalog,
    config: MinerConfig,
    db: Database,
}

impl CounterMiner {
    /// Creates a pipeline over the Haswell-E model catalog.
    pub fn new(config: MinerConfig) -> Self {
        CounterMiner {
            catalog: EventCatalog::haswell(),
            config,
            db: Database::new(),
        }
    }

    /// The event catalog.
    pub fn catalog(&self) -> &EventCatalog {
        &self.catalog
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// The two-level store of collected runs.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Collects (and stores) the configured number of multiplexed runs
    /// of a benchmark.
    ///
    /// # Errors
    ///
    /// Returns a store error when the same benchmark is collected twice.
    pub fn collect(&mut self, benchmark: Benchmark) -> Result<Vec<SimRun>, CmError> {
        let workload = Workload::new(benchmark, &self.catalog);
        let n_events = self
            .config
            .events_to_measure
            .unwrap_or(self.catalog.len())
            .min(self.catalog.len());
        let events = workload.top_event_ids(&self.catalog, n_events);
        let runs = collector::collect_runs(
            &workload,
            &events,
            SampleMode::Mlpx,
            self.config.runs_per_benchmark,
            &self.config.pmu,
            self.config.seed,
        );
        collector::store_runs(&mut self.db, &runs)?;
        Ok(runs)
    }

    /// Runs the full pipeline on one benchmark: collect, clean, build
    /// the dataset, EIR-rank importance, rank interactions among the top
    /// events.
    ///
    /// Each stage is wrapped in a [`cm_obs`] span (`analyze/collect`,
    /// `analyze/clean`, …), so running with `CM_OBS=summary` (or the
    /// CLI's `--metrics`) prints a per-stage wall-time tree afterwards.
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_sim::Benchmark;
    /// use counterminer::{CounterMiner, ImportanceConfig, MinerConfig};
    ///
    /// let mut miner = CounterMiner::new(MinerConfig {
    ///     runs_per_benchmark: 1,
    ///     events_to_measure: Some(12),
    ///     ..MinerConfig::default()
    /// });
    /// let report = miner.analyze(Benchmark::Sort)?;
    /// assert!(!report.eir.ranking.is_empty());
    /// assert!(!report.interactions.is_empty());
    /// # Ok::<(), counterminer::CmError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn analyze(&mut self, benchmark: Benchmark) -> Result<AnalysisReport, CmError> {
        let _analyze = cm_obs::span!("analyze", benchmark = benchmark.name());
        cm_obs::counter_add("pipeline.analyses", 1);

        let runs = {
            let _s = cm_obs::span!("collect");
            self.collect(benchmark)?
        };
        let events: Vec<EventId> = runs[0].record.events().collect();

        // Clean per-series and tally what the cleaner did.
        let cleaner = DataCleaner::new(self.config.cleaner);
        let mut outliers_replaced = 0;
        let mut missing_filled = 0;
        {
            let _s = cm_obs::span!("clean");
            for run in &runs {
                for (_, series) in run.record.iter() {
                    let (_, report) = cleaner.clean_series(series)?;
                    outliers_replaced += report.outliers_replaced;
                    missing_filled += report.missing_filled;
                }
            }
        }

        let data = {
            let _s = cm_obs::span!("dataset");
            let data = collector::build_dataset(&runs, &events, Some(&cleaner))?;
            let data = collector::aggregate_windows(&data, self.config.aggregation_window)?;
            collector::normalize_columns(&data)?
        };

        let ranker = ImportanceRanker::new(self.config.importance);
        let eir = {
            let _s = cm_obs::span!("eir");
            ranker.rank(&data, &events)?
        };

        let _s = cm_obs::span!("interactions");
        let top: Vec<EventId> = eir
            .top(self.config.interaction_top_k)
            .iter()
            .map(|&(e, _)| e)
            .collect();
        // The interaction surface comes from the MAPM, which was trained
        // on the pruned column set.
        let mapm_cols: Vec<usize> = eir
            .mapm_events
            .iter()
            .map(|e| events.iter().position(|x| x == e).expect("mapm event"))
            .collect();
        let mapm_data = data.select_features(&mapm_cols)?;
        let interactions = InteractionRanker::new().rank_pairs_additive(
            &eir.mapm,
            &eir.mapm_events,
            &mapm_data,
            &top,
        )?;
        drop(_s);

        Ok(AnalysisReport {
            benchmark,
            eir,
            interactions,
            outliers_replaced,
            missing_filled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_ml::{SgbrtConfig, TreeConfig};

    /// A configuration small enough for debug-mode tests.
    fn tiny_config() -> MinerConfig {
        MinerConfig {
            runs_per_benchmark: 1,
            events_to_measure: Some(14),
            importance: ImportanceConfig {
                sgbrt: SgbrtConfig {
                    n_trees: 40,
                    tree: TreeConfig {
                        max_depth: 3,
                        ..TreeConfig::default()
                    },
                    ..SgbrtConfig::default()
                },
                prune_step: 3,
                min_events: 8,
                ..ImportanceConfig::default()
            },
            interaction_top_k: 4,
            ..MinerConfig::default()
        }
    }

    #[test]
    fn end_to_end_analysis_runs() {
        let mut miner = CounterMiner::new(tiny_config());
        let report = miner.analyze(Benchmark::Wordcount).unwrap();
        assert_eq!(report.benchmark, Benchmark::Wordcount);
        assert!(!report.eir.ranking.is_empty());
        assert_eq!(report.interactions.len(), 4 * 3 / 2);
        // Multiplexing 14 events on 4 counters produces dirty data the
        // cleaner acts on.
        assert!(report.outliers_replaced + report.missing_filled > 0);
        // The collected runs are in the store.
        assert_eq!(miner.database().run_count(), 1);
    }

    #[test]
    fn top_ranked_event_is_a_dominant_profile_event() {
        let mut miner = CounterMiner::new(MinerConfig {
            runs_per_benchmark: 2,
            ..tiny_config()
        });
        let report = miner.analyze(Benchmark::Wordcount).unwrap();
        let profile = Benchmark::Wordcount.importance_profile();
        let top_abbrevs: Vec<&str> = report
            .eir
            .top(4)
            .iter()
            .map(|&(e, _)| miner.catalog().info(e).abbrev())
            .collect();
        // At least one of the benchmark's dominant events must appear in
        // the recovered top-4 (the full-scale check lives in the
        // integration suite; this is the smoke version).
        assert!(
            top_abbrevs.iter().any(|a| profile[..3].contains(a)),
            "top events {top_abbrevs:?} missed all of {:?}",
            &profile[..3]
        );
    }

    /// The pipeline must run under either trainer; the default config
    /// ([`cm_ml::Trainer::default`]) is exercised by the other tests, so
    /// this pins the exact path explicitly.
    #[test]
    fn analysis_runs_with_exact_trainer() {
        let mut config = tiny_config();
        config.importance.sgbrt.trainer = cm_ml::Trainer::Exact;
        let mut miner = CounterMiner::new(config);
        let report = miner.analyze(Benchmark::Sort).unwrap();
        assert!(!report.eir.ranking.is_empty());
        assert_eq!(report.interactions.len(), 4 * 3 / 2);
    }

    #[test]
    fn double_collect_is_rejected() {
        let mut miner = CounterMiner::new(tiny_config());
        miner.collect(Benchmark::Scan).unwrap();
        assert!(miner.collect(Benchmark::Scan).is_err());
    }
}
