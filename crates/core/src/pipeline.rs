//! The end-to-end CounterMiner pipeline (Fig. 4): data collector →
//! two-level store → data cleaner → importance ranker → interaction
//! ranker.

use crate::{
    collector, snapshot, CleanerConfig, CleanerKind, CmError, DataCleaner, EirResult,
    ImportanceConfig, ImportanceRanker, InteractionRanker, PairInteraction, VarianceAggregate,
};
use cm_events::{EventCatalog, EventId, RunRecord, SampleMode};
use cm_sim::{Benchmark, PmuConfig, SimRun, Workload};
use cm_store::{Database, Store};
use std::collections::BTreeMap;

/// Pipeline configuration.
///
/// # Examples
///
/// ```
/// use counterminer::MinerConfig;
///
/// // Downscale the defaults for a quick exploratory run.
/// let config = MinerConfig {
///     runs_per_benchmark: 1,
///     events_to_measure: Some(20),
///     ..MinerConfig::default()
/// };
/// assert_eq!(config.interaction_top_k, 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinerConfig {
    /// The simulated PMU.
    pub pmu: PmuConfig,
    /// Data-cleaner settings.
    pub cleaner: CleanerConfig,
    /// Which cleaner estimator runs: the point cleaner or the
    /// uncertainty-aware `bayes` mode. Both reconstruct identical
    /// values; `bayes` additionally propagates per-value variances into
    /// importance confidence intervals and the ranking-stability score.
    pub cleaner_kind: CleanerKind,
    /// Importance-ranker (EIR) settings.
    pub importance: ImportanceConfig,
    /// Profiled runs collected per benchmark.
    pub runs_per_benchmark: usize,
    /// How many events to measure (multiplexed); `None` measures the
    /// whole catalog, the paper's setting for the ranking experiments.
    pub events_to_measure: Option<usize>,
    /// Events whose pairs the interaction ranker examines (10 in the
    /// paper's figures).
    pub interaction_top_k: usize,
    /// Consecutive sampling intervals averaged into one training example
    /// (see [`collector::aggregate_windows`]); 1 disables aggregation.
    pub aggregation_window: usize,
    /// Base seed for all randomness.
    pub seed: u64,
}

impl Default for MinerConfig {
    fn default() -> Self {
        MinerConfig {
            pmu: PmuConfig::default(),
            cleaner: CleanerConfig::default(),
            cleaner_kind: CleanerKind::default(),
            importance: ImportanceConfig::default(),
            runs_per_benchmark: 3,
            events_to_measure: None,
            interaction_top_k: 10,
            aggregation_window: 1,
            seed: 0,
        }
    }
}

/// The complete analysis of one benchmark.
#[derive(Debug)]
pub struct AnalysisReport {
    /// The benchmark analyzed.
    pub benchmark: Benchmark,
    /// Which cleaner estimator produced the underlying data.
    pub cleaner: CleanerKind,
    /// EIR outcome: error curve, MAPM, importance ranking — plus, in
    /// `bayes` mode, importance confidence intervals and the
    /// ranking-stability score via [`EirResult::uncertainty`].
    pub eir: EirResult,
    /// Interaction ranking over the top events.
    pub interactions: Vec<PairInteraction>,
    /// Total outliers replaced during cleaning.
    pub outliers_replaced: usize,
    /// Total missing values filled during cleaning.
    pub missing_filled: usize,
}

/// The outcome of [`CounterMiner::ingest`]: what was collected (or
/// found already persisted) in the columnar store.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IngestSummary {
    /// `true` when a matching snapshot was already committed and no
    /// collection happened.
    pub resumed: bool,
    /// Number of runs in the snapshot.
    pub runs: usize,
    /// Number of measured events per run.
    pub events: usize,
    /// Total outliers the cleaner replaced.
    pub outliers_replaced: usize,
    /// Total missing values the cleaner filled.
    pub missing_filled: usize,
}

/// The pipeline facade: owns the catalog, the store, and the component
/// configurations.
///
/// # Examples
///
/// ```no_run
/// use counterminer::{CounterMiner, MinerConfig};
/// use cm_sim::Benchmark;
///
/// let mut miner = CounterMiner::new(MinerConfig::default());
/// let report = miner.analyze(Benchmark::Wordcount)?;
/// for (event, importance) in report.eir.top(3) {
///     println!("{event}: {importance:.1}%");
/// }
/// # Ok::<(), counterminer::CmError>(())
/// ```
#[derive(Debug)]
pub struct CounterMiner {
    catalog: EventCatalog,
    config: MinerConfig,
    db: Database,
}

impl CounterMiner {
    /// Creates a pipeline over the Haswell-E model catalog.
    pub fn new(config: MinerConfig) -> Self {
        CounterMiner {
            catalog: EventCatalog::haswell(),
            config,
            db: Database::new(),
        }
    }

    /// The event catalog.
    pub fn catalog(&self) -> &EventCatalog {
        &self.catalog
    }

    /// The pipeline configuration.
    pub fn config(&self) -> &MinerConfig {
        &self.config
    }

    /// The two-level store of collected runs.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Resolves the concrete event set the collector will measure for a
    /// benchmark under the current configuration. This is what the
    /// snapshot fingerprint hashes: the *set*, not just its size.
    pub(crate) fn resolve_events(&self, benchmark: Benchmark) -> cm_events::EventSet {
        let workload = Workload::new(benchmark, &self.catalog);
        let n_events = self
            .config
            .events_to_measure
            .unwrap_or(self.catalog.len())
            .min(self.catalog.len());
        workload.top_event_ids(&self.catalog, n_events)
    }

    /// Collects (and stores) the configured number of multiplexed runs
    /// of a benchmark.
    ///
    /// # Errors
    ///
    /// Returns a store error when the same benchmark is collected twice.
    pub fn collect(&mut self, benchmark: Benchmark) -> Result<Vec<SimRun>, CmError> {
        let workload = Workload::new(benchmark, &self.catalog);
        let events = self.resolve_events(benchmark);
        let runs = collector::collect_runs(
            &workload,
            &events,
            SampleMode::Mlpx,
            self.config.runs_per_benchmark,
            &self.config.pmu,
            self.config.seed,
        );
        collector::store_runs(&mut self.db, &runs)?;
        Ok(runs)
    }

    /// Runs the full pipeline on one benchmark: collect, clean, build
    /// the dataset, EIR-rank importance, rank interactions among the top
    /// events.
    ///
    /// Each stage is wrapped in a [`cm_obs`] span (`analyze/collect`,
    /// `analyze/clean`, …), so running with `CM_OBS=summary` (or the
    /// CLI's `--metrics`) prints a per-stage wall-time tree afterwards.
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_sim::Benchmark;
    /// use counterminer::{CounterMiner, ImportanceConfig, MinerConfig};
    ///
    /// let mut miner = CounterMiner::new(MinerConfig {
    ///     runs_per_benchmark: 1,
    ///     events_to_measure: Some(12),
    ///     ..MinerConfig::default()
    /// });
    /// let report = miner.analyze(Benchmark::Sort)?;
    /// assert!(!report.eir.ranking.is_empty());
    /// assert!(!report.interactions.is_empty());
    /// # Ok::<(), counterminer::CmError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates failures from any stage.
    pub fn analyze(&mut self, benchmark: Benchmark) -> Result<AnalysisReport, CmError> {
        let _analyze = cm_obs::span!("analyze", benchmark = benchmark.name());
        cm_obs::counter_add("pipeline.analyses", 1);

        let runs = {
            let _s = cm_obs::span!("collect");
            self.collect(benchmark)?
        };
        let events: Vec<EventId> = runs[0].record.events().collect();

        // Clean per-series and tally what the cleaner did. In bayes
        // mode, also fold every series' reconstruction variances into
        // per-event column aggregates (merged in run order, so the sums
        // are reproducible at any thread count).
        let cleaner = DataCleaner::new(self.config.cleaner);
        let mut outliers_replaced = 0;
        let mut missing_filled = 0;
        let mut uncertainty: Option<Vec<VarianceAggregate>> = match self.config.cleaner_kind {
            CleanerKind::Bayes => Some(vec![VarianceAggregate::default(); events.len()]),
            CleanerKind::Point => None,
        };
        {
            let _s = cm_obs::span!("clean");
            for run in &runs {
                for (column, (_, series)) in run.record.iter().enumerate() {
                    let report = match uncertainty.as_mut() {
                        Some(aggregates) => {
                            let (clean, report, series_uncertainty) =
                                cleaner.clean_series_bayes(series)?;
                            aggregates[column]
                                .merge(&VarianceAggregate::of_series(&clean, &series_uncertainty));
                            report
                        }
                        None => cleaner.clean_series(series)?.1,
                    };
                    outliers_replaced += report.outliers_replaced;
                    missing_filled += report.missing_filled;
                }
            }
        }

        self.model_and_rank(
            benchmark,
            &runs,
            &events,
            Some(&cleaner),
            uncertainty.as_deref(),
            outliers_replaced,
            missing_filled,
        )
    }

    /// Runs the pipeline against a persistent [`Store`], resuming from a
    /// committed snapshot when one matches the current configuration.
    ///
    /// The first call per (benchmark, collection configuration) is a
    /// *cold* run: it collects and cleans exactly as [`Self::analyze`]
    /// does, persists the raw series, cleaned series, per-run IPC, and
    /// cleaner tallies into `store` (committed atomically), and then
    /// models and ranks. Every later call with a matching configuration
    /// fingerprint is a *warm* run: PMU collection and cleaning are
    /// skipped entirely and the cleaned data is read back from the store.
    /// Cleaning is deterministic and the store round-trips `f64` values
    /// bit-exactly, so warm results are bit-identical to cold ones.
    ///
    /// Emits `pipeline.resume.hits` / `pipeline.resume.misses` counters
    /// through [`cm_obs`]; on a warm run the `collector.runs` and
    /// `cleaner.*` counters stay untouched — that is the observable proof
    /// the expensive stages were skipped.
    ///
    /// # Errors
    ///
    /// Propagates stage failures as [`Self::analyze`] does, plus store
    /// errors: a snapshot whose fingerprint matches but whose data is
    /// corrupt (checksum mismatch, truncation) is reported, never
    /// silently re-collected.
    pub fn analyze_with_store(
        &mut self,
        benchmark: Benchmark,
        store: &mut Store,
    ) -> Result<AnalysisReport, CmError> {
        let _analyze = cm_obs::span!("analyze", benchmark = benchmark.name());
        cm_obs::counter_add("pipeline.analyses", 1);

        let measured = self.resolve_events(benchmark);
        let fp = snapshot::fingerprint(benchmark, &self.config, measured.as_slice());
        let resumed = {
            let _s = cm_obs::span!("resume.probe");
            snapshot::load(store, benchmark, fp)?
        };
        let snap = match resumed {
            Some(snap) => {
                cm_obs::counter_add("pipeline.resume.hits", 1);
                snap
            }
            None => {
                cm_obs::counter_add("pipeline.resume.misses", 1);
                self.collect_and_persist(benchmark, fp, &measured, store)?
            }
        };
        self.model_and_rank(
            benchmark,
            &snap.runs,
            &snap.events,
            None,
            snap.uncertainty.as_deref(),
            snap.outliers_replaced,
            snap.missing_filled,
        )
    }

    /// The snapshot fingerprint the store-backed paths probe for: a hash
    /// of the collection knobs and the resolved event *set* for this
    /// benchmark under the current configuration. Two miners with equal
    /// fingerprints produce bit-identical snapshots — the key the
    /// serving layer uses to deduplicate identical analyze requests.
    pub fn snapshot_fingerprint(&self, benchmark: Benchmark) -> u64 {
        let measured = self.resolve_events(benchmark);
        snapshot::fingerprint(benchmark, &self.config, measured.as_slice())
    }

    /// The warm, shared-read half of [`Self::analyze_with_store`]: if a
    /// snapshot matching the current configuration is committed in
    /// `store`, models and ranks from it and returns the report;
    /// otherwise returns `Ok(None)` without collecting anything.
    ///
    /// Unlike [`Self::analyze_with_store`] this needs only `&self` and
    /// `&Store`, so any number of threads can analyze from one store
    /// handle concurrently — the serving layer's hot path. (Its cold
    /// path first populates the store via [`Self::ingest`], which does
    /// take `&mut Store`.) Results are bit-identical to the other
    /// analyze paths; a warm hit counts `pipeline.resume.hits` exactly
    /// as resuming through `analyze_with_store` would.
    ///
    /// # Errors
    ///
    /// Propagates store and modeling failures; a fingerprint-matching
    /// but corrupt snapshot is an error, never a silent `None`.
    pub fn analyze_snapshot(
        &self,
        benchmark: Benchmark,
        store: &Store,
    ) -> Result<Option<AnalysisReport>, CmError> {
        let _analyze = cm_obs::span!("analyze", benchmark = benchmark.name());
        let fp = self.snapshot_fingerprint(benchmark);
        let snap = {
            let _s = cm_obs::span!("resume.probe");
            snapshot::load(store, benchmark, fp)?
        };
        let Some(snap) = snap else {
            return Ok(None);
        };
        cm_obs::counter_add("pipeline.analyses", 1);
        cm_obs::counter_add("pipeline.resume.hits", 1);
        self.model_and_rank(
            benchmark,
            &snap.runs,
            &snap.events,
            None,
            snap.uncertainty.as_deref(),
            snap.outliers_replaced,
            snap.missing_filled,
        )
        .map(Some)
    }

    /// Collects and cleans a benchmark and persists the snapshot into
    /// `store`, without modeling — `counterminer ingest`'s engine. A
    /// matching snapshot makes this a cheap no-op (`resumed: true`).
    ///
    /// # Errors
    ///
    /// Propagates collection, cleaning, and store failures.
    pub fn ingest(
        &self,
        benchmark: Benchmark,
        store: &mut Store,
    ) -> Result<IngestSummary, CmError> {
        let _s = cm_obs::span!("ingest", benchmark = benchmark.name());
        let measured = self.resolve_events(benchmark);
        let fp = snapshot::fingerprint(benchmark, &self.config, measured.as_slice());
        let (snap, resumed) = match snapshot::load(store, benchmark, fp)? {
            Some(snap) => {
                cm_obs::counter_add("pipeline.resume.hits", 1);
                (snap, true)
            }
            None => {
                cm_obs::counter_add("pipeline.resume.misses", 1);
                (
                    self.collect_and_persist(benchmark, fp, &measured, store)?,
                    false,
                )
            }
        };
        Ok(IngestSummary {
            resumed,
            runs: snap.runs.len(),
            events: snap.events.len(),
            outliers_replaced: snap.outliers_replaced,
            missing_filled: snap.missing_filled,
        })
    }

    /// The cold front half of the store-backed pipeline: collect exactly
    /// as `analyze` does (same seeds, same event selection), clean, and
    /// commit the snapshot. Keeps the runs out of the in-memory database
    /// — the columnar store is the system of record here. Returns the
    /// snapshot *re-read from the store*, so the cold path exercises the
    /// exact code the warm path will, and a store that cannot round-trip
    /// fails loudly on day one.
    fn collect_and_persist(
        &self,
        benchmark: Benchmark,
        fp: u64,
        measured: &cm_events::EventSet,
        store: &mut Store,
    ) -> Result<snapshot::Snapshot, CmError> {
        let runs = {
            let _s = cm_obs::span!("collect");
            let workload = Workload::new(benchmark, &self.catalog);
            collector::collect_runs(
                &workload,
                measured,
                SampleMode::Mlpx,
                self.config.runs_per_benchmark,
                &self.config.pmu,
                self.config.seed,
            )
        };
        let events: Vec<EventId> = runs[0].record.events().collect();

        // Clean every series once, up front, so the cleaned values can
        // be persisted; `analyze` instead cleans inside the dataset
        // builder, but the cleaner is deterministic so both orders
        // produce identical datasets.
        let cleaner = DataCleaner::new(self.config.cleaner);
        let mut outliers_replaced = 0;
        let mut missing_filled = 0;
        let mut uncertainty: Option<Vec<VarianceAggregate>> = match self.config.cleaner_kind {
            CleanerKind::Bayes => Some(vec![VarianceAggregate::default(); events.len()]),
            CleanerKind::Point => None,
        };
        let cleaned: Vec<SimRun> = {
            let _s = cm_obs::span!("clean");
            runs.iter()
                .map(|run| {
                    let mut record = RunRecord::new(
                        run.record.program(),
                        run.record.run_index(),
                        run.record.mode(),
                    );
                    record.set_exec_time_secs(run.record.exec_time_secs());
                    for (column, (event, series)) in run.record.iter().enumerate() {
                        let (clean, report) = match uncertainty.as_mut() {
                            Some(aggregates) => {
                                let (clean, report, series_uncertainty) =
                                    cleaner.clean_series_bayes(series)?;
                                aggregates[column].merge(&VarianceAggregate::of_series(
                                    &clean,
                                    &series_uncertainty,
                                ));
                                (clean, report)
                            }
                            None => cleaner.clean_series(series)?,
                        };
                        outliers_replaced += report.outliers_replaced;
                        missing_filled += report.missing_filled;
                        record.insert_series(event, clean);
                    }
                    Ok(SimRun {
                        record,
                        ipc: run.ipc.clone(),
                        true_counts: BTreeMap::new(),
                    })
                })
                .collect::<Result<_, CmError>>()?
        };

        let _s = cm_obs::span!("persist");
        let snap = snapshot::Snapshot {
            runs: cleaned,
            events,
            outliers_replaced,
            missing_filled,
            uncertainty,
        };
        snapshot::save(store, benchmark, fp, &runs, &snap)?;
        store.commit()?;
        snapshot::load(store, benchmark, fp)?.ok_or(CmError::Invalid(
            "snapshot vanished immediately after commit",
        ))
    }

    /// The shared back half of the pipeline: dataset assembly, EIR
    /// importance ranking, and interaction ranking. `cleaner` is `Some`
    /// when `runs` are raw (the in-memory path) and `None` when they were
    /// cleaned already (the store-resume path). `uncertainty` carries the
    /// per-event column variance aggregates in `bayes` mode.
    fn model_and_rank(
        &self,
        benchmark: Benchmark,
        runs: &[SimRun],
        events: &[EventId],
        cleaner: Option<&DataCleaner>,
        uncertainty: Option<&[VarianceAggregate]>,
        outliers_replaced: usize,
        missing_filled: usize,
    ) -> Result<AnalysisReport, CmError> {
        let data = {
            let _s = cm_obs::span!("dataset");
            let data = collector::build_dataset(runs, events, cleaner)?;
            let data = collector::aggregate_windows(&data, self.config.aggregation_window)?;
            collector::normalize_columns(&data)?
        };

        let column_uncertainty: Option<Vec<f64>> = uncertainty.map(|aggregates| {
            let total_variance: f64 = aggregates.iter().map(|a| a.sum_variance).sum();
            let reconstructed: u64 = aggregates.iter().map(|a| a.reconstructed).sum();
            // One point per analysis: how much uncertainty the cleaner
            // injected, against how many values it reconstructed.
            cm_obs::series_push("clean.variance.total", reconstructed as f64, total_variance);
            aggregates
                .iter()
                .map(VarianceAggregate::relative_uncertainty)
                .collect()
        });

        let ranker = ImportanceRanker::new(self.config.importance);
        let eir = {
            let _s = cm_obs::span!("eir");
            ranker.rank_with_uncertainty(&data, events, column_uncertainty.as_deref())?
        };

        let _s = cm_obs::span!("interactions");
        let top: Vec<EventId> = eir
            .top(self.config.interaction_top_k)
            .iter()
            .map(|&(e, _)| e)
            .collect();
        // The interaction surface comes from the MAPM, which was trained
        // on the pruned column set.
        let mapm_cols: Vec<usize> = eir
            .mapm_events
            .iter()
            .map(|e| events.iter().position(|x| x == e).expect("mapm event"))
            .collect();
        let mapm_data = data.select_features(&mapm_cols)?;
        let interactions = InteractionRanker::new().rank_pairs_additive(
            &eir.mapm,
            &eir.mapm_events,
            &mapm_data,
            &top,
        )?;
        drop(_s);

        Ok(AnalysisReport {
            benchmark,
            cleaner: self.config.cleaner_kind,
            eir,
            interactions,
            outliers_replaced,
            missing_filled,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_ml::{SgbrtConfig, TreeConfig};

    /// A configuration small enough for debug-mode tests.
    fn tiny_config() -> MinerConfig {
        MinerConfig {
            runs_per_benchmark: 1,
            events_to_measure: Some(14),
            importance: ImportanceConfig {
                sgbrt: SgbrtConfig {
                    n_trees: 40,
                    tree: TreeConfig {
                        max_depth: 3,
                        ..TreeConfig::default()
                    },
                    ..SgbrtConfig::default()
                },
                prune_step: 3,
                min_events: 8,
                ..ImportanceConfig::default()
            },
            interaction_top_k: 4,
            ..MinerConfig::default()
        }
    }

    #[test]
    fn end_to_end_analysis_runs() {
        let mut miner = CounterMiner::new(tiny_config());
        let report = miner.analyze(Benchmark::Wordcount).unwrap();
        assert_eq!(report.benchmark, Benchmark::Wordcount);
        assert!(!report.eir.ranking.is_empty());
        assert_eq!(report.interactions.len(), 4 * 3 / 2);
        // Multiplexing 14 events on 4 counters produces dirty data the
        // cleaner acts on.
        assert!(report.outliers_replaced + report.missing_filled > 0);
        // The collected runs are in the store.
        assert_eq!(miner.database().run_count(), 1);
    }

    #[test]
    fn top_ranked_event_is_a_dominant_profile_event() {
        let mut miner = CounterMiner::new(MinerConfig {
            runs_per_benchmark: 2,
            ..tiny_config()
        });
        let report = miner.analyze(Benchmark::Wordcount).unwrap();
        let profile = Benchmark::Wordcount.importance_profile();
        let top_abbrevs: Vec<&str> = report
            .eir
            .top(4)
            .iter()
            .map(|&(e, _)| miner.catalog().info(e).abbrev())
            .collect();
        // At least one of the benchmark's dominant events must appear in
        // the recovered top-4 (the full-scale check lives in the
        // integration suite; this is the smoke version).
        assert!(
            top_abbrevs.iter().any(|a| profile[..3].contains(a)),
            "top events {top_abbrevs:?} missed all of {:?}",
            &profile[..3]
        );
    }

    /// The pipeline must run under either trainer; the default config
    /// ([`cm_ml::Trainer::default`]) is exercised by the other tests, so
    /// this pins the exact path explicitly.
    #[test]
    fn analysis_runs_with_exact_trainer() {
        let mut config = tiny_config();
        config.importance.sgbrt.trainer = cm_ml::Trainer::Exact;
        let mut miner = CounterMiner::new(config);
        let report = miner.analyze(Benchmark::Sort).unwrap();
        assert!(!report.eir.ranking.is_empty());
        assert_eq!(report.interactions.len(), 4 * 3 / 2);
    }

    #[test]
    fn store_backed_analysis_resumes_bit_identically() {
        let dir = std::env::temp_dir().join(format!("cm_pipe_store_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = Store::open(dir.join("pipe.cmstore")).unwrap();

        let mut miner = CounterMiner::new(tiny_config());
        let cold = miner
            .analyze_with_store(Benchmark::Wordcount, &mut store)
            .unwrap();
        let warm = miner
            .analyze_with_store(Benchmark::Wordcount, &mut store)
            .unwrap();
        assert_eq!(cold.eir.ranking, warm.eir.ranking);
        assert_eq!(cold.outliers_replaced, warm.outliers_replaced);
        assert_eq!(cold.missing_filled, warm.missing_filled);
        let pairs = |r: &AnalysisReport| {
            r.interactions
                .iter()
                .map(|p| (p.pair, p.intensity, p.share))
                .collect::<Vec<_>>()
        };
        assert_eq!(pairs(&cold), pairs(&warm));
        // And the plain in-memory path agrees with both.
        let mut plain = CounterMiner::new(tiny_config());
        let baseline = plain.analyze(Benchmark::Wordcount).unwrap();
        assert_eq!(baseline.eir.ranking, warm.eir.ranking);

        // A changed collection knob is a miss, not stale data.
        let mut reseeded = CounterMiner::new(MinerConfig {
            seed: 42,
            ..tiny_config()
        });
        let other = reseeded
            .analyze_with_store(Benchmark::Wordcount, &mut store)
            .unwrap();
        assert!(!other.eir.ranking.is_empty());
    }

    /// The shared-read analyze path: `None` before any snapshot exists,
    /// and bit-identical to `analyze_with_store` once one is committed —
    /// all through `&self` + `&Store`.
    #[test]
    fn analyze_snapshot_is_warm_only_and_bit_identical() {
        let dir = std::env::temp_dir().join(format!("cm_pipe_snap_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = Store::open(dir.join("snap.cmstore")).unwrap();

        let miner = CounterMiner::new(tiny_config());
        assert!(miner
            .analyze_snapshot(Benchmark::Sort, &store)
            .unwrap()
            .is_none());

        let summary = miner.ingest(Benchmark::Sort, &mut store).unwrap();
        assert!(!summary.resumed);
        let warm = miner
            .analyze_snapshot(Benchmark::Sort, &store)
            .unwrap()
            .expect("snapshot committed by ingest");

        let mut oracle = CounterMiner::new(tiny_config());
        let full = oracle
            .analyze_with_store(Benchmark::Sort, &mut store)
            .unwrap();
        assert_eq!(warm.eir.ranking, full.eir.ranking);
        assert_eq!(warm.outliers_replaced, full.outliers_replaced);
        assert_eq!(warm.missing_filled, full.missing_filled);
        assert_eq!(
            miner.snapshot_fingerprint(Benchmark::Sort),
            oracle.snapshot_fingerprint(Benchmark::Sort)
        );
    }

    /// The tentpole guarantee: `bayes` mode changes no ranking, no error
    /// curve, no cleaner tallies — it only attaches uncertainty.
    #[test]
    fn bayes_analysis_matches_point_and_adds_uncertainty() {
        let mut point = CounterMiner::new(MinerConfig {
            cleaner_kind: CleanerKind::Point,
            ..tiny_config()
        });
        let mut bayes = CounterMiner::new(MinerConfig {
            cleaner_kind: CleanerKind::Bayes,
            ..tiny_config()
        });
        let p = point.analyze(Benchmark::Wordcount).unwrap();
        let b = bayes.analyze(Benchmark::Wordcount).unwrap();
        assert_eq!(p.eir.ranking, b.eir.ranking);
        assert_eq!(p.outliers_replaced, b.outliers_replaced);
        assert_eq!(p.missing_filled, b.missing_filled);
        assert_eq!(
            p.eir.iterations.iter().map(|i| i.error).collect::<Vec<_>>(),
            b.eir.iterations.iter().map(|i| i.error).collect::<Vec<_>>(),
        );
        assert_eq!(p.cleaner, CleanerKind::Point);
        assert_eq!(b.cleaner, CleanerKind::Bayes);
        assert!(p.eir.uncertainty.is_none());
        let uncertainty = b
            .eir
            .uncertainty
            .as_ref()
            .expect("bayes attaches uncertainty");
        assert!((0.0..=1.0).contains(&uncertainty.stability));
        assert_eq!(uncertainty.stds.len(), b.eir.ranking.len());
        // Dirty multiplexed data was reconstructed, so some column must
        // carry nonzero injected variance.
        assert!(uncertainty.stds.iter().all(|s| s.is_finite() && *s >= 0.0));
        assert!(b.eir.iterations.iter().all(|i| i.stability.is_some()));
    }

    /// A store ingested with one cleaner kind must not warm-start an
    /// analysis with the other: cross-kind resume is a miss, not a stale
    /// bit-identical hit.
    #[test]
    fn cross_cleaner_resume_is_a_miss() {
        let dir = std::env::temp_dir().join(format!("cm_pipe_kind_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = Store::open(dir.join("kind.cmstore")).unwrap();

        let point = CounterMiner::new(MinerConfig {
            cleaner_kind: CleanerKind::Point,
            ..tiny_config()
        });
        let bayes = CounterMiner::new(MinerConfig {
            cleaner_kind: CleanerKind::Bayes,
            ..tiny_config()
        });
        assert_ne!(
            point.snapshot_fingerprint(Benchmark::Sort),
            bayes.snapshot_fingerprint(Benchmark::Sort),
        );

        let cold_point = point.ingest(Benchmark::Sort, &mut store).unwrap();
        assert!(!cold_point.resumed);
        assert!(point.ingest(Benchmark::Sort, &mut store).unwrap().resumed);
        // Same store, other kind: a fresh collection, not a stale hit.
        let cold_bayes = bayes.ingest(Benchmark::Sort, &mut store).unwrap();
        assert!(!cold_bayes.resumed);
        assert!(bayes.ingest(Benchmark::Sort, &mut store).unwrap().resumed);
    }

    /// Warm bayes runs must replay the persisted variance aggregates
    /// bit-exactly: stability scores, stds, and intervals all identical
    /// to the cold run.
    #[test]
    fn bayes_store_resume_is_bit_identical() {
        let dir = std::env::temp_dir().join(format!("cm_pipe_bayes_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let mut store = Store::open(dir.join("bayes.cmstore")).unwrap();

        let mut miner = CounterMiner::new(MinerConfig {
            cleaner_kind: CleanerKind::Bayes,
            ..tiny_config()
        });
        let cold = miner
            .analyze_with_store(Benchmark::Wordcount, &mut store)
            .unwrap();
        let warm = miner
            .analyze_with_store(Benchmark::Wordcount, &mut store)
            .unwrap();
        assert_eq!(cold.eir.ranking, warm.eir.ranking);
        assert_eq!(cold.eir.uncertainty, warm.eir.uncertainty);
        assert_eq!(
            cold.eir
                .iterations
                .iter()
                .map(|i| i.stability)
                .collect::<Vec<_>>(),
            warm.eir
                .iterations
                .iter()
                .map(|i| i.stability)
                .collect::<Vec<_>>(),
        );
        // And both agree with the in-memory bayes path.
        let mut plain = CounterMiner::new(MinerConfig {
            cleaner_kind: CleanerKind::Bayes,
            ..tiny_config()
        });
        let baseline = plain.analyze(Benchmark::Wordcount).unwrap();
        assert_eq!(baseline.eir.ranking, warm.eir.ranking);
        assert_eq!(baseline.eir.uncertainty, warm.eir.uncertainty);
    }

    #[test]
    fn double_collect_is_rejected() {
        let mut miner = CounterMiner::new(tiny_config());
        miner.collect(Benchmark::Scan).unwrap();
        assert!(miner.collect(Benchmark::Scan).is_err());
    }
}
