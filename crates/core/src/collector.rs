//! The data collector (Section III-A): drives the (simulated) profiler,
//! stores runs in the two-level database, and assembles
//! model-training datasets from measured runs.

use crate::{CmError, DataCleaner};
use cm_events::{EventId, EventSet, SampleMode};
use cm_ml::Dataset;
use cm_sim::{PmuConfig, SimRun, Workload};
use cm_store::Database;

/// Collects `n_runs` runs of `workload` measuring `events` in the given
/// mode. Runs are simulated in parallel; run `i` uses run index `i`, so
/// the result is independent of the thread count.
pub fn collect_runs(
    workload: &Workload,
    events: &EventSet,
    mode: SampleMode,
    n_runs: usize,
    pmu: &PmuConfig,
    seed: u64,
) -> Vec<SimRun> {
    cm_obs::counter_add("collector.runs", n_runs as u64);
    pmu.simulate_batch(workload, events, mode, n_runs, seed)
}

/// Stores measured runs into the two-level database.
///
/// # Errors
///
/// Returns a store error if a run key collides with an existing one.
pub fn store_runs(db: &mut Database, runs: &[SimRun]) -> Result<(), CmError> {
    for run in runs {
        db.insert_run(run.record.clone())?;
    }
    Ok(())
}

/// Builds a supervised dataset from measured runs: one row per sampling
/// interval, one column per event in `events` order, target = measured
/// IPC of that interval.
///
/// When a cleaner is supplied, every event series is cleaned first
/// (the paper's pipeline order: clean, then model).
///
/// # Errors
///
/// Returns [`CmError::Invalid`] when `runs` is empty or an event was not
/// measured in some run; propagates cleaning errors.
pub fn build_dataset(
    runs: &[SimRun],
    events: &[EventId],
    cleaner: Option<&DataCleaner>,
) -> Result<Dataset, CmError> {
    if runs.is_empty() {
        return Err(CmError::Invalid("need at least one run to build a dataset"));
    }
    let mut rows = Vec::new();
    let mut targets = Vec::new();
    for run in runs {
        // Column-wise (per-event) cleaned series for this run.
        let mut columns = Vec::with_capacity(events.len());
        for &event in events {
            let series = run
                .record
                .series(event)
                .ok_or(CmError::Invalid("event missing from a run record"))?;
            let values = match cleaner {
                Some(c) => c.clean_series(series)?.0.into_values(),
                None => series.values().to_vec(),
            };
            columns.push(values);
        }
        let n = run.ipc.len();
        for t in 0..n {
            let row: Vec<f64> = columns.iter().map(|col| col[t]).collect();
            rows.push(row);
            targets.push(run.ipc.values()[t]);
        }
    }
    Dataset::new(rows, targets).map_err(CmError::Ml)
}

/// Aggregates consecutive rows into window means (features and target
/// alike), trading temporal resolution for lower per-example
/// measurement noise. The paper's training examples are similarly
/// coarser than raw sampling intervals (Section V-D counts ~100 usable
/// examples per multi-hundred-interval run).
///
/// A trailing partial window is dropped. `window = 1` is the identity.
///
/// # Errors
///
/// Returns [`CmError::Invalid`] when `window` is zero or exceeds the
/// dataset length.
pub fn aggregate_windows(data: &Dataset, window: usize) -> Result<Dataset, CmError> {
    if window == 0 {
        return Err(CmError::Invalid("aggregation window must be at least 1"));
    }
    if window > data.n_rows() {
        return Err(CmError::Invalid(
            "aggregation window exceeds the dataset length",
        ));
    }
    if window == 1 {
        return Ok(data.clone());
    }
    let mut rows = Vec::with_capacity(data.n_rows() / window);
    let mut targets = Vec::with_capacity(rows.capacity());
    let mut i = 0;
    while i + window <= data.n_rows() {
        let mut row = vec![0.0; data.n_features()];
        let mut y = 0.0;
        for j in i..i + window {
            for (acc, &v) in row.iter_mut().zip(data.row(j)) {
                *acc += v;
            }
            y += data.target(j);
        }
        for v in &mut row {
            *v /= window as f64;
        }
        rows.push(row);
        targets.push(y / window as f64);
        i += window;
    }
    Dataset::new(rows, targets).map_err(CmError::Ml)
}

/// Normalizes dataset columns to zero mean and unit variance (constant
/// columns are left at zero). Tree models are scale-invariant, but
/// normalization makes the interaction ranker's linear fits
/// well-conditioned when event magnitudes span six orders.
pub fn normalize_columns(data: &Dataset) -> Result<Dataset, CmError> {
    let n = data.n_rows() as f64;
    let width = data.n_features();
    let mut mean = vec![0.0; width];
    for row in data.rows() {
        for (m, &v) in mean.iter_mut().zip(row) {
            *m += v;
        }
    }
    for m in &mut mean {
        *m /= n;
    }
    let mut var = vec![0.0; width];
    for row in data.rows() {
        for ((s, &v), &m) in var.iter_mut().zip(row).zip(&mean) {
            *s += (v - m) * (v - m);
        }
    }
    let std: Vec<f64> = var.iter().map(|&s| (s / n).sqrt()).collect();
    let rows: Vec<Vec<f64>> = data
        .rows()
        .iter()
        .map(|row| {
            row.iter()
                .enumerate()
                .map(|(j, &v)| {
                    if std[j] > 0.0 {
                        (v - mean[j]) / std[j]
                    } else {
                        0.0
                    }
                })
                .collect()
        })
        .collect();
    Dataset::new(rows, data.targets().to_vec()).map_err(CmError::Ml)
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::EventCatalog;
    use cm_sim::Benchmark;

    fn setup() -> (EventCatalog, Workload, PmuConfig) {
        let c = EventCatalog::haswell();
        let w = Workload::new(Benchmark::Wordcount, &c);
        (c, w, PmuConfig::default())
    }

    #[test]
    fn collect_and_store() {
        let (c, w, pmu) = setup();
        let events = w.top_event_ids(&c, 6);
        let runs = collect_runs(&w, &events, SampleMode::Mlpx, 2, &pmu, 1);
        assert_eq!(runs.len(), 2);
        let mut db = Database::new();
        store_runs(&mut db, &runs).unwrap();
        assert_eq!(db.run_count(), 2);
        // Same keys again collide.
        assert!(store_runs(&mut db, &runs).is_err());
    }

    #[test]
    fn dataset_rows_match_intervals() {
        let (c, w, pmu) = setup();
        let events = w.top_event_ids(&c, 5);
        let runs = collect_runs(&w, &events, SampleMode::Mlpx, 2, &pmu, 2);
        let ids: Vec<EventId> = events.iter().collect();
        let data = build_dataset(&runs, &ids, None).unwrap();
        let expected: usize = runs.iter().map(|r| r.intervals()).sum();
        assert_eq!(data.n_rows(), expected);
        assert_eq!(data.n_features(), 5);
    }

    #[test]
    fn cleaning_changes_dirty_columns() {
        let (c, w, pmu) = setup();
        let events = w.top_event_ids(&c, 12); // multiplexed -> dirty
        let runs = collect_runs(&w, &events, SampleMode::Mlpx, 1, &pmu, 3);
        let ids: Vec<EventId> = events.iter().collect();
        let raw = build_dataset(&runs, &ids, None).unwrap();
        let cleaner = DataCleaner::default();
        let clean = build_dataset(&runs, &ids, Some(&cleaner)).unwrap();
        assert_eq!(raw.n_rows(), clean.n_rows());
        assert_ne!(raw.rows(), clean.rows());
    }

    #[test]
    fn missing_event_is_reported() {
        let (c, w, pmu) = setup();
        let events = w.top_event_ids(&c, 3);
        let runs = collect_runs(&w, &events, SampleMode::Ocoe, 1, &pmu, 4);
        let bogus = vec![EventId::new(200)];
        assert!(build_dataset(&runs, &bogus, None).is_err());
        assert!(build_dataset(&[], &bogus, None).is_err());
    }

    #[test]
    fn aggregation_averages_windows() {
        let rows: Vec<Vec<f64>> = (0..7).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = (0..7).map(|i| 10.0 * i as f64).collect();
        let data = Dataset::new(rows, y).unwrap();
        let agg = aggregate_windows(&data, 3).unwrap();
        assert_eq!(agg.n_rows(), 2); // trailing partial window dropped
        assert_eq!(agg.row(0), &[1.0]);
        assert_eq!(agg.row(1), &[4.0]);
        assert_eq!(agg.targets(), &[10.0, 40.0]);
        // Identity and validation.
        assert_eq!(aggregate_windows(&data, 1).unwrap(), data);
        assert!(aggregate_windows(&data, 0).is_err());
        assert!(aggregate_windows(&data, 8).is_err());
    }

    #[test]
    fn normalization_standardizes_columns() {
        let rows = vec![
            vec![10.0, 5.0, 1.0],
            vec![20.0, 5.0, 2.0],
            vec![30.0, 5.0, 3.0],
        ];
        let data = Dataset::new(rows, vec![1.0, 2.0, 3.0]).unwrap();
        let normed = normalize_columns(&data).unwrap();
        // Column 0 standardized.
        let col0: Vec<f64> = normed.rows().iter().map(|r| r[0]).collect();
        assert!((col0.iter().sum::<f64>()).abs() < 1e-9);
        // Constant column 1 becomes zeros.
        assert!(normed.rows().iter().all(|r| r[1] == 0.0));
        // Targets untouched.
        assert_eq!(normed.targets(), data.targets());
    }
}
