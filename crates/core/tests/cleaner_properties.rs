//! Property-based tests for the data cleaner's invariants.

use cm_events::TimeSeries;
use counterminer::{choose_n, CleanerConfig, DataCleaner};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cleaning_never_panics_and_reports_consistently(
        values in prop::collection::vec(0.0..1.0e9f64, 1..256),
    ) {
        let cleaner = DataCleaner::default();
        let series = TimeSeries::from_values(values);
        let (cleaned, report) = cleaner.clean_series(&series).unwrap();
        prop_assert_eq!(cleaned.len(), series.len());
        // Every original zero was either filled or kept.
        prop_assert!(report.missing_filled + report.zeros_kept <= series.len());
        prop_assert!(report.n_used >= 0.5);
    }

    #[test]
    fn cleaned_values_never_exceed_threshold(
        mut values in prop::collection::vec(10.0..1.0e3f64, 32..128),
        spike_at in 0usize..32,
        spike in 1.0e5..1.0e7f64,
    ) {
        values[spike_at] = spike;
        let cleaner = DataCleaner::default();
        let (cleaned, report) = cleaner
            .clean_series(&TimeSeries::from_values(values))
            .unwrap();
        for v in cleaned.iter() {
            prop_assert!(
                v <= report.threshold * (1.0 + 1e-9),
                "value {v} above threshold {}",
                report.threshold
            );
        }
    }

    #[test]
    fn filled_values_stay_within_valid_range(
        values in prop::collection::vec(100.0..1.0e4f64, 16..96),
        zeros in prop::collection::vec(0usize..96, 1..8),
    ) {
        let mut v = values.clone();
        for &z in &zeros {
            if z < v.len() {
                v[z] = 0.0;
            }
        }
        let valid_min = v.iter().copied().filter(|&x| x > 0.0).fold(f64::INFINITY, f64::min);
        let valid_max = v.iter().copied().filter(|&x| x > 0.0).fold(0.0f64, f64::max);
        let cleaner = DataCleaner::default();
        let (cleaned, report) = cleaner
            .clean_series(&TimeSeries::from_values(v))
            .unwrap();
        if report.missing_filled > 0 {
            prop_assert_eq!(cleaned.zero_count(), 0);
            for x in cleaned.iter() {
                // Filled values interpolate among valid neighbours and
                // outlier replacement uses medians: always in range.
                prop_assert!(x >= valid_min - 1e-9 && x <= valid_max + 1e-9);
            }
        }
    }

    #[test]
    fn choose_n_returns_a_candidate(data in prop::collection::vec(-1.0e6..1.0e6f64, 1..128)) {
        let n = choose_n(&data, 0.99).unwrap();
        prop_assert!([3.0, 4.0, 5.0, 6.0, 7.0].contains(&n));
    }

    #[test]
    fn fixed_n_bypasses_distribution_testing(
        values in prop::collection::vec(1.0..100.0f64, 8..64),
        n in 1.0..8.0f64,
    ) {
        let cleaner = DataCleaner::new(CleanerConfig {
            fixed_n: Some(n),
            ..CleanerConfig::default()
        });
        let (_, report) = cleaner
            .clean_series(&TimeSeries::from_values(values))
            .unwrap();
        prop_assert_eq!(report.n_used, n);
    }
}
