//! Reporters over a drained [`Snapshot`]: a human-readable tree summary
//! and machine-readable JSON lines.

use crate::{Mode, Registry, Snapshot};
use std::fmt::Write as _;

/// Renders the human-readable summary: the span tree (wall time, entry
/// counts), then counters, gauges, labels, histograms, and series.
///
/// # Examples
///
/// ```
/// cm_obs::set_mode(cm_obs::Mode::Summary);
/// {
///     let _s = cm_obs::span!("clean");
///     cm_obs::counter_add("cleaner.outliers_replaced", 17);
/// }
/// let text = cm_obs::render_summary(&cm_obs::Registry::global().drain());
/// assert!(text.contains("clean"));
/// assert!(text.contains("cleaner.outliers_replaced"));
/// cm_obs::set_mode(cm_obs::Mode::Off);
/// ```
pub fn render_summary(snap: &Snapshot) -> String {
    let mut out = String::new();
    if !snap.spans.is_empty() {
        out.push_str("spans (wall time):\n");
        render_span_tree(&mut out, snap);
    }
    if !snap.counters.is_empty() {
        out.push_str("counters:\n");
        for (name, value) in &snap.counters {
            let _ = writeln!(out, "  {name:<44} {value}");
        }
    }
    if !snap.gauges.is_empty() {
        out.push_str("gauges:\n");
        for (name, value) in &snap.gauges {
            let _ = writeln!(out, "  {name:<44} {value}");
        }
    }
    if !snap.labels.is_empty() {
        out.push_str("labels:\n");
        for (name, value) in &snap.labels {
            let _ = writeln!(out, "  {name:<44} {value}");
        }
    }
    if !snap.histograms.is_empty() {
        out.push_str("histograms (value: count):\n");
        for name in snap.histograms.keys() {
            let pairs: Vec<String> = snap
                .histogram(name)
                .into_iter()
                .map(|(v, c)| format!("{v}: {c}"))
                .collect();
            let _ = writeln!(out, "  {name:<44} {{{}}}", pairs.join(", "));
        }
    }
    if !snap.series.is_empty() {
        out.push_str("series (x -> y):\n");
        for (name, points) in &snap.series {
            let rendered: Vec<String> = points
                .iter()
                .map(|(x, y)| format!("{x} -> {y:.4}"))
                .collect();
            let _ = writeln!(out, "  {name:<44} [{}]", rendered.join(", "));
        }
    }
    out
}

/// Spans sorted by path double as a preorder tree walk: a span's
/// children sort immediately after it. Depth = number of separators.
fn render_span_tree(out: &mut String, snap: &Snapshot) {
    for (path, stat) in &snap.spans {
        let depth = path.matches('/').count();
        let name = path.rsplit('/').next().unwrap_or(path);
        let indent = "  ".repeat(depth + 1);
        let label = format!("{indent}{name}");
        let _ = writeln!(
            out,
            "{label:<46} {:>10.3} ms  x{}",
            stat.total_ns as f64 / 1e6,
            stat.count
        );
    }
}

/// Renders machine-readable JSON lines: one object per span, counter,
/// gauge, label, histogram, and series.
///
/// Spans carry `path`, `count`, and `total_ms`; series carry their full
/// point list (`[[x, y], …]`) — for the EIR curve that is the paper's
/// per-round `(events, cv_error)` data. Only `total_ms`/`total_ns`
/// fields are thread-count dependent.
///
/// # Examples
///
/// ```
/// cm_obs::set_mode(cm_obs::Mode::Json(None));
/// cm_obs::series_push("eir.cv_error", 60.0, 0.0825);
/// let lines = cm_obs::render_json(&cm_obs::Registry::global().drain());
/// assert_eq!(
///     lines.trim(),
///     r#"{"type":"series","name":"eir.cv_error","points":[[60,0.0825]]}"#
/// );
/// cm_obs::set_mode(cm_obs::Mode::Off);
/// ```
pub fn render_json(snap: &Snapshot) -> String {
    let mut out = String::new();
    for (path, stat) in &snap.spans {
        let _ = writeln!(
            out,
            r#"{{"type":"span","path":{},"count":{},"total_ms":{}}}"#,
            json_string(path),
            stat.count,
            json_f64(stat.total_ns as f64 / 1e6)
        );
    }
    for (name, value) in &snap.counters {
        let _ = writeln!(
            out,
            r#"{{"type":"counter","name":{},"value":{value}}}"#,
            json_string(name)
        );
    }
    for (name, value) in &snap.gauges {
        let _ = writeln!(
            out,
            r#"{{"type":"gauge","name":{},"value":{}}}"#,
            json_string(name),
            json_f64(*value)
        );
    }
    for (name, value) in &snap.labels {
        let _ = writeln!(
            out,
            r#"{{"type":"label","name":{},"value":{}}}"#,
            json_string(name),
            json_string(value)
        );
    }
    for name in snap.histograms.keys() {
        let buckets: Vec<String> = snap
            .histogram(name)
            .into_iter()
            .map(|(v, c)| format!("[{},{c}]", json_f64(v)))
            .collect();
        let _ = writeln!(
            out,
            r#"{{"type":"histogram","name":{},"buckets":[{}]}}"#,
            json_string(name),
            buckets.join(",")
        );
    }
    for (name, points) in &snap.series {
        let rendered: Vec<String> = points
            .iter()
            .map(|(x, y)| format!("[{},{}]", json_f64(*x), json_f64(*y)))
            .collect();
        let _ = writeln!(
            out,
            r#"{{"type":"series","name":{},"points":[{}]}}"#,
            json_string(name),
            rendered.join(",")
        );
    }
    out
}

/// JSON string literal with the escapes the span/metric names can need.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// JSON number: finite floats as shortest round-trip decimal;
/// non-finite values (invalid JSON) as null.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Drains the global registry and emits it per the current [`Mode`]:
/// nothing when off, the tree summary to stderr, or JSON lines to
/// stderr / the configured file. The CLI calls this once on exit; a
/// write failure is reported to stderr rather than propagated.
pub fn report() {
    match crate::mode() {
        Mode::Off => {}
        Mode::Summary => eprint!("{}", render_summary(&Registry::global().drain())),
        Mode::Json(path) => {
            let text = render_json(&Registry::global().drain());
            match path {
                None => eprint!("{text}"),
                Some(path) => {
                    if let Err(e) = std::fs::write(&path, &text) {
                        eprintln!("cm-obs: cannot write metrics to {path}: {e}");
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpanStat;
    use std::collections::BTreeMap;

    fn sample_snapshot() -> Snapshot {
        let mut snap = Snapshot::default();
        snap.spans.insert(
            "analyze".into(),
            SpanStat {
                count: 1,
                total_ns: 2_000_000,
            },
        );
        snap.spans.insert(
            "analyze/eir".into(),
            SpanStat {
                count: 1,
                total_ns: 1_500_000,
            },
        );
        snap.counters.insert("eir.rounds".into(), 5);
        snap.gauges.insert("cleaner.coverage".into(), 0.99);
        snap.labels.insert("ml.trainer".into(), "hist".into());
        snap.histograms.insert(
            "cleaner.n_used".into(),
            BTreeMap::from([(3.0f64.to_bits(), 7)]),
        );
        snap.series
            .insert("eir.cv_error".into(), vec![(60.0, 0.08), (50.0, 0.075)]);
        snap
    }

    #[test]
    fn summary_renders_every_section() {
        let text = render_summary(&sample_snapshot());
        for needle in [
            "spans (wall time):",
            "analyze",
            "  eir", // child indented under parent
            "eir.rounds",
            "cleaner.coverage",
            "ml.trainer",
            "cleaner.n_used",
            "eir.cv_error",
        ] {
            assert!(text.contains(needle), "summary missing {needle:?}:\n{text}");
        }
    }

    #[test]
    fn json_lines_parse_shape() {
        let text = render_json(&sample_snapshot());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 7);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        }
        assert!(text.contains(r#"{"type":"counter","name":"eir.rounds","value":5}"#));
        assert!(text.contains(r#""points":[[60,0.08],[50,0.075]]"#));
        assert!(text.contains(r#""buckets":[[3,7]]"#));
    }

    #[test]
    fn json_strings_escape_specials() {
        assert_eq!(json_string("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(json_string("x\ny"), r#""x\ny""#);
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(2.5), "2.5");
    }

    #[test]
    fn empty_snapshot_renders_empty() {
        assert!(render_summary(&Snapshot::default()).is_empty());
        assert!(render_json(&Snapshot::default()).is_empty());
    }
}
