//! The sharded global metric registry.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Shard count; writes from up to this many threads proceed without
/// contending on a shared lock. Power of two so the modulo is cheap.
const SHARDS: usize = 16;

/// Aggregated timing of one span path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpanStat {
    /// Times the span was entered (count-valued: thread-count
    /// deterministic for spans opened outside parallel regions).
    pub count: u64,
    /// Total wall time across entries, in nanoseconds (time-valued:
    /// exempt from the determinism rule).
    pub total_ns: u64,
}

/// One shard's mutable state. Every field merges commutatively into the
/// drain snapshot, so the shard a thread happens to write to never
/// affects drained counter/histogram/series values.
#[derive(Default)]
struct ShardState {
    counters: HashMap<String, u64>,
    histograms: HashMap<String, BTreeMap<u64, u64>>,
    series: HashMap<String, Vec<(f64, f64)>>,
    spans: HashMap<String, SpanStat>,
}

/// State that is written rarely (once per stage, not per item) and must
/// be last-write-wins rather than merged: gauges and string labels.
#[derive(Default)]
struct ScalarState {
    gauges: BTreeMap<String, f64>,
    labels: BTreeMap<String, String>,
}

/// The global metric sink: sharded maps of counters, histograms,
/// series, and span statistics, plus last-write gauges and labels.
///
/// All recording goes through the free functions ([`counter_add`],
/// [`gauge_set`], [`label_set`], [`histogram_record`], [`series_push`])
/// or the [`span!`](crate::span!) macro; [`Registry::drain`] merges
/// every shard into an immutable [`Snapshot`] and resets the registry.
///
/// # Examples
///
/// ```
/// cm_obs::set_mode(cm_obs::Mode::Summary);
/// cm_obs::counter_add("pmu.samples", 480);
/// cm_obs::gauge_set("cleaner.coverage_target", 0.99);
/// cm_obs::label_set("ml.trainer", "hist");
///
/// let snap = cm_obs::Registry::global().drain();
/// assert_eq!(snap.counters["pmu.samples"], 480);
/// assert_eq!(snap.labels["ml.trainer"], "hist");
/// // Draining resets the registry.
/// assert!(cm_obs::Registry::global().drain().counters.is_empty());
/// cm_obs::set_mode(cm_obs::Mode::Off);
/// ```
pub struct Registry {
    shards: Vec<Mutex<ShardState>>,
    scalars: Mutex<ScalarState>,
}

/// An immutable, deterministically ordered copy of everything the
/// registry held at drain time. All maps are `BTreeMap`s, so iteration
/// order — and therefore reporter output order — is stable.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Monotonic counters: name → summed value.
    pub counters: BTreeMap<String, u64>,
    /// Gauges: name → last value written.
    pub gauges: BTreeMap<String, f64>,
    /// String labels: name → last value written.
    pub labels: BTreeMap<String, String>,
    /// Exact-value histograms: name → (value bits → occurrence count).
    /// Keys are `f64::to_bits` of the observed value; use
    /// [`Snapshot::histogram`] for the decoded view.
    pub histograms: BTreeMap<String, BTreeMap<u64, u64>>,
    /// Ordered sample series: name → `(x, y)` points in push order.
    pub series: BTreeMap<String, Vec<(f64, f64)>>,
    /// Span statistics keyed by slash-joined path.
    pub spans: BTreeMap<String, SpanStat>,
}

impl Snapshot {
    /// A histogram's `(value, count)` pairs in ascending value order.
    pub fn histogram(&self, name: &str) -> Vec<(f64, u64)> {
        self.histograms
            .get(name)
            .map(|h| {
                let mut pairs: Vec<(f64, u64)> = h
                    .iter()
                    .map(|(&bits, &c)| (f64::from_bits(bits), c))
                    .collect();
                pairs.sort_by(|a, b| a.0.total_cmp(&b.0));
                pairs
            })
            .unwrap_or_default()
    }

    /// The counters covered by the determinism rule: everything except
    /// durations (names ending in `_ns`) and scheduling metrics —
    /// `par.sched.*`, plus the serving layer's batch-formation counters
    /// `serve.batch.*` / `serve.dedup.*` (how many requests share a
    /// batch depends on arrival timing) — all of which legitimately
    /// vary with the thread count. The `obs_determinism` integration
    /// test asserts these are bit-identical across thread budgets.
    pub fn deterministic_counters(&self) -> BTreeMap<String, u64> {
        self.counters
            .iter()
            .filter(|(name, _)| {
                !name.ends_with("_ns")
                    && !name.starts_with("par.sched.")
                    && !name.starts_with("serve.batch.")
                    && !name.starts_with("serve.dedup.")
            })
            .map(|(name, &v)| (name.clone(), v))
            .collect()
    }

    /// Span paths with their entry counts (times stripped) — the
    /// count-valued projection of the span tree.
    pub fn span_counts(&self) -> BTreeMap<String, u64> {
        self.spans
            .iter()
            .map(|(path, stat)| (path.clone(), stat.count))
            .collect()
    }
}

fn lock_resilient<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl Registry {
    fn new() -> Self {
        Registry {
            shards: (0..SHARDS)
                .map(|_| Mutex::new(ShardState::default()))
                .collect(),
            scalars: Mutex::new(ScalarState::default()),
        }
    }

    /// The process-wide registry every recording call writes to.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// This thread's shard. Threads are assigned round-robin on first
    /// use, which spreads the persistent pool workers evenly.
    fn shard(&self) -> MutexGuard<'_, ShardState> {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        thread_local! {
            static INDEX: usize = NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS;
        }
        let index = INDEX.with(|i| *i);
        lock_resilient(&self.shards[index])
    }

    pub(crate) fn record_counter(&self, name: &str, delta: u64) {
        let mut shard = self.shard();
        *shard.counters.entry_ref_or_owned(name) += delta;
    }

    pub(crate) fn record_histogram(&self, name: &str, value: f64) {
        let mut shard = self.shard();
        let hist = shard.histograms.entry_ref_or_owned(name);
        *hist.entry(value.to_bits()).or_insert(0) += 1;
    }

    pub(crate) fn record_series(&self, name: &str, x: f64, y: f64) {
        let mut shard = self.shard();
        shard.series.entry_ref_or_owned(name).push((x, y));
    }

    pub(crate) fn record_span(&self, path: &str, elapsed: Duration) {
        let mut shard = self.shard();
        let stat = shard.spans.entry_ref_or_owned(path);
        stat.count += 1;
        stat.total_ns = stat.total_ns.saturating_add(elapsed.as_nanos() as u64);
    }

    pub(crate) fn record_gauge(&self, name: &str, value: f64) {
        let mut scalars = lock_resilient(&self.scalars);
        scalars.gauges.insert(name.to_string(), value);
    }

    pub(crate) fn record_label(&self, name: &str, value: &str) {
        let mut scalars = lock_resilient(&self.scalars);
        scalars.labels.insert(name.to_string(), value.to_string());
    }

    /// Merges every shard into a [`Snapshot`] and resets the registry.
    ///
    /// Counter and histogram merges are sums and series merges are
    /// shard-ordered concatenations, so counts are independent of which
    /// shard (thread) produced them. A series written from more than
    /// one thread has no canonical order; the pipeline only pushes
    /// series points from its driving thread.
    pub fn drain(&self) -> Snapshot {
        let mut snap = Snapshot::default();
        for shard in &self.shards {
            let state = std::mem::take(&mut *lock_resilient(shard));
            for (name, v) in state.counters {
                *snap.counters.entry(name).or_insert(0) += v;
            }
            for (name, hist) in state.histograms {
                let merged = snap.histograms.entry(name).or_default();
                for (bits, count) in hist {
                    *merged.entry(bits).or_insert(0) += count;
                }
            }
            for (name, mut points) in state.series {
                snap.series.entry(name).or_default().append(&mut points);
            }
            for (path, stat) in state.spans {
                let merged = snap.spans.entry(path).or_default();
                merged.count += stat.count;
                merged.total_ns = merged.total_ns.saturating_add(stat.total_ns);
            }
        }
        let scalars = std::mem::take(&mut *lock_resilient(&self.scalars));
        snap.gauges = scalars.gauges;
        snap.labels = scalars.labels;
        snap
    }
}

/// `HashMap::entry` without allocating when the key already exists.
trait EntryRefOrOwned<V> {
    fn entry_ref_or_owned(&mut self, key: &str) -> &mut V;
}

impl<V: Default> EntryRefOrOwned<V> for HashMap<String, V> {
    fn entry_ref_or_owned(&mut self, key: &str) -> &mut V {
        if !self.contains_key(key) {
            self.insert(key.to_string(), V::default());
        }
        self.get_mut(key).expect("just inserted")
    }
}

/// Adds `delta` to the named counter. No-op when collection is off.
///
/// Counter sums commute, so incrementing from parallel workers keeps
/// drained values thread-count deterministic.
#[inline]
pub fn counter_add(name: &str, delta: u64) {
    if crate::enabled() {
        Registry::global().record_counter(name, delta);
    }
}

/// Sets the named gauge to `value` (last write wins). No-op when off.
///
/// Gauges are for configuration-like scalars written once per stage;
/// writing one from inside a parallel region makes "last" ambiguous.
#[inline]
pub fn gauge_set(name: &str, value: f64) {
    if crate::enabled() {
        Registry::global().record_gauge(name, value);
    }
}

/// Sets the named string label (last write wins). No-op when off.
#[inline]
pub fn label_set(name: &str, value: &str) {
    if crate::enabled() {
        Registry::global().record_label(name, value);
    }
}

/// Counts one occurrence of `value` in the named exact-value histogram.
/// No-op when off. Intended for low-cardinality observations (the
/// cleaner's Table I `n` candidates, bin counts) — every distinct value
/// becomes its own bucket.
#[inline]
pub fn histogram_record(name: &str, value: f64) {
    if crate::enabled() {
        Registry::global().record_histogram(name, value);
    }
}

/// Appends an `(x, y)` point to the named series. No-op when off.
///
/// Push from a single driving thread (series have no cross-thread
/// ordering); the EIR loop pushes one `(n_events, cv_error)` point per
/// pruning round this way.
#[inline]
pub fn series_push(name: &str, x: f64, y: f64) {
    if crate::enabled() {
        Registry::global().record_series(name, x, y);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    /// Serializes tests that toggle the global mode / registry.
    fn with_collection<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_mode(Mode::Summary);
        Registry::global().drain(); // start clean
        let out = f();
        crate::set_mode(Mode::Off);
        out
    }

    #[test]
    fn counters_merge_across_threads() {
        let total = with_collection(|| {
            std::thread::scope(|s| {
                for _ in 0..8 {
                    s.spawn(|| {
                        for _ in 0..100 {
                            counter_add("test.items", 3);
                        }
                    });
                }
            });
            Registry::global().drain().counters["test.items"]
        });
        assert_eq!(total, 8 * 100 * 3);
    }

    #[test]
    fn histogram_counts_exact_values() {
        let pairs = with_collection(|| {
            for v in [3.0, 3.0, 3.5, 7.0, 3.0] {
                histogram_record("test.n", v);
            }
            Registry::global().drain().histogram("test.n")
        });
        assert_eq!(pairs, vec![(3.0, 3), (3.5, 1), (7.0, 1)]);
    }

    #[test]
    fn series_keeps_push_order() {
        let points = with_collection(|| {
            for i in 0..4 {
                series_push("test.curve", i as f64, (i * i) as f64);
            }
            Registry::global().drain().series["test.curve"].clone()
        });
        assert_eq!(points, vec![(0.0, 0.0), (1.0, 1.0), (2.0, 4.0), (3.0, 9.0)]);
    }

    #[test]
    fn gauges_and_labels_last_write_wins() {
        let (gauge, label) = with_collection(|| {
            gauge_set("test.g", 1.0);
            gauge_set("test.g", 2.5);
            label_set("test.l", "first");
            label_set("test.l", "second");
            let snap = Registry::global().drain();
            (snap.gauges["test.g"], snap.labels["test.l"].clone())
        });
        assert_eq!(gauge, 2.5);
        assert_eq!(label, "second");
    }

    #[test]
    fn off_mode_records_nothing() {
        crate::set_mode(Mode::Off);
        counter_add("test.ignored", 1);
        histogram_record("test.ignored", 1.0);
        series_push("test.ignored", 1.0, 1.0);
        let snap = Registry::global().drain();
        assert!(!snap.counters.contains_key("test.ignored"));
        assert!(!snap.histograms.contains_key("test.ignored"));
        assert!(!snap.series.contains_key("test.ignored"));
    }

    #[test]
    fn deterministic_counters_filter_times_and_scheduling() {
        let filtered = with_collection(|| {
            counter_add("eir.rounds", 4);
            counter_add("par.sched.helper_jobs", 12);
            counter_add("par.worker_busy_ns", 5_000);
            counter_add("serve.batch.flushes", 3);
            counter_add("serve.dedup.hits", 7);
            counter_add("serve.requests", 9);
            Registry::global().drain().deterministic_counters()
        });
        assert_eq!(filtered.len(), 2);
        assert_eq!(filtered["eir.rounds"], 4);
        // serve.requests is workload-determined, so it stays covered;
        // only batch-formation counters are scheduling-scoped.
        assert_eq!(filtered["serve.requests"], 9);
    }
}
