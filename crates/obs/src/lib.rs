//! Pipeline observability for the CounterMiner workspace: hierarchical
//! span timers, typed metrics, and pluggable reporters — with zero
//! dependencies and zero hot-path cost when disabled.
//!
//! The pipeline stages (collector → cleaner → GBRT training → EIR →
//! interaction sweeps) each do quantifiable work: samples taken,
//! outliers replaced, trees grown, pruning rounds evaluated. This crate
//! is how they report it:
//!
//! * [`span!`] — a hierarchical RAII wall-clock timer; nested spans form
//!   a parent/child tree via a per-thread stack of slash-joined paths,
//! * [`Registry`] — the global sink for **counters** (monotonic `u64`
//!   sums), **gauges** (last-written `f64`), **labels** (last-written
//!   strings, e.g. the active trainer), **histograms** (exact-value
//!   counts for low-cardinality observations such as the cleaner's
//!   chosen `n`), and **series** (ordered `(x, y)` points, e.g. the EIR
//!   error curve),
//! * [`report`] — two reporters over a drained [`Snapshot`]: a
//!   human-readable tree summary and machine-readable JSON lines.
//!
//! # Modes and cost
//!
//! Collection is controlled by a process-wide [`Mode`], resolved from
//! [`set_mode`] or (lazily, on first use) the `CM_OBS` environment
//! variable (`off`, `summary`, `json`, or `json:PATH`). The default is
//! [`Mode::Off`], in which every recording entry point returns after a
//! single relaxed atomic load — instrumented hot paths cost nothing
//! measurable. When enabled, writes go to one of a fixed set of
//! mutex-guarded shards chosen per thread, so concurrent recording
//! rarely contends; [`Registry::drain`] merges and resets all shards.
//!
//! # Determinism
//!
//! Count-valued data (counters, histogram counts, series points, span
//! *counts*) must be **bit-identical at any thread count**; only
//! durations (span times and `*_ns` counters) and explicitly
//! scheduling-scoped metrics (`par.sched.*`, and the serving layer's
//! batch-formation counters `serve.batch.*` / `serve.dedup.*`, which
//! depend on how many requests happen to be queued when the scheduler
//! drains) may vary. Counter sums commute, so any instrumentation that
//! adds per-item counts from parallel workers satisfies this
//! automatically. The rule is enforced end-to-end by the
//! `obs_determinism` integration test and exposed via
//! [`Snapshot::deterministic_counters`].
//!
//! # Counter namespaces
//!
//! Counter names are dot-separated, first segment = the emitting
//! subsystem. The namespaces in use across the workspace:
//!
//! | prefix | emitted by | examples |
//! |---|---|---|
//! | `collector.` / `pmu.` | run collection & the simulated PMU | `collector.runs`, `pmu.samples`, `pmu.group_switches` |
//! | `cleaner.` | the data cleaner | `cleaner.series`, `cleaner.outliers_replaced`, `cleaner.missing_filled`, `cleaner.zeros_kept` |
//! | `ml.` / `interaction.` | model training & pair ranking | `ml.trees_grown`, `interaction.pairs` |
//! | `pipeline.` | the pipeline facade | `pipeline.analyses`, `pipeline.resume.hits`, `pipeline.resume.misses` (persistent-store snapshot reuse) |
//! | `store.` | the persistent columnar store | `store.commits`, `store.chunks_written`, `store.bytes_written`, `store.recovered_partial`, `store.cache.hits`, `store.cache.misses`, `store.cache.evictions` |
//! | `store.decode.` | the store's chunk read path | `store.decode.chunks` (chunks checksummed + decoded), `store.decode.bytes` (payload bytes decoded), `store.decode.reads` (positioned file reads issued; batched reads coalesce many chunks per read) |
//! | `par.sched.` | thread-pool scheduling (non-deterministic by design) | `par.sched.steals` |
//! | `serve.` | the concurrent analysis service (`cm-serve`) | `serve.requests`, `serve.errors`, `serve.subscriptions`, `serve.notifications` (workload-deterministic); `serve.batch.flushes`, `serve.batch.coalesced`, `serve.dedup.hits` (batch formation — scheduling-scoped like `par.sched.*`) |
//! | `stream.` | streaming ingest & incremental analysis (`cm-stream`) | `stream.appends`, `stream.append_rows`, `stream.reclean_rows` (tail rows re-cleaned), `stream.warm_starts` (cached analysis reused), `stream.trains` (full retrains) — all workload-deterministic |
//! | `cluster.` | the cross-benchmark cluster analysis mode (`counterminer`) | `cluster.analyses`, `cluster.runs` (corpus + injected runs clustered), `cluster.injected`, `cluster.anomalies` — all workload-deterministic counts |
//! | `chaos.` | the fault-injection harness (`cm-chaos`) | `chaos.faults.injected`, `chaos.faults.short_read`, `chaos.faults.fail_write`, `chaos.faults.short_write`, `chaos.faults.fail_sync`, `chaos.faults.bit_flip` |
//!
//! New instrumentation should join an existing namespace or add one
//! segment-first, so reports group related counters together.
//!
//! # Examples
//!
//! ```
//! cm_obs::set_mode(cm_obs::Mode::Summary);
//! {
//!     let _outer = cm_obs::span!("clean");
//!     let _inner = cm_obs::span!("clean.series", event = 3);
//!     cm_obs::counter_add("cleaner.outliers_replaced", 2);
//!     cm_obs::histogram_record("cleaner.n_used", 3.5);
//!     cm_obs::series_push("eir.cv_error", 60.0, 0.082);
//! }
//! let snap = cm_obs::Registry::global().drain();
//! assert_eq!(snap.counters["cleaner.outliers_replaced"], 2);
//! assert_eq!(snap.spans["clean/clean.series{event=3}"].count, 1);
//! assert_eq!(snap.series["eir.cv_error"], vec![(60.0, 0.082)]);
//! cm_obs::set_mode(cm_obs::Mode::Off);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod registry;
pub mod report;
mod span;

pub use registry::{
    counter_add, gauge_set, histogram_record, label_set, series_push, Registry, Snapshot, SpanStat,
};
pub use report::{render_json, render_summary};
pub use span::{span_enter, span_enter_detached, span_enter_under, SpanGuard, SpanHandle};

use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::Mutex;

/// What the observability layer does with recorded data.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum Mode {
    /// Collect nothing; every recording call is a near-free no-op.
    #[default]
    Off,
    /// Collect, and render the human-readable tree summary on
    /// [`report::report`].
    Summary,
    /// Collect, and render JSON lines on [`report::report`] — to stderr,
    /// or to the file named by the optional path.
    Json(Option<String>),
}

/// 0 = uninitialized, 1 = off, 2 = summary, 3 = json.
static MODE_TAG: AtomicU8 = AtomicU8::new(0);
/// Destination path for [`Mode::Json`]; `None` means stderr.
static JSON_PATH: Mutex<Option<String>> = Mutex::new(None);

/// Parses a mode string: `off`, `summary`, `json`, or `json:PATH`.
///
/// This is the grammar of both the `CM_OBS` environment variable and
/// the CLI's `--metrics` option.
///
/// # Errors
///
/// Returns a human-readable message for anything else.
///
/// # Examples
///
/// ```
/// use cm_obs::{parse_mode, Mode};
/// assert_eq!(parse_mode("summary"), Ok(Mode::Summary));
/// assert_eq!(
///     parse_mode("json:/tmp/metrics.jsonl"),
///     Ok(Mode::Json(Some("/tmp/metrics.jsonl".to_string())))
/// );
/// assert!(parse_mode("verbose").is_err());
/// ```
pub fn parse_mode(s: &str) -> Result<Mode, String> {
    if s.eq_ignore_ascii_case("off") {
        Ok(Mode::Off)
    } else if s.eq_ignore_ascii_case("summary") {
        Ok(Mode::Summary)
    } else if s.eq_ignore_ascii_case("json") {
        Ok(Mode::Json(None))
    } else if let Some(path) = s.strip_prefix("json:") {
        Ok(Mode::Json(Some(path.to_string())))
    } else {
        Err(format!(
            "unknown metrics mode {s:?}; expected off, summary, json, or json:PATH"
        ))
    }
}

/// Sets the process-wide observability mode, overriding `CM_OBS`.
pub fn set_mode(mode: Mode) {
    let tag = match &mode {
        Mode::Off => 1,
        Mode::Summary => 2,
        Mode::Json(path) => {
            *JSON_PATH.lock().unwrap_or_else(|e| e.into_inner()) = path.clone();
            3
        }
    };
    MODE_TAG.store(tag, Ordering::Release);
}

/// The current mode, initializing from `CM_OBS` on first call.
pub fn mode() -> Mode {
    match tag() {
        1 => Mode::Off,
        2 => Mode::Summary,
        _ => Mode::Json(JSON_PATH.lock().unwrap_or_else(|e| e.into_inner()).clone()),
    }
}

/// Whether collection is active. A single relaxed atomic load on the
/// hot path — instrumentation should gate any non-trivial bookkeeping
/// (string formatting, `Instant::now`) behind this.
#[inline]
pub fn enabled() -> bool {
    tag() != 1
}

#[inline]
fn tag() -> u8 {
    let t = MODE_TAG.load(Ordering::Relaxed);
    if t != 0 {
        return t;
    }
    init_from_env()
}

#[cold]
fn init_from_env() -> u8 {
    let mode = std::env::var("CM_OBS")
        .ok()
        .and_then(|v| parse_mode(v.trim()).ok())
        .unwrap_or(Mode::Off);
    set_mode(mode);
    MODE_TAG.load(Ordering::Relaxed)
}

/// Opens a hierarchical timing span; the returned [`SpanGuard`] records
/// the span's wall time into the global [`Registry`] when dropped.
///
/// The first argument is the span name; optional trailing `key = value`
/// fields are formatted into the name as `name{key=value,…}`, giving
/// per-instance spans (e.g. one per EIR pruning round) that still
/// aggregate cleanly. Nested spans — on the *same thread* — become
/// children: their recorded path is `parent/child`. Spans opened inside
/// parallel regions start a fresh tree on the worker thread; prefer
/// counters there.
///
/// # Examples
///
/// ```
/// cm_obs::set_mode(cm_obs::Mode::Summary);
/// for round in 0..3 {
///     let _span = cm_obs::span!("eir.round", round = round);
///     // ... train and evaluate ...
/// }
/// let snap = cm_obs::Registry::global().drain();
/// assert_eq!(snap.spans["eir.round{round=1}"].count, 1);
/// cm_obs::set_mode(cm_obs::Mode::Off);
/// ```
#[macro_export]
macro_rules! span {
    ($name:expr $(,)?) => {
        $crate::span_enter(::std::string::String::from($name))
    };
    ($name:expr, $($key:ident = $value:expr),+ $(,)?) => {{
        if $crate::enabled() {
            let mut __path = ::std::string::String::from($name);
            __path.push('{');
            let __fields: ::std::vec::Vec<::std::string::String> =
                vec![$(::std::format!(::std::concat!(::std::stringify!($key), "={}"), $value)),+];
            __path.push_str(&__fields.join(","));
            __path.push('}');
            $crate::span_enter(__path)
        } else {
            $crate::SpanGuard::disabled()
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_parses_and_rejects() {
        assert_eq!(parse_mode("OFF"), Ok(Mode::Off));
        assert_eq!(parse_mode("Summary"), Ok(Mode::Summary));
        assert_eq!(parse_mode("json"), Ok(Mode::Json(None)));
        assert_eq!(
            parse_mode("json:out.jsonl"),
            Ok(Mode::Json(Some("out.jsonl".into())))
        );
        assert!(parse_mode("").is_err());
        assert!(parse_mode("trace").is_err());
    }
}
