//! Hierarchical RAII span timers.

use crate::Registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Stack of full span paths open on this thread; the top is the
    /// parent of the next span entered here.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span; records its wall time into the global [`Registry`]
/// under its slash-joined path when dropped. Created by the
/// [`span!`](crate::span!) macro (or [`span_enter`] directly).
///
/// Guards are expected to drop in LIFO order (the natural order of
/// `let` bindings in nested scopes); dropping out of order corrupts the
/// parentage of subsequently opened spans, not any recorded time.
#[must_use = "a span records its time when the guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when collection was off at entry — the drop is free.
    path: Option<String>,
    start: Instant,
}

impl SpanGuard {
    /// A guard that records nothing — what [`span!`](crate::span!)
    /// returns when collection is off.
    pub fn disabled() -> Self {
        SpanGuard {
            path: None,
            start: Instant::now(),
        }
    }
}

/// Enters a span named `name` (used by the [`span!`](crate::span!)
/// macro; the macro is the usual entry point because it also formats
/// `key = value` fields and skips all work when collection is off).
pub fn span_enter(name: String) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::disabled();
    }
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name,
        };
        stack.push(path.clone());
        path
    });
    SpanGuard {
        path: Some(path),
        start: Instant::now(),
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        let elapsed = self.start.elapsed();
        STACK.with(|stack| {
            let mut stack = stack.borrow_mut();
            // LIFO in the expected case; tolerate disorder by removing
            // this span's entry wherever it is.
            if let Some(pos) = stack.iter().rposition(|p| *p == path) {
                stack.remove(pos);
            }
        });
        Registry::global().record_span(&path, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use crate::{Mode, Registry};
    use std::sync::Mutex;

    fn with_collection<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_mode(Mode::Summary);
        Registry::global().drain();
        let out = f();
        crate::set_mode(Mode::Off);
        out
    }

    #[test]
    fn nested_spans_form_paths() {
        let snap = with_collection(|| {
            {
                let _a = crate::span!("analyze");
                {
                    let _b = crate::span!("eir");
                    let _c = crate::span!("eir.round", round = 0);
                }
                let _d = crate::span!("interactions");
            }
            Registry::global().drain()
        });
        for path in [
            "analyze",
            "analyze/eir",
            "analyze/eir/eir.round{round=0}",
            "analyze/interactions",
        ] {
            assert_eq!(snap.spans[path].count, 1, "missing {path}");
        }
    }

    #[test]
    fn repeated_spans_aggregate() {
        let snap = with_collection(|| {
            for _ in 0..5 {
                let _s = crate::span!("stage");
            }
            Registry::global().drain()
        });
        assert_eq!(snap.spans["stage"].count, 5);
    }

    #[test]
    fn sibling_threads_have_independent_parents() {
        let snap = with_collection(|| {
            let _outer = crate::span!("outer");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = crate::span!("worker_side");
                });
            });
            drop(_outer);
            Registry::global().drain()
        });
        // The spawned thread has its own (empty) stack: its span is a
        // root, not a child of `outer`.
        assert_eq!(snap.spans["worker_side"].count, 1);
        assert_eq!(snap.spans["outer"].count, 1);
    }

    #[test]
    fn multi_field_spans_format_all_fields() {
        let snap = with_collection(|| {
            let _s = crate::span!("fit", round = 2, events = 40);
            drop(_s);
            Registry::global().drain()
        });
        assert_eq!(snap.spans["fit{round=2,events=40}"].count, 1);
    }

    #[test]
    fn disabled_spans_cost_no_registry_entries() {
        crate::set_mode(Mode::Off);
        {
            let _s = crate::span!("ghost", id = 1);
        }
        assert!(!Registry::global().drain().spans.contains_key("ghost{id=1}"));
    }
}
