//! Hierarchical RAII span timers.

use crate::Registry;
use std::cell::RefCell;
use std::time::Instant;

thread_local! {
    /// Stack of full span paths open on this thread; the top is the
    /// parent of the next span entered here.
    static STACK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
}

/// An open span; records its wall time into the global [`Registry`]
/// under its slash-joined path when dropped. Created by the
/// [`span!`](crate::span!) macro (or [`span_enter`] directly).
///
/// Guards are expected to drop in LIFO order (the natural order of
/// `let` bindings in nested scopes); dropping out of order corrupts the
/// parentage of subsequently opened spans, not any recorded time.
#[must_use = "a span records its time when the guard drops"]
#[derive(Debug)]
pub struct SpanGuard {
    /// `None` when collection was off at entry — the drop is free.
    path: Option<String>,
    start: Instant,
    /// Whether this guard pushed its path onto the thread-local stack
    /// (and must remove it on drop). Detached request spans never do.
    on_stack: bool,
}

impl SpanGuard {
    /// A guard that records nothing — what [`span!`](crate::span!)
    /// returns when collection is off.
    pub fn disabled() -> Self {
        SpanGuard {
            path: None,
            start: Instant::now(),
            on_stack: false,
        }
    }

    /// A portable handle to this span, usable as the explicit parent of
    /// spans opened on *other* threads via [`span_enter_under`] — the
    /// serving layer ships one with each request so work executed on a
    /// pool worker attaches under the request's span instead of the
    /// worker's thread-local root.
    pub fn handle(&self) -> SpanHandle {
        SpanHandle {
            path: self.path.clone(),
        }
    }
}

/// A cloneable, `Send` reference to an open span's path, produced by
/// [`SpanGuard::handle`] and consumed by [`span_enter_under`].
///
/// A handle taken from a disabled guard (collection was off) yields
/// root spans when used as a parent.
///
/// # Examples
///
/// ```
/// let request = cm_obs::span!("serve.request");
/// let parent = request.handle();
/// std::thread::scope(|s| {
///     s.spawn(move || {
///         // Attaches under "serve.request", not this thread's root.
///         let _exec = cm_obs::span_enter_under(&parent, "serve.exec".to_string());
///     });
/// });
/// ```
#[derive(Debug, Clone)]
pub struct SpanHandle {
    /// Full slash-joined path of the span, `None` if it was disabled.
    path: Option<String>,
}

impl SpanHandle {
    /// A handle that parents nothing — children become roots.
    pub fn detached() -> Self {
        SpanHandle { path: None }
    }
}

/// Enters a span named `name` (used by the [`span!`](crate::span!)
/// macro; the macro is the usual entry point because it also formats
/// `key = value` fields and skips all work when collection is off).
pub fn span_enter(name: String) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::disabled();
    }
    let path = STACK.with(|stack| {
        let mut stack = stack.borrow_mut();
        let path = match stack.last() {
            Some(parent) => format!("{parent}/{name}"),
            None => name,
        };
        stack.push(path.clone());
        path
    });
    SpanGuard {
        path: Some(path),
        start: Instant::now(),
        on_stack: true,
    }
}

/// Enters a span that parents off the current thread's open span (like
/// [`span_enter`]) but does **not** become the parent of later spans on
/// this thread: it stays off the thread-local stack. This is the shape
/// for request-scoped spans held across an async boundary — a client
/// can hold many open request spans at once without each nesting under
/// the previous one. Children attach explicitly via the guard's
/// [`SpanGuard::handle`] and [`span_enter_under`].
pub fn span_enter_detached(name: String) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::disabled();
    }
    let path = STACK.with(|stack| match stack.borrow().last() {
        Some(parent) => format!("{parent}/{name}"),
        None => name,
    });
    SpanGuard {
        path: Some(path),
        start: Instant::now(),
        on_stack: false,
    }
}

/// Enters a span under an explicit parent instead of this thread's
/// span stack — the request-per-thread fix: a pool worker executing on
/// behalf of a request passes the request's [`SpanHandle`] so its work
/// appears under `request/...` in the span tree rather than as a root
/// of the worker thread. The new span *does* join this thread's stack,
/// so spans it opens transitively nest under it as usual.
///
/// With collection off this is free; with a disabled parent (its span
/// was entered while collection was off) the span becomes a root.
pub fn span_enter_under(parent: &SpanHandle, name: String) -> SpanGuard {
    if !crate::enabled() {
        return SpanGuard::disabled();
    }
    let path = match &parent.path {
        Some(p) => format!("{p}/{name}"),
        None => name,
    };
    STACK.with(|stack| stack.borrow_mut().push(path.clone()));
    SpanGuard {
        path: Some(path),
        start: Instant::now(),
        on_stack: true,
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(path) = self.path.take() else {
            return;
        };
        let elapsed = self.start.elapsed();
        if self.on_stack {
            STACK.with(|stack| {
                let mut stack = stack.borrow_mut();
                // LIFO in the expected case; tolerate disorder by
                // removing this span's entry wherever it is.
                if let Some(pos) = stack.iter().rposition(|p| *p == path) {
                    stack.remove(pos);
                }
            });
        }
        Registry::global().record_span(&path, elapsed);
    }
}

#[cfg(test)]
mod tests {
    use crate::{Mode, Registry};
    use std::sync::Mutex;

    fn with_collection<R>(f: impl FnOnce() -> R) -> R {
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        crate::set_mode(Mode::Summary);
        Registry::global().drain();
        let out = f();
        crate::set_mode(Mode::Off);
        out
    }

    #[test]
    fn nested_spans_form_paths() {
        let snap = with_collection(|| {
            {
                let _a = crate::span!("analyze");
                {
                    let _b = crate::span!("eir");
                    let _c = crate::span!("eir.round", round = 0);
                }
                let _d = crate::span!("interactions");
            }
            Registry::global().drain()
        });
        for path in [
            "analyze",
            "analyze/eir",
            "analyze/eir/eir.round{round=0}",
            "analyze/interactions",
        ] {
            assert_eq!(snap.spans[path].count, 1, "missing {path}");
        }
    }

    #[test]
    fn repeated_spans_aggregate() {
        let snap = with_collection(|| {
            for _ in 0..5 {
                let _s = crate::span!("stage");
            }
            Registry::global().drain()
        });
        assert_eq!(snap.spans["stage"].count, 5);
    }

    #[test]
    fn sibling_threads_have_independent_parents() {
        let snap = with_collection(|| {
            let _outer = crate::span!("outer");
            std::thread::scope(|s| {
                s.spawn(|| {
                    let _w = crate::span!("worker_side");
                });
            });
            drop(_outer);
            Registry::global().drain()
        });
        // The spawned thread has its own (empty) stack: its span is a
        // root, not a child of `outer`.
        assert_eq!(snap.spans["worker_side"].count, 1);
        assert_eq!(snap.spans["outer"].count, 1);
    }

    /// The request-per-thread fix: a span opened on a worker thread on
    /// behalf of a request attaches under the request's span via its
    /// explicit handle — and spans nested inside it chain normally.
    #[test]
    fn worker_spans_attach_under_explicit_parent() {
        let snap = with_collection(|| {
            let request = crate::span_enter_detached("serve.request".to_string());
            let parent = request.handle();
            std::thread::scope(|s| {
                s.spawn(move || {
                    let _exec = crate::span_enter_under(&parent, "serve.exec".to_string());
                    let _inner = crate::span!("decode");
                });
            });
            drop(request);
            Registry::global().drain()
        });
        assert_eq!(snap.spans["serve.request"].count, 1);
        assert_eq!(snap.spans["serve.request/serve.exec"].count, 1);
        assert_eq!(snap.spans["serve.request/serve.exec/decode"].count, 1);
    }

    /// Detached spans don't parent later spans on their own thread: two
    /// requests held concurrently by one client are siblings, and an
    /// unrelated span opened while they're live is a root.
    #[test]
    fn detached_spans_stay_off_the_thread_stack() {
        let snap = with_collection(|| {
            let a = crate::span_enter_detached("req_a".to_string());
            let b = crate::span_enter_detached("req_b".to_string());
            let other = crate::span!("tick");
            drop(other);
            drop(a);
            drop(b);
            Registry::global().drain()
        });
        assert_eq!(snap.spans["req_a"].count, 1);
        assert_eq!(snap.spans["req_b"].count, 1);
        assert_eq!(snap.spans["tick"].count, 1);
        assert!(!snap.spans.contains_key("req_a/req_b"));
        assert!(!snap.spans.contains_key("req_a/tick"));
    }

    /// A handle taken while collection was off parents nothing: the
    /// child becomes a root instead of inheriting a stale path.
    #[test]
    fn disabled_parent_handle_yields_root_child() {
        let snap = with_collection(|| {
            crate::set_mode(Mode::Off);
            let off_guard = crate::span_enter_detached("ghost_req".to_string());
            let handle = off_guard.handle();
            crate::set_mode(Mode::Summary);
            let _child = crate::span_enter_under(&handle, "orphan_exec".to_string());
            drop(_child);
            drop(off_guard);
            Registry::global().drain()
        });
        assert_eq!(snap.spans["orphan_exec"].count, 1);
        assert!(!snap.spans.contains_key("ghost_req"));
    }

    #[test]
    fn multi_field_spans_format_all_fields() {
        let snap = with_collection(|| {
            let _s = crate::span!("fit", round = 2, events = 40);
            drop(_s);
            Registry::global().drain()
        });
        assert_eq!(snap.spans["fit{round=2,events=40}"].count, 1);
    }

    #[test]
    fn disabled_spans_cost_no_registry_entries() {
        crate::set_mode(Mode::Off);
        {
            let _s = crate::span!("ghost", id = 1);
        }
        assert!(!Registry::global().drain().spans.contains_key("ghost{id=1}"));
    }
}
