//! Fault injection under concurrent load: the serving layer's crash
//! test. Every request outcome must be a typed success or a typed
//! [`ServeError`](cm_serve::ServeError) — a panicking handler or a
//! silently torn store is a bug.

use crate::workload::{OpMix, Workload};
use cm_chaos::{ChaosRng, FaultFs};
use cm_serve::{Request, ServeConfig, Server};
use cm_sim::Benchmark;
use cm_store::{SeriesKey, Store, Vfs};
use cm_stream::{StreamConfig, StreamError, StreamSession};
use std::path::Path;
use std::sync::Arc;

/// What one seed's run observed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosOutcome {
    /// The fault-schedule seed.
    pub seed: u64,
    /// Faults [`FaultFs`] actually injected.
    pub faults_injected: u64,
    /// Requests issued.
    pub ops: u64,
    /// Requests answered with a typed error.
    pub typed_errors: u64,
    /// Errors whose message reveals a caught panic — the worker pool's
    /// `catch_unwind` backstop fired. Must stay zero: every fault path
    /// is supposed to surface as a typed error *before* unwinding.
    pub handler_panics: u64,
    /// Whether the store reopened cleanly (real filesystem, faults
    /// disarmed) after the run and every committed series decoded.
    pub reopen_ok: bool,
    /// When `reopen_ok` is false: the reopen/read failure was a typed
    /// store error (detected corruption — acceptable), not silence.
    pub reopen_typed_error: bool,
    /// Subscription notifications that violated ordering — a sequence
    /// number that did not increase, or a sealed-row count that went
    /// backwards. Must stay zero: a notification describing an older
    /// analysis than one already delivered is *stale*.
    pub stale_notifications: u64,
}

/// Aggregate over a [`chaos_sweep`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ChaosReport {
    /// Per-seed outcomes, in seed order.
    pub outcomes: Vec<ChaosOutcome>,
}

impl ChaosReport {
    /// Total faults injected across seeds.
    pub fn total_faults(&self) -> u64 {
        self.outcomes.iter().map(|o| o.faults_injected).sum()
    }

    /// Total requests issued across seeds.
    pub fn total_ops(&self) -> u64 {
        self.outcomes.iter().map(|o| o.ops).sum()
    }

    /// Total typed request errors across seeds.
    pub fn total_typed_errors(&self) -> u64 {
        self.outcomes.iter().map(|o| o.typed_errors).sum()
    }

    /// Total caught handler panics — any nonzero value is a bug.
    pub fn handler_panics(&self) -> u64 {
        self.outcomes.iter().map(|o| o.handler_panics).sum()
    }

    /// Seeds whose store neither reopened cleanly nor failed with a
    /// typed error — a torn store. Any nonzero value is a bug.
    pub fn torn_stores(&self) -> u64 {
        self.outcomes
            .iter()
            .filter(|o| !o.reopen_ok && !o.reopen_typed_error)
            .count() as u64
    }

    /// Total out-of-order subscription notifications across seeds —
    /// any nonzero value is a bug.
    pub fn stale_notifications(&self) -> u64 {
        self.outcomes.iter().map(|o| o.stale_notifications).sum()
    }
}

/// Runs the workload against a fault-injected server once per seed in
/// `seeds`, each seed on a private copy of the store at `template`
/// (placed in `scratch_dir`). Seeds where `seed % 8 == 0` start from
/// an *empty* store instead, so analyze traffic exercises the cold
/// ingest-and-commit path under faults, not just reads.
///
/// The run itself never fails on injected faults — they are the data.
///
/// # Errors
///
/// Only harness I/O errors (copying the template, cleaning scratch).
pub fn chaos_sweep(
    template: &Path,
    scratch_dir: &Path,
    benchmark: Benchmark,
    config: &ServeConfig,
    workload: &Workload,
    keys: &[SeriesKey],
    seeds: std::ops::Range<u64>,
) -> std::io::Result<ChaosReport> {
    std::fs::create_dir_all(scratch_dir)?;
    let mut report = ChaosReport::default();
    for seed in seeds {
        let path = scratch_dir.join(format!("chaos_{seed}.cmstore"));
        let _ = std::fs::remove_file(&path);
        let cold = seed % 8 == 0;
        if !cold {
            std::fs::copy(template, &path)?;
        }
        let outcome = run_one_seed(&path, benchmark, config, workload, keys, seed, cold);
        let _ = std::fs::remove_file(&path);
        report.outcomes.push(outcome);
    }
    Ok(report)
}

fn run_one_seed(
    path: &Path,
    benchmark: Benchmark,
    config: &ServeConfig,
    workload: &Workload,
    keys: &[SeriesKey],
    seed: u64,
    cold: bool,
) -> ChaosOutcome {
    let fs = Arc::new(FaultFs::new(seed));
    let mut outcome = ChaosOutcome {
        seed,
        faults_injected: 0,
        ops: 0,
        typed_errors: 0,
        handler_panics: 0,
        reopen_ok: false,
        reopen_typed_error: false,
        stale_notifications: 0,
    };

    let mut server = Server::new(config.clone());
    let vfs: Arc<dyn Vfs> = fs.clone();
    match server.add_store_with_vfs("main", path, vfs) {
        Ok(()) => {
            let handle = server.start();
            // A cold store has no keys yet; lean on analyze so the
            // write path runs under faults.
            let mix = if cold {
                OpMix {
                    query: 1,
                    analyze: 4,
                    ranked: 1,
                    info: 1,
                    stream_append: 0,
                }
            } else {
                workload.mix
            };
            let mut root = ChaosRng::new(workload.seed ^ seed);
            let client_seeds: Vec<u64> = (0..workload.clients).map(|_| root.next_u64()).collect();
            let (ops, errors, panics) = std::thread::scope(|s| {
                let workers: Vec<_> = client_seeds
                    .iter()
                    .map(|&cs| {
                        let client = handle.client();
                        let keys = if cold { &[][..] } else { keys };
                        s.spawn(move || {
                            let mut rng = ChaosRng::new(cs);
                            let mut errors = 0u64;
                            let mut panics = 0u64;
                            for _ in 0..workload.ops_per_client {
                                let req = crate::workload::pick_op(
                                    &mut rng, &mix, "main", benchmark, keys,
                                );
                                if let Err(e) = client.call(req) {
                                    errors += 1;
                                    if e.to_string().contains("panic") {
                                        panics += 1;
                                    }
                                }
                            }
                            (workload.ops_per_client as u64, errors, panics)
                        })
                    })
                    .collect();
                let mut totals = (0u64, 0u64, 0u64);
                for w in workers {
                    let (o, e, p) = w.join().expect("chaos client thread");
                    totals.0 += o;
                    totals.1 += e;
                    totals.2 += p;
                }
                totals
            });
            outcome.ops = ops;
            outcome.typed_errors = errors;
            outcome.handler_panics = panics;
            handle.shutdown();
        }
        Err(e) => {
            // The store refused to open under injected faults: a typed
            // outcome, counted like any request error.
            outcome.typed_errors = 1;
            if e.to_string().contains("panic") {
                outcome.handler_panics = 1;
            }
        }
    }

    outcome.faults_injected = fs.injected();
    fs.disarm();
    // The torn-store check: reopened on the real filesystem, the
    // committed image must either load and decode fully, or fail with
    // a typed store error. (A missing file is a clean empty store.)
    match Store::open(path) {
        Ok(store) => {
            let committed: Vec<SeriesKey> = store.series_keys().cloned().collect();
            match store.read_series_batch(&committed) {
                Ok(_) => outcome.reopen_ok = true,
                Err(_) => outcome.reopen_typed_error = true,
            }
        }
        Err(_) => outcome.reopen_typed_error = true,
    }
    outcome
}

/// Runs the *streaming* workload — appends interleaved with
/// subscription polls — against a fault-injected server once per seed,
/// each seed on a private store. Seeds where `seed % 8 == 0` start
/// from an empty store (the cold stream-open path under faults); the
/// rest resume from a template stream warmed with `template_rows`
/// appended rows.
///
/// Per seed the harness verifies, beyond [`chaos_sweep`]'s contract:
///
/// * notifications arrive in order (strictly increasing sequence
///   numbers, non-decreasing sealed-row counts) — violations count as
///   [`ChaosOutcome::stale_notifications`];
/// * after faults are disarmed, the committed store must load, every
///   committed series must decode, *and* a fresh
///   [`StreamSession`] must resume it — metadata and series row counts
///   consistent. A session that reports inconsistency over a store
///   that loaded cleanly is a torn append (neither `reopen_ok` nor
///   `reopen_typed_error`).
///
/// # Errors
///
/// Only harness I/O errors (building the template, cleaning scratch).
pub fn stream_chaos_sweep(
    scratch_dir: &Path,
    benchmark: Benchmark,
    config: &ServeConfig,
    template_rows: usize,
    appends_per_seed: usize,
    seeds: std::ops::Range<u64>,
) -> std::io::Result<ChaosReport> {
    std::fs::create_dir_all(scratch_dir)?;
    let stream_config = StreamConfig::from_env(config.miner);

    // Warm the template stream on the real filesystem.
    let template = scratch_dir.join("stream_template.cmstore");
    let _ = std::fs::remove_file(&template);
    {
        let mut store = Store::open(&template).map_err(harness_err)?;
        let mut session = StreamSession::open(&mut store, benchmark, stream_config.clone())
            .map_err(harness_err)?;
        session
            .append(&mut store, template_rows)
            .map_err(harness_err)?;
    }

    let mut report = ChaosReport::default();
    for seed in seeds {
        let path = scratch_dir.join(format!("stream_chaos_{seed}.cmstore"));
        let _ = std::fs::remove_file(&path);
        let cold = seed % 8 == 0;
        if !cold {
            std::fs::copy(&template, &path)?;
        }
        let outcome = run_one_stream_seed(
            &path,
            benchmark,
            config,
            &stream_config,
            appends_per_seed,
            seed,
        );
        let _ = std::fs::remove_file(&path);
        report.outcomes.push(outcome);
    }
    let _ = std::fs::remove_file(&template);
    Ok(report)
}

fn harness_err(e: impl std::fmt::Display) -> std::io::Error {
    std::io::Error::other(e.to_string())
}

fn run_one_stream_seed(
    path: &Path,
    benchmark: Benchmark,
    config: &ServeConfig,
    stream_config: &StreamConfig,
    appends: usize,
    seed: u64,
) -> ChaosOutcome {
    let fs = Arc::new(FaultFs::new(seed));
    let mut outcome = ChaosOutcome {
        seed,
        faults_injected: 0,
        ops: 0,
        typed_errors: 0,
        handler_panics: 0,
        reopen_ok: false,
        reopen_typed_error: false,
        stale_notifications: 0,
    };

    let mut server = Server::new(config.clone());
    let vfs: Arc<dyn Vfs> = fs.clone();
    match server.add_store_with_vfs("main", path, vfs) {
        Ok(()) => {
            let handle = server.start();
            let client = handle.client();
            let mut sub = client.subscribe("main", benchmark, 3).ok();
            let mut rng = ChaosRng::new(seed.wrapping_mul(0x9e37_79b9).wrapping_add(7));
            let (mut last_seq, mut last_sealed) = (0u64, 0usize);
            for i in 0..appends {
                let rows = 1 + rng.below(24) as usize;
                outcome.ops += 1;
                if let Err(e) = client.call(Request::StreamAppend {
                    store: "main".into(),
                    benchmark,
                    rows,
                }) {
                    outcome.typed_errors += 1;
                    if e.to_string().contains("panic") {
                        outcome.handler_panics += 1;
                    }
                }
                // Drain the subscription every few appends.
                if i % 3 != 2 {
                    continue;
                }
                let Some(sub) = sub.as_mut() else { continue };
                outcome.ops += 1;
                match sub.poll() {
                    Ok(notes) => {
                        for note in notes {
                            if note.seq <= last_seq || note.sealed_rows < last_sealed {
                                outcome.stale_notifications += 1;
                            }
                            last_seq = note.seq;
                            last_sealed = note.sealed_rows;
                        }
                    }
                    Err(e) => {
                        outcome.typed_errors += 1;
                        if e.to_string().contains("panic") {
                            outcome.handler_panics += 1;
                        }
                    }
                }
            }
            handle.shutdown();
        }
        Err(e) => {
            outcome.typed_errors = 1;
            if e.to_string().contains("panic") {
                outcome.handler_panics = 1;
            }
        }
    }

    outcome.faults_injected = fs.injected();
    fs.disarm();
    // The torn-append check, on the real filesystem: the committed
    // image must load, decode, and *resume* as a stream — or fail with
    // a typed store error. A clean load whose stream state is
    // internally inconsistent is a torn append: neither flag is set.
    match Store::open(path) {
        Ok(mut store) => {
            let committed: Vec<SeriesKey> = store.series_keys().cloned().collect();
            match store.read_series_batch(&committed) {
                Ok(_) => match StreamSession::open(&mut store, benchmark, stream_config.clone()) {
                    Ok(_) => outcome.reopen_ok = true,
                    Err(StreamError::Store(_)) | Err(StreamError::Core(_)) => {
                        outcome.reopen_typed_error = true;
                    }
                    // ConfigMismatch cannot happen (same config) and
                    // Inconsistent means metadata and series disagree:
                    // both leave the outcome marked torn.
                    Err(_) => {}
                },
                Err(_) => outcome.reopen_typed_error = true,
            }
        }
        Err(_) => outcome.reopen_typed_error = true,
    }
    outcome
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_aggregates_outcomes() {
        let report = ChaosReport {
            outcomes: vec![
                ChaosOutcome {
                    seed: 0,
                    faults_injected: 2,
                    ops: 10,
                    typed_errors: 3,
                    handler_panics: 0,
                    reopen_ok: true,
                    reopen_typed_error: false,
                    stale_notifications: 0,
                },
                ChaosOutcome {
                    seed: 1,
                    faults_injected: 1,
                    ops: 10,
                    typed_errors: 0,
                    handler_panics: 0,
                    reopen_ok: false,
                    reopen_typed_error: true,
                    stale_notifications: 2,
                },
                ChaosOutcome {
                    seed: 2,
                    faults_injected: 1,
                    ops: 10,
                    typed_errors: 1,
                    handler_panics: 0,
                    reopen_ok: false,
                    reopen_typed_error: false,
                    stale_notifications: 0,
                },
            ],
        };
        assert_eq!(report.total_faults(), 4);
        assert_eq!(report.total_ops(), 30);
        assert_eq!(report.total_typed_errors(), 4);
        assert_eq!(report.handler_panics(), 0);
        assert_eq!(report.torn_stores(), 1);
        assert_eq!(report.stale_notifications(), 2);
    }
}
