//! The `BENCH_serve_*.json` report shape.

use crate::workload::RunMetrics;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A load report in the repository's `BENCH_*.json` baseline format:
/// human-readable run details plus a flat `ns_per_iter` map that the
/// `perf_gate` binary gates on (bigger is worse, so throughput is
/// registered as nanoseconds per operation).
///
/// Run labels are kept distinct from `ns_per_iter` ids on purpose: the
/// gate's `--update` rewriter patches the first occurrence of an id in
/// the file, which must be the entry in the `ns_per_iter` map.
#[derive(Debug, Clone, Default)]
pub struct LoadReport {
    /// Free-form description of what was measured and on what host.
    pub description: String,
    /// Benchmark the analyze/ranked traffic targeted.
    pub benchmark: String,
    /// Per-run details, in execution order.
    pub runs: Vec<RunMetrics>,
    /// Client count where throughput stopped scaling, if a sweep ran
    /// and found one.
    pub saturation_clients: Option<usize>,
    /// Gate ids → nanoseconds per operation.
    pub ns_per_iter: BTreeMap<String, f64>,
}

impl LoadReport {
    /// An empty report.
    pub fn new(description: impl Into<String>, benchmark: impl Into<String>) -> Self {
        LoadReport {
            description: description.into(),
            benchmark: benchmark.into(),
            ..LoadReport::default()
        }
    }

    /// Registers a gate id measuring mean latency of `metrics`, and
    /// remembers the run.
    pub fn add_run(&mut self, id: &str, metrics: RunMetrics) {
        self.ns_per_iter
            .insert(id.to_string(), metrics.latency.mean_ns);
        self.runs.push(metrics);
    }

    /// Registers a throughput-derived gate id (`1e9 / ops_per_sec`,
    /// i.e. service nanoseconds per completed operation).
    pub fn register_throughput(&mut self, id: &str, ops_per_sec: f64) {
        if ops_per_sec > 0.0 {
            self.ns_per_iter.insert(id.to_string(), 1e9 / ops_per_sec);
        }
    }

    /// Renders the report as pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"description\": {},", json_str(&self.description));
        let _ = writeln!(out, "  \"benchmark\": {},", json_str(&self.benchmark));
        out.push_str("  \"runs\": [\n");
        for (i, run) in self.runs.iter().enumerate() {
            let comma = if i + 1 < self.runs.len() { "," } else { "" };
            let _ = writeln!(out, "    {}{comma}", run_json(run));
        }
        out.push_str("  ],\n");
        match self.saturation_clients {
            Some(c) => {
                let _ = writeln!(out, "  \"saturation_clients\": {c},");
            }
            None => out.push_str("  \"saturation_clients\": null,\n"),
        }
        out.push_str("  \"ns_per_iter\": {\n");
        let n = self.ns_per_iter.len();
        for (i, (id, ns)) in self.ns_per_iter.iter().enumerate() {
            let comma = if i + 1 < n { "," } else { "" };
            let _ = writeln!(out, "    {}: {:.0}{comma}", json_str(id), ns);
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Writes the JSON report to `path`.
    ///
    /// # Errors
    ///
    /// Any I/O error from writing the file.
    pub fn write(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

fn run_json(run: &RunMetrics) -> String {
    let l = &run.latency;
    let s = &run.stats;
    format!(
        "{{\"label\": {}, \"clients\": {}, \"ops\": {}, \"errors\": {}, \
         \"elapsed_ns\": {}, \"throughput_ops_per_sec\": {:.1}, \
         \"latency\": {{\"count\": {}, \"mean_ns\": {:.0}, \"p50_ns\": {}, \"p90_ns\": {}, \
         \"p99_ns\": {}, \"p999_ns\": {}, \"max_ns\": {}}}, \
         \"serve\": {{\"requests\": {}, \"errors\": {}, \"batch_flushes\": {}, \
         \"batch_coalesced\": {}, \"dedup_hits\": {}}}}}",
        json_str(&run.label),
        run.clients,
        run.ops,
        run.errors,
        run.elapsed_ns,
        run.throughput_ops_per_sec,
        l.count,
        l.mean_ns,
        l.p50_ns,
        l.p90_ns,
        l.p99_ns,
        l.p999_ns,
        l.max_ns,
        s.requests,
        s.errors,
        s.batch_flushes,
        s.batch_coalesced,
        s.dedup_hits,
    )
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::LatencySummary;
    use cm_serve::ServeStats;

    fn metrics(label: &str, mean_ns: f64) -> RunMetrics {
        RunMetrics {
            label: label.to_string(),
            clients: 8,
            ops: 80,
            errors: 0,
            elapsed_ns: 1_000_000,
            throughput_ops_per_sec: 1000.0,
            latency: LatencySummary {
                count: 80,
                mean_ns,
                p50_ns: 100,
                p90_ns: 200,
                p99_ns: 300,
                p999_ns: 400,
                max_ns: 500,
            },
            stats: ServeStats::default(),
        }
    }

    #[test]
    fn report_json_has_flat_ns_per_iter_map() {
        let mut report = LoadReport::new("test", "sort");
        report.add_run("serve/closed/mixed/batched", metrics("batched", 1234.0));
        report.register_throughput("serve/closed/throughput", 2000.0);
        let json = report.to_json();
        // The gate's scanner reads the first {...} after "ns_per_iter";
        // it must contain only flat `"id": number` pairs.
        let at = json.find("\"ns_per_iter\"").expect("map present");
        let body = &json[at..];
        let open = body.find('{').unwrap();
        let close = body.find('}').unwrap();
        let inner = &body[open + 1..close];
        assert!(inner.contains("\"serve/closed/mixed/batched\": 1234"));
        assert!(inner.contains("\"serve/closed/throughput\": 500000"));
        assert!(!inner.contains('{'));
    }

    #[test]
    fn run_labels_do_not_shadow_gate_ids() {
        let mut report = LoadReport::new("test", "sort");
        report.add_run("serve/closed/mixed/batched", metrics("batched", 1.0));
        let json = report.to_json();
        // The id's first occurrence in the file must be inside the
        // ns_per_iter map (the runs array comes first in the output,
        // so labels must not equal ids).
        let id_at = json.find("\"serve/closed/mixed/batched\"").unwrap();
        let map_at = json.find("\"ns_per_iter\"").unwrap();
        assert!(id_at > map_at, "gate id leaked into the runs section");
    }

    #[test]
    fn json_strings_escape_quotes() {
        assert_eq!(json_str("a\"b\\c"), "\"a\\\"b\\\\c\"");
    }
}
