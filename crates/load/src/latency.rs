//! Latency sample collection and percentile summaries.

/// Collects `(start_ns, latency_ns)` samples, where `start_ns` is the
/// request's (intended) start offset from the beginning of the run.
/// Each client thread records into its own recorder; the driver merges
/// them after the run.
#[derive(Debug, Clone, Default)]
pub struct LatencyRecorder {
    samples: Vec<(u64, u64)>,
}

impl LatencyRecorder {
    /// An empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one completed request.
    pub fn record(&mut self, start_ns: u64, latency_ns: u64) {
        self.samples.push((start_ns, latency_ns));
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Moves every sample of `other` into this recorder.
    pub fn merge(&mut self, other: LatencyRecorder) {
        self.samples.extend(other.samples);
    }

    /// Summarizes the samples whose start offset falls inside
    /// `[window_start_ns, window_end_ns)` — the measurement window
    /// after warmup/cooldown trimming. Returns the summary and how
    /// many samples it covers.
    pub fn summarize(&self, window_start_ns: u64, window_end_ns: u64) -> LatencySummary {
        let mut lat: Vec<u64> = self
            .samples
            .iter()
            .filter(|(start, _)| *start >= window_start_ns && *start < window_end_ns)
            .map(|(_, l)| *l)
            .collect();
        lat.sort_unstable();
        LatencySummary::from_sorted(&lat)
    }
}

/// Percentiles over one run's measured latencies, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Samples inside the measurement window.
    pub count: u64,
    /// Arithmetic mean.
    pub mean_ns: f64,
    /// Median.
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
    /// 99.9th percentile.
    pub p999_ns: u64,
    /// Worst observed.
    pub max_ns: u64,
}

impl LatencySummary {
    /// Builds the summary from an ascending-sorted latency slice.
    pub fn from_sorted(sorted_ns: &[u64]) -> Self {
        if sorted_ns.is_empty() {
            return LatencySummary::default();
        }
        let count = sorted_ns.len() as u64;
        let sum: u128 = sorted_ns.iter().map(|&v| v as u128).sum();
        LatencySummary {
            count,
            mean_ns: sum as f64 / count as f64,
            p50_ns: percentile(sorted_ns, 50.0),
            p90_ns: percentile(sorted_ns, 90.0),
            p99_ns: percentile(sorted_ns, 99.0),
            p999_ns: percentile(sorted_ns, 99.9),
            max_ns: *sorted_ns.last().expect("non-empty"),
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn percentile(sorted: &[u64], p: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let rank = (p / 100.0 * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_a_uniform_ramp() {
        let sorted: Vec<u64> = (1..=1000).collect();
        let s = LatencySummary::from_sorted(&sorted);
        assert_eq!(s.count, 1000);
        // Nearest-rank rounds half away from zero: rank(50%) = 500.
        assert_eq!(s.p50_ns, 501);
        assert_eq!(s.p90_ns, 900);
        assert_eq!(s.p99_ns, 990);
        assert_eq!(s.p999_ns, 999);
        assert_eq!(s.max_ns, 1000);
        assert!((s.mean_ns - 500.5).abs() < 1e-9);
    }

    #[test]
    fn empty_summary_is_all_zero() {
        let s = LatencySummary::from_sorted(&[]);
        assert_eq!(s.count, 0);
        assert_eq!(s.max_ns, 0);
    }

    #[test]
    fn window_filtering_trims_warmup_and_cooldown() {
        let mut rec = LatencyRecorder::new();
        rec.record(10, 100); // before window
        rec.record(50, 200); // inside
        rec.record(60, 300); // inside
        rec.record(95, 400); // after window
        let s = rec.summarize(50, 90);
        assert_eq!(s.count, 2);
        assert_eq!(s.max_ns, 300);
        // Two samples: the median rank rounds up to the second.
        assert_eq!(s.p50_ns, 300);
    }

    #[test]
    fn merge_combines_recorders() {
        let mut a = LatencyRecorder::new();
        a.record(0, 1);
        let mut b = LatencyRecorder::new();
        b.record(1, 2);
        a.merge(b);
        assert_eq!(a.len(), 2);
    }
}
