//! The CounterMiner load harness: a seeded workload driver for
//! [`cm_serve`], measuring latency percentiles, throughput curves, and
//! fault behavior under concurrent load.
//!
//! A [`Workload`] describes *what* to offer the server — how many
//! simulated clients, how many operations each, the operation mix, and
//! the loop discipline:
//!
//! * **closed loop** ([`LoopMode::Closed`]): each client issues its
//!   next request the moment the previous one completes — measures
//!   capacity;
//! * **open loop** ([`LoopMode::Open`]): each client issues requests
//!   on a fixed schedule regardless of completions, and latency is
//!   measured from the *intended* start time, so queueing delay is
//!   charged to the server (no coordinated omission).
//!
//! [`run_workload`] drives one workload against a running
//! [`cm_serve::ServerHandle`] and returns [`RunMetrics`]: p50/p90/p99/
//! latency over the measurement window (warmup and cooldown samples
//! excluded), throughput, error counts, and the server's scheduling
//! counters. [`saturation_sweep`] repeats a workload across client
//! counts and marks where throughput stops scaling. [`LoadReport`]
//! renders everything as the `BENCH_serve_*.json` shape the
//! `perf_gate` binary consumes (`ns_per_iter` ids). [`chaos_sweep`]
//! replays a workload against servers whose store I/O is corrupted by
//! [`cm_chaos::FaultFs`] across many seeds, verifying every failure is
//! a typed error, and [`stream_chaos_sweep`] does the same for the
//! streaming workload — appends interleaved with subscription polls —
//! additionally verifying that every store *resumes* as a stream after
//! faults (no torn appends) and that notifications never arrive out of
//! order. An [`OpMix`] with a nonzero `stream_append` weight folds
//! live-ingest traffic into the ordinary measured workloads too.
//!
//! Everything is seeded ([`cm_chaos::ChaosRng`]): the request
//! *schedule* is deterministic per seed, so `serve.requests` and
//! `serve.errors` are reproducible even though timing-scoped counters
//! (`serve.batch.*`) are not.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod chaos;
mod latency;
mod report;
mod workload;

pub use chaos::{chaos_sweep, stream_chaos_sweep, ChaosOutcome, ChaosReport};
pub use latency::{LatencyRecorder, LatencySummary};
pub use report::LoadReport;
pub use workload::{
    prepare_store, run_workload, saturation_sweep, LoopMode, OpMix, RunMetrics, Workload,
};
