//! Workload definitions and the driver loop.

use crate::latency::{LatencyRecorder, LatencySummary};
use cm_chaos::ChaosRng;
use cm_serve::{Request, ServeStats, ServerHandle};
use cm_sim::Benchmark;
use cm_store::{SeriesKey, Store};
use counterminer::{CmError, CounterMiner, MinerConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::{Duration, Instant};

/// Relative operation weights of the mixed workload. An all-zero mix
/// degenerates to queries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Single-series reads ([`Request::Query`]).
    pub query: u32,
    /// Full analyses ([`Request::Analyze`]).
    pub analyze: u32,
    /// Top-k ranking requests ([`Request::Ranked`]).
    pub ranked: u32,
    /// Store metadata probes ([`Request::Info`]).
    pub info: u32,
    /// Streaming appends ([`Request::StreamAppend`]) of 1–16 rows each
    /// — the live-ingest workload. Zero (the default) keeps the
    /// classic read-mostly mix.
    pub stream_append: u32,
}

impl Default for OpMix {
    fn default() -> Self {
        OpMix {
            query: 12,
            analyze: 2,
            ranked: 1,
            info: 1,
            stream_append: 0,
        }
    }
}

/// The loop discipline clients drive with.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LoopMode {
    /// Issue the next request when the previous completes: measures
    /// the server's capacity at a given concurrency.
    Closed,
    /// Issue requests on a fixed per-client schedule (`rate_hz` each)
    /// regardless of completions; latency is measured from the
    /// *intended* start, so server-side queueing is charged in full
    /// (coordinated-omission correction).
    Open {
        /// Requests per second per client.
        rate_hz: f64,
    },
}

/// One load scenario: who offers how much of what, and how it is
/// measured.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Simulated clients (one thread each).
    pub clients: usize,
    /// Operations each client issues.
    pub ops_per_client: usize,
    /// Operation mix.
    pub mix: OpMix,
    /// Loop discipline.
    pub mode: LoopMode,
    /// Seed for the request schedule; the schedule (which operations,
    /// which keys) is a pure function of this seed.
    pub seed: u64,
    /// Samples starting earlier than this are excluded from the
    /// summary (cache and scheduler warm-up).
    pub warmup: Duration,
    /// Samples starting within this much of the end of the run are
    /// excluded (stragglers draining).
    pub cooldown: Duration,
}

impl Default for Workload {
    fn default() -> Self {
        Workload {
            clients: 64,
            ops_per_client: 16,
            mix: OpMix::default(),
            mode: LoopMode::Closed,
            seed: 0,
            warmup: Duration::ZERO,
            cooldown: Duration::ZERO,
        }
    }
}

/// What one [`run_workload`] measured.
#[derive(Debug, Clone, PartialEq)]
pub struct RunMetrics {
    /// Caller-chosen label (kept short and distinct from
    /// `ns_per_iter` ids — see [`crate::LoadReport`]).
    pub label: String,
    /// Clients driven.
    pub clients: usize,
    /// Operations issued (all of them, including warmup/cooldown).
    pub ops: u64,
    /// Operations answered with an error.
    pub errors: u64,
    /// Wall time of the whole run.
    pub elapsed_ns: u64,
    /// Completed operations per second over the measurement window.
    pub throughput_ops_per_sec: f64,
    /// Latency percentiles over the measurement window.
    pub latency: LatencySummary,
    /// Server scheduling counters, as a delta over this run.
    pub stats: ServeStats,
}

/// Draws the next request of the schedule.
pub(crate) fn pick_op(
    rng: &mut ChaosRng,
    mix: &OpMix,
    store: &str,
    benchmark: Benchmark,
    keys: &[SeriesKey],
) -> Request {
    let total = (mix.query + mix.analyze + mix.ranked + mix.info + mix.stream_append).max(1) as u64;
    let roll = rng.below(total) as u32;
    let store = store.to_string();
    if roll < mix.query || total == 1 {
        if keys.is_empty() {
            return Request::Info { store };
        }
        let key = keys[rng.below(keys.len() as u64) as usize].clone();
        return Request::Query { store, key };
    }
    if roll < mix.query + mix.analyze {
        Request::Analyze { store, benchmark }
    } else if roll < mix.query + mix.analyze + mix.ranked {
        Request::Ranked {
            store,
            benchmark,
            top_k: 5,
        }
    } else if roll < mix.query + mix.analyze + mix.ranked + mix.info {
        Request::Info { store }
    } else {
        Request::StreamAppend {
            store,
            benchmark,
            rows: 1 + rng.below(16) as usize,
        }
    }
}

fn stats_delta(after: ServeStats, before: ServeStats) -> ServeStats {
    ServeStats {
        requests: after.requests - before.requests,
        errors: after.errors - before.errors,
        batch_flushes: after.batch_flushes - before.batch_flushes,
        batch_coalesced: after.batch_coalesced - before.batch_coalesced,
        dedup_hits: after.dedup_hits - before.dedup_hits,
    }
}

/// Drives one workload against a running server and measures it.
///
/// Spawns `workload.clients` threads, each with an independent seeded
/// schedule, plus a background sampler publishing the server's
/// per-shard cache gauges (visible under `serve.cache.shard.*` when
/// observability is on). Blocks until every client finishes.
pub fn run_workload(
    handle: &ServerHandle,
    store: &str,
    benchmark: Benchmark,
    keys: &[SeriesKey],
    workload: &Workload,
    label: &str,
) -> RunMetrics {
    let stats_before = handle.stats();
    let mut root = ChaosRng::new(workload.seed);
    let client_seeds: Vec<u64> = (0..workload.clients).map(|_| root.next_u64()).collect();
    let stop = AtomicBool::new(false);
    let run_start = Instant::now();

    let mut recorder = LatencyRecorder::new();
    let mut ops = 0u64;
    let mut errors = 0u64;
    std::thread::scope(|s| {
        // Background stats sampler: cheap, and a no-op with
        // observability off.
        let sampler = s.spawn(|| {
            while !stop.load(Ordering::Relaxed) {
                handle.publish_gauges();
                std::thread::sleep(Duration::from_millis(20));
            }
            handle.publish_gauges();
        });

        let workers: Vec<_> = client_seeds
            .iter()
            .map(|&seed| {
                let client = handle.client();
                s.spawn(move || {
                    let mut rng = ChaosRng::new(seed);
                    let mut rec = LatencyRecorder::new();
                    let mut errs = 0u64;
                    for i in 0..workload.ops_per_client {
                        let req = pick_op(&mut rng, &workload.mix, store, benchmark, keys);
                        let (start_ns, issued_at) = match workload.mode {
                            LoopMode::Closed => {
                                (run_start.elapsed().as_nanos() as u64, Instant::now())
                            }
                            LoopMode::Open { rate_hz } => {
                                let offset = Duration::from_secs_f64(i as f64 / rate_hz.max(1e-9));
                                let intended = run_start + offset;
                                let now = Instant::now();
                                if intended > now {
                                    std::thread::sleep(intended - now);
                                }
                                (offset.as_nanos() as u64, intended)
                            }
                        };
                        let result = client.call(req);
                        let latency_ns = issued_at.elapsed().as_nanos() as u64;
                        if result.is_err() {
                            errs += 1;
                        }
                        rec.record(start_ns, latency_ns);
                    }
                    (rec, errs)
                })
            })
            .collect();
        for worker in workers {
            let (rec, errs) = worker.join().expect("client thread");
            ops += rec.len() as u64;
            errors += errs;
            recorder.merge(rec);
        }
        stop.store(true, Ordering::Relaxed);
        let _ = sampler.join();
    });

    let elapsed = run_start.elapsed();
    let elapsed_ns = elapsed.as_nanos() as u64;
    let warmup_ns = workload.warmup.as_nanos() as u64;
    let cooldown_ns = workload.cooldown.as_nanos() as u64;
    // Fall back to the full run when trimming would leave no window.
    let (win_start, win_end) = if warmup_ns + cooldown_ns < elapsed_ns {
        (warmup_ns, elapsed_ns - cooldown_ns)
    } else {
        (0, u64::MAX)
    };
    let latency = recorder.summarize(win_start, win_end);
    let window_secs = if win_end == u64::MAX {
        elapsed.as_secs_f64()
    } else {
        (win_end - win_start) as f64 / 1e9
    };
    let throughput = if window_secs > 0.0 {
        latency.count as f64 / window_secs
    } else {
        0.0
    };
    RunMetrics {
        label: label.to_string(),
        clients: workload.clients,
        ops,
        errors,
        elapsed_ns,
        throughput_ops_per_sec: throughput,
        latency,
        stats: stats_delta(handle.stats(), stats_before),
    }
}

/// Runs `base` at each client count and finds the saturation point:
/// the first count whose throughput improves on the previous one by
/// less than 10%. Returns the per-count metrics and that count (or
/// `None` if throughput kept scaling through the last point).
pub fn saturation_sweep(
    handle: &ServerHandle,
    store: &str,
    benchmark: Benchmark,
    keys: &[SeriesKey],
    base: &Workload,
    client_counts: &[usize],
    label_prefix: &str,
) -> (Vec<RunMetrics>, Option<usize>) {
    let mut runs: Vec<RunMetrics> = Vec::with_capacity(client_counts.len());
    let mut saturation = None;
    for &clients in client_counts {
        let mut w = base.clone();
        w.clients = clients;
        let label = format!("{label_prefix} c{clients}");
        let metrics = run_workload(handle, store, benchmark, keys, &w, &label);
        if saturation.is_none() {
            if let Some(prev) = runs.last() {
                if metrics.throughput_ops_per_sec < prev.throughput_ops_per_sec * 1.10 {
                    saturation = Some(clients);
                }
            }
        }
        runs.push(metrics);
    }
    (runs, saturation)
}

/// Warms the store at `path` with `benchmark`'s snapshot under
/// `config` (collecting it if absent) and returns every stored series
/// key — the key population the query workload draws from.
///
/// # Errors
///
/// Propagates collection and store failures.
pub fn prepare_store(
    path: &std::path::Path,
    benchmark: Benchmark,
    config: &MinerConfig,
) -> Result<Vec<SeriesKey>, CmError> {
    let miner = CounterMiner::new(*config);
    let mut store = Store::open(path).map_err(CmError::Store)?;
    miner.ingest(benchmark, &mut store)?;
    Ok(store.series_keys().cloned().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::{EventId, SampleMode};
    use cm_serve::{ServeConfig, Server};

    fn query_only() -> OpMix {
        OpMix {
            query: 1,
            analyze: 0,
            ranked: 0,
            info: 0,
            stream_append: 0,
        }
    }

    fn store_with_series(tag: &str, series: usize) -> (std::path::PathBuf, Vec<SeriesKey>) {
        let dir = std::env::temp_dir().join(format!("cm_load_unit_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let path = dir.join("load.cmstore");
        let _ = std::fs::remove_file(&path);
        let mut store = Store::open(&path).expect("open");
        let mut keys = Vec::new();
        for event in 0..series {
            let key = SeriesKey::new("prog", 0, SampleMode::Mlpx, EventId::new(event));
            let values: Vec<f64> = (0..64).map(|i| (event * 7 + i) as f64).collect();
            store.append_series(key.clone(), &values).expect("append");
            keys.push(key);
        }
        store.commit().expect("commit");
        (path, keys)
    }

    #[test]
    fn closed_loop_counts_every_operation() {
        let (path, keys) = store_with_series("closed", 8);
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let mut server = Server::new(config);
        server.add_store("main", &path).expect("register");
        let handle = server.start();
        let workload = Workload {
            clients: 4,
            ops_per_client: 5,
            mix: query_only(),
            seed: 3,
            ..Workload::default()
        };
        let m = run_workload(&handle, "main", Benchmark::Sort, &keys, &workload, "t");
        assert_eq!(m.ops, 20);
        assert_eq!(m.errors, 0);
        assert_eq!(m.stats.requests, 20);
        assert_eq!(m.latency.count, 20);
        assert!(m.throughput_ops_per_sec > 0.0);
        assert!(m.latency.max_ns >= m.latency.p50_ns);
        handle.shutdown();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn open_loop_paces_and_measures_from_intended_start() {
        let (path, keys) = store_with_series("open", 4);
        let config = ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        };
        let mut server = Server::new(config);
        server.add_store("main", &path).expect("register");
        let handle = server.start();
        let workload = Workload {
            clients: 2,
            ops_per_client: 4,
            mix: query_only(),
            mode: LoopMode::Open { rate_hz: 200.0 },
            seed: 9,
            ..Workload::default()
        };
        let m = run_workload(&handle, "main", Benchmark::Sort, &keys, &workload, "t");
        assert_eq!(m.ops, 8);
        assert_eq!(m.errors, 0);
        // 4 ops at 200 Hz = 15 ms of schedule per client at minimum.
        assert!(m.elapsed_ns >= 15_000_000, "run too fast: {}", m.elapsed_ns);
        handle.shutdown();
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn schedules_are_seed_deterministic() {
        let mix = OpMix::default();
        let keys: Vec<SeriesKey> = (0..6)
            .map(|e| SeriesKey::new("p", 0, SampleMode::Mlpx, EventId::new(e)))
            .collect();
        let draw = |seed: u64| -> Vec<Request> {
            let mut rng = ChaosRng::new(seed);
            (0..20)
                .map(|_| pick_op(&mut rng, &mix, "main", Benchmark::Sort, &keys))
                .collect()
        };
        assert_eq!(draw(42), draw(42));
        assert_ne!(draw(42), draw(43));
    }

    #[test]
    fn empty_key_population_degrades_to_info() {
        let mut rng = ChaosRng::new(0);
        let mix = query_only();
        for _ in 0..10 {
            let req = pick_op(&mut rng, &mix, "main", Benchmark::Sort, &[]);
            assert!(matches!(req, Request::Info { .. }));
        }
    }
}
