//! The serving layer under deterministic fault injection: across 64
//! fault-schedule seeds, every failed request must surface as a typed
//! error (never a caught panic), and every store must reopen cleanly
//! or fail with a typed store error (never silently torn).

use cm_load::{chaos_sweep, prepare_store, LoopMode, Workload};
use cm_serve::ServeConfig;
use cm_sim::Benchmark;
use counterminer::MinerConfig;

/// Tiny on purpose: the sweep runs 64 servers back to back.
fn chaos_config() -> MinerConfig {
    let mut config = MinerConfig {
        events_to_measure: Some(8),
        runs_per_benchmark: 1,
        interaction_top_k: 2,
        ..MinerConfig::default()
    };
    config.importance.sgbrt.n_trees = 8;
    config.importance.sgbrt.tree.max_depth = 2;
    config.importance.prune_step = 2;
    config.importance.min_events = 4;
    config
}

#[test]
fn sixty_four_seed_fault_sweep_stays_typed_and_untorn() {
    let benchmark = Benchmark::Sort;
    let config = chaos_config();
    let dir = std::env::temp_dir().join(format!("cm_load_chaos_it_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");
    let template = dir.join("template.cmstore");
    let _ = std::fs::remove_file(&template);
    let keys = prepare_store(&template, benchmark, &config).expect("warm template");

    let sc = ServeConfig {
        miner: config,
        workers: 2,
        max_batch: 8,
        ..ServeConfig::default()
    };
    let workload = Workload {
        clients: 3,
        ops_per_client: 4,
        mode: LoopMode::Closed,
        seed: 11,
        ..Workload::default()
    };
    let report = chaos_sweep(&template, &dir, benchmark, &sc, &workload, &keys, 0..64)
        .expect("sweep harness");

    assert_eq!(report.outcomes.len(), 64);
    assert_eq!(report.handler_panics(), 0, "caught panics: {report:?}");
    assert_eq!(report.torn_stores(), 0, "torn stores: {report:?}");
    // The schedules really fire (not every seed's fault ops are
    // reached, but across 64 seeds plenty must be).
    assert!(
        report.total_faults() >= 8,
        "fault injection barely engaged: {} faults",
        report.total_faults()
    );
    for o in &report.outcomes {
        // Either the store opened and every request got an answer, or
        // the open itself failed with a typed error.
        assert!(
            o.ops == 12 || (o.ops == 0 && o.typed_errors >= 1),
            "seed {}: {} ops, {} typed errors",
            o.seed,
            o.ops,
            o.typed_errors
        );
        assert!(
            o.reopen_ok || o.reopen_typed_error,
            "seed {}: torn store",
            o.seed
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
