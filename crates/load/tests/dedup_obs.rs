//! Dedup observability: with metrics on, the scheduler's counters,
//! the per-shard cache gauges, and the request span tree all surface
//! in the cm-obs registry. Lives in its own test binary because it
//! flips the process-global observability mode.

use cm_load::prepare_store;
use cm_serve::{Request, Response, ServeConfig, Server};
use cm_sim::Benchmark;
use counterminer::MinerConfig;

#[test]
fn dedup_hits_surface_in_the_obs_registry() {
    let benchmark = Benchmark::Sort;
    let mut config = MinerConfig {
        events_to_measure: Some(10),
        runs_per_benchmark: 1,
        interaction_top_k: 2,
        ..MinerConfig::default()
    };
    config.importance.sgbrt.n_trees = 10;
    config.importance.sgbrt.tree.max_depth = 2;
    config.importance.prune_step = 2;
    config.importance.min_events = 4;

    let dir = std::env::temp_dir().join(format!("cm_load_obs_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("obs.cmstore");
    let _ = std::fs::remove_file(&path);
    prepare_store(&path, benchmark, &config).expect("warm store");

    cm_obs::set_mode(cm_obs::Mode::Summary);
    let _ = cm_obs::Registry::global().drain(); // start from a clean slate

    let sc = ServeConfig {
        miner: config,
        workers: 2,
        ..ServeConfig::default()
    };
    let mut server = Server::new(sc);
    server.add_store("main", &path).expect("register");
    let client = server.client();
    let pending: Vec<_> = (0..6)
        .map(|_| {
            client.submit(Request::Analyze {
                store: "main".into(),
                benchmark,
            })
        })
        .collect();
    let handle = server.start();
    for p in pending {
        assert!(matches!(p.wait().expect("analyze"), Response::Analysis(_)));
    }
    handle.publish_gauges();
    let stats = handle.shutdown();
    cm_obs::set_mode(cm_obs::Mode::Off);
    let snap = cm_obs::Registry::global().drain();

    assert_eq!(stats.dedup_hits, 5);
    assert_eq!(snap.counters.get("serve.requests"), Some(&6));
    assert_eq!(snap.counters.get("serve.dedup.hits"), Some(&5));
    // Batch-formation counters are timing-dependent by nature, so the
    // determinism rule must exempt them — and only them.
    let deterministic = snap.deterministic_counters();
    assert!(deterministic.contains_key("serve.requests"));
    assert!(!deterministic.contains_key("serve.dedup.hits"));
    // The background gauge publisher ran at least once.
    assert!(
        snap.gauges
            .keys()
            .any(|k| k.starts_with("serve.cache.shard.")),
        "no cache shard gauges in {:?}",
        snap.gauges.keys()
    );
    // Request spans survived the client-to-worker thread hop.
    let spans = snap.span_counts();
    assert!(
        spans.keys().any(|k| k.contains("serve.request")),
        "no serve.request span in {:?}",
        spans.keys()
    );
    let _ = std::fs::remove_file(&path);
}
