//! Concurrency correctness: many client threads hammering one shared
//! store must observe results bit-identical to a single-threaded
//! oracle, and identical concurrent analyses must collapse into one
//! computation.

use cm_load::prepare_store;
use cm_serve::{Request, Response, ServeConfig, Server};
use cm_sim::Benchmark;
use cm_store::Store;
use counterminer::{CounterMiner, MinerConfig};
use std::path::PathBuf;
use std::sync::Arc;

/// Small enough for debug-mode CI, big enough to exercise the full
/// pipeline (cleaning, SGBRT, pruning, interactions).
fn micro_config() -> MinerConfig {
    let mut config = MinerConfig {
        events_to_measure: Some(12),
        runs_per_benchmark: 1,
        interaction_top_k: 3,
        ..MinerConfig::default()
    };
    config.importance.sgbrt.n_trees = 20;
    config.importance.sgbrt.tree.max_depth = 3;
    config.importance.prune_step = 3;
    config.importance.min_events = 6;
    config
}

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_load_it_{}_{tag}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("it.cmstore");
    let _ = std::fs::remove_file(&path);
    path
}

#[test]
fn concurrent_mixed_load_matches_the_serial_oracle() {
    let benchmark = Benchmark::Sort;
    let config = micro_config();
    let path = temp_store("oracle");
    let keys = prepare_store(&path, benchmark, &config).expect("warm store");
    assert!(!keys.is_empty());

    // The serial oracle: one thread, its own store handle and miner.
    let oracle_store = Store::open(&path).expect("oracle open");
    let miner = CounterMiner::new(config);
    let oracle = miner
        .analyze_snapshot(benchmark, &oracle_store)
        .expect("oracle analyze")
        .expect("warm snapshot");
    let oracle_ranking = oracle.eir.ranking.clone();
    let oracle_series: Vec<Arc<Vec<f64>>> =
        oracle_store.read_series_batch(&keys).expect("oracle reads");

    for &clients in &[2usize, 4, 8, 16, 32] {
        let sc = ServeConfig {
            miner: config,
            workers: 2,
            ..ServeConfig::default()
        };
        let mut server = Server::new(sc);
        server.add_store("main", &path).expect("register");
        let handle = server.start();
        std::thread::scope(|s| {
            for t in 0..clients {
                let client = handle.client();
                let keys = &keys;
                let oracle_ranking = &oracle_ranking;
                let oracle_series = &oracle_series;
                s.spawn(move || {
                    // Two series reads, spread across the key space.
                    for j in 0..2usize {
                        let i = (t * 7 + j * 3) % keys.len();
                        match client
                            .call(Request::Query {
                                store: "main".into(),
                                key: keys[i].clone(),
                            })
                            .expect("query")
                        {
                            Response::Series(series) => {
                                assert_eq!(series.len(), oracle_series[i].len());
                                for (a, b) in series.iter().zip(oracle_series[i].iter()) {
                                    assert_eq!(
                                        a.to_bits(),
                                        b.to_bits(),
                                        "{clients} clients: series {i} diverged"
                                    );
                                }
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                    // Then an analysis — full or top-k, alternating.
                    if t % 2 == 0 {
                        match client
                            .call(Request::Analyze {
                                store: "main".into(),
                                benchmark,
                            })
                            .expect("analyze")
                        {
                            Response::Analysis(a) => {
                                assert_eq!(a.ranking.len(), oracle_ranking.len());
                                for ((ae, av), (oe, ov)) in
                                    a.ranking.iter().zip(oracle_ranking.iter())
                                {
                                    assert_eq!(ae, oe, "{clients} clients: ranking order diverged");
                                    assert_eq!(
                                        av.to_bits(),
                                        ov.to_bits(),
                                        "{clients} clients: importance diverged"
                                    );
                                }
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                    } else {
                        match client
                            .call(Request::Ranked {
                                store: "main".into(),
                                benchmark,
                                top_k: 3,
                            })
                            .expect("ranked")
                        {
                            Response::Ranked(top) => {
                                assert_eq!(top.len(), oracle_ranking.len().min(3));
                                for ((ae, av), (oe, ov)) in top.iter().zip(oracle_ranking.iter()) {
                                    assert_eq!(ae, oe);
                                    assert_eq!(av.to_bits(), ov.to_bits());
                                }
                            }
                            other => panic!("unexpected response {other:?}"),
                        }
                    }
                });
            }
        });
        let stats = handle.shutdown();
        assert_eq!(stats.errors, 0, "{clients} clients: request errors");
        assert_eq!(stats.requests, (clients * 3) as u64);
    }
    let _ = std::fs::remove_file(&path);
}

#[test]
fn identical_analyzes_deduplicate_into_one_computation() {
    let benchmark = Benchmark::Sort;
    let config = micro_config();
    let path = temp_store("dedup");
    prepare_store(&path, benchmark, &config).expect("warm store");

    let sc = ServeConfig {
        miner: config,
        workers: 2,
        ..ServeConfig::default()
    };
    let mut server = Server::new(sc);
    server.add_store("main", &path).expect("register");
    let client = server.client();
    // All eight identical requests are enqueued before the scheduler
    // starts, so they form one batch and must collapse into a single
    // computation fanned out to every waiter.
    let pending: Vec<_> = (0..8)
        .map(|_| {
            client.submit(Request::Analyze {
                store: "main".into(),
                benchmark,
            })
        })
        .collect();
    let handle = server.start();
    let mut first: Option<Arc<cm_serve::RankedAnalysis>> = None;
    for p in pending {
        match p.wait().expect("analyze") {
            Response::Analysis(a) => match &first {
                Some(f) => assert!(
                    Arc::ptr_eq(f, &a),
                    "deduplicated waiters received different allocations"
                ),
                None => first = Some(a),
            },
            other => panic!("unexpected response {other:?}"),
        }
    }
    let stats = handle.shutdown();
    assert_eq!(stats.requests, 8);
    assert_eq!(stats.batch_flushes, 1);
    assert_eq!(stats.dedup_hits, 7);
    let _ = std::fs::remove_file(&path);
}
