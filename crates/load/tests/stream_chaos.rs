//! Streaming appends under deterministic fault injection: across 64
//! fault-schedule seeds, every failed append must surface as a typed
//! error (never a caught panic), every store must reopen *and resume as
//! a stream* cleanly or fail with a typed store error (never a torn
//! append), and subscription notifications must never arrive out of
//! order.

use cm_load::stream_chaos_sweep;
use cm_serve::ServeConfig;
use cm_sim::Benchmark;
use counterminer::MinerConfig;

/// Tiny on purpose: the sweep runs 64 servers back to back, and
/// watched appends retrain whenever a block seals.
fn chaos_config() -> MinerConfig {
    let mut config = MinerConfig {
        events_to_measure: Some(8),
        runs_per_benchmark: 1,
        interaction_top_k: 2,
        ..MinerConfig::default()
    };
    config.importance.sgbrt.n_trees = 8;
    config.importance.sgbrt.tree.max_depth = 2;
    config.importance.prune_step = 2;
    config.importance.min_events = 4;
    config
}

#[test]
fn sixty_four_seed_append_fault_sweep_stays_typed_and_untorn() {
    let benchmark = Benchmark::Sort;
    let dir = std::env::temp_dir().join(format!("cm_load_stream_chaos_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir");

    let sc = ServeConfig {
        miner: chaos_config(),
        workers: 2,
        max_batch: 8,
        ..ServeConfig::default()
    };
    let report = stream_chaos_sweep(&dir, benchmark, &sc, 40, 6, 0..64).expect("sweep harness");

    assert_eq!(report.outcomes.len(), 64);
    assert_eq!(report.handler_panics(), 0, "caught panics: {report:?}");
    assert_eq!(report.torn_stores(), 0, "torn appends: {report:?}");
    assert_eq!(
        report.stale_notifications(),
        0,
        "stale notifications: {report:?}"
    );
    assert!(
        report.total_faults() >= 8,
        "fault injection barely engaged: {} faults",
        report.total_faults()
    );
    for o in &report.outcomes {
        // Either the server came up and every operation got an answer,
        // or store registration itself failed with a typed error.
        assert!(
            o.ops >= 6 || (o.ops == 0 && o.typed_errors >= 1),
            "seed {}: {} ops, {} typed errors",
            o.seed,
            o.ops,
            o.typed_errors
        );
        assert!(
            o.reopen_ok || o.reopen_typed_error,
            "seed {}: torn append",
            o.seed
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
