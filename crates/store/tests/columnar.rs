//! Corruption-path coverage for the columnar store: every damaged-file
//! shape must surface as a *typed* [`StoreError`] — never a panic —
//! and the block cache must behave deterministically.

use cm_events::{EventId, SampleMode};
use cm_store::{CacheConfig, SeriesKey, Store, StoreError};
use std::fs;
use std::path::PathBuf;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_columnar_it_{tag}_{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir.join("store.cmstore")
}

fn key(event: usize) -> SeriesKey {
    SeriesKey::new("wordcount", 0, SampleMode::Mlpx, EventId::new(event))
}

/// Builds a committed store with a few chunks and returns its path.
fn committed_store(tag: &str) -> PathBuf {
    let path = temp_store(tag);
    let mut store = Store::open(&path).unwrap();
    store
        .append_series(key(1), &[100.0, 104.0, 99.0, 101.0])
        .unwrap();
    store.append_series(key(2), &[0.25, -1.5, 3.75]).unwrap();
    store.set_meta("origin", "corruption-tests");
    store.commit().unwrap();
    path
}

#[test]
fn truncated_superblock_is_typed() {
    let path = committed_store("trunc_super");
    let bytes = fs::read(&path).unwrap();
    fs::write(&path, &bytes[..16]).unwrap();
    match Store::open(&path) {
        Err(StoreError::Truncated { .. }) => {}
        other => panic!("expected Truncated, got {other:?}"),
    }
}

#[test]
fn truncated_body_is_typed() {
    let path = committed_store("trunc_body");
    let bytes = fs::read(&path).unwrap();
    // Keep the superblock but cut the file before the index ends.
    fs::write(&path, &bytes[..bytes.len() - 10]).unwrap();
    match Store::open(&path) {
        Err(StoreError::Truncated { .. }) | Err(StoreError::Io(_)) => {}
        other => panic!("expected Truncated/Io, got {other:?}"),
    }
}

#[test]
fn flipped_index_byte_fails_index_checksum() {
    let path = committed_store("bad_index");
    let mut bytes = fs::read(&path).unwrap();
    // The index is at the tail; flip a byte a little before the final CRC.
    let n = bytes.len();
    bytes[n - 12] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();
    match Store::open(&path) {
        Err(StoreError::ChecksumMismatch { what, .. }) => {
            assert!(what.contains("index"), "unexpected region: {what}")
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}

#[test]
fn flipped_chunk_byte_fails_chunk_checksum_on_read() {
    let path = committed_store("bad_chunk");
    let mut bytes = fs::read(&path).unwrap();
    // Chunks start right after the 32-byte superblock.
    bytes[33] ^= 0xFF;
    fs::write(&path, &bytes).unwrap();
    // Open succeeds (the index is intact) — the damage is detected when
    // the chunk is actually read.
    let store = Store::open(&path).unwrap();
    let failed = [key(1), key(2)].iter().any(|k| {
        matches!(
            store.read_series(k),
            Err(StoreError::ChecksumMismatch { .. })
        )
    });
    assert!(failed, "flipping a chunk byte must fail some read");
}

#[test]
fn wrong_version_is_typed() {
    let path = committed_store("bad_version");
    let mut bytes = fs::read(&path).unwrap();
    bytes[4..8].copy_from_slice(&7u32.to_le_bytes());
    // Recompute the superblock CRC so the version check is what fires.
    let crc = {
        // CRC-32/IEEE over the first 28 bytes, matching the writer.
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    (c >> 1) ^ 0xEDB8_8320
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        let mut c: u32 = 0xFFFF_FFFF;
        for &b in &bytes[..28] {
            c = (c >> 8) ^ table[((c ^ u32::from(b)) & 0xFF) as usize];
        }
        c ^ 0xFFFF_FFFF
    };
    bytes[28..32].copy_from_slice(&crc.to_le_bytes());
    fs::write(&path, &bytes).unwrap();
    match Store::open(&path) {
        Err(StoreError::UnsupportedVersion {
            found, supported, ..
        }) => {
            assert_eq!(found, 7);
            assert_eq!(supported, 2);
        }
        other => panic!("expected UnsupportedVersion, got {other:?}"),
    }
}

#[test]
fn not_a_store_is_typed() {
    let path = temp_store("not_a_store");
    fs::write(&path, b"PK\x03\x04 definitely a zip file, not a store").unwrap();
    match Store::open(&path) {
        Err(StoreError::NotAStore { .. }) => {}
        other => panic!("expected NotAStore, got {other:?}"),
    }
}

#[test]
fn partial_write_recovery_preserves_committed_state() {
    let path = committed_store("partial");
    // A crash mid-commit leaves a temporary file; the committed store
    // must win and the leftover must be removed.
    let tmp = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".tmp");
        PathBuf::from(name)
    };
    fs::write(&tmp, b"half-written garbage from a dying process").unwrap();
    let store = Store::open(&path).unwrap();
    assert!(!tmp.exists());
    assert_eq!(
        *store.read_series(&key(1)).unwrap(),
        vec![100.0, 104.0, 99.0, 101.0]
    );
}

#[test]
fn interrupted_first_commit_leaves_no_store() {
    let path = temp_store("first_commit");
    let tmp = {
        let mut name = path.as_os_str().to_os_string();
        name.push(".tmp");
        PathBuf::from(name)
    };
    fs::write(&tmp, b"garbage").unwrap();
    // No committed file ever existed: recovery yields an empty store.
    let store = Store::open(&path).unwrap();
    assert_eq!(store.series_count(), 0);
    assert!(!tmp.exists());
}

#[test]
fn cache_hit_miss_counts_are_deterministic() {
    let run_once = |tag: &str| {
        let path = temp_store(tag);
        let mut store = Store::open_with(
            &path,
            CacheConfig {
                capacity_bytes: 1 << 20,
                shards: 4,
            },
        )
        .unwrap();
        for e in 0..8 {
            store.append_series(key(e), &[e as f64; 64]).unwrap();
        }
        store.commit().unwrap();

        // Deterministic access pattern: two full sweeps + point reads.
        for _ in 0..2 {
            for e in 0..8 {
                store.read_series(&key(e)).unwrap();
            }
        }
        store.read_series(&key(3)).unwrap();
        store.read_series(&key(3)).unwrap();
        let stats = store.cache_stats();
        (stats.hits, stats.misses, stats.evictions)
    };

    let a = run_once("cache_det_a");
    let b = run_once("cache_det_b");
    assert_eq!(a, b, "cache counters must not depend on run identity");
    // First sweep misses all 8, everything after hits.
    assert_eq!(a.1, 8, "exactly one miss per chunk");
    assert_eq!(a.0, 10, "second sweep + two point reads all hit");
    assert_eq!(a.2, 0, "1 MiB capacity must not evict 8 tiny chunks");
}

#[test]
fn zero_capacity_cache_is_inert() {
    let path = temp_store("cache_off");
    let mut store = Store::open_with(
        &path,
        CacheConfig {
            capacity_bytes: 0,
            shards: 2,
        },
    )
    .unwrap();
    store.append_series(key(1), &[1.0, 2.0]).unwrap();
    store.commit().unwrap();
    for _ in 0..3 {
        let read = store.read_series(&key(1)).unwrap();
        assert_eq!(read.as_slice(), &[1.0, 2.0]);
    }
    // A disabled cache is fully inert: reads still work, but no hit or
    // miss traffic is recorded (counting misses on a cache the user
    // turned off made `CM_STORE_CACHE=0` look like pathological churn).
    let stats = store.cache_stats();
    assert_eq!(stats.hits, 0);
    assert_eq!(stats.misses, 0);
    assert_eq!(stats.evictions, 0);
}
