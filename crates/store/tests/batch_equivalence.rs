//! Equivalence of the batched read path with per-key reads.
//!
//! [`Store::read_series_batch`] takes a different route to the bytes —
//! coalesced region reads, borrowed-slice decode, parallel CRC checks —
//! so these tests pin the contract that makes it safe to substitute for
//! a loop of [`Store::read_series`] calls: **bit-identical results** for
//! every committed encoding (raw `f64` and delta+varint, including the
//! ±2^52 delta boundary and `-0.0`), with caching on, off, or warm, for
//! duplicate and shuffled key orders, at any thread count.

use cm_events::{EventId, SampleMode};
use cm_store::{CacheConfig, SeriesKey, Store, StoreError};
use std::path::PathBuf;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_batch_eq_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("eq.cmstore")
}

fn key(run: u32, event: usize) -> SeriesKey {
    SeriesKey::new("eq", run, SampleMode::Mlpx, EventId::new(event))
}

/// Series covering both codecs and their edge cases: integral values
/// (delta+varint) right up to the ±2^52 representability boundary, and
/// fractional / signed-zero / non-finite values (raw `f64`).
fn payloads() -> Vec<(SeriesKey, Vec<f64>)> {
    const P52: f64 = 4503599627370496.0; // 2^52
    vec![
        (key(0, 0), vec![1.0, 2.0, 3.0, 4.0]),
        (key(0, 1), vec![0.5, -7.25, 1e-3, f64::NAN]),
        (key(0, 2), vec![P52, -P52, 0.0, P52 - 1.0]),
        (key(0, 3), vec![-0.0, 0.0, -0.0]),
        (key(1, 0), (0..500).map(|i| (i * i % 8191) as f64).collect()),
        (key(1, 1), vec![f64::INFINITY, f64::NEG_INFINITY, -0.5]),
        (key(2, 0), vec![]),
    ]
}

fn committed(path: &PathBuf) -> Store {
    let mut store = Store::open_with(path, CacheConfig::default()).unwrap();
    for (k, v) in payloads() {
        store.append_series(k, &v).unwrap();
    }
    store.commit().unwrap();
    store
}

/// Element-wise bit equality — distinguishes `-0.0` from `0.0` and
/// treats equal-bits NaNs as equal, which `==` on `f64` does not.
fn assert_bits_eq(got: &[f64], want: &[f64], what: &str) {
    assert_eq!(got.len(), want.len(), "{what}: length mismatch");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        assert_eq!(g.to_bits(), w.to_bits(), "{what}: value {i} differs");
    }
}

#[test]
fn cold_batch_matches_per_key_reads_bit_exactly() {
    let path = temp_store("cold");
    committed(&path);

    // Two fresh stores so both paths decode from disk, not the cache.
    let sequential = Store::open_with(&path, CacheConfig::default()).unwrap();
    let batched = Store::open_with(&path, CacheConfig::default()).unwrap();

    let keys: Vec<SeriesKey> = payloads().into_iter().map(|(k, _)| k).collect();
    let batch = batched.read_series_batch(&keys).unwrap();
    for (i, k) in keys.iter().enumerate() {
        let one = sequential.read_series(k).unwrap();
        assert_bits_eq(&batch[i], &one, "cold batch vs per-key");
    }
}

#[test]
fn batch_with_cache_disabled_matches() {
    let path = temp_store("nocache");
    committed(&path);

    let disabled = CacheConfig {
        capacity_bytes: 0,
        shards: 1,
    };
    let store = Store::open_with(&path, disabled).unwrap();
    let keys: Vec<SeriesKey> = payloads().into_iter().map(|(k, _)| k).collect();
    // Twice: with caching off every batch decodes from disk again.
    for round in 0..2 {
        let batch = store.read_series_batch(&keys).unwrap();
        for (got, (_, want)) in batch.iter().zip(payloads()) {
            assert_bits_eq(got, &want, &format!("uncached batch round {round}"));
        }
    }
    assert_eq!(
        store.cache_stats().entries,
        0,
        "disabled cache stayed empty"
    );
}

#[test]
fn warm_batch_serves_cache_hits_bit_exactly() {
    let path = temp_store("warm");
    let store = committed(&path);

    let keys: Vec<SeriesKey> = payloads().into_iter().map(|(k, _)| k).collect();
    let cold = store.read_series_batch(&keys).unwrap();
    let misses_after_cold = store.cache_stats().misses;
    let warm = store.read_series_batch(&keys).unwrap();

    for ((c, w), (_, want)) in cold.iter().zip(&warm).zip(payloads()) {
        assert_bits_eq(c, &want, "cold batch");
        assert_bits_eq(w, &want, "warm batch");
    }
    assert_eq!(
        store.cache_stats().misses,
        misses_after_cold,
        "warm batch decoded nothing"
    );
    assert!(store.cache_stats().hits >= keys.len() as u64 - 1);
}

#[test]
fn duplicate_and_shuffled_keys_fill_every_slot() {
    let path = temp_store("dup");
    committed(&path);
    let store = Store::open_with(&path, CacheConfig::default()).unwrap();

    // Reversed order, with duplicates sprinkled in.
    let mut keys: Vec<SeriesKey> = payloads().into_iter().map(|(k, _)| k).rev().collect();
    keys.push(key(0, 2));
    keys.push(key(0, 0));
    keys.push(key(0, 2));

    let by_key: std::collections::BTreeMap<SeriesKey, Vec<f64>> = payloads().into_iter().collect();
    let batch = store.read_series_batch(&keys).unwrap();
    for (i, k) in keys.iter().enumerate() {
        assert_bits_eq(&batch[i], &by_key[k], "shuffled/duplicate batch");
    }
}

#[test]
fn staged_and_committed_mix_reads_through() {
    let path = temp_store("staged");
    let mut store = committed(&path);
    store.append_series(key(9, 9), &[42.0, -0.0]).unwrap();

    let keys = vec![key(9, 9), key(0, 1), key(9, 9), key(0, 3)];
    let batch = store.read_series_batch(&keys).unwrap();
    assert_bits_eq(&batch[0], &[42.0, -0.0], "staged slot 0");
    assert_bits_eq(&batch[1], &[0.5, -7.25, 1e-3, f64::NAN], "committed slot 1");
    assert_bits_eq(&batch[2], &[42.0, -0.0], "staged slot 2");
    assert_bits_eq(&batch[3], &[-0.0, 0.0, -0.0], "committed slot 3");
}

#[test]
fn missing_key_is_a_typed_error() {
    let path = temp_store("missing");
    committed(&path);
    let store = Store::open_with(&path, CacheConfig::default()).unwrap();

    let keys = vec![key(0, 0), key(77, 77)];
    match store.read_series_batch(&keys) {
        Err(StoreError::SeriesNotFound {
            program,
            run_index,
            event,
        }) => {
            assert_eq!(program, "eq");
            assert_eq!(run_index, 77);
            assert_eq!(event, 77);
        }
        other => panic!("expected SeriesNotFound, got {other:?}"),
    }
}

#[test]
fn batch_is_thread_count_invariant() {
    let path = temp_store("threads");
    committed(&path);
    let keys: Vec<SeriesKey> = payloads().into_iter().map(|(k, _)| k).collect();

    let mut runs: Vec<Vec<Vec<u64>>> = Vec::new();
    for threads in [1, 2, 8] {
        cm_par::set_max_threads(threads);
        let store = Store::open_with(&path, CacheConfig::default()).unwrap();
        let batch = store.read_series_batch(&keys).unwrap();
        runs.push(
            batch
                .iter()
                .map(|v| v.iter().map(|x| x.to_bits()).collect())
                .collect(),
        );
    }
    cm_par::set_max_threads(0);
    assert_eq!(runs[0], runs[1], "1 vs 2 threads");
    assert_eq!(runs[0], runs[2], "1 vs 8 threads");
}
