//! Observability equivalence of the batched read path.
//!
//! The `store.decode.*` counters must not depend on *how* chunks were
//! read: a batch decode counts exactly the chunks and payload bytes the
//! equivalent per-key loop would, while `store.decode.reads` — the one
//! counter that is *about* I/O shape — shrinks to one per coalesced
//! region. The `store.decode.batch` span must show up in the
//! `--metrics summary` rendering.
//!
//! This file deliberately holds a single `#[test]`: the [`cm_obs`]
//! registry is process-global, so counter arithmetic would race against
//! sibling tests running in the same binary.

use cm_events::{EventId, SampleMode};
use cm_store::{CacheConfig, SeriesKey, Store};
use std::path::PathBuf;

fn temp_store() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cm_batch_ctr_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("ctr.cmstore")
}

fn key(run: u32, event: usize) -> SeriesKey {
    SeriesKey::new("ctr", run, SampleMode::Mlpx, EventId::new(event))
}

fn payloads() -> Vec<(SeriesKey, Vec<f64>)> {
    vec![
        (key(0, 0), (0..300).map(|i| (7 * i % 512) as f64).collect()),
        (key(0, 1), vec![0.5, -7.25, 1e-3]),
        (key(0, 2), vec![4503599627370496.0, -4503599627370496.0]),
        (key(1, 0), vec![-0.0, 0.0]),
        (key(1, 1), (0..100).map(|i| (i * i) as f64).collect()),
    ]
}

#[test]
fn batch_counters_match_sequential_and_span_is_reported() {
    let path = temp_store();
    let mut store = Store::open_with(&path, CacheConfig::default()).unwrap();
    for (k, v) in payloads() {
        store.append_series(k, &v).unwrap();
    }
    store.commit().unwrap();
    drop(store);

    let keys: Vec<SeriesKey> = payloads().into_iter().map(|(k, _)| k).collect();

    cm_obs::set_mode(cm_obs::Mode::Summary);
    cm_obs::Registry::global().drain(); // discard open/commit noise

    // Per-key loop on a cold store.
    let sequential = Store::open_with(&path, CacheConfig::default()).unwrap();
    for k in &keys {
        sequential.read_series(k).unwrap();
    }
    let seq = cm_obs::Registry::global().drain();

    // One batched read on another cold store.
    let batched = Store::open_with(&path, CacheConfig::default()).unwrap();
    batched.read_series_batch(&keys).unwrap();
    let bat = cm_obs::Registry::global().drain();
    cm_obs::set_mode(cm_obs::Mode::Off);

    assert_eq!(
        seq.counters["store.decode.chunks"],
        keys.len() as u64,
        "sequential loop decodes each chunk once"
    );
    assert_eq!(
        bat.counters["store.decode.chunks"], seq.counters["store.decode.chunks"],
        "batch decodes exactly the chunks the loop would"
    );
    assert_eq!(
        bat.counters["store.decode.bytes"], seq.counters["store.decode.bytes"],
        "batch decodes exactly the bytes the loop would"
    );
    assert_eq!(
        seq.counters["store.decode.reads"],
        keys.len() as u64,
        "sequential loop issues one read per chunk"
    );
    let batch_reads = bat.counters["store.decode.reads"];
    assert!(
        (1..seq.counters["store.decode.reads"]).contains(&batch_reads),
        "coalescing must merge adjacent chunks into fewer reads (got {batch_reads})"
    );

    // The batch span is visible in the summary reporter's output.
    assert!(
        bat.spans.keys().any(|s| s.contains("store.decode.batch")),
        "store.decode.batch span recorded"
    );
    let summary = cm_obs::render_summary(&bat);
    assert!(
        summary.contains("store.decode.batch"),
        "--metrics summary names the batch decode span:\n{summary}"
    );
    assert!(
        summary.contains("store.decode.chunks"),
        "--metrics summary lists the decode counters:\n{summary}"
    );
}
