//! Property-based tests for the two-level store: arbitrary finite data
//! must survive a disk round trip exactly.

use cm_events::{EventId, RunRecord, SampleMode, TimeSeries};
use cm_store::Database;
use proptest::prelude::*;

fn series_strategy() -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(
        prop_oneof![
            -1.0e12..1.0e12f64,
            Just(0.0),
            Just(-0.0),
            1.0e-12..1.0e-6f64,
        ],
        0..40,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn roundtrip_preserves_arbitrary_runs(
        program in "[a-zA-Z][a-zA-Z0-9_+-]{0,16}",
        exec_time in 0.0..1.0e6f64,
        series_a in series_strategy(),
        series_b in series_strategy(),
        run_index in 0u32..8,
        mlpx in any::<bool>(),
    ) {
        let mode = if mlpx { SampleMode::Mlpx } else { SampleMode::Ocoe };
        let mut run = RunRecord::new(program.clone(), run_index, mode);
        run.set_exec_time_secs(exec_time);
        run.insert_series(EventId::new(0), TimeSeries::from_values(series_a));
        run.insert_series(EventId::new(228), TimeSeries::from_values(series_b));

        let mut db = Database::new();
        db.insert_run(run).unwrap();

        let dir = std::env::temp_dir().join(format!(
            "cm_store_prop_{}_{run_index}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        db.save_to_dir(&dir).unwrap();
        let loaded = Database::load_from_dir(&dir).unwrap();
        std::fs::remove_dir_all(&dir).ok();

        let got = loaded.run(&program, run_index, mode).expect("run present");
        prop_assert_eq!(got.exec_time_secs(), exec_time);
        for event in [EventId::new(0), EventId::new(228)] {
            let original = db.run(&program, run_index, mode).unwrap().series(event).unwrap();
            prop_assert_eq!(got.series(event).unwrap(), original);
        }
    }

    #[test]
    fn duplicate_keys_always_rejected(
        program in "[a-z]{1,8}",
        run_index in 0u32..4,
    ) {
        let mut db = Database::new();
        let run = RunRecord::new(program.clone(), run_index, SampleMode::Ocoe);
        db.insert_run(run.clone()).unwrap();
        prop_assert!(db.insert_run(run).is_err());
        prop_assert_eq!(db.run_count(), 1);
    }
}
