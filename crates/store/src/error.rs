use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by the performance-data store.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A run with the same (program, run index, mode) key already exists.
    DuplicateRun {
        /// Program name of the rejected run.
        program: String,
        /// Run index of the rejected run.
        run_index: u32,
    },
    /// A series with the same (program, run index, mode, event) key is
    /// already stored in the columnar store.
    DuplicateSeries {
        /// Program name of the rejected series.
        program: String,
        /// Run index of the rejected series.
        run_index: u32,
        /// Event index of the rejected series.
        event: usize,
    },
    /// A requested series is not in the columnar store.
    SeriesNotFound {
        /// Program name looked up.
        program: String,
        /// Run index looked up.
        run_index: u32,
        /// Event index looked up.
        event: usize,
    },
    /// Underlying filesystem failure during save/load.
    Io(io::Error),
    /// A persisted file did not parse.
    Parse {
        /// File the error occurred in.
        file: String,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
    /// The file is not a columnar store (bad magic bytes).
    NotAStore {
        /// Offending file.
        file: String,
    },
    /// The store was written by an unknown format version.
    UnsupportedVersion {
        /// Offending file.
        file: String,
        /// Version recorded in the superblock.
        found: u32,
        /// The version this build reads and writes.
        supported: u32,
    },
    /// A CRC-32 check failed: the bytes on disk are not the bytes that
    /// were written.
    ChecksumMismatch {
        /// Offending file.
        file: String,
        /// Which region failed (superblock, index, or a chunk).
        what: String,
    },
    /// The file ends before a structure it promises to contain.
    Truncated {
        /// Offending file.
        file: String,
        /// What was being read when the bytes ran out.
        what: String,
    },
    /// A structurally invalid store file (checksums pass but the
    /// contents are inconsistent).
    Corrupt {
        /// Offending file.
        file: String,
        /// What was inconsistent.
        what: String,
    },
}

impl StoreError {
    /// Fills in the file name on variants that carry one but were
    /// constructed where the name was unknown (e.g. in the codec).
    pub(crate) fn with_file(mut self, name: &str) -> Self {
        match &mut self {
            StoreError::NotAStore { file }
            | StoreError::UnsupportedVersion { file, .. }
            | StoreError::ChecksumMismatch { file, .. }
            | StoreError::Truncated { file, .. }
            | StoreError::Corrupt { file, .. }
                if file.is_empty() =>
            {
                *file = name.to_string();
            }
            _ => {}
        }
        self
    }
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateRun { program, run_index } => {
                write!(f, "run {run_index} of program {program} already stored")
            }
            StoreError::DuplicateSeries {
                program,
                run_index,
                event,
            } => write!(
                f,
                "series for event {event} of {program} run {run_index} already stored"
            ),
            StoreError::SeriesNotFound {
                program,
                run_index,
                event,
            } => write!(
                f,
                "no series for event {event} of {program} run {run_index} in the store"
            ),
            StoreError::Io(e) => write!(f, "storage i/o failed: {e}"),
            StoreError::Parse { file, line, reason } => {
                write!(f, "parse error in {file} line {line}: {reason}")
            }
            StoreError::NotAStore { file } => {
                write!(f, "{file} is not a columnar store (bad magic)")
            }
            StoreError::UnsupportedVersion {
                file,
                found,
                supported,
            } => write!(
                f,
                "{file} uses store format version {found}; this build supports version {supported}"
            ),
            StoreError::ChecksumMismatch { file, what } => {
                write!(f, "checksum mismatch in {file}: {what} is corrupt")
            }
            StoreError::Truncated { file, what } => {
                write!(f, "{file} is truncated: {what}")
            }
            StoreError::Corrupt { file, what } => {
                write!(f, "corrupt store {file}: {what}")
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::DuplicateRun {
            program: "sort".into(),
            run_index: 3,
        };
        assert!(e.to_string().contains("sort"));
        assert!(e.to_string().contains('3'));

        let e = StoreError::Parse {
            file: "catalog.tsv".into(),
            line: 7,
            reason: "expected 5 fields".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn columnar_errors_name_the_file() {
        let e = StoreError::UnsupportedVersion {
            file: "x.cmstore".into(),
            found: 9,
            supported: 1,
        };
        assert!(e.to_string().contains("x.cmstore"));
        assert!(e.to_string().contains('9'));

        let e = StoreError::ChecksumMismatch {
            file: "x.cmstore".into(),
            what: "chunk at offset 32".into(),
        };
        assert!(e.to_string().contains("offset 32"));

        let e = StoreError::SeriesNotFound {
            program: "wc".into(),
            run_index: 1,
            event: 42,
        };
        assert!(e.to_string().contains("42"));
    }

    #[test]
    fn with_file_fills_only_empty_names() {
        let e = StoreError::Corrupt {
            file: String::new(),
            what: "w".into(),
        }
        .with_file("a.cmstore");
        assert!(e.to_string().contains("a.cmstore"));

        let e = StoreError::Corrupt {
            file: "orig".into(),
            what: "w".into(),
        }
        .with_file("other");
        assert!(e.to_string().contains("orig"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<StoreError>();
    }
}
