use std::error::Error;
use std::fmt;
use std::io;

/// Errors produced by the performance-data store.
#[derive(Debug)]
#[non_exhaustive]
pub enum StoreError {
    /// A run with the same (program, run index, mode) key already exists.
    DuplicateRun {
        /// Program name of the rejected run.
        program: String,
        /// Run index of the rejected run.
        run_index: u32,
    },
    /// Underlying filesystem failure during save/load.
    Io(io::Error),
    /// A persisted file did not parse.
    Parse {
        /// File the error occurred in.
        file: String,
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::DuplicateRun { program, run_index } => {
                write!(f, "run {run_index} of program {program} already stored")
            }
            StoreError::Io(e) => write!(f, "storage i/o failed: {e}"),
            StoreError::Parse { file, line, reason } => {
                write!(f, "parse error in {file} line {line}: {reason}")
            }
        }
    }
}

impl Error for StoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StoreError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for StoreError {
    fn from(e: io::Error) -> Self {
        StoreError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = StoreError::DuplicateRun {
            program: "sort".into(),
            run_index: 3,
        };
        assert!(e.to_string().contains("sort"));
        assert!(e.to_string().contains('3'));

        let e = StoreError::Parse {
            file: "catalog.tsv".into(),
            line: 7,
            reason: "expected 5 fields".into(),
        };
        assert!(e.to_string().contains("line 7"));
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let e: StoreError = io::Error::new(io::ErrorKind::NotFound, "gone").into();
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_traits<T: std::error::Error + Send + Sync + 'static>() {}
        assert_traits::<StoreError>();
    }
}
