//! Plain-text persistence for [`Database`].
//!
//! Layout mirrors the paper's two-level organization:
//!
//! * `catalog.tsv` — one line per run:
//!   `program \t run_index \t mode \t exec_time_secs \t table_file`
//! * `<table_file>.tsv` — one line per event:
//!   `event_index \t v0,v1,v2,…`
//!
//! Program names may contain any character except tab and newline.

use crate::{Database, StoreError};
use cm_events::{EventId, RunRecord, SampleMode, TimeSeries};
use std::fs;
use std::io::Write;
use std::path::Path;

const CATALOG_FILE: &str = "catalog.tsv";

pub(crate) fn save(db: &Database, dir: &Path) -> Result<(), StoreError> {
    fs::create_dir_all(dir)?;
    let mut catalog = String::new();
    for (key, run) in db.iter() {
        let table_file = format!("{}.tsv", key.table_name());
        catalog.push_str(&format!(
            "{}\t{}\t{}\t{}\t{}\n",
            key.program,
            key.run_index,
            key.mode,
            run.exec_time_secs(),
            table_file
        ));
        let mut body = String::new();
        for (event, series) in run.iter() {
            let joined: Vec<String> = series.iter().map(|v| format!("{v}")).collect();
            body.push_str(&format!("{}\t{}\n", event.index(), joined.join(",")));
        }
        write_atomic(&dir.join(&table_file), &body)?;
    }
    write_atomic(&dir.join(CATALOG_FILE), &catalog)?;
    Ok(())
}

fn write_atomic(path: &Path, contents: &str) -> Result<(), StoreError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents.as_bytes())?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    Ok(())
}

pub(crate) fn load(dir: &Path) -> Result<Database, StoreError> {
    let catalog_path = dir.join(CATALOG_FILE);
    let catalog = fs::read_to_string(&catalog_path)?;
    let mut db = Database::new();
    for (lineno, line) in catalog.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let parse_err = |reason: String| StoreError::Parse {
            file: CATALOG_FILE.to_string(),
            line: lineno + 1,
            reason,
        };
        let fields: Vec<&str> = line.split('\t').collect();
        if fields.len() != 5 {
            return Err(parse_err(format!(
                "expected 5 tab-separated fields, got {}",
                fields.len()
            )));
        }
        let program = fields[0];
        let run_index: u32 = fields[1]
            .parse()
            .map_err(|_| parse_err(format!("bad run index {:?}", fields[1])))?;
        let mode = match fields[2] {
            "OCOE" => SampleMode::Ocoe,
            "MLPX" => SampleMode::Mlpx,
            other => return Err(parse_err(format!("unknown mode {other:?}"))),
        };
        let exec_time: f64 = fields[3]
            .parse()
            .map_err(|_| parse_err(format!("bad exec time {:?}", fields[3])))?;
        let table_file = fields[4];

        let mut run = RunRecord::new(program, run_index, mode);
        run.set_exec_time_secs(exec_time);
        load_table(dir, table_file, &mut run)?;
        db.insert_run(run)?;
    }
    Ok(db)
}

fn load_table(dir: &Path, table_file: &str, run: &mut RunRecord) -> Result<(), StoreError> {
    let body = fs::read_to_string(dir.join(table_file))?;
    for (lineno, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        let parse_err = |reason: String| StoreError::Parse {
            file: table_file.to_string(),
            line: lineno + 1,
            reason,
        };
        let (event_str, values_str) = line
            .split_once('\t')
            .ok_or_else(|| parse_err("missing tab separator".to_string()))?;
        let event_index: usize = event_str
            .parse()
            .map_err(|_| parse_err(format!("bad event index {event_str:?}")))?;
        let mut series = TimeSeries::new();
        if !values_str.is_empty() {
            for v in values_str.split(',') {
                let value: f64 = v
                    .parse()
                    .map_err(|_| parse_err(format!("bad value {v:?}")))?;
                series.push(value);
            }
        }
        run.insert_series(EventId::new(event_index), series);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cm_store_test_{name}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn populated_db() -> Database {
        let mut db = Database::new();
        for (program, idx, mode) in [
            ("wordcount", 0, SampleMode::Ocoe),
            ("wordcount", 1, SampleMode::Ocoe),
            ("wordcount", 0, SampleMode::Mlpx),
            ("pagerank", 0, SampleMode::Mlpx),
        ] {
            let mut run = RunRecord::new(program, idx, mode);
            run.set_exec_time_secs(idx as f64 * 3.5 + 1.25);
            run.insert_series(
                EventId::new(0),
                TimeSeries::from_values(vec![1.5, 0.0, -2.25e3]),
            );
            run.insert_series(
                EventId::new(42),
                TimeSeries::from_values(vec![7.0; idx as usize + 1]),
            );
            db.insert_run(run).unwrap();
        }
        db
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let dir = temp_dir("roundtrip");
        let db = populated_db();
        db.save_to_dir(&dir).unwrap();
        let loaded = Database::load_from_dir(&dir).unwrap();

        assert_eq!(loaded.run_count(), db.run_count());
        for (key, run) in db.iter() {
            let got = loaded
                .run(&key.program, key.run_index, key.mode)
                .unwrap_or_else(|| panic!("missing run {key:?}"));
            assert_eq!(got.exec_time_secs(), run.exec_time_secs());
            assert_eq!(got.event_count(), run.event_count());
            for (event, series) in run.iter() {
                assert_eq!(got.series(event).unwrap(), series);
            }
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_database_roundtrips() {
        let dir = temp_dir("empty");
        Database::new().save_to_dir(&dir).unwrap();
        let loaded = Database::load_from_dir(&dir).unwrap();
        assert!(loaded.is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_series_roundtrips() {
        let dir = temp_dir("empty_series");
        let mut db = Database::new();
        let mut run = RunRecord::new("p", 0, SampleMode::Ocoe);
        run.insert_series(EventId::new(3), TimeSeries::new());
        db.insert_run(run).unwrap();
        db.save_to_dir(&dir).unwrap();
        let loaded = Database::load_from_dir(&dir).unwrap();
        let got = loaded.run("p", 0, SampleMode::Ocoe).unwrap();
        assert!(got.series(EventId::new(3)).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_catalog_reports_line() {
        let dir = temp_dir("corrupt");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(CATALOG_FILE), "bad line without tabs\n").unwrap();
        let err = Database::load_from_dir(&dir).unwrap_err();
        match err {
            StoreError::Parse { line, .. } => assert_eq!(line, 1),
            other => panic!("expected parse error, got {other:?}"),
        }
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_table_values_rejected() {
        let dir = temp_dir("corrupt_values");
        let db = populated_db();
        db.save_to_dir(&dir).unwrap();
        // Damage one table file.
        let table = fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .find(|p| p.file_name().unwrap() != CATALOG_FILE)
            .unwrap();
        fs::write(&table, "0\t1.0,not_a_number\n").unwrap();
        let err = Database::load_from_dir(&dir).unwrap_err();
        assert!(matches!(err, StoreError::Parse { .. }));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn missing_directory_is_io_error() {
        let err = Database::load_from_dir(Path::new("/nonexistent/cm_store")).unwrap_err();
        assert!(matches!(err, StoreError::Io(_)));
    }

    #[test]
    fn unknown_mode_rejected() {
        let dir = temp_dir("badmode");
        fs::create_dir_all(&dir).unwrap();
        fs::write(dir.join(CATALOG_FILE), "p\t0\tWEIRD\t1.0\tt.tsv\n").unwrap();
        let err = Database::load_from_dir(&dir).unwrap_err();
        assert!(err.to_string().contains("WEIRD"));
        fs::remove_dir_all(&dir).unwrap();
    }
}
