//! Chunk codecs for the columnar store: delta+varint encoding for
//! integral counter series, raw IEEE-754 for everything else, and the
//! CRC-32 checksum that guards both.
//!
//! Hardware-counter samples are overwhelmingly integral (they count
//! events), so a chunk whose values are all whole numbers is stored as
//! zigzag-varint-encoded *deltas* — typically 1–3 bytes per sample
//! instead of 8. Chunks with fractional, non-finite, or very large
//! values fall back to raw little-endian `f64` bits, which round-trip
//! exactly. The encoder picks per chunk; the decoder is driven by the
//! [`Encoding`] tag recorded in the file index.

use crate::StoreError;

/// How a chunk's values are laid out on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Encoding {
    /// 8 bytes per value: IEEE-754 bits, little endian. Exact for every
    /// `f64` including NaN and infinities.
    RawF64 = 0,
    /// First value then successive differences, each zigzag-mapped and
    /// LEB128-varint encoded. Only for chunks of integral values with
    /// magnitude below 2^52 (so every delta is exactly representable).
    DeltaVarint = 1,
}

impl Encoding {
    /// Decodes the on-disk tag byte.
    pub(crate) fn from_tag(tag: u8) -> Result<Self, StoreError> {
        match tag {
            0 => Ok(Encoding::RawF64),
            1 => Ok(Encoding::DeltaVarint),
            other => Err(StoreError::Corrupt {
                file: String::new(),
                what: format!("unknown chunk encoding tag {other}"),
            }),
        }
    }

    /// The on-disk tag byte.
    pub(crate) fn tag(self) -> u8 {
        self as u8
    }
}

/// Largest magnitude a value may have for the delta codec: beyond 2^52
/// the gap between consecutive `f64` values exceeds 1 and integral
/// arithmetic on the cast `i64` would not round-trip.
const DELTA_MAX: f64 = 4_503_599_627_370_496.0; // 2^52

/// Whether a chunk qualifies for [`Encoding::DeltaVarint`]: every value
/// must survive the `f64 → i64 → f64` round trip **bit-exactly**. The
/// bit comparison (not `==`) matters: `-0.0` casts to `0` and would come
/// back as `+0.0` — numerically equal, but not the bytes that were
/// stored, so it must take the raw fallback.
fn delta_encodable(values: &[f64]) -> bool {
    values.iter().all(|&v| {
        v.is_finite() && v.abs() <= DELTA_MAX && ((v as i64) as f64).to_bits() == v.to_bits()
    })
}

/// Appends `v` to `out` as an LEB128 varint (7 bits per byte, high bit
/// = continuation).
pub(crate) fn write_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

/// Reads one LEB128 varint from `buf` starting at `*pos`, advancing it.
pub(crate) fn read_varint(buf: &[u8], pos: &mut usize) -> Result<u64, StoreError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        let &byte = buf.get(*pos).ok_or_else(|| StoreError::Corrupt {
            file: String::new(),
            what: "varint runs past the end of the chunk".to_string(),
        })?;
        *pos += 1;
        if shift >= 64 {
            return Err(StoreError::Corrupt {
                file: String::new(),
                what: "varint longer than 64 bits".to_string(),
            });
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Zigzag-maps a signed value so small magnitudes get small varints.
pub(crate) fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
pub(crate) fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Encodes a chunk, choosing the cheapest lossless layout.
///
/// Returns the chosen encoding and the payload bytes.
pub(crate) fn encode_chunk(values: &[f64]) -> (Encoding, Vec<u8>) {
    if delta_encodable(values) {
        let mut out = Vec::with_capacity(values.len() * 2 + 8);
        let mut prev: i64 = 0;
        for &v in values {
            let iv = v as i64;
            write_varint(&mut out, zigzag(iv.wrapping_sub(prev)));
            prev = iv;
        }
        (Encoding::DeltaVarint, out)
    } else {
        let mut out = Vec::with_capacity(values.len() * 8);
        for &v in values {
            out.extend_from_slice(&v.to_bits().to_le_bytes());
        }
        (Encoding::RawF64, out)
    }
}

/// Decodes a chunk payload back into `count` values.
///
/// # Errors
///
/// Returns [`StoreError::Corrupt`] when the payload length does not
/// match `count` under the given encoding.
pub(crate) fn decode_chunk(
    encoding: Encoding,
    payload: &[u8],
    count: usize,
) -> Result<Vec<f64>, StoreError> {
    match encoding {
        Encoding::RawF64 => {
            if payload.len() != count * 8 {
                return Err(StoreError::Corrupt {
                    file: String::new(),
                    what: format!(
                        "raw chunk holds {} bytes, expected {} for {count} values",
                        payload.len(),
                        count * 8
                    ),
                });
            }
            Ok(payload
                .chunks_exact(8)
                .map(|b| f64::from_bits(u64::from_le_bytes(b.try_into().expect("8-byte chunk"))))
                .collect())
        }
        Encoding::DeltaVarint => {
            let mut values = Vec::with_capacity(count);
            let mut pos = 0usize;
            let mut prev: i64 = 0;
            for _ in 0..count {
                let delta = unzigzag(read_varint(payload, &mut pos)?);
                prev = prev.wrapping_add(delta);
                values.push(prev as f64);
            }
            if pos != payload.len() {
                return Err(StoreError::Corrupt {
                    file: String::new(),
                    what: format!(
                        "delta chunk has {} trailing bytes after {count} values",
                        payload.len() - pos
                    ),
                });
            }
            Ok(values)
        }
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320) lookup tables
/// for *slice-by-8* computation, built at compile time.
///
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; `CRC_TABLES[k]`
/// advances a byte through `k` further zero bytes, so eight table
/// lookups XOR-folded together consume eight input bytes per iteration
/// with no loop-carried table dependency between them — roughly the
/// difference between ~2.5 and ~0.4 cycles per byte on the chunk
/// payloads every cold read checksums.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[k - 1][i];
            tables[k][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    tables
};

/// CRC-32 checksum of `data` (IEEE, as used by zip/gzip/ethernet),
/// computed eight bytes per step (see [`CRC_TABLES`]) with a
/// byte-at-a-time tail.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    let mut words = data.chunks_exact(8);
    for w in &mut words {
        let lo = u32::from_le_bytes([w[0], w[1], w[2], w[3]]) ^ crc;
        let hi = u32::from_le_bytes([w[4], w[5], w[6], w[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &byte in words.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(byte)) & 0xFF) as usize];
    }
    crc ^ 0xFFFF_FFFF
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trips_boundaries() {
        for v in [0u64, 1, 127, 128, 300, u32::MAX as u64, u64::MAX] {
            let mut buf = Vec::new();
            write_varint(&mut buf, v);
            let mut pos = 0;
            assert_eq!(read_varint(&buf, &mut pos).unwrap(), v);
            assert_eq!(pos, buf.len());
        }
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN] {
            assert_eq!(unzigzag(zigzag(v)), v);
        }
        // Small magnitudes map to small codes.
        assert_eq!(zigzag(0), 0);
        assert_eq!(zigzag(-1), 1);
        assert_eq!(zigzag(1), 2);
    }

    #[test]
    fn integral_series_use_delta_and_round_trip() {
        let values = vec![1000.0, 1003.0, 998.0, 998.0, 2000.0, 0.0];
        let (enc, payload) = encode_chunk(&values);
        assert_eq!(enc, Encoding::DeltaVarint);
        assert!(payload.len() < values.len() * 8);
        assert_eq!(decode_chunk(enc, &payload, values.len()).unwrap(), values);
    }

    #[test]
    fn fractional_series_fall_back_to_raw_bits() {
        let values = vec![1.5, f64::NAN, f64::INFINITY, -0.0, 1e300];
        let (enc, payload) = encode_chunk(&values);
        assert_eq!(enc, Encoding::RawF64);
        let decoded = decode_chunk(enc, &payload, values.len()).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit drift");
        }
    }

    #[test]
    fn huge_integers_are_not_delta_encoded() {
        let values = vec![9.1e15, 9.1e15 + 2.0]; // above 2^52
        let (enc, _) = encode_chunk(&values);
        assert_eq!(enc, Encoding::RawF64);
    }

    /// Regression: `-0.0` is finite, integral, and `== 0.0`, so it used
    /// to be delta-encoded — and decoded back as `+0.0`, silently
    /// flipping the sign bit. It must take the raw fallback.
    #[test]
    fn negative_zero_round_trips_bit_exactly() {
        let values = vec![1.0, -0.0, 2.0];
        let (enc, payload) = encode_chunk(&values);
        assert_eq!(enc, Encoding::RawF64);
        let decoded = decode_chunk(enc, &payload, values.len()).unwrap();
        for (a, b) in values.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit drift on {a}");
        }
    }

    /// The ±2^52 boundary itself is still in-range for the delta codec,
    /// including the maximal mixed-sign delta of 2^53 between the two
    /// extremes; one step beyond falls back to raw.
    #[test]
    fn two_pow_52_boundary_round_trips() {
        let boundary = vec![DELTA_MAX, -DELTA_MAX, DELTA_MAX, 0.0, -DELTA_MAX];
        let (enc, payload) = encode_chunk(&boundary);
        assert_eq!(enc, Encoding::DeltaVarint);
        let decoded = decode_chunk(enc, &payload, boundary.len()).unwrap();
        for (a, b) in boundary.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit drift on {a}");
        }

        // 2^52 + 2 is integral and representable but out of delta range.
        let beyond = vec![DELTA_MAX + 2.0, -DELTA_MAX - 2.0];
        let (enc, payload) = encode_chunk(&beyond);
        assert_eq!(enc, Encoding::RawF64);
        let decoded = decode_chunk(enc, &payload, beyond.len()).unwrap();
        for (a, b) in beyond.iter().zip(&decoded) {
            assert_eq!(a.to_bits(), b.to_bits(), "bit drift on {a}");
        }
    }

    #[test]
    fn empty_chunk_round_trips_either_way() {
        let (enc, payload) = encode_chunk(&[]);
        assert!(payload.is_empty());
        assert_eq!(decode_chunk(enc, &payload, 0).unwrap(), Vec::<f64>::new());
    }

    #[test]
    fn decode_rejects_wrong_lengths() {
        let (enc, payload) = encode_chunk(&[1.0, 2.0, 3.0]);
        assert!(decode_chunk(enc, &payload, 2).is_err());
        assert!(decode_chunk(Encoding::RawF64, &[0u8; 12], 2).is_err());
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_ne!(crc32(b"a"), crc32(b"b"));
    }

    /// The slice-by-8 fast path must agree with the textbook
    /// byte-at-a-time recurrence at every length around the 8-byte
    /// unrolling boundary (0‥=7 exercise only the tail, 8 only the wide
    /// loop, 9‥ both).
    #[test]
    fn crc32_sliced_matches_bytewise_reference_at_all_tail_lengths() {
        fn reference(data: &[u8]) -> u32 {
            let mut crc: u32 = 0xFFFF_FFFF;
            for &byte in data {
                crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ u32::from(byte)) & 0xFF) as usize];
            }
            crc ^ 0xFFFF_FFFF
        }
        let data: Vec<u8> = (0..96u32)
            .map(|i| (i.wrapping_mul(151) >> 2) as u8)
            .collect();
        for len in 0..data.len() {
            assert_eq!(crc32(&data[..len]), reference(&data[..len]), "len {len}");
        }
    }
}
