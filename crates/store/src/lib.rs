//! Two-level performance-data store for CounterMiner.
//!
//! The paper stores collected counter time series in a DBMS (SQLite) with
//! a **two-level table organization** (Section III-A):
//!
//! * the *first-level* table holds, per program: the program name, the
//!   measured event names, the execution times of each run, and the names
//!   of the second-level tables;
//! * each *second-level* table holds the time series of every measured
//!   event for one run of one program.
//!
//! This crate reproduces that organization as an embedded store with a
//! plain-text persistence format, filling SQLite's role without an
//! external dependency. Series lengths are allowed to differ between
//! events and runs — the property that motivates the paper's use of
//! dynamic time warping.
//!
//! # Examples
//!
//! ```
//! use cm_events::{EventId, RunRecord, SampleMode, TimeSeries};
//! use cm_store::Database;
//!
//! let mut db = Database::new();
//! let mut run = RunRecord::new("wordcount", 0, SampleMode::Ocoe);
//! run.insert_series(EventId::new(3), TimeSeries::from_values(vec![1.0, 2.0]));
//! db.insert_run(run)?;
//!
//! let fetched = db.run("wordcount", 0, SampleMode::Ocoe).unwrap();
//! assert_eq!(fetched.event_count(), 1);
//! # Ok::<(), cm_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod database;
mod error;
mod persist;
mod query;

pub use database::{Database, ProgramSummary, RunKey};
pub use error::StoreError;
pub use query::ExecTimeStats;
