//! Two-level performance-data store for CounterMiner.
//!
//! The paper stores collected counter time series in a DBMS (SQLite) with
//! a **two-level table organization** (Section III-A):
//!
//! * the *first-level* table holds, per program: the program name, the
//!   measured event names, the execution times of each run, and the names
//!   of the second-level tables;
//! * each *second-level* table holds the time series of every measured
//!   event for one run of one program.
//!
//! This crate reproduces that organization twice over:
//!
//! * [`Database`] — the in-memory two-level store with a plain-text
//!   persistence format, filling SQLite's role without an external
//!   dependency; the collector's working set.
//! * [`Store`] — the **persistent chunked columnar store**: one binary
//!   file per store with a versioned superblock, per-series column
//!   chunks (delta+varint encoded when integral, raw `f64` bits
//!   otherwise), CRC-32 checksums on every region, an append-only
//!   writer committed by atomic rename, and a sharded LRU block cache
//!   ([`CacheConfig`], `CM_STORE_CACHE`). This is what lets the
//!   pipeline collect once and analyze many times — see
//!   `docs/STORAGE_FORMAT.md` for the byte-level layout.
//!
//! Series lengths are allowed to differ between events and runs — the
//! property that motivates the paper's use of dynamic time warping.
//!
//! # Examples
//!
//! The in-memory two-level database:
//!
//! ```
//! use cm_events::{EventId, RunRecord, SampleMode, TimeSeries};
//! use cm_store::Database;
//!
//! let mut db = Database::new();
//! let mut run = RunRecord::new("wordcount", 0, SampleMode::Ocoe);
//! run.insert_series(EventId::new(3), TimeSeries::from_values(vec![1.0, 2.0]));
//! db.insert_run(run)?;
//!
//! let fetched = db.run("wordcount", 0, SampleMode::Ocoe).unwrap();
//! assert_eq!(fetched.event_count(), 1);
//! # Ok::<(), cm_store::StoreError>(())
//! ```
//!
//! The persistent columnar store:
//!
//! ```
//! use cm_events::{EventId, SampleMode};
//! use cm_store::{SeriesKey, Store};
//!
//! let dir = std::env::temp_dir().join(format!("cm_lib_doc_{}", std::process::id()));
//! std::fs::create_dir_all(&dir)?;
//! let path = dir.join("lib.cmstore");
//! # let _ = std::fs::remove_file(&path);
//!
//! let mut store = Store::open(&path)?;
//! let key = SeriesKey::new("wordcount", 0, SampleMode::Mlpx, EventId::new(3));
//! store.append_series(key.clone(), &[880.0, 912.0, 905.0])?;
//! store.commit()?; // atomic: write temp file, fsync, rename
//!
//! assert_eq!(*store.read_series(&key)?, vec![880.0, 912.0, 905.0]);
//! # std::fs::remove_file(&path)?;
//! # Ok::<(), cm_store::StoreError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
mod codec;
mod columnar;
mod database;
mod error;
mod format;
mod persist;
mod query;
mod vfs;

pub use cache::{BlockCache, CacheConfig, CacheStats};
pub use codec::Encoding;
pub use columnar::{RunId, SeriesKey, Store, StoreInfo, MAX_CHUNK_CHAIN};
pub use database::{Database, ProgramSummary, RunKey};
pub use error::StoreError;
pub use query::ExecTimeStats;
pub use vfs::{RealFs, Vfs, VfsFile};
