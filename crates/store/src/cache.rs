//! Sharded LRU block cache for decoded column chunks.
//!
//! Reading a series from a committed store means seeking to its chunk,
//! verifying the CRC, and decoding the payload. The pipeline's resume
//! path and the CLI's query tools read the same chunks repeatedly, so
//! every [`crate::Store`] consults a cache of decoded chunks keyed by
//! their file offset. The cache is split into shards, each behind its
//! own mutex, so concurrent readers rarely contend; a chunk's shard is
//! its offset modulo the shard count, which is deterministic, so
//! hit/miss counts are reproducible run to run.
//!
//! By default every store owns a private cache, but a [`BlockCache`]
//! can be shared: [`crate::Store::open_with_cache`] accepts an
//! `Arc<BlockCache>`, so N concurrent readers of one store (or of many
//! stores — entries are salted by store identity) stop duplicating
//! cached blocks. The serving layer (`cm-serve`) uses exactly this to
//! put one cache behind every request.
//!
//! Capacity is byte-based (decoded size) and configured via
//! [`CacheConfig`] or the `CM_STORE_CACHE` environment variable
//! (`0` disables caching, plain bytes or `K`/`M`/`G` suffixes
//! otherwise). Hits, misses, and evictions are visible through
//! [`CacheStats`] — globally via [`BlockCache::stats`] and per shard
//! via [`BlockCache::shard_stats`] — and mirrored to the [`cm_obs`]
//! counters `store.cache.hits`, `store.cache.misses`, and
//! `store.cache.evictions`.

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Block-cache configuration for one [`BlockCache`].
///
/// # Examples
///
/// ```
/// use cm_store::CacheConfig;
///
/// // 1 MiB across 4 shards.
/// let config = CacheConfig { capacity_bytes: 1 << 20, shards: 4 };
/// assert_eq!(config.capacity_bytes, 1_048_576);
///
/// // The default is 64 MiB over 8 shards.
/// assert_eq!(CacheConfig::default().shards, 8);
///
/// // `CM_STORE_CACHE`-style strings parse with K/M/G suffixes.
/// assert_eq!(CacheConfig::parse_capacity("16M"), Some(16 << 20));
/// assert_eq!(CacheConfig::parse_capacity("0"), Some(0));
/// assert_eq!(CacheConfig::parse_capacity("lots"), None);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Total decoded bytes the cache may hold; `0` disables caching.
    pub capacity_bytes: usize,
    /// Number of independently locked shards (minimum 1).
    pub shards: usize,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_bytes: 64 << 20,
            shards: 8,
        }
    }
}

impl CacheConfig {
    /// Resolves the configuration from the `CM_STORE_CACHE` environment
    /// variable, falling back to the default capacity when unset or
    /// unparsable.
    pub fn from_env() -> Self {
        let mut config = CacheConfig::default();
        if let Ok(raw) = std::env::var("CM_STORE_CACHE") {
            if let Some(bytes) = Self::parse_capacity(raw.trim()) {
                config.capacity_bytes = bytes;
            }
        }
        config
    }

    /// Parses a capacity string: plain bytes, or `K`/`M`/`G` binary
    /// suffixes (case-insensitive). Returns `None` for anything else.
    pub fn parse_capacity(s: &str) -> Option<usize> {
        if s.is_empty() {
            return None;
        }
        let (digits, shift) = match s.as_bytes()[s.len() - 1].to_ascii_uppercase() {
            b'K' => (&s[..s.len() - 1], 10),
            b'M' => (&s[..s.len() - 1], 20),
            b'G' => (&s[..s.len() - 1], 30),
            _ => (s, 0),
        };
        digits
            .parse::<usize>()
            .ok()
            .and_then(|n| n.checked_shl(shift))
    }
}

/// A point-in-time view of one cache's (or one shard's) counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to decode from disk.
    pub misses: u64,
    /// Entries evicted to stay under capacity.
    pub evictions: u64,
    /// Entries currently resident.
    pub entries: usize,
    /// Decoded bytes currently resident.
    pub bytes: usize,
}

/// Fixed per-entry overhead charged against capacity, covering the map
/// and recency bookkeeping.
const ENTRY_OVERHEAD: usize = 64;

/// A cached chunk's identity: the owning store's salt plus the chunk's
/// file offset. The salt keeps two stores sharing one cache from
/// colliding on equal offsets; shard selection ignores it so a store
/// with a private cache behaves exactly as it did before salting.
type BlockKey = (u64, u64);

#[derive(Default)]
struct Shard {
    /// (salt, offset) -> (recency tick, decoded values).
    map: HashMap<BlockKey, (u64, Arc<Vec<f64>>)>,
    /// recency tick -> key; the smallest tick is the LRU entry.
    recency: BTreeMap<u64, BlockKey>,
    bytes: usize,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

impl Shard {
    fn charge(values: &[f64]) -> usize {
        std::mem::size_of_val(values) + ENTRY_OVERHEAD
    }

    fn touch(&mut self, key: BlockKey) -> Option<Arc<Vec<f64>>> {
        let tick = self.tick;
        self.tick += 1;
        let (old_tick, values) = match self.map.get_mut(&key) {
            Some(entry) => entry,
            None => {
                self.misses += 1;
                return None;
            }
        };
        self.hits += 1;
        self.recency.remove(old_tick);
        *old_tick = tick;
        let values = values.clone();
        self.recency.insert(tick, key);
        Some(values)
    }

    fn insert(&mut self, key: BlockKey, values: Arc<Vec<f64>>, capacity: usize) -> u64 {
        let cost = Self::charge(&values);
        if cost > capacity {
            return 0; // would never fit; don't thrash the shard for it
        }
        let tick = self.tick;
        self.tick += 1;
        if let Some((old_tick, old_values)) = self.map.insert(key, (tick, values)) {
            self.recency.remove(&old_tick);
            self.bytes -= Self::charge(&old_values);
        }
        self.recency.insert(tick, key);
        self.bytes += cost;
        let mut evicted = 0;
        while self.bytes > capacity {
            let (&lru_tick, &lru_key) = self
                .recency
                .iter()
                .next()
                .expect("over-capacity shard must have entries");
            // Never evict the entry we just inserted.
            if lru_key == key && self.map.len() == 1 {
                break;
            }
            self.recency.remove(&lru_tick);
            let (_, old) = self.map.remove(&lru_key).expect("recency/map in sync");
            self.bytes -= Self::charge(&old);
            evicted += 1;
        }
        self.evictions += evicted;
        evicted
    }

    fn remove_salt(&mut self, salt: u64) {
        let dead: Vec<BlockKey> = self.map.keys().filter(|k| k.0 == salt).copied().collect();
        for key in dead {
            if let Some((tick, values)) = self.map.remove(&key) {
                self.recency.remove(&tick);
                self.bytes -= Self::charge(&values);
            }
        }
    }

    fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
            entries: self.map.len(),
            bytes: self.bytes,
        }
    }
}

/// The sharded LRU cache of decoded column chunks.
///
/// Every [`crate::Store`] consults one — private by default
/// ([`crate::Store::open`]), or shared across stores and threads via
/// [`crate::Store::open_with_cache`]. Entries are keyed by
/// `(store salt, chunk offset)`; the salt is derived from the store's
/// path, so distinct store files sharing one cache never collide, while
/// shard selection uses the offset alone — a store with a private cache
/// keeps the exact hit/miss/eviction sequence it had before caches
/// became shareable.
///
/// # Examples
///
/// ```
/// use cm_store::{BlockCache, CacheConfig};
/// use std::sync::Arc;
///
/// let cache = Arc::new(BlockCache::new(CacheConfig {
///     capacity_bytes: 1 << 20,
///     shards: 4,
/// }));
/// assert_eq!(cache.stats().entries, 0);
/// assert_eq!(cache.shard_stats().len(), 4);
/// ```
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl BlockCache {
    /// Creates a cache with the given capacity split over its shards.
    pub fn new(config: CacheConfig) -> Self {
        let shards = config.shards.max(1);
        BlockCache {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            capacity_per_shard: config.capacity_bytes / shards,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    fn shard(&self, offset: u64) -> &Mutex<Shard> {
        &self.shards[(offset % self.shards.len() as u64) as usize]
    }

    /// Whether the cache was configured away (zero capacity). A disabled
    /// cache is fully inert: no storage, no counters, no obs traffic.
    pub fn is_disabled(&self) -> bool {
        self.capacity_per_shard == 0
    }

    /// Looks a chunk up by store salt and file offset, recording a hit
    /// or miss.
    ///
    /// A disabled cache returns `None` without recording anything —
    /// `CM_STORE_CACHE=0` must not pollute the `store.cache.*` counters
    /// with misses that no cache ever had a chance to serve.
    pub fn get(&self, salt: u64, offset: u64) -> Option<Arc<Vec<f64>>> {
        if self.is_disabled() {
            return None;
        }
        let found = self
            .shard(offset)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .touch((salt, offset));
        match &found {
            Some(_) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                cm_obs::counter_add("store.cache.hits", 1);
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                cm_obs::counter_add("store.cache.misses", 1);
            }
        }
        found
    }

    /// Inserts a decoded chunk, evicting LRU entries past capacity.
    pub fn insert(&self, salt: u64, offset: u64, values: Arc<Vec<f64>>) {
        if self.is_disabled() {
            return;
        }
        let evicted = self
            .shard(offset)
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert((salt, offset), values, self.capacity_per_shard);
        if evicted > 0 {
            self.evictions.fetch_add(evicted, Ordering::Relaxed);
            cm_obs::counter_add("store.cache.evictions", evicted);
        }
    }

    /// Drops every entry, regardless of salt.
    pub fn clear(&self) {
        for shard in &self.shards {
            let mut s = shard.lock().unwrap_or_else(|e| e.into_inner());
            let (hits, misses, evictions, tick) = (s.hits, s.misses, s.evictions, s.tick);
            *s = Shard {
                hits,
                misses,
                evictions,
                tick,
                ..Shard::default()
            };
        }
    }

    /// Drops every entry belonging to one store (its chunk offsets are
    /// invalidated by a commit) while other stores sharing the cache
    /// keep theirs.
    pub fn clear_salt(&self, salt: u64) {
        for shard in &self.shards {
            shard
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .remove_salt(salt);
        }
    }

    /// Aggregate counters and residency across all shards.
    pub fn stats(&self) -> CacheStats {
        let mut entries = 0;
        let mut bytes = 0;
        for shard in &self.shards {
            let s = shard.lock().unwrap_or_else(|e| e.into_inner());
            entries += s.map.len();
            bytes += s.bytes;
        }
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
            entries,
            bytes,
        }
    }

    /// Per-shard counters and residency, indexed by shard number — the
    /// feed for the serving layer's per-shard hit/miss/eviction gauges.
    pub fn shard_stats(&self) -> Vec<CacheStats> {
        self.shards
            .iter()
            .map(|shard| shard.lock().unwrap_or_else(|e| e.into_inner()).stats())
            .collect()
    }
}

impl std::fmt::Debug for BlockCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BlockCache")
            .field("shards", &self.shards.len())
            .field("capacity_per_shard", &self.capacity_per_shard)
            .field("stats", &self.stats())
            .finish()
    }
}

/// FNV-1a salt for a store path: the identity that keeps two stores
/// sharing one [`BlockCache`] from colliding on equal chunk offsets.
pub(crate) fn path_salt(path: &std::path::Path) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in path.to_string_lossy().as_bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chunk(n: usize, fill: f64) -> Arc<Vec<f64>> {
        Arc::new(vec![fill; n])
    }

    #[test]
    fn hit_after_insert_miss_before() {
        let cache = BlockCache::new(CacheConfig {
            capacity_bytes: 1 << 16,
            shards: 2,
        });
        assert!(cache.get(0, 32).is_none());
        cache.insert(0, 32, chunk(10, 1.0));
        assert_eq!(cache.get(0, 32).unwrap().len(), 10);
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (1, 1));
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn lru_eviction_drops_coldest() {
        // One shard, room for ~2 ten-value chunks.
        let cache = BlockCache::new(CacheConfig {
            capacity_bytes: 2 * (10 * 8 + ENTRY_OVERHEAD),
            shards: 1,
        });
        cache.insert(0, 0, chunk(10, 0.0));
        cache.insert(0, 8, chunk(10, 1.0));
        assert!(cache.get(0, 0).is_some()); // 0 is now the most recent
        cache.insert(0, 16, chunk(10, 2.0)); // evicts 8
        assert!(cache.get(0, 8).is_none());
        assert!(cache.get(0, 0).is_some());
        assert!(cache.get(0, 16).is_some());
        assert_eq!(cache.stats().evictions, 1);
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = BlockCache::new(CacheConfig {
            capacity_bytes: 0,
            shards: 4,
        });
        cache.insert(0, 0, chunk(4, 1.0));
        assert!(cache.get(0, 0).is_none());
        assert_eq!(cache.stats().entries, 0);
    }

    /// Regression: a disabled cache used to record every lookup as a
    /// miss, so `CM_STORE_CACHE=0` polluted hit-rate statistics with
    /// lookups no cache ever saw. Disabled means *inert*: all counters
    /// stay zero.
    #[test]
    fn disabled_cache_records_no_activity() {
        let cache = BlockCache::new(CacheConfig {
            capacity_bytes: 0,
            shards: 8,
        });
        assert!(cache.is_disabled());
        for offset in [0u64, 8, 16] {
            cache.insert(0, offset, chunk(4, 1.0));
            assert!(cache.get(0, offset).is_none());
        }
        assert_eq!(cache.stats(), CacheStats::default());
    }

    /// Degenerate configurations must size shards without panicking:
    /// zero shards clamp to one, and capacities smaller than a single
    /// entry behave as disabled for every real chunk.
    #[test]
    fn tiny_configs_never_panic_in_shard_sizing() {
        for capacity_bytes in [0usize, 1, 7, 63] {
            for shards in [0usize, 1, 7, 1024] {
                let cache = BlockCache::new(CacheConfig {
                    capacity_bytes,
                    shards,
                });
                cache.insert(0, 12, chunk(16, 2.0));
                let _ = cache.get(0, 12);
                let _ = cache.stats();
            }
        }
    }

    #[test]
    fn oversized_chunk_is_not_cached() {
        let cache = BlockCache::new(CacheConfig {
            capacity_bytes: 100,
            shards: 1,
        });
        cache.insert(0, 0, chunk(1000, 1.0));
        assert!(cache.get(0, 0).is_none());
    }

    #[test]
    fn clear_empties_everything() {
        let cache = BlockCache::new(CacheConfig {
            capacity_bytes: 1 << 16,
            shards: 3,
        });
        for i in 0..9 {
            cache.insert(0, i, chunk(5, i as f64));
        }
        assert_eq!(cache.stats().entries, 9);
        cache.clear();
        let stats = cache.stats();
        assert_eq!(stats.entries, 0);
        assert_eq!(stats.bytes, 0);
    }

    /// Two stores sharing one cache must not collide on equal offsets,
    /// and one store's invalidation must not evict the other's entries.
    #[test]
    fn salts_isolate_stores_sharing_one_cache() {
        let cache = BlockCache::new(CacheConfig {
            capacity_bytes: 1 << 16,
            shards: 2,
        });
        cache.insert(1, 64, chunk(4, 1.0));
        cache.insert(2, 64, chunk(4, 2.0));
        assert_eq!(cache.get(1, 64).unwrap()[0], 1.0);
        assert_eq!(cache.get(2, 64).unwrap()[0], 2.0);
        assert_eq!(cache.stats().entries, 2);

        cache.clear_salt(1);
        assert!(cache.get(1, 64).is_none());
        assert_eq!(cache.get(2, 64).unwrap()[0], 2.0);
        assert_eq!(cache.stats().entries, 1);
    }

    #[test]
    fn shard_stats_attribute_activity_to_the_right_shard() {
        let cache = BlockCache::new(CacheConfig {
            capacity_bytes: 1 << 16,
            shards: 2,
        });
        // Offsets 0 and 2 land in shard 0, offset 1 in shard 1.
        cache.insert(0, 0, chunk(4, 0.0));
        cache.insert(0, 2, chunk(4, 2.0));
        cache.insert(0, 1, chunk(4, 1.0));
        assert!(cache.get(0, 0).is_some());
        assert!(cache.get(0, 1).is_some());
        assert!(cache.get(0, 3).is_none());
        let shards = cache.shard_stats();
        assert_eq!(shards.len(), 2);
        assert_eq!((shards[0].hits, shards[0].misses), (1, 0));
        assert_eq!((shards[1].hits, shards[1].misses), (1, 1));
        assert_eq!(shards[0].entries, 2);
        assert_eq!(shards[1].entries, 1);
        // The aggregate view matches the per-shard sum.
        let total = cache.stats();
        assert_eq!(total.hits, shards.iter().map(|s| s.hits).sum::<u64>());
        assert_eq!(total.entries, shards.iter().map(|s| s.entries).sum());
    }

    #[test]
    fn path_salts_differ_by_path() {
        use std::path::Path;
        let a = path_salt(Path::new("/tmp/a.cmstore"));
        let b = path_salt(Path::new("/tmp/b.cmstore"));
        assert_ne!(a, b);
        assert_eq!(a, path_salt(Path::new("/tmp/a.cmstore")));
    }

    #[test]
    fn capacity_parsing() {
        assert_eq!(CacheConfig::parse_capacity("1024"), Some(1024));
        assert_eq!(CacheConfig::parse_capacity("8k"), Some(8192));
        assert_eq!(CacheConfig::parse_capacity("2G"), Some(2 << 30));
        assert_eq!(CacheConfig::parse_capacity(""), None);
        assert_eq!(CacheConfig::parse_capacity("x"), None);
    }
}
