//! The store's filesystem seam.
//!
//! [`Store`](crate::Store) performs every filesystem operation through
//! the [`Vfs`] / [`VfsFile`] traits instead of calling `std::fs`
//! directly. Production code uses [`RealFs`] (the default); test
//! harnesses substitute an implementation that injects faults — short
//! reads, failed writes, fsync errors, post-write corruption — to prove
//! the store degrades into typed errors instead of panics or silent
//! data loss. The `cm-chaos` crate provides such an implementation.
//!
//! The surface is deliberately minimal: exactly the operations the
//! columnar store performs, nothing speculative. Paths are passed
//! through untouched, so a fault-injecting [`Vfs`] can delegate to
//! [`RealFs`] for the actual storage.

use std::fmt::Debug;
use std::fs::{self, File};
use std::io;
use std::path::Path;

/// An open file handle obtained through a [`Vfs`].
///
/// Reads are positioned (no shared cursor — the store's committed file
/// is read concurrently); writes are sequential appends used only while
/// building a new store file under its temporary name.
#[allow(clippy::len_without_is_empty)]
pub trait VfsFile: Debug + Send + Sync {
    /// Current length of the file in bytes.
    ///
    /// # Errors
    ///
    /// Any underlying I/O failure.
    fn len(&self) -> io::Result<u64>;

    /// Fills `buf` from the absolute byte `offset` without moving any
    /// shared cursor.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::UnexpectedEof`] when fewer than `buf.len()`
    /// bytes exist past `offset`, or any underlying I/O failure.
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()>;

    /// Appends all of `buf` at the current write position.
    ///
    /// # Errors
    ///
    /// Any underlying I/O failure (out of space, permissions, …).
    fn write_all(&mut self, buf: &[u8]) -> io::Result<()>;

    /// Flushes data and metadata to durable storage.
    ///
    /// # Errors
    ///
    /// Any underlying I/O failure.
    fn sync_all(&mut self) -> io::Result<()>;
}

/// The filesystem operations the columnar store needs.
///
/// Implementations must be usable from multiple threads; the store
/// itself holds the [`Vfs`] behind an [`Arc`](std::sync::Arc).
pub trait Vfs: Debug + Send + Sync {
    /// Opens an existing file for reading.
    ///
    /// # Errors
    ///
    /// [`io::ErrorKind::NotFound`] or any underlying I/O failure.
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Creates (truncating) a file for writing.
    ///
    /// # Errors
    ///
    /// Any underlying I/O failure.
    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>>;

    /// Whether a file exists at `path`.
    fn exists(&self, path: &Path) -> bool;

    /// Removes the file at `path`.
    ///
    /// # Errors
    ///
    /// Any underlying I/O failure.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` onto `to` (replacing `to`).
    ///
    /// # Errors
    ///
    /// Any underlying I/O failure.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;
}

/// The real filesystem: a thin veneer over `std::fs`.
///
/// # Examples
///
/// ```
/// use cm_store::{RealFs, Vfs};
///
/// let fs = RealFs;
/// assert!(!fs.exists(std::path::Path::new("/nonexistent/cm.store")));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RealFs;

/// A [`VfsFile`] backed by a real [`File`].
#[derive(Debug)]
struct RealFile(File);

impl VfsFile for RealFile {
    fn len(&self) -> io::Result<u64> {
        Ok(self.0.metadata()?.len())
    }

    #[cfg(unix)]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        use std::os::unix::fs::FileExt;
        self.0.read_exact_at(buf, offset)
    }

    #[cfg(not(unix))]
    fn read_exact_at(&self, buf: &mut [u8], offset: u64) -> io::Result<()> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = self.0.try_clone()?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(buf)
    }

    fn write_all(&mut self, buf: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.0.write_all(buf)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.0.sync_all()
    }
}

impl Vfs for RealFs {
    fn open(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::open(path)?)))
    }

    fn create(&self, path: &Path) -> io::Result<Box<dyn VfsFile>> {
        Ok(Box::new(RealFile(File::create(path)?)))
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        fs::remove_file(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        fs::rename(from, to)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_file(tag: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cm_vfs_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("f.bin")
    }

    #[test]
    fn real_fs_round_trips() {
        let path = temp_file("roundtrip");
        let fs_ = RealFs;
        assert!(!fs_.exists(&path));
        {
            let mut f = fs_.create(&path).unwrap();
            f.write_all(b"hello world").unwrap();
            f.sync_all().unwrap();
        }
        assert!(fs_.exists(&path));
        let f = fs_.open(&path).unwrap();
        assert_eq!(f.len().unwrap(), 11);
        let mut buf = [0u8; 5];
        f.read_exact_at(&mut buf, 6).unwrap();
        assert_eq!(&buf, b"world");
        // Short read past the end is UnexpectedEof, not a panic.
        let mut big = [0u8; 32];
        let err = f.read_exact_at(&mut big, 6).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn real_fs_rename_and_remove() {
        let path = temp_file("rename");
        let to = path.with_extension("renamed");
        let fs_ = RealFs;
        fs_.create(&path).unwrap().write_all(b"x").unwrap();
        fs_.rename(&path, &to).unwrap();
        assert!(!fs_.exists(&path));
        assert!(fs_.exists(&to));
        fs_.remove(&to).unwrap();
        assert!(!fs_.exists(&to));
    }
}
