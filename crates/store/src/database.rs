use crate::StoreError;
use cm_events::{EventId, RunRecord, SampleMode, TimeSeries};
use std::collections::BTreeMap;
use std::path::Path;

/// Key identifying one second-level table (one run of one program in one
/// measurement mode).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunKey {
    /// Program name.
    pub program: String,
    /// 0-based run index.
    pub run_index: u32,
    /// Measurement mode of the run.
    pub mode: SampleMode,
}

impl RunKey {
    /// Creates a run key.
    pub fn new(program: impl Into<String>, run_index: u32, mode: SampleMode) -> Self {
        RunKey {
            program: program.into(),
            run_index,
            mode,
        }
    }

    /// The second-level table name this key maps to, mirroring the
    /// paper's "names of the second-level tables" column.
    pub fn table_name(&self) -> String {
        format!("{}__{}__run{}", self.program, self.mode, self.run_index)
    }
}

/// First-level summary of everything stored for one program.
#[derive(Debug, Clone, PartialEq)]
pub struct ProgramSummary {
    /// Program name.
    pub program: String,
    /// Number of stored runs (all modes).
    pub run_count: usize,
    /// Execution time of each run, in key order.
    pub exec_times_secs: Vec<f64>,
    /// Union of events measured across runs.
    pub events: Vec<EventId>,
    /// Second-level table names, in key order.
    pub table_names: Vec<String>,
}

/// The embedded two-level performance-data store.
///
/// See the [crate docs](crate) for the schema. All queries are by-value
/// cheap: records are only cloned on insertion and load.
#[derive(Debug, Default, Clone)]
pub struct Database {
    runs: BTreeMap<RunKey, RunRecord>,
}

impl Database {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Inserts one run, keyed by `(program, run_index, mode)`.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DuplicateRun`] if the key is already present.
    pub fn insert_run(&mut self, run: RunRecord) -> Result<RunKey, StoreError> {
        let key = RunKey::new(run.program(), run.run_index(), run.mode());
        if self.runs.contains_key(&key) {
            return Err(StoreError::DuplicateRun {
                program: key.program,
                run_index: key.run_index,
            });
        }
        self.runs.insert(key.clone(), run);
        Ok(key)
    }

    /// Number of stored runs across all programs.
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Returns `true` when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Fetches one run.
    pub fn run(&self, program: &str, run_index: u32, mode: SampleMode) -> Option<&RunRecord> {
        self.runs.get(&RunKey::new(program, run_index, mode))
    }

    /// All runs of a program (any mode), in key order.
    pub fn runs_for(&self, program: &str) -> Vec<&RunRecord> {
        self.runs
            .iter()
            .filter(|(k, _)| k.program == program)
            .map(|(_, r)| r)
            .collect()
    }

    /// All runs of a program in one mode, in run-index order.
    pub fn runs_for_mode(&self, program: &str, mode: SampleMode) -> Vec<&RunRecord> {
        self.runs
            .iter()
            .filter(|(k, _)| k.program == program && k.mode == mode)
            .map(|(_, r)| r)
            .collect()
    }

    /// One event's series from one run, if present.
    pub fn series(
        &self,
        program: &str,
        run_index: u32,
        mode: SampleMode,
        event: EventId,
    ) -> Option<&TimeSeries> {
        self.run(program, run_index, mode)?.series(event)
    }

    /// Distinct program names, sorted.
    pub fn programs(&self) -> Vec<String> {
        let mut names: Vec<String> = self.runs.keys().map(|k| k.program.clone()).collect();
        names.dedup();
        names
    }

    /// First-level summary for one program, or `None` if unknown.
    pub fn summary(&self, program: &str) -> Option<ProgramSummary> {
        let entries: Vec<(&RunKey, &RunRecord)> = self
            .runs
            .iter()
            .filter(|(k, _)| k.program == program)
            .collect();
        if entries.is_empty() {
            return None;
        }
        let mut events: Vec<EventId> = entries.iter().flat_map(|(_, r)| r.events()).collect();
        events.sort();
        events.dedup();
        Some(ProgramSummary {
            program: program.to_string(),
            run_count: entries.len(),
            exec_times_secs: entries.iter().map(|(_, r)| r.exec_time_secs()).collect(),
            events,
            table_names: entries.iter().map(|(k, _)| k.table_name()).collect(),
        })
    }

    /// Iterates over all `(key, run)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&RunKey, &RunRecord)> {
        self.runs.iter()
    }

    /// Removes runs whose key fails the predicate, returning how many
    /// were removed.
    pub fn retain<F: FnMut(&RunKey) -> bool>(&mut self, mut keep: F) -> usize {
        let before = self.runs.len();
        self.runs.retain(|k, _| keep(k));
        before - self.runs.len()
    }

    /// Persists the store to a directory (created if missing).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure.
    pub fn save_to_dir(&self, dir: &Path) -> Result<(), StoreError> {
        crate::persist::save(self, dir)
    }

    /// Loads a store previously written by [`Database::save_to_dir`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure or
    /// [`StoreError::Parse`] for corrupt files.
    pub fn load_from_dir(dir: &Path) -> Result<Self, StoreError> {
        crate::persist::load(dir)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_run(program: &str, idx: u32, mode: SampleMode) -> RunRecord {
        let mut run = RunRecord::new(program, idx, mode);
        run.set_exec_time_secs(10.0 + idx as f64);
        run.insert_series(
            EventId::new(1),
            TimeSeries::from_values(vec![1.0, 2.0, 3.0]),
        );
        run.insert_series(EventId::new(4), TimeSeries::from_values(vec![4.0]));
        run
    }

    #[test]
    fn insert_and_fetch() {
        let mut db = Database::new();
        assert!(db.is_empty());
        db.insert_run(sample_run("sort", 0, SampleMode::Ocoe))
            .unwrap();
        let run = db.run("sort", 0, SampleMode::Ocoe).unwrap();
        assert_eq!(run.event_count(), 2);
        assert!(db.run("sort", 0, SampleMode::Mlpx).is_none());
        assert!(db.run("sort", 1, SampleMode::Ocoe).is_none());
    }

    #[test]
    fn duplicate_key_rejected() {
        let mut db = Database::new();
        db.insert_run(sample_run("sort", 0, SampleMode::Ocoe))
            .unwrap();
        let err = db
            .insert_run(sample_run("sort", 0, SampleMode::Ocoe))
            .unwrap_err();
        assert!(matches!(err, StoreError::DuplicateRun { .. }));
        // Same index under a different mode is a different table.
        assert!(db
            .insert_run(sample_run("sort", 0, SampleMode::Mlpx))
            .is_ok());
    }

    #[test]
    fn mode_filtered_queries() {
        let mut db = Database::new();
        for i in 0..3 {
            db.insert_run(sample_run("join", i, SampleMode::Ocoe))
                .unwrap();
        }
        db.insert_run(sample_run("join", 0, SampleMode::Mlpx))
            .unwrap();
        assert_eq!(db.runs_for("join").len(), 4);
        assert_eq!(db.runs_for_mode("join", SampleMode::Ocoe).len(), 3);
        assert_eq!(db.runs_for_mode("join", SampleMode::Mlpx).len(), 1);
    }

    #[test]
    fn series_lookup() {
        let mut db = Database::new();
        db.insert_run(sample_run("scan", 0, SampleMode::Ocoe))
            .unwrap();
        let ts = db
            .series("scan", 0, SampleMode::Ocoe, EventId::new(1))
            .unwrap();
        assert_eq!(ts.len(), 3);
        assert!(db
            .series("scan", 0, SampleMode::Ocoe, EventId::new(99))
            .is_none());
    }

    #[test]
    fn summary_aggregates_first_level_info() {
        let mut db = Database::new();
        db.insert_run(sample_run("kmeans", 0, SampleMode::Ocoe))
            .unwrap();
        db.insert_run(sample_run("kmeans", 1, SampleMode::Ocoe))
            .unwrap();
        let summary = db.summary("kmeans").unwrap();
        assert_eq!(summary.run_count, 2);
        assert_eq!(summary.exec_times_secs, vec![10.0, 11.0]);
        assert_eq!(summary.events.len(), 2);
        assert_eq!(summary.table_names.len(), 2);
        assert!(summary.table_names[0].contains("kmeans"));
        assert!(db.summary("unknown").is_none());
    }

    #[test]
    fn programs_are_sorted_and_distinct() {
        let mut db = Database::new();
        db.insert_run(sample_run("b", 0, SampleMode::Ocoe)).unwrap();
        db.insert_run(sample_run("a", 0, SampleMode::Ocoe)).unwrap();
        db.insert_run(sample_run("a", 1, SampleMode::Ocoe)).unwrap();
        assert_eq!(db.programs(), vec!["a".to_string(), "b".to_string()]);
    }

    #[test]
    fn table_name_is_unique_per_key() {
        let a = RunKey::new("x", 0, SampleMode::Ocoe).table_name();
        let b = RunKey::new("x", 0, SampleMode::Mlpx).table_name();
        let c = RunKey::new("x", 1, SampleMode::Ocoe).table_name();
        assert_ne!(a, b);
        assert_ne!(a, c);
    }
}
