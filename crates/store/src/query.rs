//! Analytical queries over the two-level store — the read patterns the
//! CounterMiner pipeline and its tooling need beyond point lookups.

use crate::Database;
use cm_events::{EventId, SampleMode, TimeSeries};

/// Min / mean / max execution time of a program's stored runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecTimeStats {
    /// Fastest run, seconds.
    pub min: f64,
    /// Mean across runs, seconds.
    pub mean: f64,
    /// Slowest run, seconds.
    pub max: f64,
    /// Number of runs aggregated.
    pub runs: usize,
}

impl Database {
    /// Execution-time statistics for one program (any mode), or `None`
    /// for an unknown program.
    pub fn exec_time_stats(&self, program: &str) -> Option<ExecTimeStats> {
        let times: Vec<f64> = self
            .runs_for(program)
            .iter()
            .map(|r| r.exec_time_secs())
            .collect();
        if times.is_empty() {
            return None;
        }
        let min = times.iter().copied().fold(f64::INFINITY, f64::min);
        let max = times.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mean = times.iter().sum::<f64>() / times.len() as f64;
        Some(ExecTimeStats {
            min,
            mean,
            max,
            runs: times.len(),
        })
    }

    /// Events measured in *every* stored run of a program in the given
    /// mode (the usable feature set for cross-run datasets). Empty when
    /// the program has no runs in that mode.
    pub fn events_common_to_runs(&self, program: &str, mode: SampleMode) -> Vec<EventId> {
        let runs = self.runs_for_mode(program, mode);
        let Some(first) = runs.first() else {
            return Vec::new();
        };
        first
            .events()
            .filter(|&e| runs.iter().all(|r| r.series(e).is_some()))
            .collect()
    }

    /// All series of one event across a program's runs in one mode, in
    /// run-index order. Runs that did not measure the event are skipped.
    pub fn event_series_across_runs(
        &self,
        program: &str,
        mode: SampleMode,
        event: EventId,
    ) -> Vec<&TimeSeries> {
        self.runs_for_mode(program, mode)
            .into_iter()
            .filter_map(|r| r.series(event))
            .collect()
    }

    /// Total sample values stored, across all runs and events.
    pub fn total_samples(&self) -> usize {
        self.iter()
            .map(|(_, run)| run.iter().map(|(_, ts)| ts.len()).sum::<usize>())
            .sum()
    }

    /// `(OCOE runs, MLPX runs)` counts across the whole store.
    pub fn mode_counts(&self) -> (usize, usize) {
        let mut ocoe = 0;
        let mut mlpx = 0;
        for (key, _) in self.iter() {
            match key.mode {
                SampleMode::Ocoe => ocoe += 1,
                SampleMode::Mlpx => mlpx += 1,
            }
        }
        (ocoe, mlpx)
    }

    /// Removes every run of a program, returning how many were removed.
    pub fn remove_program(&mut self, program: &str) -> usize {
        self.retain(|key| key.program != program)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cm_events::RunRecord;

    fn run(program: &str, idx: u32, mode: SampleMode, secs: f64, events: &[usize]) -> RunRecord {
        let mut r = RunRecord::new(program, idx, mode);
        r.set_exec_time_secs(secs);
        for &e in events {
            r.insert_series(
                EventId::new(e),
                TimeSeries::from_values(vec![e as f64; 3 + idx as usize]),
            );
        }
        r
    }

    fn sample_db() -> Database {
        let mut db = Database::new();
        db.insert_run(run("a", 0, SampleMode::Mlpx, 10.0, &[1, 2, 3]))
            .unwrap();
        db.insert_run(run("a", 1, SampleMode::Mlpx, 14.0, &[1, 2]))
            .unwrap();
        db.insert_run(run("a", 0, SampleMode::Ocoe, 12.0, &[1]))
            .unwrap();
        db.insert_run(run("b", 0, SampleMode::Mlpx, 50.0, &[7]))
            .unwrap();
        db
    }

    #[test]
    fn exec_time_stats_aggregate() {
        let db = sample_db();
        let stats = db.exec_time_stats("a").unwrap();
        assert_eq!(stats.min, 10.0);
        assert_eq!(stats.max, 14.0);
        assert_eq!(stats.runs, 3);
        assert!((stats.mean - 12.0).abs() < 1e-12);
        assert!(db.exec_time_stats("zzz").is_none());
    }

    #[test]
    fn common_events_intersect_runs() {
        let db = sample_db();
        let common: Vec<usize> = db
            .events_common_to_runs("a", SampleMode::Mlpx)
            .into_iter()
            .map(|e| e.index())
            .collect();
        assert_eq!(common, vec![1, 2]); // event 3 missing from run 1
        assert!(db
            .events_common_to_runs("a", SampleMode::Ocoe)
            .iter()
            .map(|e| e.index())
            .eq([1]));
        assert!(db.events_common_to_runs("zzz", SampleMode::Mlpx).is_empty());
    }

    #[test]
    fn series_across_runs_in_order() {
        let db = sample_db();
        let series = db.event_series_across_runs("a", SampleMode::Mlpx, EventId::new(1));
        assert_eq!(series.len(), 2);
        assert_eq!(series[0].len(), 3); // run 0
        assert_eq!(series[1].len(), 4); // run 1
                                        // Event 3 only exists in run 0.
        let partial = db.event_series_across_runs("a", SampleMode::Mlpx, EventId::new(3));
        assert_eq!(partial.len(), 1);
    }

    #[test]
    fn totals_and_mode_counts() {
        let db = sample_db();
        // a/mlpx0: 3 events x 3; a/mlpx1: 2 x 4; a/ocoe0: 1 x 3; b: 1 x 3.
        assert_eq!(db.total_samples(), 9 + 8 + 3 + 3);
        assert_eq!(db.mode_counts(), (1, 3));
    }

    #[test]
    fn remove_program_deletes_all_its_runs() {
        let mut db = sample_db();
        assert_eq!(db.remove_program("a"), 3);
        assert_eq!(db.run_count(), 1);
        assert_eq!(db.remove_program("a"), 0);
        assert_eq!(db.programs(), vec!["b".to_string()]);
    }
}
