//! The persistent chunked columnar store.
//!
//! [`Store`] is the durable sibling of the in-memory [`crate::Database`]:
//! one binary file holding every collected series as an independently
//! encoded, CRC-guarded column chunk, plus the run table (execution
//! times) and a string metadata map the pipeline uses for snapshot
//! fingerprints. See [`crate::format`] for the byte layout and
//! `docs/STORAGE_FORMAT.md` for the full specification.
//!
//! Writes are staged in memory and made durable by [`Store::commit`],
//! which builds the whole file under a temporary name and atomically
//! renames it into place — readers never observe a torn store, and a
//! crash mid-commit leaves the previous committed state intact.

use crate::cache::BlockCache;
use crate::codec::{self, Encoding};
use crate::format::{
    mode_from_tag, mode_tag, ChunkRef, IndexReader, IndexWriter, Superblock, SUPERBLOCK_LEN,
    TMP_SUFFIX, VERSION,
};
use crate::vfs::{RealFs, Vfs, VfsFile};
use crate::{CacheConfig, CacheStats, StoreError};
use cm_events::{EventId, RunRecord, SampleMode, TimeSeries};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Identifies one stored column: one event's series from one run of one
/// program in one measurement mode.
///
/// # Examples
///
/// ```
/// use cm_events::{EventId, SampleMode};
/// use cm_store::SeriesKey;
///
/// let key = SeriesKey::new("wordcount", 0, SampleMode::Mlpx, EventId::new(3));
/// assert_eq!(key.program, "wordcount");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SeriesKey {
    /// Program (or snapshot namespace) the series belongs to.
    pub program: String,
    /// 0-based run index.
    pub run_index: u32,
    /// Measurement mode of the run.
    pub mode: SampleMode,
    /// The measured event.
    pub event: EventId,
}

impl SeriesKey {
    /// Creates a series key.
    pub fn new(
        program: impl Into<String>,
        run_index: u32,
        mode: SampleMode,
        event: EventId,
    ) -> Self {
        SeriesKey {
            program: program.into(),
            run_index,
            mode,
            event,
        }
    }
}

/// Identifies one run in the store's run table.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct RunId {
    /// Program name.
    pub program: String,
    /// 0-based run index.
    pub run_index: u32,
    /// Measurement mode.
    pub mode: SampleMode,
}

impl RunId {
    /// Creates a run id.
    pub fn new(program: impl Into<String>, run_index: u32, mode: SampleMode) -> Self {
        RunId {
            program: program.into(),
            run_index,
            mode,
        }
    }
}

/// Longest committed chunk chain a series may keep. A commit that would
/// exceed it *compacts* the series — decodes the chain plus the staged
/// tail and re-encodes everything as one chunk — so streamed appends
/// cannot grow a series into an unbounded list of tiny chunks. Reads
/// therefore touch at most this many chunks per series.
pub const MAX_CHUNK_CHAIN: usize = 8;

/// Where one series' values currently live: a chain of committed chunks
/// (in append order) plus, possibly, a staged tail that the next
/// [`Store::commit`] makes durable. Either part may be empty, but never
/// both.
#[derive(Debug, Clone)]
struct SeriesState {
    /// Committed chunks, concatenated in order on read.
    disk: Vec<ChunkRef>,
    /// Values staged by [`Store::append_series`] /
    /// [`Store::extend_series`], not yet durable; logically follows
    /// every committed chunk.
    tail: Option<Arc<Vec<f64>>>,
}

impl SeriesState {
    fn staged(values: Vec<f64>) -> Self {
        SeriesState {
            disk: Vec::new(),
            tail: Some(Arc::new(values)),
        }
    }

    fn has_tail(&self) -> bool {
        self.tail.is_some()
    }

    /// Total values across committed chunks and the staged tail.
    fn len(&self) -> u64 {
        self.disk.iter().map(|c| c.count).sum::<u64>()
            + self.tail.as_ref().map_or(0, |t| t.len() as u64)
    }
}

/// Aggregate facts about a store, as shown by `counterminer store-info`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoreInfo {
    /// On-disk format version.
    pub version: u32,
    /// Number of stored series (committed + staged).
    pub series: usize,
    /// Number of staged (uncommitted) series.
    pub staged: usize,
    /// Number of runs in the run table.
    pub runs: usize,
    /// Number of metadata entries.
    pub meta_entries: usize,
    /// Series whose committed values span more than one chunk (streamed
    /// appends that have not been compacted yet).
    pub chained_series: usize,
    /// Total sample values across all series.
    pub total_values: u64,
    /// Committed file size in bytes (0 before the first commit).
    pub file_bytes: u64,
    /// Committed chunks using the delta+varint encoding.
    pub delta_chunks: usize,
    /// Committed chunks stored as raw `f64` bits.
    pub raw_chunks: usize,
}

/// A persistent, chunked, columnar event store with an LRU block cache.
///
/// # Examples
///
/// ```
/// use cm_events::{EventId, SampleMode};
/// use cm_store::{SeriesKey, Store};
///
/// let dir = std::env::temp_dir().join(format!("cm_store_doc_{}", std::process::id()));
/// std::fs::create_dir_all(&dir)?;
/// let path = dir.join("doc.cmstore");
/// # let _ = std::fs::remove_file(&path);
///
/// // Write: stage series, then commit atomically.
/// let mut store = Store::open(&path)?;
/// let key = SeriesKey::new("wordcount", 0, SampleMode::Mlpx, EventId::new(3));
/// store.append_series(key.clone(), &[120.0, 118.0, 131.0])?;
/// store.commit()?;
///
/// // Read it back — the decoded chunk lands in the block cache.
/// let reopened = Store::open(&path)?;
/// assert_eq!(*reopened.read_series(&key)?, vec![120.0, 118.0, 131.0]);
/// assert_eq!(reopened.cache_stats().misses, 1);
/// assert_eq!(reopened.read_series(&key)?.len(), 3);
/// assert_eq!(reopened.cache_stats().hits, 1);
/// # std::fs::remove_file(&path)?;
/// # Ok::<(), cm_store::StoreError>(())
/// ```
#[derive(Debug)]
pub struct Store {
    path: PathBuf,
    /// Filesystem all I/O goes through ([`RealFs`] unless injected).
    vfs: Arc<dyn Vfs>,
    /// Open handle to the committed file, if one exists.
    file: Option<Box<dyn VfsFile>>,
    chunks: BTreeMap<SeriesKey, SeriesState>,
    runs: BTreeMap<RunId, f64>,
    meta: BTreeMap<String, String>,
    /// Decoded-chunk cache — private by default, shareable across store
    /// handles (and store files) via [`Store::open_with_cache`].
    cache: Arc<BlockCache>,
    /// This store's identity inside a shared cache; derived from `path`.
    salt: u64,
    file_bytes: u64,
    /// Whether run or metadata tables changed since the last commit —
    /// mutations [`Store::has_staged`] cannot see from series tails.
    tables_dirty: bool,
}

impl Store {
    /// Opens (or initializes) a store at `path`, sizing the block cache
    /// from the `CM_STORE_CACHE` environment variable.
    ///
    /// A missing file yields an empty store; the file is created by the
    /// first [`Store::commit`]. A leftover temporary file from an
    /// interrupted commit is removed (the previous committed state wins).
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::NotAStore`], [`StoreError::UnsupportedVersion`],
    /// [`StoreError::ChecksumMismatch`], [`StoreError::Truncated`], or
    /// [`StoreError::Corrupt`] for a damaged file, and [`StoreError::Io`]
    /// for filesystem failures.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StoreError> {
        Self::open_with(path, CacheConfig::from_env())
    }

    /// Like [`Store::open`] with an explicit cache configuration.
    ///
    /// # Errors
    ///
    /// As for [`Store::open`].
    pub fn open_with(path: impl AsRef<Path>, cache: CacheConfig) -> Result<Self, StoreError> {
        Self::open_with_vfs(path, cache, Arc::new(RealFs))
    }

    /// Like [`Store::open_with`], but with every filesystem operation
    /// routed through `vfs` — the hook fault-injection harnesses use to
    /// exercise the store's error paths (see the `cm-chaos` crate).
    ///
    /// # Errors
    ///
    /// As for [`Store::open`].
    pub fn open_with_vfs(
        path: impl AsRef<Path>,
        cache: CacheConfig,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self, StoreError> {
        Self::open_shared(path, Arc::new(BlockCache::new(cache)), vfs)
    }

    /// Opens a store whose decoded chunks live in `cache`, a
    /// [`BlockCache`] that may be shared with other store handles (of
    /// this file or of others). Entries are keyed by a per-path salt, so
    /// stores sharing one cache never collide, and committing one store
    /// only invalidates its own entries. Two handles opened on the same
    /// path share hits; the same file reached through different path
    /// spellings salts differently (an efficiency caveat, not a
    /// correctness one).
    ///
    /// This is the serving-layer entry point: N concurrent readers stop
    /// duplicating cached blocks the moment they share one `Arc`.
    ///
    /// # Errors
    ///
    /// As for [`Store::open`].
    pub fn open_with_cache(
        path: impl AsRef<Path>,
        cache: Arc<BlockCache>,
    ) -> Result<Self, StoreError> {
        Self::open_shared(path, cache, Arc::new(RealFs))
    }

    /// Like [`Store::open_with_cache`], but with every filesystem
    /// operation routed through `vfs` (see [`Store::open_with_vfs`]).
    ///
    /// # Errors
    ///
    /// As for [`Store::open`].
    pub fn open_shared(
        path: impl AsRef<Path>,
        cache: Arc<BlockCache>,
        vfs: Arc<dyn Vfs>,
    ) -> Result<Self, StoreError> {
        let path = path.as_ref().to_path_buf();
        let _span = cm_obs::span!("store.open");

        // Partial-write recovery: an interrupted commit can only leave a
        // temporary file behind; the committed store is still intact.
        let tmp = tmp_path(&path);
        if vfs.exists(&tmp) {
            vfs.remove(&tmp)?;
            cm_obs::counter_add("store.recovered_partial", 1);
        }

        let salt = crate::cache::path_salt(&path);
        let mut store = Store {
            path,
            vfs,
            file: None,
            chunks: BTreeMap::new(),
            runs: BTreeMap::new(),
            meta: BTreeMap::new(),
            cache,
            salt,
            file_bytes: 0,
            tables_dirty: false,
        };
        if store.vfs.exists(&store.path) {
            store.load()?;
        }
        Ok(store)
    }

    /// File this store commits to.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn file_name(&self) -> String {
        self.path
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_else(|| self.path.display().to_string())
    }

    fn load(&mut self) -> Result<(), StoreError> {
        let name = self.file_name();
        let file = self.vfs.open(&self.path)?;
        let file_len = file.len()?;

        let mut head = vec![0u8; SUPERBLOCK_LEN.min(file_len as usize)];
        file.read_exact_at(&mut head, 0)?;
        let sb = Superblock::decode(&head, &name)?;

        let index_end = sb.index_offset.checked_add(sb.index_len);
        if index_end.is_none() || index_end.unwrap() > file_len {
            return Err(StoreError::Truncated {
                file: name,
                what: format!(
                    "index claims bytes {}..{} but the file holds {file_len}",
                    sb.index_offset,
                    sb.index_offset.saturating_add(sb.index_len)
                ),
            });
        }

        let mut index_bytes = vec![0u8; sb.index_len as usize];
        file.read_exact_at(&mut index_bytes, sb.index_offset)?;
        let mut r = IndexReader::new(&index_bytes, &name)?;

        let n_series = r.u64("series count")?;
        for _ in 0..n_series {
            let program = r.str16("series program")?;
            let run_index = r.u32("series run index")?;
            let mode = mode_from_tag(r.u8("series mode")?, &name)?;
            let event = EventId::new(r.u64("series event")? as usize);
            // Version 1 stored exactly one chunk per series, inline;
            // version 2 prefixes each series with its chain length.
            let n_chunks = if sb.version >= 2 {
                r.u32("series chunk count")? as usize
            } else {
                1
            };
            if n_chunks == 0 {
                return Err(StoreError::Corrupt {
                    file: name,
                    what: "series with an empty chunk chain".to_string(),
                });
            }
            let mut disk = Vec::with_capacity(n_chunks);
            for _ in 0..n_chunks {
                let encoding =
                    Encoding::from_tag(r.u8("series encoding")?).map_err(|e| e.with_file(&name))?;
                let count = r.u64("series value count")?;
                let offset = r.u64("series chunk offset")?;
                let len = r.u64("series chunk length")?;
                let crc = r.u32("series chunk crc")?;
                if offset.saturating_add(len) > sb.index_offset {
                    return Err(StoreError::Corrupt {
                        file: name,
                        what: format!("chunk at {offset}+{len} overlaps the index"),
                    });
                }
                disk.push(ChunkRef {
                    encoding,
                    count,
                    offset,
                    len,
                    crc,
                });
            }
            self.chunks.insert(
                SeriesKey {
                    program,
                    run_index,
                    mode,
                    event,
                },
                SeriesState { disk, tail: None },
            );
        }

        let n_runs = r.u64("run count")?;
        for _ in 0..n_runs {
            let program = r.str16("run program")?;
            let run_index = r.u32("run index")?;
            let mode = mode_from_tag(r.u8("run mode")?, &name)?;
            let exec_time = r.f64("run exec time")?;
            self.runs.insert(
                RunId {
                    program,
                    run_index,
                    mode,
                },
                exec_time,
            );
        }

        let n_meta = r.u64("meta count")?;
        for _ in 0..n_meta {
            let key = r.str16("meta key")?;
            let value = r.str32("meta value")?;
            self.meta.insert(key, value);
        }
        if !r.at_end() {
            return Err(StoreError::Corrupt {
                file: name,
                what: "index has trailing bytes".to_string(),
            });
        }

        self.file_bytes = file_len;
        self.file = Some(file);
        Ok(())
    }

    /// Stages one series for the next [`Store::commit`].
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DuplicateSeries`] if the key is already
    /// stored or staged.
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_events::{EventId, SampleMode};
    /// use cm_store::{SeriesKey, Store};
    ///
    /// let dir = std::env::temp_dir().join(format!("cm_append_doc_{}", std::process::id()));
    /// std::fs::create_dir_all(&dir)?;
    /// let mut store = Store::open(dir.join("a.cmstore"))?;
    /// let key = SeriesKey::new("sort", 0, SampleMode::Ocoe, EventId::new(1));
    /// store.append_series(key.clone(), &[1.0, 2.0])?;
    /// // Staged data is readable before the commit…
    /// assert_eq!(store.read_series(&key)?.len(), 2);
    /// // …but appending the same key twice is rejected.
    /// assert!(store.append_series(key, &[3.0]).is_err());
    /// # Ok::<(), cm_store::StoreError>(())
    /// ```
    pub fn append_series(&mut self, key: SeriesKey, values: &[f64]) -> Result<(), StoreError> {
        if self.chunks.contains_key(&key) {
            return Err(StoreError::DuplicateSeries {
                program: key.program,
                run_index: key.run_index,
                event: key.event.index(),
            });
        }
        self.chunks
            .insert(key, SeriesState::staged(values.to_vec()));
        Ok(())
    }

    /// Appends `values` to the end of a series, staging them for the
    /// next [`Store::commit`]. Unlike [`Store::append_series`] the key
    /// may already exist — committed chunks are left untouched and the
    /// new values become (or extend) the series' staged tail, which the
    /// commit writes as a fresh chunk appended to the series' chain.
    /// An unknown key is created, so `extend_series` on a fresh store
    /// behaves exactly like `append_series`.
    ///
    /// This is the streaming-ingest entry point (`cm-stream` calls it
    /// for every arriving chunk): repeated extend/commit cycles grow a
    /// bounded chunk chain that [`Store::commit`] compacts once it
    /// exceeds [`MAX_CHUNK_CHAIN`] links.
    ///
    /// # Errors
    ///
    /// Infallible today; returns `Result` for parity with
    /// [`Store::append_series`] and future invariants.
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_events::{EventId, SampleMode};
    /// use cm_store::{SeriesKey, Store};
    ///
    /// let dir = std::env::temp_dir().join(format!("cm_extend_doc_{}", std::process::id()));
    /// std::fs::create_dir_all(&dir)?;
    /// let path = dir.join("extend.cmstore");
    /// # let _ = std::fs::remove_file(&path);
    /// let mut store = Store::open(&path)?;
    /// let key = SeriesKey::new("wc", 0, SampleMode::Mlpx, EventId::new(1));
    /// store.extend_series(key.clone(), &[1.0, 2.0])?;
    /// store.commit()?;
    /// store.extend_series(key.clone(), &[3.0])?; // append after the committed chunk
    /// assert_eq!(*store.read_series(&key)?, vec![1.0, 2.0, 3.0]);
    /// store.commit()?;
    /// assert_eq!(*Store::open(&path)?.read_series(&key)?, vec![1.0, 2.0, 3.0]);
    /// # std::fs::remove_file(&path)?;
    /// # Ok::<(), cm_store::StoreError>(())
    /// ```
    pub fn extend_series(&mut self, key: SeriesKey, values: &[f64]) -> Result<(), StoreError> {
        let state = self
            .chunks
            .entry(key)
            .or_insert_with(|| SeriesState::staged(Vec::new()));
        match &mut state.tail {
            Some(tail) => Arc::make_mut(tail).extend_from_slice(values),
            None => state.tail = Some(Arc::new(values.to_vec())),
        }
        Ok(())
    }

    /// Total number of values in a series (committed + staged), without
    /// decoding anything. `None` for an unknown key.
    pub fn series_len(&self, key: &SeriesKey) -> Option<u64> {
        self.chunks.get(key).map(SeriesState::len)
    }

    /// Stages every series of a [`RunRecord`] plus its run-table entry.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::DuplicateSeries`] on any key collision (the
    /// run table entry is keyed identically, so a duplicate run fails on
    /// its first series).
    pub fn append_run(&mut self, record: &RunRecord) -> Result<(), StoreError> {
        for (event, series) in record.iter() {
            self.append_series(
                SeriesKey::new(record.program(), record.run_index(), record.mode(), event),
                series.values(),
            )?;
        }
        self.runs.insert(
            RunId::new(record.program(), record.run_index(), record.mode()),
            record.exec_time_secs(),
        );
        self.tables_dirty = true;
        Ok(())
    }

    /// Sets one store-level metadata entry (persisted on commit).
    pub fn set_meta(&mut self, key: impl Into<String>, value: impl Into<String>) {
        self.meta.insert(key.into(), value.into());
        self.tables_dirty = true;
    }

    /// Reads one store-level metadata entry.
    pub fn meta(&self, key: &str) -> Option<&str> {
        self.meta.get(key).map(String::as_str)
    }

    /// Recorded execution time of one run, if present in the run table.
    pub fn exec_time_secs(&self, id: &RunId) -> Option<f64> {
        self.runs.get(id).copied()
    }

    /// Whether a series is stored (committed or staged).
    pub fn contains_series(&self, key: &SeriesKey) -> bool {
        self.chunks.contains_key(key)
    }

    /// All series keys, in sorted order.
    pub fn series_keys(&self) -> impl Iterator<Item = &SeriesKey> {
        self.chunks.keys()
    }

    /// All run ids in the run table, in sorted order.
    pub fn run_ids(&self) -> impl Iterator<Item = &RunId> {
        self.runs.keys()
    }

    /// Distinct program names across stored series, sorted.
    pub fn programs(&self) -> Vec<String> {
        let mut names: Vec<String> = self.chunks.keys().map(|k| k.program.clone()).collect();
        names.dedup();
        names
    }

    /// Reads one series, consulting the block cache for committed
    /// chunks; staged series are served from memory.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::SeriesNotFound`] for an unknown key,
    /// [`StoreError::ChecksumMismatch`] when the chunk's CRC disagrees
    /// with its payload, and [`StoreError::Corrupt`] /
    /// [`StoreError::Io`] for undecodable or unreadable chunks.
    pub fn read_series(&self, key: &SeriesKey) -> Result<Arc<Vec<f64>>, StoreError> {
        let state = self
            .chunks
            .get(key)
            .ok_or_else(|| StoreError::SeriesNotFound {
                program: key.program.clone(),
                run_index: key.run_index,
                event: key.event.index(),
            })?;
        match (state.disk.as_slice(), &state.tail) {
            // Pure staged series: serve the tail directly.
            ([], Some(tail)) => Ok(tail.clone()),
            ([], None) => Ok(Arc::new(Vec::new())),
            // Single committed chunk, no tail: the zero-copy fast path.
            ([chunk], None) => self.read_chunk(chunk),
            // Chunk chain (and/or tail): concatenate in append order.
            (chunks, tail) => {
                let mut out = Vec::with_capacity(state.len() as usize);
                for chunk in chunks {
                    out.extend_from_slice(&self.read_chunk(chunk)?);
                }
                if let Some(tail) = tail {
                    out.extend_from_slice(tail);
                }
                Ok(Arc::new(out))
            }
        }
    }

    /// Reads many series in one pass: staged series and cache hits are
    /// served from memory; the remaining chunks are fetched with
    /// **coalesced region reads** (adjacent and near-adjacent chunks
    /// share one positioned read) and decoded from borrowed sub-slices
    /// of the region buffers, fanning the per-chunk CRC check + decode
    /// across the [`cm_par`] pool. Element `i` of the result pairs with
    /// `keys[i]`; duplicate keys are allowed.
    ///
    /// Results, cache contents, and the `store.decode.chunks` /
    /// `store.decode.bytes` counters are bit-identical to calling
    /// [`Store::read_series`] per key, at any thread count — only
    /// `store.decode.reads` (one per coalesced region instead of one
    /// per chunk) reflects the batching.
    ///
    /// # Errors
    ///
    /// As for [`Store::read_series`]; when several chunks are bad, the
    /// error is the one the equivalent sequential loop would have hit
    /// first.
    ///
    /// # Examples
    ///
    /// ```
    /// use cm_events::{EventId, SampleMode};
    /// use cm_store::{SeriesKey, Store};
    ///
    /// let dir = std::env::temp_dir().join(format!("cm_batch_doc_{}", std::process::id()));
    /// std::fs::create_dir_all(&dir)?;
    /// let path = dir.join("batch.cmstore");
    /// # let _ = std::fs::remove_file(&path);
    /// let mut store = Store::open(&path)?;
    /// let k1 = SeriesKey::new("wc", 0, SampleMode::Mlpx, EventId::new(1));
    /// let k2 = SeriesKey::new("wc", 0, SampleMode::Mlpx, EventId::new(2));
    /// store.append_series(k1.clone(), &[1.0, 2.0])?;
    /// store.append_series(k2.clone(), &[3.0])?;
    /// store.commit()?;
    ///
    /// let both = store.read_series_batch(&[k1, k2])?;
    /// assert_eq!(*both[0], vec![1.0, 2.0]);
    /// assert_eq!(*both[1], vec![3.0]);
    /// # std::fs::remove_file(&path)?;
    /// # Ok::<(), cm_store::StoreError>(())
    /// ```
    pub fn read_series_batch(&self, keys: &[SeriesKey]) -> Result<Vec<Arc<Vec<f64>>>, StoreError> {
        let _span = cm_obs::span!("store.decode.batch");
        // Each slot assembles from an ordered list of parts: a part is
        // either already in memory (staged tail, cache hit) or a missed
        // chunk awaiting decode.
        enum Part {
            Mem(Arc<Vec<f64>>),
            Miss(usize),
        }
        let mut parts: Vec<Vec<Part>> = Vec::with_capacity(keys.len());
        // One entry per *distinct* missed chunk, in first-occurrence
        // (key) order — duplicate keys (and shared chunks) decode once,
        // exactly as the second of two sequential reads would hit the
        // cache the first one populated.
        let mut misses: Vec<ChunkRef> = Vec::new();
        let mut miss_index: BTreeMap<u64, usize> = BTreeMap::new();
        for key in keys {
            let state = self
                .chunks
                .get(key)
                .ok_or_else(|| StoreError::SeriesNotFound {
                    program: key.program.clone(),
                    run_index: key.run_index,
                    event: key.event.index(),
                })?;
            let mut slot_parts =
                Vec::with_capacity(state.disk.len() + usize::from(state.has_tail()));
            for chunk in &state.disk {
                match self.cache.get(self.salt, chunk.offset) {
                    Some(values) => slot_parts.push(Part::Mem(values)),
                    None => {
                        let m = *miss_index.entry(chunk.offset).or_insert_with(|| {
                            misses.push(*chunk);
                            misses.len() - 1
                        });
                        slot_parts.push(Part::Miss(m));
                    }
                }
            }
            if let Some(tail) = &state.tail {
                slot_parts.push(Part::Mem(tail.clone()));
            }
            parts.push(slot_parts);
        }

        let mut decoded_arcs: Vec<Arc<Vec<f64>>> = Vec::with_capacity(misses.len());
        if !misses.is_empty() {
            let name = self.file_name();
            let file = self.file.as_ref().ok_or_else(|| StoreError::Corrupt {
                file: name.clone(),
                what: "index references a chunk but no file is committed".to_string(),
            })?;

            // Coalesce the missed chunks (sorted by file offset) into
            // contiguous read regions: neighbors within MAX_COALESCE_GAP
            // bytes share one positioned read, so a run-sized batch of
            // adjacent chunks costs one or two syscalls instead of one
            // per chunk. Which regions form depends only on the chunk
            // layout, never on thread scheduling.
            struct Region {
                start: u64,
                len: usize,
            }
            const MAX_COALESCE_GAP: u64 = 4096;
            // Regions are also capped so one batch never allocates a
            // buffer proportional to the whole file (a run-sized batch
            // over adjacent chunks would otherwise coalesce into a
            // single file-length region), and region buffers stay small
            // enough for the allocator to recycle instead of mapping
            // fresh pages per read.
            const MAX_REGION_BYTES: u64 = 1 << 16;
            let mut order: Vec<usize> = (0..misses.len()).collect();
            order.sort_by_key(|&k| misses[k].offset);
            let mut regions: Vec<Region> = Vec::new();
            // Region each miss decodes from, indexed like `misses`.
            let mut region_of = vec![0usize; misses.len()];
            for &k in &order {
                let c = &misses[k];
                let end = c.offset + c.len;
                match regions.last_mut() {
                    Some(r)
                        if c.offset <= r.start + r.len as u64 + MAX_COALESCE_GAP
                            && end - r.start <= MAX_REGION_BYTES =>
                    {
                        r.len = (end.max(r.start + r.len as u64) - r.start) as usize;
                    }
                    _ => regions.push(Region {
                        start: c.offset,
                        len: c.len as usize,
                    }),
                }
                region_of[k] = regions.len() - 1;
            }

            let mut buffers: Vec<Vec<u8>> = Vec::with_capacity(regions.len());
            for r in &regions {
                let mut buf = vec![0u8; r.len];
                file.read_exact_at(&mut buf, r.start)?;
                cm_obs::counter_add("store.decode.reads", 1);
                buffers.push(buf);
            }

            // Checksum + decode every missed chunk from a borrowed slice
            // of its region buffer — no per-chunk payload copy. The fan
            // out is order-preserving, and errors are surfaced in miss
            // order, so failures match the sequential loop exactly.
            let decoded = cm_par::map_range(misses.len(), |k| -> Result<Vec<f64>, StoreError> {
                let chunk = &misses[k];
                let region = &regions[region_of[k]];
                let rel = (chunk.offset - region.start) as usize;
                let payload = &buffers[region_of[k]][rel..rel + chunk.len as usize];
                if codec::crc32(payload) != chunk.crc {
                    return Err(StoreError::ChecksumMismatch {
                        file: name.clone(),
                        what: format!("chunk at offset {}", chunk.offset),
                    });
                }
                codec::decode_chunk(chunk.encoding, payload, chunk.count as usize)
                    .map_err(|e| e.with_file(&name))
            });

            for (chunk, values) in misses.iter().zip(decoded) {
                let values = Arc::new(values?);
                // Insert in first-occurrence key order so the cache's
                // eviction sequence matches sequential reads, and count
                // per chunk so even an error-truncated batch leaves the
                // counters exactly where the sequential loop would.
                self.cache.insert(self.salt, chunk.offset, values.clone());
                cm_obs::counter_add("store.decode.chunks", 1);
                cm_obs::counter_add("store.decode.bytes", chunk.len);
                decoded_arcs.push(values);
            }
        }

        // Assemble each slot from its parts. Single-part slots (the
        // common case: one committed chunk, or a pure staged series)
        // stay zero-copy; chained series concatenate.
        Ok(parts
            .into_iter()
            .map(|slot_parts| {
                let resolve = |p: &Part| -> Arc<Vec<f64>> {
                    match p {
                        Part::Mem(v) => v.clone(),
                        Part::Miss(m) => decoded_arcs[*m].clone(),
                    }
                };
                match slot_parts.as_slice() {
                    [] => Arc::new(Vec::new()),
                    [one] => resolve(one),
                    many => {
                        let total: usize = many.iter().map(|p| resolve(p).len()).sum();
                        let mut joined = Vec::with_capacity(total);
                        for p in many {
                            joined.extend_from_slice(&resolve(p));
                        }
                        Arc::new(joined)
                    }
                }
            })
            .collect())
    }

    /// Reads one series into a [`TimeSeries`] (cloning out of the cache).
    ///
    /// # Errors
    ///
    /// As for [`Store::read_series`].
    pub fn read_series_ts(&self, key: &SeriesKey) -> Result<TimeSeries, StoreError> {
        Ok(TimeSeries::from_values(self.read_series(key)?.to_vec()))
    }

    /// Reassembles a full [`RunRecord`] from the store.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::SeriesNotFound`] when the run has no series,
    /// otherwise as for [`Store::read_series`].
    pub fn read_run(&self, id: &RunId) -> Result<RunRecord, StoreError> {
        let mut record = RunRecord::new(id.program.clone(), id.run_index, id.mode);
        if let Some(secs) = self.exec_time_secs(id) {
            record.set_exec_time_secs(secs);
        }
        let keys: Vec<SeriesKey> = self
            .chunks
            .range(SeriesKey::new(id.program.clone(), id.run_index, id.mode, EventId::new(0))..)
            .take_while(|(k, _)| {
                k.program == id.program && k.run_index == id.run_index && k.mode == id.mode
            })
            .map(|(k, _)| k.clone())
            .collect();
        if keys.is_empty() {
            return Err(StoreError::SeriesNotFound {
                program: id.program.clone(),
                run_index: id.run_index,
                event: 0,
            });
        }
        // One batched read: the run's chunks are adjacent on disk (the
        // index is key-sorted), so this coalesces into a handful of
        // region reads and decodes them in parallel.
        let values = self.read_series_batch(&keys)?;
        for (key, values) in keys.into_iter().zip(values) {
            record.insert_series(key.event, TimeSeries::from_values(values.to_vec()));
        }
        Ok(record)
    }

    fn read_chunk(&self, chunk: &ChunkRef) -> Result<Arc<Vec<f64>>, StoreError> {
        if let Some(values) = self.cache.get(self.salt, chunk.offset) {
            return Ok(values);
        }
        let name = self.file_name();
        let file = self.file.as_ref().ok_or_else(|| StoreError::Corrupt {
            file: name.clone(),
            what: "index references a chunk but no file is committed".to_string(),
        })?;
        let mut payload = vec![0u8; chunk.len as usize];
        file.read_exact_at(&mut payload, chunk.offset)?;
        cm_obs::counter_add("store.decode.reads", 1);
        if codec::crc32(&payload) != chunk.crc {
            return Err(StoreError::ChecksumMismatch {
                file: name,
                what: format!("chunk at offset {}", chunk.offset),
            });
        }
        let values = Arc::new(
            codec::decode_chunk(chunk.encoding, &payload, chunk.count as usize)
                .map_err(|e| e.with_file(&name))?,
        );
        cm_obs::counter_add("store.decode.chunks", 1);
        cm_obs::counter_add("store.decode.bytes", chunk.len);
        self.cache.insert(self.salt, chunk.offset, values.clone());
        Ok(values)
    }

    /// Number of stored series (committed + staged).
    pub fn series_count(&self) -> usize {
        self.chunks.len()
    }

    /// Whether any staged writes await a [`Store::commit`].
    pub fn has_staged(&self) -> bool {
        self.chunks.values().any(SeriesState::has_tail)
    }

    /// Block-cache counters for this store.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }

    /// Aggregate store facts (version, chunk counts, sizes).
    pub fn info(&self) -> StoreInfo {
        let mut staged = 0;
        let mut chained_series = 0;
        let mut total_values = 0u64;
        let mut delta_chunks = 0;
        let mut raw_chunks = 0;
        for state in self.chunks.values() {
            if state.has_tail() {
                staged += 1;
            }
            if state.disk.len() > 1 {
                chained_series += 1;
            }
            total_values += state.len();
            for c in &state.disk {
                match c.encoding {
                    Encoding::DeltaVarint => delta_chunks += 1,
                    Encoding::RawF64 => raw_chunks += 1,
                }
            }
        }
        StoreInfo {
            version: VERSION,
            series: self.chunks.len(),
            staged,
            runs: self.runs.len(),
            meta_entries: self.meta.len(),
            chained_series,
            total_values,
            file_bytes: self.file_bytes,
            delta_chunks,
            raw_chunks,
        }
    }

    /// Reads and CRC-verifies one committed chunk's raw payload bytes
    /// (no decode) — the byte-copy path commit uses to carry unchanged
    /// chunks into the next file generation.
    fn read_committed_payload(&self, chunk: &ChunkRef) -> Result<Vec<u8>, StoreError> {
        let file = self.file.as_ref().ok_or_else(|| StoreError::Corrupt {
            file: self.file_name(),
            what: "committed chunk without a committed file".to_string(),
        })?;
        let mut payload = vec![0u8; chunk.len as usize];
        file.read_exact_at(&mut payload, chunk.offset)?;
        if codec::crc32(&payload) != chunk.crc {
            return Err(StoreError::ChecksumMismatch {
                file: self.file_name(),
                what: format!("chunk at offset {} during commit", chunk.offset),
            });
        }
        Ok(payload)
    }

    /// Makes every staged write durable: builds the complete store file
    /// under a temporary name (committed chunks are byte-copied without
    /// re-encoding, staged tails are encoded as fresh chunks appended
    /// to each series' chain), fsyncs it, and atomically renames it
    /// over the store path.
    ///
    /// A series whose chain would exceed [`MAX_CHUNK_CHAIN`] links is
    /// *compacted* instead: its committed chunks and staged tail are
    /// decoded, concatenated, and re-encoded as a single chunk, so
    /// streamed appends cannot degrade reads indefinitely.
    ///
    /// A no-op when nothing is staged and the file already exists.
    ///
    /// # Errors
    ///
    /// Returns [`StoreError::Io`] on filesystem failure; the previously
    /// committed state is preserved on any error.
    pub fn commit(&mut self) -> Result<(), StoreError> {
        if !self.has_staged() && !self.tables_dirty && self.file.is_some() {
            return Ok(());
        }
        let _span = cm_obs::span!("store.commit");

        // An encoded chunk ready to hit disk: encoding, value count,
        // payload bytes.
        type EncodedChunk = (Encoding, u64, Vec<u8>);

        // Build each series' new chunk chain, in key order.
        let mut payloads: Vec<(SeriesKey, Vec<EncodedChunk>)> =
            Vec::with_capacity(self.chunks.len());
        let mut staged_chunks = 0u64;
        let mut compactions = 0u64;
        for (key, state) in &self.chunks {
            let chain_len = state.disk.len() + usize::from(state.has_tail());
            let mut chain: Vec<EncodedChunk> = Vec::with_capacity(chain_len.min(MAX_CHUNK_CHAIN));
            if chain_len > MAX_CHUNK_CHAIN {
                // Compact: decode the whole chain plus the tail and
                // re-encode the series as one chunk.
                let mut values = Vec::with_capacity(state.len() as usize);
                for chunk in &state.disk {
                    values.extend_from_slice(&self.read_chunk(chunk)?);
                }
                if let Some(tail) = &state.tail {
                    values.extend_from_slice(tail);
                }
                let (encoding, payload) = codec::encode_chunk(&values);
                staged_chunks += 1;
                compactions += 1;
                chain.push((encoding, values.len() as u64, payload));
            } else {
                for chunk in &state.disk {
                    let payload = self.read_committed_payload(chunk)?;
                    chain.push((chunk.encoding, chunk.count, payload));
                }
                if let Some(tail) = &state.tail {
                    let (encoding, payload) = codec::encode_chunk(tail);
                    staged_chunks += 1;
                    chain.push((encoding, tail.len() as u64, payload));
                }
            }
            payloads.push((key.clone(), chain));
        }

        // Lay the file out: superblock, chunks, index.
        let mut refs: Vec<Vec<ChunkRef>> = Vec::with_capacity(payloads.len());
        let mut offset = SUPERBLOCK_LEN as u64;
        for (_, chain) in &payloads {
            let mut chain_refs = Vec::with_capacity(chain.len());
            for (encoding, count, payload) in chain {
                chain_refs.push(ChunkRef {
                    encoding: *encoding,
                    count: *count,
                    offset,
                    len: payload.len() as u64,
                    crc: codec::crc32(payload),
                });
                offset += payload.len() as u64;
            }
            refs.push(chain_refs);
        }
        let index_offset = offset;

        let mut w = IndexWriter::new();
        w.u64(payloads.len() as u64);
        for ((key, _), chain) in payloads.iter().zip(&refs) {
            w.str16(&key.program);
            w.u32(key.run_index);
            w.u8(mode_tag(key.mode));
            w.u64(key.event.index() as u64);
            w.u32(chain.len() as u32);
            for chunk in chain {
                w.u8(chunk.encoding.tag());
                w.u64(chunk.count);
                w.u64(chunk.offset);
                w.u64(chunk.len);
                w.u32(chunk.crc);
            }
        }
        w.u64(self.runs.len() as u64);
        for (id, &secs) in &self.runs {
            w.str16(&id.program);
            w.u32(id.run_index);
            w.u8(mode_tag(id.mode));
            w.f64(secs);
        }
        w.u64(self.meta.len() as u64);
        for (key, value) in &self.meta {
            w.str16(key);
            w.str32(value);
        }
        let index = w.finish();

        let sb = Superblock {
            version: VERSION,
            index_offset,
            index_len: index.len() as u64,
        };

        // Write, fsync, rename: atomic replacement of the store file.
        let tmp = tmp_path(&self.path);
        {
            let mut f = self.vfs.create(&tmp)?;
            f.write_all(&sb.encode())?;
            for (_, chain) in &payloads {
                for (_, _, payload) in chain {
                    f.write_all(payload)?;
                }
            }
            f.write_all(&index)?;
            f.sync_all()?;
        }
        self.vfs.rename(&tmp, &self.path)?;

        let total_bytes = index_offset + index.len() as u64;
        cm_obs::counter_add("store.commits", 1);
        cm_obs::counter_add("store.chunks_written", staged_chunks);
        cm_obs::counter_add("store.bytes_written", total_bytes);
        if compactions > 0 {
            cm_obs::counter_add("store.compactions", compactions);
        }

        // Swap in the new file: all offsets changed, so committed chunk
        // refs are rebuilt and this store's cache entries are
        // invalidated (other stores sharing the cache keep theirs).
        self.file = Some(self.vfs.open(&self.path)?);
        self.file_bytes = total_bytes;
        self.cache.clear_salt(self.salt);
        for ((key, _), chain) in payloads.into_iter().zip(refs) {
            self.chunks.insert(
                key,
                SeriesState {
                    disk: chain,
                    tail: None,
                },
            );
        }
        self.tables_dirty = false;
        Ok(())
    }
}

fn tmp_path(path: &Path) -> PathBuf {
    let mut name = path.as_os_str().to_os_string();
    name.push(TMP_SUFFIX);
    PathBuf::from(name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    fn temp_store(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cm_columnar_{tag}_{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("test.cmstore")
    }

    fn key(program: &str, run: u32, event: usize) -> SeriesKey {
        SeriesKey::new(program, run, SampleMode::Mlpx, EventId::new(event))
    }

    #[test]
    fn stage_commit_reopen_round_trip() {
        let path = temp_store("roundtrip");
        let mut store = Store::open(&path).unwrap();
        store
            .append_series(key("wc", 0, 1), &[1.0, 2.0, 3.0])
            .unwrap();
        store
            .append_series(key("wc", 0, 2), &[0.5, f64::NAN, -7.25])
            .unwrap();
        store.set_meta("fingerprint", "abc123");
        store.commit().unwrap();

        let reopened = Store::open(&path).unwrap();
        assert_eq!(reopened.series_count(), 2);
        assert_eq!(
            *reopened.read_series(&key("wc", 0, 1)).unwrap(),
            vec![1.0, 2.0, 3.0]
        );
        let nan_chunk = reopened.read_series(&key("wc", 0, 2)).unwrap();
        assert_eq!(nan_chunk[0], 0.5);
        assert!(nan_chunk[1].is_nan());
        assert_eq!(reopened.meta("fingerprint"), Some("abc123"));
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn append_run_round_trips_records() {
        let path = temp_store("runs");
        let mut record = RunRecord::new("sort", 3, SampleMode::Ocoe);
        record.set_exec_time_secs(12.75);
        record.insert_series(EventId::new(5), TimeSeries::from_values(vec![10.0, 20.0]));
        record.insert_series(EventId::new(9), TimeSeries::from_values(vec![]));

        let mut store = Store::open(&path).unwrap();
        store.append_run(&record).unwrap();
        store.commit().unwrap();

        let reopened = Store::open(&path).unwrap();
        let id = RunId::new("sort", 3, SampleMode::Ocoe);
        let got = reopened.read_run(&id).unwrap();
        assert_eq!(got.exec_time_secs(), 12.75);
        assert_eq!(got.event_count(), 2);
        assert_eq!(got.series(EventId::new(5)).unwrap().values(), &[10.0, 20.0]);
        assert!(got.series(EventId::new(9)).unwrap().is_empty());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn duplicate_series_rejected() {
        let path = temp_store("dup");
        let mut store = Store::open(&path).unwrap();
        store.append_series(key("a", 0, 1), &[1.0]).unwrap();
        let err = store.append_series(key("a", 0, 1), &[2.0]).unwrap_err();
        assert!(matches!(err, StoreError::DuplicateSeries { .. }));
        // Committed keys are protected too.
        store.commit().unwrap();
        assert!(store.append_series(key("a", 0, 1), &[2.0]).is_err());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn incremental_append_preserves_committed_chunks() {
        let path = temp_store("incremental");
        let mut store = Store::open(&path).unwrap();
        store.append_series(key("a", 0, 1), &[1.0, 2.0]).unwrap();
        store.commit().unwrap();

        // Second session appends more without re-encoding the old chunk.
        let mut store = Store::open(&path).unwrap();
        store.append_series(key("a", 1, 1), &[3.0, 4.0]).unwrap();
        store.commit().unwrap();

        let reopened = Store::open(&path).unwrap();
        assert_eq!(
            *reopened.read_series(&key("a", 0, 1)).unwrap(),
            vec![1.0, 2.0]
        );
        assert_eq!(
            *reopened.read_series(&key("a", 1, 1)).unwrap(),
            vec![3.0, 4.0]
        );
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn staged_series_readable_before_commit() {
        let path = temp_store("staged");
        let mut store = Store::open(&path).unwrap();
        store.append_series(key("a", 0, 7), &[5.0]).unwrap();
        assert!(store.has_staged());
        assert_eq!(*store.read_series(&key("a", 0, 7)).unwrap(), vec![5.0]);
        assert!(!path.exists(), "nothing durable before commit");
    }

    #[test]
    fn missing_series_is_typed() {
        let path = temp_store("missing");
        let store = Store::open(&path).unwrap();
        assert!(matches!(
            store.read_series(&key("nope", 0, 0)).unwrap_err(),
            StoreError::SeriesNotFound { .. }
        ));
    }

    #[test]
    fn info_reports_encodings_and_sizes() {
        let path = temp_store("info");
        let mut store = Store::open(&path).unwrap();
        store.append_series(key("a", 0, 1), &[1.0, 2.0]).unwrap(); // integral -> delta
        store.append_series(key("a", 0, 2), &[1.5, 2.5]).unwrap(); // fractional -> raw
        store.commit().unwrap();
        let info = store.info();
        assert_eq!(info.version, VERSION);
        assert_eq!(info.series, 2);
        assert_eq!(info.staged, 0);
        assert_eq!(info.total_values, 4);
        assert_eq!(info.delta_chunks, 1);
        assert_eq!(info.raw_chunks, 1);
        assert!(info.file_bytes > SUPERBLOCK_LEN as u64);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn extend_series_chains_chunks_across_commits() {
        let path = temp_store("chain");
        let mut store = Store::open(&path).unwrap();
        store.extend_series(key("a", 0, 1), &[1.0, 2.0]).unwrap();
        store.commit().unwrap();
        store.extend_series(key("a", 0, 1), &[3.0]).unwrap();
        // Staged tail is readable before the commit, after the chunk.
        assert_eq!(
            *store.read_series(&key("a", 0, 1)).unwrap(),
            vec![1.0, 2.0, 3.0]
        );
        assert_eq!(store.series_len(&key("a", 0, 1)), Some(3));
        store.commit().unwrap();
        assert_eq!(store.info().chained_series, 1);

        // Reopen: the chain persists and reads concatenated, both via
        // the single-key path and the batched path.
        let reopened = Store::open(&path).unwrap();
        assert_eq!(reopened.info().chained_series, 1);
        assert_eq!(
            *reopened.read_series(&key("a", 0, 1)).unwrap(),
            vec![1.0, 2.0, 3.0]
        );
        let batch = reopened.read_series_batch(&[key("a", 0, 1)]).unwrap();
        assert_eq!(*batch[0], vec![1.0, 2.0, 3.0]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn long_chains_are_compacted_on_commit() {
        let path = temp_store("compact");
        let mut store = Store::open(&path).unwrap();
        let mut expect = Vec::new();
        // One value per commit: chain grows 1, 2, ... and must compact
        // once it would exceed MAX_CHUNK_CHAIN.
        for i in 0..(MAX_CHUNK_CHAIN as u32 + 3) {
            store
                .extend_series(key("a", 0, 1), &[f64::from(i)])
                .unwrap();
            expect.push(f64::from(i));
            store.commit().unwrap();
            let state = store.chunks.get(&key("a", 0, 1)).unwrap();
            assert!(
                state.disk.len() <= MAX_CHUNK_CHAIN,
                "chain length {} exceeds the cap",
                state.disk.len()
            );
        }
        assert_eq!(*store.read_series(&key("a", 0, 1)).unwrap(), expect);
        let reopened = Store::open(&path).unwrap();
        assert_eq!(*reopened.read_series(&key("a", 0, 1)).unwrap(), expect);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn extend_mixes_with_single_chunk_series_in_batches() {
        let path = temp_store("mixed_batch");
        let mut store = Store::open(&path).unwrap();
        store.append_series(key("a", 0, 1), &[1.0, 2.0]).unwrap();
        store.commit().unwrap();
        store.extend_series(key("a", 0, 1), &[3.0]).unwrap();
        store.append_series(key("a", 0, 2), &[9.0]).unwrap();
        // Chained+staged, staged-only, and committed-only all in one
        // batch, with a duplicate key.
        let keys = [key("a", 0, 1), key("a", 0, 2), key("a", 0, 1)];
        let got = store.read_series_batch(&keys).unwrap();
        assert_eq!(*got[0], vec![1.0, 2.0, 3.0]);
        assert_eq!(*got[1], vec![9.0]);
        assert_eq!(*got[2], vec![1.0, 2.0, 3.0]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn v1_single_chunk_files_still_load() {
        use crate::format::MAGIC;
        // Hand-craft a version-1 store: superblock + one delta chunk +
        // a v1 index (no chunk-count field).
        let path = temp_store("v1");
        let values = [4.0, 5.0, 6.0];
        let (encoding, payload) = codec::encode_chunk(&values);
        let offset = SUPERBLOCK_LEN as u64;

        let mut w = IndexWriter::new();
        w.u64(1); // one series
        w.str16("legacy");
        w.u32(0);
        w.u8(mode_tag(SampleMode::Mlpx));
        w.u64(7);
        w.u8(encoding.tag());
        w.u64(values.len() as u64);
        w.u64(offset);
        w.u64(payload.len() as u64);
        w.u32(codec::crc32(&payload));
        w.u64(0); // runs
        w.u64(0); // meta
        let index = w.finish();

        let index_offset = offset + payload.len() as u64;
        let mut file = Vec::new();
        // Superblock::encode always stamps the current VERSION, so
        // build the v1 header by hand: magic, version, reserved flags,
        // offsets, crc.
        let mut head = Vec::new();
        head.extend_from_slice(&MAGIC);
        head.extend_from_slice(&1u32.to_le_bytes());
        head.extend_from_slice(&0u32.to_le_bytes());
        head.extend_from_slice(&index_offset.to_le_bytes());
        head.extend_from_slice(&(index.len() as u64).to_le_bytes());
        let crc = codec::crc32(&head);
        head.extend_from_slice(&crc.to_le_bytes());
        assert_eq!(head.len(), SUPERBLOCK_LEN);
        file.extend_from_slice(&head);
        file.extend_from_slice(&payload);
        file.extend_from_slice(&index);
        fs::write(&path, &file).unwrap();

        let store = Store::open(&path).unwrap();
        let k = SeriesKey::new("legacy", 0, SampleMode::Mlpx, EventId::new(7));
        assert_eq!(*store.read_series(&k).unwrap(), values.to_vec());

        // Extending and committing rewrites the file at the current
        // version with a two-link chain.
        let mut store = store;
        store.extend_series(k.clone(), &[7.0]).unwrap();
        store.commit().unwrap();
        let reopened = Store::open(&path).unwrap();
        assert_eq!(reopened.info().version, VERSION);
        assert_eq!(*reopened.read_series(&k).unwrap(), vec![4.0, 5.0, 6.0, 7.0]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn leftover_tmp_file_is_recovered() {
        let path = temp_store("recover");
        let mut store = Store::open(&path).unwrap();
        store.append_series(key("a", 0, 1), &[9.0]).unwrap();
        store.commit().unwrap();

        // Simulate a crash mid-commit: garbage under the tmp name.
        fs::write(tmp_path(&path), b"partial garbage").unwrap();
        let reopened = Store::open(&path).unwrap();
        assert!(!tmp_path(&path).exists(), "tmp cleaned up on open");
        assert_eq!(*reopened.read_series(&key("a", 0, 1)).unwrap(), vec![9.0]);
        fs::remove_file(&path).unwrap();
    }
}
