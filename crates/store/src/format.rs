//! On-disk layout of the columnar store file.
//!
//! The full byte-level specification lives in
//! [`docs/STORAGE_FORMAT.md`](https://github.com/counterminer/counterminer/blob/main/docs/STORAGE_FORMAT.md);
//! this module is its executable counterpart. In brief:
//!
//! ```text
//! +------------+---------+---------+-----+---------+---------+
//! | superblock | chunk 0 | chunk 1 | ... | chunk N | index   |
//! +------------+---------+---------+-----+---------+---------+
//! ```
//!
//! * the fixed-size **superblock** carries the magic, the format
//!   version, and the offset/length of the index, all guarded by a
//!   CRC-32;
//! * **chunks** are opaque encoded payloads (see [`crate::codec`]),
//!   written back to back with no per-chunk framing — their metadata
//!   (key, encoding, offset, length, CRC) lives in the index;
//! * the **index** is a sorted table of series entries plus the run
//!   table (execution times) and the store's string metadata map,
//!   terminated by its own CRC-32.
//!
//! Every multi-byte integer is little endian. A writer builds the whole
//! file under a temporary name and `rename(2)`s it into place, so a
//! reader never observes a torn file; a leftover `.tmp` is deleted on
//! open (partial-write recovery).

use crate::codec::Encoding;
use crate::StoreError;
use cm_events::SampleMode;

/// File magic: "CounterMiner Columnar Store".
pub(crate) const MAGIC: [u8; 4] = *b"CMCS";

/// Current format version — what [`Store::commit`](crate::Store::commit)
/// writes. Version 2 added per-series *chunk chains* (the streaming
/// append path); version-1 files (single chunk per series) remain
/// readable. See `docs/STORAGE_FORMAT.md` for the version history and
/// compatibility rules.
pub(crate) const VERSION: u32 = 2;

/// Format versions this reader understands.
pub(crate) const SUPPORTED_VERSIONS: &[u32] = &[1, 2];

/// Size of the fixed superblock in bytes.
pub(crate) const SUPERBLOCK_LEN: usize = 32;

/// Suffix of the temporary file used by the atomic-rename commit.
pub(crate) const TMP_SUFFIX: &str = ".tmp";

/// The decoded superblock.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Superblock {
    /// Format version of the file.
    pub version: u32,
    /// Byte offset of the index.
    pub index_offset: u64,
    /// Length of the index in bytes (including its trailing CRC).
    pub index_len: u64,
}

impl Superblock {
    /// Serializes the superblock into its fixed 32-byte form.
    pub fn encode(&self) -> [u8; SUPERBLOCK_LEN] {
        let mut out = [0u8; SUPERBLOCK_LEN];
        out[0..4].copy_from_slice(&MAGIC);
        out[4..8].copy_from_slice(&self.version.to_le_bytes());
        out[8..12].copy_from_slice(&0u32.to_le_bytes()); // flags, reserved
        out[12..20].copy_from_slice(&self.index_offset.to_le_bytes());
        out[20..28].copy_from_slice(&self.index_len.to_le_bytes());
        let crc = crate::codec::crc32(&out[0..28]);
        out[28..32].copy_from_slice(&crc.to_le_bytes());
        out
    }

    /// Parses and validates a superblock.
    ///
    /// # Errors
    ///
    /// [`StoreError::NotAStore`] for a bad magic, [`StoreError::Truncated`]
    /// when fewer than 32 bytes are available,
    /// [`StoreError::UnsupportedVersion`] for an unknown version, and
    /// [`StoreError::ChecksumMismatch`] when the CRC disagrees.
    pub fn decode(bytes: &[u8], file: &str) -> Result<Self, StoreError> {
        if bytes.len() < SUPERBLOCK_LEN {
            return Err(StoreError::Truncated {
                file: file.to_string(),
                what: format!("superblock needs 32 bytes, file holds {}", bytes.len()),
            });
        }
        if bytes[0..4] != MAGIC {
            return Err(StoreError::NotAStore {
                file: file.to_string(),
            });
        }
        let stored_crc = u32::from_le_bytes(bytes[28..32].try_into().expect("4 bytes"));
        let actual_crc = crate::codec::crc32(&bytes[0..28]);
        if stored_crc != actual_crc {
            return Err(StoreError::ChecksumMismatch {
                file: file.to_string(),
                what: "superblock".to_string(),
            });
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if !SUPPORTED_VERSIONS.contains(&version) {
            return Err(StoreError::UnsupportedVersion {
                file: file.to_string(),
                found: version,
                supported: VERSION,
            });
        }
        Ok(Superblock {
            version,
            index_offset: u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")),
            index_len: u64::from_le_bytes(bytes[20..28].try_into().expect("8 bytes")),
        })
    }
}

/// Index-resident metadata of one committed chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct ChunkRef {
    /// Payload encoding.
    pub encoding: Encoding,
    /// Number of values in the chunk.
    pub count: u64,
    /// Byte offset of the payload within the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
}

/// Serialization helpers shared by the index writer and reader.
pub(crate) struct IndexWriter {
    buf: Vec<u8>,
}

impl IndexWriter {
    pub fn new() -> Self {
        IndexWriter { buf: Vec::new() }
    }

    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }

    /// Length-prefixed UTF-8 (u16 length).
    pub fn str16(&mut self, s: &str) {
        let len = u16::try_from(s.len()).unwrap_or(u16::MAX);
        let s = &s[..len as usize];
        self.buf.extend_from_slice(&len.to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed UTF-8 (u32 length, for metadata values).
    pub fn str32(&mut self, s: &str) {
        self.buf.extend_from_slice(&(s.len() as u32).to_le_bytes());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends the CRC of everything written so far and returns the
    /// finished index bytes.
    pub fn finish(mut self) -> Vec<u8> {
        let crc = crate::codec::crc32(&self.buf);
        self.buf.extend_from_slice(&crc.to_le_bytes());
        self.buf
    }
}

/// Cursor over index bytes with typed reads and corruption errors.
pub(crate) struct IndexReader<'a> {
    buf: &'a [u8],
    pos: usize,
    file: &'a str,
}

impl<'a> IndexReader<'a> {
    /// Validates the trailing CRC and returns a cursor over the body.
    pub fn new(buf: &'a [u8], file: &'a str) -> Result<Self, StoreError> {
        if buf.len() < 4 {
            return Err(StoreError::Truncated {
                file: file.to_string(),
                what: "index shorter than its checksum".to_string(),
            });
        }
        let (body, crc_bytes) = buf.split_at(buf.len() - 4);
        let stored = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
        if stored != crate::codec::crc32(body) {
            return Err(StoreError::ChecksumMismatch {
                file: file.to_string(),
                what: "index".to_string(),
            });
        }
        Ok(IndexReader {
            buf: body,
            pos: 0,
            file,
        })
    }

    fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], StoreError> {
        if self.pos + n > self.buf.len() {
            return Err(StoreError::Truncated {
                file: self.file.to_string(),
                what: format!("index ended inside {what}"),
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    pub fn u8(&mut self, what: &str) -> Result<u8, StoreError> {
        Ok(self.take(1, what)?[0])
    }

    pub fn u32(&mut self, what: &str) -> Result<u32, StoreError> {
        Ok(u32::from_le_bytes(
            self.take(4, what)?.try_into().expect("4 bytes"),
        ))
    }

    pub fn u64(&mut self, what: &str) -> Result<u64, StoreError> {
        Ok(u64::from_le_bytes(
            self.take(8, what)?.try_into().expect("8 bytes"),
        ))
    }

    pub fn f64(&mut self, what: &str) -> Result<f64, StoreError> {
        Ok(f64::from_bits(self.u64(what)?))
    }

    pub fn str16(&mut self, what: &str) -> Result<String, StoreError> {
        let len = u16::from_le_bytes(self.take(2, what)?.try_into().expect("2 bytes"));
        self.utf8(len as usize, what)
    }

    pub fn str32(&mut self, what: &str) -> Result<String, StoreError> {
        let len = self.u32(what)?;
        self.utf8(len as usize, what)
    }

    fn utf8(&mut self, len: usize, what: &str) -> Result<String, StoreError> {
        let bytes = self.take(len, what)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| StoreError::Corrupt {
            file: self.file.to_string(),
            what: format!("{what} is not valid UTF-8"),
        })
    }

    /// Whether the cursor consumed the whole body.
    pub fn at_end(&self) -> bool {
        self.pos == self.buf.len()
    }
}

/// On-disk tag for a [`SampleMode`].
pub(crate) fn mode_tag(mode: SampleMode) -> u8 {
    match mode {
        SampleMode::Ocoe => 0,
        SampleMode::Mlpx => 1,
    }
}

/// Inverse of [`mode_tag`].
pub(crate) fn mode_from_tag(tag: u8, file: &str) -> Result<SampleMode, StoreError> {
    match tag {
        0 => Ok(SampleMode::Ocoe),
        1 => Ok(SampleMode::Mlpx),
        other => Err(StoreError::Corrupt {
            file: file.to_string(),
            what: format!("unknown sample-mode tag {other}"),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superblock_round_trips() {
        let sb = Superblock {
            version: VERSION,
            index_offset: 1234,
            index_len: 567,
        };
        let bytes = sb.encode();
        assert_eq!(Superblock::decode(&bytes, "t").unwrap(), sb);
    }

    #[test]
    fn superblock_rejects_corruption() {
        let sb = Superblock {
            version: VERSION,
            index_offset: 32,
            index_len: 4,
        };
        let mut bytes = sb.encode();

        // Wrong magic.
        let mut bad = bytes;
        bad[0] = b'X';
        assert!(matches!(
            Superblock::decode(&bad, "t"),
            Err(StoreError::NotAStore { .. })
        ));

        // Flipped byte inside the covered region.
        bad = bytes;
        bad[13] ^= 0xFF;
        assert!(matches!(
            Superblock::decode(&bad, "t"),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        // Unsupported version (CRC recomputed so it is reached).
        bytes[4..8].copy_from_slice(&99u32.to_le_bytes());
        let crc = crate::codec::crc32(&bytes[0..28]);
        bytes[28..32].copy_from_slice(&crc.to_le_bytes());
        match Superblock::decode(&bytes, "t") {
            Err(StoreError::UnsupportedVersion {
                found, supported, ..
            }) => {
                assert_eq!(found, 99);
                assert_eq!(supported, VERSION);
            }
            other => panic!("expected version error, got {other:?}"),
        }

        // Too short.
        assert!(matches!(
            Superblock::decode(&[0u8; 10], "t"),
            Err(StoreError::Truncated { .. })
        ));
    }

    #[test]
    fn index_writer_reader_round_trip() {
        let mut w = IndexWriter::new();
        w.u8(7);
        w.u32(1000);
        w.u64(1 << 40);
        w.f64(-2.5);
        w.str16("wordcount");
        w.str32("a longer metadata value");
        let bytes = w.finish();

        let mut r = IndexReader::new(&bytes, "t").unwrap();
        assert_eq!(r.u8("a").unwrap(), 7);
        assert_eq!(r.u32("b").unwrap(), 1000);
        assert_eq!(r.u64("c").unwrap(), 1 << 40);
        assert_eq!(r.f64("d").unwrap(), -2.5);
        assert_eq!(r.str16("e").unwrap(), "wordcount");
        assert_eq!(r.str32("f").unwrap(), "a longer metadata value");
        assert!(r.at_end());
    }

    #[test]
    fn index_reader_rejects_bad_crc_and_truncation() {
        let mut w = IndexWriter::new();
        w.u64(42);
        let mut bytes = w.finish();
        bytes[0] ^= 1;
        assert!(matches!(
            IndexReader::new(&bytes, "t"),
            Err(StoreError::ChecksumMismatch { .. })
        ));

        let mut w = IndexWriter::new();
        w.u32(1);
        let bytes = w.finish();
        let mut r = IndexReader::new(&bytes, "t").unwrap();
        assert!(r.u64("too much").is_err());
    }

    #[test]
    fn mode_tags_round_trip() {
        for mode in [SampleMode::Ocoe, SampleMode::Mlpx] {
            assert_eq!(mode_from_tag(mode_tag(mode), "t").unwrap(), mode);
        }
        assert!(mode_from_tag(9, "t").is_err());
    }
}
