//! Minimal argument parsing: `--key value` flags plus positional
//! arguments, no external dependency.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: positionals in order, `--key value` options.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Args {
    positionals: Vec<String>,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

/// Argument errors surfaced to the user.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for ArgError {}

/// Option keys that take no value (boolean flags).
const BOOLEAN_FLAGS: &[&str] = &["quick", "help", "ocoe", "json", "follow"];

impl Args {
    /// Parses raw arguments (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for a `--key` with no following value.
    pub fn parse<I: IntoIterator<Item = String>>(raw: I) -> Result<Self, ArgError> {
        let mut out = Args::default();
        let mut iter = raw.into_iter();
        while let Some(token) = iter.next() {
            if let Some(key) = token.strip_prefix("--") {
                if BOOLEAN_FLAGS.contains(&key) {
                    out.flags.push(key.to_string());
                } else {
                    let value = iter
                        .next()
                        .ok_or_else(|| ArgError(format!("--{key} needs a value")))?;
                    out.options.insert(key.to_string(), value);
                }
            } else {
                out.positionals.push(token);
            }
        }
        Ok(out)
    }

    /// The `i`-th positional argument.
    pub fn positional(&self, i: usize) -> Option<&str> {
        self.positionals.get(i).map(String::as_str)
    }

    /// Positional argument count.
    pub fn positional_count(&self) -> usize {
        self.positionals.len()
    }

    /// A string option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// A parsed numeric option with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse.
    pub fn get_num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, ArgError> {
        match self.options.get(key) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| ArgError(format!("--{key} {raw:?} is not a valid number"))),
        }
    }

    /// Whether a boolean flag was given.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(tokens: &[&str]) -> Result<Args, ArgError> {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn positionals_and_options_mix() {
        let args = parse(&["analyze", "sort", "--runs", "3", "--quick"]).unwrap();
        assert_eq!(args.positional(0), Some("analyze"));
        assert_eq!(args.positional(1), Some("sort"));
        assert_eq!(args.positional_count(), 2);
        assert_eq!(args.get("runs"), Some("3"));
        assert!(args.flag("quick"));
        assert!(!args.flag("help"));
    }

    #[test]
    fn numeric_defaults_and_parsing() {
        let args = parse(&["--seed", "42"]).unwrap();
        assert_eq!(args.get_num("seed", 0u64).unwrap(), 42);
        assert_eq!(args.get_num("runs", 3usize).unwrap(), 3);
        let bad = parse(&["--seed", "banana"]).unwrap();
        assert!(bad.get_num("seed", 0u64).is_err());
    }

    #[test]
    fn missing_value_is_an_error() {
        assert!(parse(&["--out"]).is_err());
    }

    #[test]
    fn empty_input_parses() {
        let args = parse(&[]).unwrap();
        assert_eq!(args.positional_count(), 0);
    }
}
